//! Vendored, dependency-free subset of the `criterion` 0.5 API.
//!
//! Supports the `criterion_group!`/`criterion_main!` entry points and the
//! `bench_function`/`benchmark_group` surface the ATiM-RS benches use. It
//! reports mean wall-clock time per iteration to stdout and performs no
//! statistical analysis. Under `cargo test` (which passes `--test` to
//! `harness = false` bench binaries) every benchmark body runs exactly once
//! as a smoke test.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

static TEST_MODE: AtomicBool = AtomicBool::new(false);

/// Switches every subsequent measurement to single-iteration smoke mode
/// (used when the binary is invoked by `cargo test`).
pub fn set_test_mode() {
    TEST_MODE.store(true, Ordering::Relaxed);
}

fn test_mode() -> bool {
    TEST_MODE.load(Ordering::Relaxed)
}

/// An opaque identity function that prevents the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Runs one benchmark body and measures its mean iteration time.
pub struct Bencher {
    mean: Option<Duration>,
}

impl Bencher {
    /// Times `body`, first warming up and then averaging over enough
    /// iterations to fill a short measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if test_mode() {
            black_box(body());
            self.mean = Some(Duration::ZERO);
            return;
        }
        // Warm-up; also sizes the batch so one measurement spans ~50ms.
        let warmup = Instant::now();
        black_box(body());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let iters =
            (Duration::from_millis(50).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(body());
        }
        self.mean = Some(start.elapsed() / iters);
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { mean: None };
    f(&mut bencher);
    match bencher.mean {
        Some(mean) if !test_mode() => {
            println!("{name:<40} time: {mean:>12.2?}/iter");
        }
        Some(_) => println!("{name:<40} ok (test mode)"),
        None => println!("{name:<40} skipped (no iter call)"),
    }
}

/// The benchmark manager handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks (sampling knobs are accepted but ignored).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this subset sizes runs by time.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function invoking the listed targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Benchmark group declared via `criterion_group!`.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
///
/// Recognizes the `--test` flag `cargo test` passes to `harness = false`
/// bench targets and switches to single-iteration smoke mode.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if ::std::env::args().any(|arg| arg == "--test") {
                $crate::set_test_mode();
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        set_test_mode();
        let mut criterion = Criterion::default();
        let mut runs = 0u32;
        criterion.bench_function("probe", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
        let mut group = criterion.benchmark_group("group");
        group
            .sample_size(10)
            .bench_function("inner", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 2);
    }
}
