//! Vendored, dependency-free subset of the `proptest` 1.x API.
//!
//! Implements the strategy combinators, macros and test runner that the
//! ATiM-RS property tests use. The one deliberate omission is *shrinking*:
//! a failing case is reported exactly as generated instead of being
//! minimized. See `third_party/README.md` for the full scope.

/// Test-case execution: configuration, RNG and failure type.
pub mod test_runner {
    use std::fmt;

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A property failure (carries the formatted assertion message).
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Result type property bodies evaluate to.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives strategy sampling with a deterministic SplitMix64 stream.
    pub struct TestRunner {
        /// The active configuration.
        pub config: Config,
        state: u64,
    }

    impl TestRunner {
        /// Builds a runner for `config` with a fixed seed (runs are
        /// reproducible; upstream proptest would randomize here).
        pub fn new(config: Config) -> Self {
            TestRunner {
                config,
                state: 0x243F_6A88_85A3_08D3,
            }
        }

        /// A runner with the default configuration and a fixed seed.
        pub fn deterministic() -> Self {
            TestRunner::new(Config::default())
        }

        /// Returns the next random word of the sampling stream.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use std::sync::Arc;

    use crate::test_runner::TestRunner;

    /// A generated value (upstream: a shrinkable tree; here: just the value).
    pub trait ValueTree {
        /// The value type this tree yields.
        type Value;

        /// Returns the generated value.
        fn current(&self) -> Self::Value;
    }

    /// The single [`ValueTree`] implementation: no shrinking.
    pub struct NoShrink<T>(T);

    impl<T: Clone> ValueTree for NoShrink<T> {
        type Value = T;

        fn current(&self) -> T {
            self.0.clone()
        }
    }

    /// A composable random-value generator.
    pub trait Strategy {
        /// The type of values this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, runner: &mut TestRunner) -> Self::Value;

        /// Draws one value wrapped in a (non-shrinking) [`ValueTree`].
        ///
        /// # Errors
        ///
        /// Never fails in this subset; the `Result` mirrors upstream.
        fn new_tree(&self, runner: &mut TestRunner) -> Result<NoShrink<Self::Value>, String>
        where
            Self::Value: Clone,
        {
            Ok(NoShrink(self.sample(runner)))
        }

        /// Maps generated values through `map`.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, map }
        }

        /// Generates recursive values: `self` is the leaf strategy and
        /// `recurse` wraps an inner strategy into one more level.
        ///
        /// `_desired_size` and `_expected_branch_size` are accepted for
        /// upstream signature compatibility; this subset only bounds depth.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value, F>
        where
            Self: Sized + 'static,
            Self::Value: Clone + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            Recursive {
                base: self.boxed(),
                depth,
                recurse: Arc::new(recurse),
            }
        }

        /// Type-erases this strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy {
                sample: Arc::new(move |runner: &mut TestRunner| self.sample(runner)),
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, runner: &mut TestRunner) -> Self::Value {
            (**self).sample(runner)
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<T> {
        sample: Arc<dyn Fn(&mut TestRunner) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                sample: Arc::clone(&self.sample),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, runner: &mut TestRunner) -> T {
            (self.sample)(runner)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, runner: &mut TestRunner) -> O {
            (self.map)(self.inner.sample(runner))
        }
    }

    /// Strategy returned by [`Strategy::prop_recursive`].
    pub struct Recursive<T, F> {
        base: BoxedStrategy<T>,
        depth: u32,
        recurse: Arc<F>,
    }

    impl<T, R, F> Strategy for Recursive<T, F>
    where
        T: Clone + 'static,
        R: Strategy<Value = T> + 'static,
        F: Fn(BoxedStrategy<T>) -> R,
    {
        type Value = T;

        fn sample(&self, runner: &mut TestRunner) -> T {
            let levels = runner.next_u64() % (u64::from(self.depth) + 1);
            let mut current = self.base.clone();
            for _ in 0..levels {
                current = (self.recurse)(current).boxed();
            }
            current.sample(runner)
        }
    }

    /// Uniform choice between strategies (built by [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`; panics if empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, runner: &mut TestRunner) -> T {
            let idx = (runner.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].sample(runner)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let off = (runner.next_u64() as u128) % width;
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, runner: &mut TestRunner) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let width = (end as i128 - start as i128) as u128 + 1;
                    let off = (runner.next_u64() as u128) % width;
                    (start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = ((runner.next_u64() >> 11) as f64)
                        * (1.0 / (1u64 << 53) as f64);
                    self.start + (unit as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$idx.sample(runner),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

/// The usual `use proptest::prelude::*;` imports.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, NoShrink, Strategy, Union, ValueTree};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice between the listed strategies (all must share one value
/// type). Weighted arms are not supported in this subset.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Fails the enclosing property if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the enclosing property if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the enclosing property if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strategy:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let cases = config.cases;
                let mut __runner = $crate::test_runner::TestRunner::new(config);
                for __case in 0..cases {
                    let __outcome: $crate::test_runner::TestCaseResult = (|| {
                        $(
                            let $arg = $crate::strategy::ValueTree::current(
                                &$crate::strategy::Strategy::new_tree(
                                    &($strategy),
                                    &mut __runner,
                                )
                                .expect("strategy sampling cannot fail"),
                            );
                        )*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(failure) = __outcome {
                        panic!(
                            "proptest: case {}/{} failed: {}",
                            __case + 1,
                            cases,
                            failure
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn oneof_and_map_compose() {
        let strategy = prop_oneof![(0i64..10).prop_map(|v| v * 2), Just(-1i64)];
        let mut runner = TestRunner::deterministic();
        let mut saw_just = false;
        let mut saw_even = false;
        for _ in 0..64 {
            let v = strategy.new_tree(&mut runner).unwrap().current();
            if v == -1 {
                saw_just = true;
            } else {
                assert!(v % 2 == 0 && (0..20).contains(&v));
                saw_even = true;
            }
        }
        assert!(saw_just && saw_even);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        #[allow(dead_code)] // Leaf payload only exercises value plumbing.
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }

        fn depth(tree: &Tree) -> u32 {
            match tree {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }

        let strategy = (0i64..8)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut runner = TestRunner::deterministic();
        for _ in 0..32 {
            let tree = strategy.new_tree(&mut runner).unwrap().current();
            assert!(depth(&tree) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in -5i64..5, b in 0usize..3, c in 1u32..=4) {
            prop_assert!((-5..5).contains(&a));
            prop_assert!(b < 3);
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn tuples_sample_componentwise((x, y) in (0i64..4, 10i64..14)) {
            prop_assert!((0..4).contains(&x), "x out of range: {}", x);
            prop_assert_eq!(y, y);
            prop_assert_ne!(x, 9);
            prop_assert!((10..14).contains(&y));
        }
    }
}
