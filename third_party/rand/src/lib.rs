//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! See `third_party/README.md` for scope and behavioral differences from
//! upstream. Only what ATiM-RS calls is implemented: [`Rng::gen_range`] over
//! integer/float ranges, [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`].

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Maps a random word to a `f64` in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    ((word >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// Seedable generators (only the `seed_from_u64` entry point is mirrored).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed; equal seeds give equal streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % width;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % width;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64).
    ///
    /// Upstream `rand`'s `StdRng` is ChaCha12; this stand-in only promises
    /// determinism per seed, not the same stream as upstream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0i64..100), b.gen_range(0i64..100));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(0u32..=6);
            assert!(w <= 6);
            let u = rng.gen_range(3usize..4);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
