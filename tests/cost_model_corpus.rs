//! The committed TuneLog fixture corpus under `tests/fixtures/corpus/` and
//! the ranking-quality contract of the gradient-boosted cost model on it:
//!
//! * the corpus loads across workloads and shapes, with per-file corruption
//!   tolerated and reported rather than aborting the load;
//! * on **held-out** workload/shape groups (entire searches the model never
//!   saw), the GBDT beats the ridge baseline on pairwise accuracy and
//!   recall@8 — the cross-shape-transfer claim, pinned on committed data;
//! * a model trained on the corpus warm-starts a session on an unseen
//!   shape.
//!
//! The fixtures are real searches on the simulated small machine (see
//! [`regenerate_corpus_fixtures`]); filenames follow the `atim-bench`
//! convention the corpus loader recovers shapes from.

use atim_autotune::{CostEstimator, CostModel, CostModelKind};
use atim_core::prelude::*;
use atim_model::{evaluate, Dataset, GbdtModel, GbdtParams};
use atim_workloads::{Workload, WorkloadKind};

fn corpus_dir() -> String {
    format!("{}/tests/fixtures/corpus", env!("CARGO_MANIFEST_DIR"))
}

/// The workload/shape grid the corpus covers. Two mtv shapes make the
/// transfer story concrete: one of them lands in the hold-out split while
/// the other trains.
fn corpus_grid() -> Vec<Workload> {
    vec![
        Workload::new(WorkloadKind::Va, vec![65536]),
        Workload::new(WorkloadKind::Red, vec![65536]),
        Workload::new(WorkloadKind::Geva, vec![32768]),
        Workload::new(WorkloadKind::Mtv, vec![128, 256]),
        Workload::new(WorkloadKind::Mtv, vec![256, 256]),
        Workload::new(WorkloadKind::Gemv, vec![256, 128]),
        Workload::new(WorkloadKind::Ttv, vec![16, 64, 64]),
        Workload::new(WorkloadKind::Mmtv, vec![8, 64, 64]),
    ]
}

const CORPUS_TRIALS: usize = 24;

fn corpus_options() -> TuningOptions {
    TuningOptions {
        trials: CORPUS_TRIALS,
        population: 16,
        measure_per_round: 8,
        ..TuningOptions::default()
    }
}

/// Regenerates the committed corpus by running the real simulated search
/// for every grid entry. Run manually after trajectory-affecting search
/// changes:
///
/// ```text
/// cargo test --test cost_model_corpus -- --ignored regenerate_corpus_fixtures
/// ```
#[test]
#[ignore = "fixture generator — run manually after trajectory-affecting search changes"]
fn regenerate_corpus_fixtures() {
    use atim_autotune::log::TuneLog;

    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let session = Session::new(UpmemConfig::small());
    let options = corpus_options();
    for workload in corpus_grid() {
        let def = workload.compute_def();
        let tuned = session.tune(&def, &options).expect("corpus search runs");
        let log = TuneLog::new(&def.name, options.seed, tuned.result().clone());
        let shape: Vec<String> = workload.shape.iter().map(|d| d.to_string()).collect();
        let path = format!(
            "{dir}/{}_{}_t{}.json",
            def.name,
            shape.join("x"),
            CORPUS_TRIALS
        );
        log.save(&path).expect("corpus fixture writes");
        println!("wrote {path}");
    }
}

#[test]
fn corpus_fixtures_load_with_full_coverage() {
    let (data, summary) =
        Dataset::load_dir(corpus_dir(), &UpmemConfig::small()).expect("committed corpus loads");
    assert_eq!(summary.files_loaded, corpus_grid().len());
    assert!(summary.skipped.is_empty(), "{:?}", summary.skipped);
    assert_eq!(data.groups.len(), corpus_grid().len());
    // Every search contributes its measured history.
    assert!(
        data.len() >= corpus_grid().len() * (CORPUS_TRIALS / 2),
        "corpus holds {} samples",
        data.len()
    );
    for group in &data.groups {
        assert!(
            group.records > 0,
            "{} contributed nothing",
            group.path.display()
        );
    }
}

/// The tentpole acceptance bar: trained on the non-held-out groups, the
/// GBDT must beat the ridge baseline on the held-out groups — entire
/// searches (workload/shape pairs) it never saw — on both pairwise
/// accuracy and recall@8.
#[test]
fn gbdt_beats_ridge_on_held_out_groups() {
    let (data, _) = Dataset::load_dir(corpus_dir(), &UpmemConfig::small()).unwrap();
    let (train, holdout) = data.split_holdout(4);
    assert!(
        !holdout.is_empty() && holdout.groups.len() >= 2,
        "the split must hold out whole groups"
    );

    let mut gbdt = GbdtModel::new(GbdtParams::default());
    gbdt.boost(&train.samples(), Some(&train.group_of), 200);
    let mut ridge = CostModel::new();
    CostEstimator::fit(&mut ridge, &train.samples());

    let g = evaluate(&gbdt, &holdout, 8);
    let r = evaluate(&ridge, &holdout, 8);
    assert!(
        g.pairwise_accuracy > r.pairwise_accuracy,
        "held-out pairwise accuracy: gbdt {:.4} must beat ridge {:.4}",
        g.pairwise_accuracy,
        r.pairwise_accuracy
    );
    assert!(
        g.recall_at_k > r.recall_at_k,
        "held-out recall@8: gbdt {:.4} must beat ridge {:.4}",
        g.recall_at_k,
        r.recall_at_k
    );
    // Absolute floors so both estimators degrading together still fails
    // (measured on the committed corpus: gbdt ~0.85 / ~0.88, ridge
    // ~0.77 / ~0.81).
    assert!(
        g.pairwise_accuracy >= 0.78,
        "held-out gbdt pairwise accuracy {:.4} fell below the pinned floor",
        g.pairwise_accuracy
    );
    assert!(
        g.recall_at_k >= 0.75,
        "held-out gbdt recall@8 {:.4} fell below the pinned floor",
        g.recall_at_k
    );
}

/// Satellite: a corpus directory with individually corrupt members loads
/// the healthy files and reports the rest, never aborting.
#[test]
fn corrupt_corpus_members_are_skipped_and_reported() {
    let dir = std::env::temp_dir().join("atim_corpus_tolerance_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    // Two healthy files from the committed corpus...
    for name in ["mtv_128x256_t24.json", "va_65536_t24.json"] {
        std::fs::copy(format!("{}/{name}", corpus_dir()), dir.join(name)).unwrap();
    }
    // ...one truncated log, one non-JSON file, one good log under a
    // filename the convention cannot place, and one whose filename
    // contradicts the log it holds.
    let healthy =
        std::fs::read_to_string(format!("{}/mtv_128x256_t24.json", corpus_dir())).unwrap();
    std::fs::write(
        dir.join("red_65536_t24.json"),
        &healthy[..healthy.len() / 2],
    )
    .unwrap();
    std::fs::write(dir.join("gemv_256x128_t24.json"), "not json at all").unwrap();
    std::fs::write(dir.join("notes.json"), &healthy).unwrap();
    std::fs::write(dir.join("ttv_16x64x64_t24.json"), &healthy).unwrap();

    let (data, summary) = Dataset::load_dir(&dir, &UpmemConfig::small())
        .expect("corrupt members must not abort the load");
    assert_eq!(summary.files_loaded, 2);
    assert_eq!(data.groups.len(), 2);
    assert_eq!(summary.skipped.len(), 4, "{:?}", summary.skipped);
    let reason_of = |name: &str| {
        summary
            .skipped
            .iter()
            .find(|s| s.path.file_name().unwrap().to_str() == Some(name))
            .unwrap_or_else(|| panic!("{name} must be reported"))
            .reason
            .clone()
    };
    assert!(reason_of("red_65536_t24.json").contains("corrupt tuning log"));
    assert!(reason_of("gemv_256x128_t24.json").contains("corrupt tuning log"));
    assert!(reason_of("notes.json").contains("convention"));
    assert!(reason_of("ttv_16x64x64_t24.json").contains("filename says"));

    // An empty directory is a directory-level error, not a silent success.
    let empty = dir.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    assert!(Dataset::load_dir(&empty, &UpmemConfig::small()).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A global model trained offline on the corpus warm-starts a session on a
/// shape the corpus never contained: the estimator is trained before the
/// first measurement, and tuning stays fixed-seed deterministic.
#[test]
fn pretrained_global_model_warm_starts_unseen_shapes() {
    let (data, _) = Dataset::load_dir(corpus_dir(), &UpmemConfig::small()).unwrap();
    let mut global = GbdtModel::new(GbdtParams::default());
    global.boost(&data.samples(), Some(&data.group_of), 120);
    assert!(global.is_trained());

    // mtv 192x192 is not in the corpus grid.
    let def = ComputeDef::mtv("mtv", 192, 192);
    let options = TuningOptions {
        trials: 10,
        population: 10,
        measure_per_round: 5,
        ..TuningOptions::default()
    };
    let tune = || {
        Session::builder()
            .hardware(UpmemConfig::small())
            .pretrained_cost_model(global.clone())
            .build()
            .tune(&def, &options)
            .unwrap()
    };
    let a = tune();
    let b = tune();
    assert!(a.best_latency_s().is_finite());
    assert_eq!(a.best_config(), b.best_config());
    assert_eq!(
        a.history(),
        b.history(),
        "warm-started tuning must stay deterministic"
    );

    // The same warm start through a model file, the `atim-train` handoff.
    let path = std::env::temp_dir().join("atim_corpus_global_model_test.json");
    global.save(&path).unwrap();
    let session = Session::builder()
        .hardware(UpmemConfig::small())
        .pretrained_cost_model_file(&path)
        .build();
    assert_eq!(session.cost_model(), CostModelKind::Gbdt);
    assert!(session.pretrained_cost_model().unwrap().is_trained());
    assert_eq!(
        session.pretrained_cost_model().unwrap().num_trees(),
        global.num_trees()
    );
    let _ = std::fs::remove_file(&path);
}
