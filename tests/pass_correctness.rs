//! Cross-crate differential tests of the PIM-aware optimization passes:
//! every optimization level of every benchmark kind must produce bit-for-bit
//! reasonable results and never *increase* the simulated kernel latency.

use atim_autotune::ScheduleConfig;
use atim_core::prelude::*;
use atim_core::{compile_config, CompileOptions};
use atim_tir::schedule::execute_functional;
use atim_workloads::data::{generate_inputs, results_match};

fn misaligned_workloads() -> Vec<Workload> {
    vec![
        Workload::new(WorkloadKind::Va, vec![1000]),
        Workload::new(WorkloadKind::Geva, vec![777]),
        Workload::new(WorkloadKind::Red, vec![1234]),
        Workload::new(WorkloadKind::Mtv, vec![70, 90]),
        Workload::new(WorkloadKind::Gemv, vec![61, 83]),
        Workload::new(WorkloadKind::Ttv, vec![5, 13, 40]),
        Workload::new(WorkloadKind::Mmtv, vec![6, 11, 36]),
    ]
}

fn test_config(w: &Workload) -> ScheduleConfig {
    ScheduleConfig {
        spatial_dpus: vec![4; w.compute_def().spatial_axes().len().max(1)]
            [..w.compute_def().spatial_axes().len()]
            .to_vec(),
        reduce_dpus: if w.kind.has_reduce() { 2 } else { 1 },
        tasklets: 3,
        cache_elems: 16,
        use_cache: true,
        unroll: true,
        host_threads: 4,
        parallel_transfer: true,
    }
}

#[test]
fn all_opt_levels_preserve_results_for_all_kinds() {
    let hw = UpmemConfig::default();
    for w in misaligned_workloads() {
        let def = w.compute_def();
        let cfg = test_config(&w);
        let inputs = generate_inputs(&def, 99);
        let expect = def.reference(&inputs);
        let reduce_len = def
            .reduce_axes()
            .iter()
            .map(|&a| def.axes[a].extent as usize)
            .product::<usize>()
            .max(1);
        for level in OptLevel::ALL {
            let module = compile_config(
                &cfg,
                &def,
                CompileOptions {
                    opt_level: level,
                    parallel_transfer: true,
                },
                &hw,
            )
            .unwrap_or_else(|e| panic!("{}: compile failed at {level}: {e}", w.label()));
            let got = execute_functional(&module.lowered, &inputs)
                .unwrap_or_else(|e| panic!("{}: execution failed at {level}: {e}", w.label()));
            assert!(
                results_match(&got, &expect, reduce_len),
                "{} at {level}: results diverge",
                w.label()
            );
        }
    }
}

#[test]
fn optimization_never_slows_the_kernel_down() {
    let session = Session::new(UpmemConfig::default());
    for w in misaligned_workloads() {
        let def = w.compute_def();
        let cfg = test_config(&w);
        let mut prev = f64::INFINITY;
        for level in OptLevel::ALL {
            let module = compile_config(
                &cfg,
                &def,
                CompileOptions {
                    opt_level: level,
                    parallel_transfer: true,
                },
                session.hardware(),
            )
            .expect("compile");
            let report = session.time(&module).expect("time");
            if level == OptLevel::NoOpt {
                prev = report.kernel_s;
                continue;
            }
            assert!(
                report.kernel_s <= prev * 1.001,
                "{} at {level}: kernel got slower ({} > {prev})",
                w.label(),
                report.kernel_s
            );
            prev = report.kernel_s;
        }
    }
}

#[test]
fn full_optimization_removes_most_dynamic_branches() {
    let session = Session::new(UpmemConfig::default());
    let w = Workload::new(WorkloadKind::Gemv, vec![245, 245]);
    let def = w.compute_def();
    let cfg = test_config(&w);
    let run = |level| {
        let module = compile_config(
            &cfg,
            &def,
            CompileOptions {
                opt_level: level,
                parallel_transfer: true,
            },
            session.hardware(),
        )
        .unwrap();
        session.time(&module).unwrap()
    };
    let before = run(OptLevel::NoOpt);
    let after = run(OptLevel::DmaLtBh);
    assert!(
        (after.dpu.branches as f64) < before.dpu.branches as f64 * 0.25,
        "branches: {} -> {}",
        before.dpu.branches,
        after.dpu.branches
    );
    assert!(after.instructions < before.instructions);
}
