//! End-to-end integration tests spanning every crate: workload definition →
//! autotuning → compilation (PIM-aware passes) → simulated execution →
//! numerical validation against the reference implementation.

use atim_core::prelude::*;
use atim_workloads::data::{generate_inputs, results_match};
use atim_workloads::ops::small_presets;

fn check_workload(session: &Session, workload: &Workload, trials: usize) {
    let def = workload.compute_def();
    let options = TuningOptions {
        trials,
        population: 24,
        measure_per_round: 8,
        ..TuningOptions::default()
    };
    let (tuned, module) = session
        .tune_and_compile(&def, &options)
        .expect("tune_and_compile");
    assert!(
        tuned.best_latency_s().is_finite(),
        "{}: tuning failed",
        workload.label()
    );

    let inputs = generate_inputs(&def, 7);
    let run = session.execute(&module, &inputs).expect("execute");
    let expect = def.reference(&inputs);
    let reduce_len = def
        .reduce_axes()
        .iter()
        .map(|&a| def.axes[a].extent as usize)
        .product::<usize>()
        .max(1);
    assert!(
        results_match(run.output.as_ref().unwrap(), &expect, reduce_len),
        "{}: results diverge from reference",
        workload.label()
    );
    // Report sanity: every phase of the offload must be accounted for.
    let r = &run.report;
    assert!(r.kernel_s > 0.0);
    assert!(r.h2d_bytes > 0);
    assert!(r.num_dpus >= 1);
    assert!(r.total_s() >= r.kernel_s);
}

#[test]
fn every_benchmark_kind_runs_end_to_end() {
    let session = Session::new(UpmemConfig::default());
    for kind in WorkloadKind::ALL {
        // The smallest scaled-down preset of each kind keeps functional
        // simulation fast while exercising DPU distribution and reduction.
        let workload = small_presets(kind).into_iter().next().expect("preset");
        check_workload(&session, &workload, 10);
    }
}

#[test]
fn misaligned_shapes_survive_the_full_pipeline() {
    let session = Session::new(UpmemConfig::default());
    // Odd extents everywhere: every boundary check path is exercised.
    for workload in [
        Workload::new(WorkloadKind::Mtv, vec![243, 517]),
        Workload::new(WorkloadKind::Mmtv, vec![7, 53, 129]),
        Workload::new(WorkloadKind::Geva, vec![99_991]),
    ] {
        check_workload(&session, &workload, 8);
    }
}

#[test]
fn tuned_schedule_beats_the_untuned_default() {
    let session = Session::new(UpmemConfig::default());
    let def = ComputeDef::gemv("gemv", 2048, 2048, 1.0);
    let default_cfg = atim_autotune::ScheduleConfig::default_for(&def, session.hardware());
    let default_ms = session
        .measure_config(&default_cfg, &def)
        .expect("default config must run");
    let tuned = session
        .tune(
            &def,
            &TuningOptions {
                trials: 48,
                ..TuningOptions::default()
            },
        )
        .expect("valid options");
    assert!(
        tuned.best_latency_s() <= default_ms * 1.05,
        "autotuning must not be worse than the default ({} vs {})",
        tuned.best_latency_s(),
        default_ms
    );
}

#[test]
fn larger_machines_are_not_slower_for_large_workloads() {
    let big = Session::new(UpmemConfig::default());
    let small = Session::new(UpmemConfig::small());
    let def = ComputeDef::va("va", 1 << 22);
    let opts = TuningOptions {
        trials: 24,
        ..TuningOptions::default()
    };
    let t_big = big
        .tune(&def, &opts)
        .expect("valid options")
        .best_latency_s();
    let t_small = small
        .tune(&def, &opts)
        .expect("valid options")
        .best_latency_s();
    assert!(
        t_big <= t_small * 1.1,
        "2048 DPUs ({t_big}s) should not lose to 16 DPUs ({t_small}s)"
    );
}
