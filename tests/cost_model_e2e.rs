//! End-to-end contract of cost-estimator selection: `ATIM_COST_MODEL`
//! validation at session start, and the GBDT estimator driving every paper
//! workload through the real simulator with fixed-seed determinism.

use atim_autotune::{CostModelKind, TuningError, COST_MODEL_ENV};
use atim_core::prelude::*;

/// All environment-variable interaction lives in this single test: tests in
/// one binary share the process environment, so splitting it across
/// parallel tests would race.
#[test]
fn cost_model_env_is_validated_at_session_start() {
    // Unset: no override, ridge default.
    std::env::remove_var(COST_MODEL_ENV);
    assert_eq!(CostModelKind::from_env().unwrap(), None);
    assert_eq!(Session::default().cost_model(), CostModelKind::Ridge);

    // Valid values select the estimator (case/space tolerant).
    for (raw, want) in [
        ("ridge", CostModelKind::Ridge),
        ("gbdt", CostModelKind::Gbdt),
        (" GBDT ", CostModelKind::Gbdt),
    ] {
        std::env::set_var(COST_MODEL_ENV, raw);
        assert_eq!(CostModelKind::from_env().unwrap(), Some(want));
        assert_eq!(Session::default().cost_model(), want);
    }

    // An explicit builder choice wins over the environment.
    std::env::set_var(COST_MODEL_ENV, "gbdt");
    let session = Session::builder().cost_model(CostModelKind::Ridge).build();
    assert_eq!(session.cost_model(), CostModelKind::Ridge);

    // Invalid values fail loudly with the typed error, naming the variable
    // and the accepted values — never a silent fallback.
    std::env::set_var(COST_MODEL_ENV, "xgboost");
    let err = CostModelKind::from_env().unwrap_err();
    assert!(matches!(err, TuningError::InvalidCostModel { ref value } if value == "xgboost"));
    let msg = err.to_string();
    assert!(msg.contains(COST_MODEL_ENV), "{msg}");
    assert!(msg.contains("ridge") && msg.contains("gbdt"), "{msg}");

    // Session construction surfaces the same failure as a panic (the
    // `ATIM_MEASURE_THREADS` fail-loudly precedent).
    let panic = std::panic::catch_unwind(Session::default).unwrap_err();
    let text = panic.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(text.contains(COST_MODEL_ENV), "{text}");

    std::env::remove_var(COST_MODEL_ENV);
}

/// The tentpole acceptance bar: with the GBDT estimator selected, every
/// paper workload tunes end-to-end on the simulator, twice, to bit-identical
/// fixed-seed results. Selection is explicit (`SessionBuilder::cost_model`,
/// exactly what `ATIM_COST_MODEL=gbdt` resolves to) so this test cannot race
/// with the env test above.
#[test]
fn gbdt_runs_every_paper_workload_deterministically() {
    let grid: Vec<Workload> = vec![
        Workload::new(WorkloadKind::Va, vec![32768]),
        Workload::new(WorkloadKind::Red, vec![32768]),
        Workload::new(WorkloadKind::Geva, vec![16384]),
        Workload::new(WorkloadKind::Mtv, vec![128, 128]),
        Workload::new(WorkloadKind::Gemv, vec![128, 128]),
        Workload::new(WorkloadKind::Ttv, vec![8, 64, 64]),
        Workload::new(WorkloadKind::Mmtv, vec![8, 64, 64]),
    ];
    let options = TuningOptions {
        trials: 10,
        population: 10,
        measure_per_round: 5,
        ..TuningOptions::default()
    };
    let session = Session::builder()
        .hardware(UpmemConfig::small())
        .cost_model(CostModelKind::Gbdt)
        .build();
    for workload in grid {
        let def = workload.compute_def();
        let a = session.tune(&def, &options).expect("gbdt tuning runs");
        let b = session.tune(&def, &options).expect("gbdt tuning reruns");
        assert!(a.best_latency_s().is_finite());
        assert!(a.measured() > 0);
        assert_eq!(
            a.best_config(),
            b.best_config(),
            "{}: gbdt tuning must be fixed-seed deterministic",
            def.name
        );
        assert_eq!(a.history(), b.history(), "{}: histories diverged", def.name);
        assert_eq!(
            a.best_latency_s().to_bits(),
            b.best_latency_s().to_bits(),
            "{}: latencies diverged",
            def.name
        );
    }
}
