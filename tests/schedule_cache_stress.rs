//! Cross-process `ScheduleCache` stress suite: N real OS processes append
//! concurrently to one cache file; afterwards the file must parse cleanly
//! (no corruption), contain every key, and elect — for every key — the
//! globally best entry any process wrote (no lost strictly-better entries,
//! deterministic winner selection).
//!
//! The child processes are this same test binary re-invoked with the
//! `stress_child_writer` filter and an env-var payload; without the env
//! var that test is a no-op, so a plain `cargo test` run never recurses.

use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

use atim_autotune::{append_entry, CacheEntry, CacheKey, Decision, ScheduleCache, Trace};

const CHILD_ENV: &str = "ATIM_CACHE_STRESS_CHILD";
const WRITERS: u64 = 6;
const ENTRIES_PER_WRITER: u64 = 40;
const KEYS: u64 = 5;

/// The deterministic entry a writer appends at one step — shared by the
/// children (to write) and the parent (to compute the expected winners).
fn entry_for(writer: u64, step: u64) -> CacheEntry {
    let key = (writer + step) % KEYS;
    // A latency that collides exactly across writers every few steps, so
    // the tie-break arm of the winner selection is exercised too.
    let latency_s = ((writer * ENTRIES_PER_WRITER + step) % 29 + 1) as f64 * 1e-4;
    CacheEntry {
        key: CacheKey {
            workload: format!("wl{key}"),
            shape: vec![64 * (key as i64 + 1), 64],
            machine: "stress-machine".into(),
            generator: "upmem-sketch".into(),
        },
        trace: Trace::from_decisions(
            "stress",
            vec![
                ("writer", Decision::Int(writer as i64)),
                ("step", Decision::Int(step as i64)),
            ],
        ),
        latency_s,
        seed: writer * 1_000_000 + step,
    }
}

/// The winner the merged cache must elect for `key`, computed from first
/// principles over every entry any writer appends.
fn expected_winner(key: u64) -> CacheEntry {
    let mut best: Option<CacheEntry> = None;
    for writer in 0..WRITERS {
        for step in 0..ENTRIES_PER_WRITER {
            let entry = entry_for(writer, step);
            if entry.key.workload != format!("wl{key}") {
                continue;
            }
            best = match best {
                Some(current) if !entry.beats(&current) => Some(current),
                _ => Some(entry),
            };
        }
    }
    best.expect("every key is written at least once")
}

fn cache_path() -> PathBuf {
    std::env::temp_dir().join(format!("atim_cache_stress_{}.jsonl", std::process::id()))
}

/// Child mode: appends this writer's entries as fast as possible.  A no-op
/// (trivially passing test) unless spawned by the parent with the payload
/// env var set to `<writer_id>:<cache_path>:<go_path>`.
#[test]
fn stress_child_writer() {
    let Ok(payload) = std::env::var(CHILD_ENV) else {
        return;
    };
    let (writer, rest) = payload.split_once(':').expect("payload is writer:cache:go");
    let (cache, go) = rest.split_once(':').expect("payload is writer:cache:go");
    let writer: u64 = writer.parse().expect("writer id");

    // Start barrier: spin until the parent has spawned every sibling, so
    // the appends genuinely interleave.
    let start = Instant::now();
    while !std::path::Path::new(go).exists() {
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "go file never appeared"
        );
        std::thread::yield_now();
    }
    for step in 0..ENTRIES_PER_WRITER {
        append_entry(cache, &entry_for(writer, step)).expect("append");
    }
}

#[test]
fn concurrent_writer_processes_never_corrupt_or_lose_entries() {
    let path = cache_path();
    let go = path.with_extension("go");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&go);

    let exe = std::env::current_exe().expect("test binary path");
    let children: Vec<_> = (0..WRITERS)
        .map(|writer| {
            Command::new(&exe)
                .args(["stress_child_writer", "--exact", "--nocapture"])
                .env(
                    CHILD_ENV,
                    format!("{writer}:{}:{}", path.display(), go.display()),
                )
                .spawn()
                .expect("spawn writer process")
        })
        .collect();
    // Open the gate only once every writer is alive.
    std::fs::write(&go, b"go").expect("create go file");

    for mut child in children {
        let status = child.wait().expect("wait for writer");
        assert!(status.success(), "a writer process failed: {status:?}");
    }

    // 1. No corruption: every line parses (a single torn/garbage line
    //    anywhere but the tail would fail the load).  `open` keeps the
    //    backing path so step 4 can compact in place.
    let cache = ScheduleCache::open(&path).expect("cache file must parse cleanly");

    // 2. No lost keys, and for each key the globally strictly-best entry
    //    won, independent of process interleaving.
    assert_eq!(cache.len(), KEYS as usize);
    for key in 0..KEYS {
        let expect = expected_winner(key);
        let got = cache
            .lookup(&expect.key)
            .unwrap_or_else(|| panic!("key wl{key} missing from merged cache"));
        assert_eq!(got, &expect, "wrong winner for wl{key}");
    }

    // 3. The raw file holds every append (no lost lines at all — the
    //    stronger form of "no lost strictly-better entries").
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(
        text.lines().count() as u64,
        WRITERS * ENTRIES_PER_WRITER,
        "appended lines went missing"
    );

    // 4. Compaction after the stress preserves the winners and shrinks the
    //    file to one line per key.
    cache.compact().expect("compact");
    let compacted = ScheduleCache::load(&path).expect("compacted file parses");
    assert_eq!(compacted.len(), KEYS as usize);
    for key in 0..KEYS {
        let expect = expected_winner(key);
        assert_eq!(compacted.lookup(&expect.key), Some(&expect));
    }
    assert_eq!(
        std::fs::read_to_string(&path).unwrap().lines().count() as u64,
        KEYS
    );

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&go);
}
