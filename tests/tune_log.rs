//! Integration tests of the durable-tuning workflow across process
//! boundaries: a tuning run saved to a `TuneLog`, reloaded "in a fresh
//! process" (nothing shared but the file), and replayed to a `TunedModule`
//! must carry the identical best configuration and latency — and observers
//! must see exactly one callback per measured trial.

use atim_autotune::TuningRecord;
use atim_core::prelude::*;

/// Counts every streaming callback the tuner fires.
#[derive(Default)]
struct CountingObserver {
    rounds: usize,
    trials: usize,
    failures: usize,
    improvements: usize,
}

impl TuningObserver for CountingObserver {
    fn on_round_start(&mut self, _round: usize, _measured: usize) {
        self.rounds += 1;
    }
    fn on_trial(&mut self, _record: &TuningRecord) {
        self.trials += 1;
    }
    fn on_trial_failed(&mut self, _trace: &Trace) {
        self.failures += 1;
    }
    fn on_best_improved(&mut self, _record: &TuningRecord) {
        self.improvements += 1;
    }
}

#[test]
fn tuning_run_saves_reloads_and_replays_identically() {
    let options = TuningOptions {
        trials: 12,
        population: 12,
        measure_per_round: 6,
        ..TuningOptions::default()
    };
    let def = ComputeDef::mtv("mtv", 96, 64);
    let path = std::env::temp_dir().join("atim_integration_tune_log.json");

    // --- "Process" 1: tune on the real simulator, observe, save. ----------
    let (best_trace, best_latency, history_len) = {
        let session = Session::new(UpmemConfig::small());
        let mut observer = CountingObserver::default();
        let tuned = session
            .tune_observed(&def, &options, &Budget::unlimited(), &mut observer)
            .expect("valid options");
        assert!(tuned.best_latency_s().is_finite(), "tuning must succeed");
        // Exactly one on_trial callback per measured trial, one
        // on_round_start per measurement round, failures reported apart.
        assert_eq!(observer.trials, tuned.measured());
        assert_eq!(observer.failures, tuned.failed());
        assert!(observer.improvements >= 1);
        assert!(observer.rounds >= 1);

        tuned.to_log(options.seed).save(&path).expect("save log");
        (
            tuned.best_trace().clone(),
            tuned.best_latency_s(),
            tuned.history().len(),
        )
    };

    // --- "Process" 2: fresh session, reload the file, replay. -------------
    {
        let session = Session::new(UpmemConfig::small());
        let log = TuneLog::load(&path).expect("load log");
        assert_eq!(log.workload, def.name);
        assert_eq!(log.seed, options.seed);
        let replayed = session.replay(&def, &log);
        assert_eq!(
            replayed.best_trace(),
            &best_trace,
            "replay must reproduce the identical best trace"
        );
        assert_eq!(
            replayed.best_latency_s(),
            best_latency,
            "replay must reproduce the identical best latency (bit-exact)"
        );
        assert_eq!(replayed.history().len(), history_len);

        // The replayed module is immediately servable: compile and execute
        // its best schedule without any re-search.
        let module = session
            .compile(replayed.best_trace(), &def)
            .expect("replayed best compiles");
        let inputs = atim_workloads::data::generate_inputs(&def, 3);
        let run = session.execute(&module, &inputs).expect("execute");
        let expect = def.reference(&inputs);
        assert!(atim_workloads::data::results_match(
            run.output.as_ref().unwrap(),
            &expect,
            64
        ));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn warm_start_from_partial_log_matches_the_fresh_tune() {
    // The analytic backend keeps this test fast while exercising the exact
    // same session/log machinery as the simulator path.
    let hw = UpmemConfig::default();
    let def = ComputeDef::mtv("mtv", 4096, 4096);
    let options = TuningOptions {
        trials: 48,
        population: 32,
        measure_per_round: 8,
        ..TuningOptions::default()
    };
    let session = Session::builder().backend(AnalyticBackend::new(hw)).build();

    // Fresh, uninterrupted tune.
    let fresh = session.tune(&def, &options).expect("valid options");

    // Interrupted tune: only part of the budget, persisted to a log.
    let partial = session
        .tune_observed(&def, &options, &Budget::trials(16), &mut NullObserver)
        .expect("valid options");
    assert!(
        partial.measured() < fresh.measured(),
        "partial must stop early"
    );
    let path = std::env::temp_dir().join("atim_integration_warm_start_log.json");
    partial.to_log(options.seed).save(&path).expect("save log");

    // Warm start from the reloaded partial log with the remaining budget:
    // the resumed search must reproduce the fresh-tune result exactly.
    let log = TuneLog::load(&path).expect("load log");
    std::fs::remove_file(&path).ok();
    let resumed = session
        .tune_warm(
            &def,
            &options,
            &log,
            &Budget::unlimited(),
            &mut NullObserver,
        )
        .expect("valid options");
    assert_eq!(resumed.best_trace(), fresh.best_trace());
    assert_eq!(resumed.best_latency_s(), fresh.best_latency_s());
    assert_eq!(resumed.history(), fresh.history());
    assert_eq!(resumed.measured(), fresh.measured());
}

#[test]
fn streamed_logs_replay_and_interrupted_streams_resume() {
    use atim_autotune::StreamingTuneLog;

    let hw = UpmemConfig::default();
    let def = ComputeDef::mtv("mtv", 2048, 2048);
    let options = TuningOptions {
        trials: 32,
        population: 24,
        measure_per_round: 8,
        ..TuningOptions::default()
    };
    let session = Session::builder().backend(AnalyticBackend::new(hw)).build();
    let path = std::env::temp_dir().join("atim_integration_stream_log.jsonl");

    // --- "Process" 1: tune while streaming every trial to disk. -----------
    let mut stream = StreamingTuneLog::create(&path, &def.name, options.seed).expect("create");
    let fresh = session
        .tune_observed(&def, &options, &Budget::unlimited(), &mut stream)
        .expect("valid options");
    assert_eq!(stream.recorded(), 0, "on_finish hands the writer off");

    // --- "Process" 2: the streamed file replays like a saved document. ----
    let log = TuneLog::load(&path).expect("load streamed log");
    assert!(log.complete, "finished streams carry the summary line");
    assert_eq!(log.len(), fresh.measured());
    let replayed = session.replay(&def, &log);
    assert_eq!(replayed.best_trace(), fresh.best_trace());
    assert_eq!(replayed.best_latency_s(), fresh.best_latency_s());
    assert_eq!(replayed.history(), fresh.history());

    // --- "Process" 3: simulate a crash by dropping the tail of the file ---
    // (the summary line and the last record), then resume.
    let text = std::fs::read_to_string(&path).expect("read");
    let kept: Vec<&str> = text.lines().collect();
    let truncated = kept[..kept.len() - 2].join("\n");
    std::fs::write(&path, &truncated).expect("write truncated");
    let partial = TuneLog::load(&path).expect("load truncated log");
    std::fs::remove_file(&path).ok();
    assert!(!partial.complete, "crashed streams load as incomplete");
    assert_eq!(
        partial.len(),
        fresh.measured() - 1,
        "one record lost at most"
    );
    let resumed = session
        .tune_warm(
            &def,
            &options,
            &partial,
            &Budget::unlimited(),
            &mut NullObserver,
        )
        .expect("valid options");
    assert_eq!(resumed.best_trace(), fresh.best_trace());
    assert_eq!(resumed.history(), fresh.history());
}

#[test]
fn wall_clock_budgets_stop_long_searches() {
    let session = Session::builder()
        .backend(AnalyticBackend::new(UpmemConfig::default()))
        .build();
    let def = ComputeDef::mtv("mtv", 4096, 4096);
    let options = TuningOptions {
        trials: 1_000_000,
        population: 32,
        measure_per_round: 8,
        ..TuningOptions::default()
    };
    let budget = Budget::wall_clock(std::time::Duration::from_millis(100));
    let tuned = session
        .tune_observed(&def, &options, &budget, &mut NullObserver)
        .expect("valid options");
    assert!(tuned.measured() > 0, "some trials must land before the cap");
    assert!(
        tuned.measured() < 1_000_000,
        "the wall-clock budget must stop the search"
    );
}
