//! Chaos suite for the self-healing fleet: every recovery path —
//! scheduled worker deaths, silent stalls, torn frames, handshake skew,
//! poison-job quarantine, and a SIGKILLed worker restarted on the same
//! port — must leave tuning results **bit-identical** to the sequential
//! in-process path, with the healing pinned by [`FleetStats`] counters.
//!
//! Faults are injected through the deterministic `ATIM_FLEET_FAULTS`
//! plan ([`FaultPlan`](atim_core::fleet::FaultPlan)), set only in the
//! environment of the worker child processes (re-invocations of this
//! test binary, the same `current_exe` trick as `fleet.rs`).

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use atim_autotune::{ScheduleConfig, TuningOptions};
use atim_core::fleet::{BackendSpec, FleetBackend, FleetOptions, FAULTS_ENV};
use atim_core::{Backend, Session};
use atim_sim::UpmemConfig;
use atim_tir::compute::ComputeDef;

/// Fleet address handoff for `--connect`-style children (spawn mode).
const CONNECT_ENV: &str = "ATIM_CHAOS_CONNECT";
/// Listen address handoff for `--listen`-style children (attach mode).
const LISTEN_ENV: &str = "ATIM_CHAOS_LISTEN";

/// Re-invoked child entry point; a no-op in the parent run.  Faulty exits
/// (a torn frame ends the connection with an error) are deliberate, so
/// errors are not propagated to the harness.
#[test]
fn chaos_child() {
    if let Ok(addr) = std::env::var(CONNECT_ENV) {
        let _ = atim_core::fleet::worker_connect(&addr);
    } else if let Ok(addr) = std::env::var(LISTEN_ENV) {
        let _ = atim_core::fleet::worker_listen(&addr);
    }
}

fn reinvoke_command() -> (std::path::PathBuf, Vec<String>) {
    let exe = std::env::current_exe().expect("current_exe");
    let args = vec![
        "chaos_child".to_string(),
        "--exact".to_string(),
        "--nocapture".to_string(),
    ];
    (exe, args)
}

/// Spawn-mode options with a fault plan injected into the workers'
/// environment (and only theirs), plus heartbeat/backoff settings tight
/// enough to keep stall detection and reconnect cycles test-fast.
fn chaos_options(faults: &str) -> FleetOptions {
    FleetOptions {
        command: Some(reinvoke_command()),
        envs: vec![
            (CONNECT_ENV.to_string(), "{addr}".to_string()),
            (FAULTS_ENV.to_string(), faults.to_string()),
        ],
        job_timeout: Duration::from_secs(60),
        connect_timeout: Duration::from_secs(30),
        heartbeat_interval: Duration::from_millis(50),
        heartbeat_window: Duration::from_millis(300),
        reconnect_backoff: Duration::from_millis(20),
        reconnect_backoff_cap: Duration::from_millis(100),
        ..FleetOptions::default()
    }
}

fn options() -> TuningOptions {
    TuningOptions {
        trials: 16,
        population: 16,
        measure_per_round: 8,
        ..TuningOptions::default()
    }
}

fn spec() -> BackendSpec {
    BackendSpec::analytic(UpmemConfig::small())
}

fn sequential_session() -> Session {
    Session::builder()
        .backend_arc(spec().build().into())
        .build()
}

/// A child process killed (and reaped) when the test ends, pass or fail.
struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Starts a `--listen`-mode worker child on `addr`, optionally with a
/// fault plan in its environment.
fn spawn_listen_child(addr: SocketAddr, faults: Option<&str>) -> KillOnDrop {
    let (exe, args) = reinvoke_command();
    let mut command = Command::new(exe);
    command
        .args(args)
        .env(LISTEN_ENV, addr.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    if let Some(faults) = faults {
        command.env(FAULTS_ENV, faults);
    }
    KillOnDrop(command.spawn().expect("spawn listen child"))
}

/// Reserves a localhost port by binding and immediately releasing it.
fn free_port_addr() -> SocketAddr {
    TcpListener::bind("127.0.0.1:0")
        .expect("reserve port")
        .local_addr()
        .expect("local addr")
}

/// Waits until something accepts connections on `addr`.  The probe
/// connection closes without sending a configure frame, which the worker
/// treats as a clean disconnect — no handshake (or fault budget) is
/// consumed.
fn wait_listening(addr: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
            Ok(_) => return,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => panic!("worker at {addr} never started listening: {e}"),
        }
    }
}

/// The chaos matrix: workers that die on schedule, stall silently
/// (caught by the heartbeat window, not the job deadline), or tear a
/// frame mid-write.  Every plan must heal through respawn +
/// re-handshake, requeue the faulted jobs, and change nothing about the
/// tuning result.  Respawned processes restart their fault counters, so
/// each replacement worker faults again — several full recovery cycles
/// per plan.
#[test]
fn fault_matrix_tuning_stays_bit_identical_to_sequential() {
    let def = ComputeDef::mtv("mtv", 96, 64);
    let slow = sequential_session()
        .tune(&def, &options())
        .expect("sequential tune");
    for faults in ["die:2", "stall:1", "torn:2"] {
        let fleet =
            Arc::new(FleetBackend::spawn(spec(), 2, chaos_options(faults)).expect("fleet spawn"));
        let session = Session::builder().backend_arc(fleet.clone()).build();
        let fast = session
            .tune(&def, &options())
            .unwrap_or_else(|e| panic!("{faults}: fleet tune failed: {e}"));
        assert_eq!(
            fast.result().best,
            slow.result().best,
            "{faults}: best must be bit-identical"
        );
        assert_eq!(
            fast.result().history,
            slow.result().history,
            "{faults}: trial history must be bit-identical"
        );
        let stats = fleet.stats();
        assert!(
            stats.jobs_requeued >= 1,
            "{faults}: the faulted job must have been re-queued, stats: {stats:?}"
        );
        assert!(
            stats.reconnects >= 1,
            "{faults}: at least one worker must have reconnected and \
             re-handshaken, stats: {stats:?}"
        );
    }
}

/// A poison job — one that kills every worker it reaches — is pulled out
/// of the requeue loop after `poison_threshold` worker deaths and
/// measured in-process, so the batch completes with ground-truth
/// outcomes instead of grinding the fleet into retirement.
#[test]
fn a_poison_job_is_quarantined_after_killing_k_workers() {
    let def = ComputeDef::mtv("mtv", 64, 48);
    // Job ids are batch slots: `poison:1` makes every worker die the
    // moment it receives slot 1.
    let mut fleet_options = chaos_options("poison:1");
    fleet_options.poison_threshold = 2;
    let fleet = FleetBackend::spawn(spec(), 2, fleet_options).expect("fleet spawn");

    let base = ScheduleConfig::default_for(&def, fleet.hardware());
    let batch: Vec<_> = (0..4)
        .map(|i| {
            ScheduleConfig {
                tasklets: 1 + i,
                ..base.clone()
            }
            .to_trace(&def)
        })
        .collect();
    let outcomes = fleet.measure_batch(&batch, &def);
    let expected = spec().build().measure_batch(&batch, &def);
    assert_eq!(
        outcomes, expected,
        "quarantine must fall back to ground truth"
    );

    let stats = fleet.stats();
    assert_eq!(
        stats.jobs_quarantined, 1,
        "the poison job must have been quarantined, stats: {stats:?}"
    );
    assert_eq!(
        stats.jobs_requeued, 1,
        "a poison job is re-queued at most threshold - 1 times, stats: {stats:?}"
    );
    assert!(
        stats.reconnects >= 1,
        "the killed workers must have been respawned, stats: {stats:?}"
    );
}

/// In spawn mode a handshake-skew plan can never heal — every respawned
/// process re-corrupts its first handshake — so the fleet counts the
/// skew, retires the workers, and degrades to in-process measurement
/// without corrupting a single result.
#[test]
fn handshake_skew_degrades_to_in_process_without_corrupting_results() {
    let def = ComputeDef::mtv("mtv", 96, 64);
    let mut fleet_options = chaos_options("skew-fingerprint:1");
    fleet_options.reconnect_attempts = 1;
    let fleet = Arc::new(FleetBackend::spawn(spec(), 2, fleet_options).expect("fleet spawn"));
    let session = Session::builder().backend_arc(fleet.clone()).build();
    let fast = session.tune(&def, &options()).expect("degraded tune");
    let slow = sequential_session()
        .tune(&def, &options())
        .expect("sequential tune");
    assert_eq!(fast.result().best, slow.result().best);
    assert_eq!(fast.result().history, slow.result().history);

    let stats = fleet.stats();
    assert!(
        stats.fingerprint_skews >= 2,
        "every handshake attempt must be counted as skew, stats: {stats:?}"
    );
    assert_eq!(
        stats.workers_retired, 2,
        "unhealable workers must retire, stats: {stats:?}"
    );
    assert_eq!(stats.workers_alive, 0, "stats: {stats:?}");
}

/// Attach-mode skew *can* heal: the worker process survives its own
/// corrupted handshake, so the supervisor's redial gets a clean one.
/// Covers both identity axes: backend fingerprint and build version.
#[test]
fn attached_worker_handshake_skew_heals_on_reconnect() {
    for (faults, check) in [
        (
            "skew-fingerprint:1",
            (|s: &atim_core::FleetStats| s.fingerprint_skews)
                as fn(&atim_core::FleetStats) -> usize,
        ),
        ("skew-build:1", |s: &atim_core::FleetStats| s.version_skews),
    ] {
        let def = ComputeDef::mtv("mtv", 64, 48);
        let addr = free_port_addr();
        let _child = spawn_listen_child(addr, Some(faults));
        wait_listening(addr);

        let mut fleet_options = chaos_options(faults);
        fleet_options.command = None;
        fleet_options.envs.clear();
        fleet_options.lenient_attach = true;
        let fleet = FleetBackend::attach(spec(), &[addr], fleet_options).expect("lenient attach");
        let stats = fleet.stats();
        assert_eq!(
            stats.workers_alive, 0,
            "{faults}: the skewed handshake must be rejected, stats: {stats:?}"
        );
        assert_eq!(check(&stats), 1, "{faults}: stats: {stats:?}");

        let base = ScheduleConfig::default_for(&def, fleet.hardware());
        let batch: Vec<_> = (0..3)
            .map(|i| {
                ScheduleConfig {
                    tasklets: 1 + i,
                    ..base.clone()
                }
                .to_trace(&def)
            })
            .collect();
        let outcomes = fleet.measure_batch(&batch, &def);
        assert_eq!(
            outcomes,
            spec().build().measure_batch(&batch, &def),
            "{faults}: healed measurement must stay bit-identical"
        );

        let stats = fleet.stats();
        assert!(
            stats.reconnects >= 1,
            "{faults}: the clean re-handshake must have healed the worker, \
             stats: {stats:?}"
        );
        assert_eq!(stats.workers_alive, 1, "{faults}: stats: {stats:?}");
        assert_eq!(
            check(&stats),
            1,
            "{faults}: the healed handshake must not re-count, stats: {stats:?}"
        );
    }
}

/// The supervised-restart scenario: an attached worker is SIGKILLed, a
/// replacement is started on the *same* port, and the fleet's next round
/// reconnects and re-handshakes to it.  The replacement's bind races the
/// dead worker's lingering socket — `worker_listen` retries
/// `AddrInUse`, and the fleet's first write to the dead connection
/// resets that socket — so the handoff needs no cooperation from the
/// dying process.
#[test]
fn a_sigkilled_attached_worker_restarted_on_the_same_port_rehandshakes() {
    let def = ComputeDef::mtv("mtv", 64, 48);
    let addr = free_port_addr();
    let mut child = spawn_listen_child(addr, None);
    wait_listening(addr);

    let mut fleet_options = chaos_options("");
    fleet_options.command = None;
    fleet_options.envs.clear();
    fleet_options.reconnect_attempts = 8;
    let fleet = FleetBackend::attach(spec(), &[addr], fleet_options).expect("attach");

    let base = ScheduleConfig::default_for(&def, fleet.hardware());
    let batch: Vec<_> = (0..4)
        .map(|i| {
            ScheduleConfig {
                tasklets: 1 + i,
                ..base.clone()
            }
            .to_trace(&def)
        })
        .collect();
    let expected = spec().build().measure_batch(&batch, &def);
    assert_eq!(fleet.measure_batch(&batch, &def), expected);
    assert_eq!(fleet.stats().reconnects, 0);

    // SIGKILL the worker, then restart it on the same port.
    child.0.kill().expect("kill worker");
    let _ = child.0.wait();
    let _replacement = spawn_listen_child(addr, None);

    assert_eq!(
        fleet.measure_batch(&batch, &def),
        expected,
        "results must be bit-identical across the restart"
    );
    let stats = fleet.stats();
    assert!(
        stats.reconnects >= 1,
        "the fleet must have re-handshaken with the replacement, stats: {stats:?}"
    );
    assert_eq!(
        stats.workers_alive, 1,
        "the replacement must be healthy, stats: {stats:?}"
    );
    assert_eq!(stats.workers_retired, 0, "stats: {stats:?}");
}
