//! Workspace-wiring smoke test: the `Session` tune → compile → execute path
//! advertised in the `atim-core` crate docs must run, on a tiny MTV
//! workload, using only the public cross-crate API.  This guards the
//! dependency edges of the Cargo workspace (core → tir/passes/sim/
//! autotune/workloads) rather than numerical behaviour, which
//! `end_to_end.rs` covers in depth.  The deprecated `Atim` shim is smoked
//! alongside so the legacy entry point cannot silently rot.

use atim_core::prelude::*;

#[test]
fn default_session_tunes_compiles_and_executes_a_tiny_mtv() {
    let session = Session::default();
    let def = ComputeDef::mtv("mtv", 32, 32);

    // Tune with the documented quick budget, then compile the winner.
    let tuned = session
        .tune(&def, &TuningOptions::quick())
        .expect("quick options are valid");
    assert!(
        tuned.best_latency_s().is_finite(),
        "quick tuning found no valid schedule"
    );
    let module = session
        .compile(tuned.best_config(), &def)
        .expect("best schedule compiles");

    // Execute with real data and check against the reference result.
    let inputs = atim_workloads::data::generate_inputs(&def, 1);
    let run = session
        .execute(&module, &inputs)
        .expect("execution succeeds");
    assert!(run.report.total_ms() > 0.0, "execution reports zero time");
    let expect = def.reference(&inputs);
    let got = run.output.as_ref().expect("functional output present");
    assert_eq!(got.len(), expect.len());
    for (g, e) in got.iter().zip(&expect) {
        assert!((g - e).abs() < 1e-2, "output diverges: {g} vs {e}");
    }
}

#[test]
#[allow(deprecated)]
fn deprecated_atim_shim_still_wires_the_legacy_flow() {
    let atim = Atim::default();
    let def = ComputeDef::mtv("mtv", 32, 32);
    let tuned = atim.autotune(&def, &TuningOptions::quick());
    assert!(tuned.best_latency_s().is_finite());
    let module = atim
        .compile_config(tuned.best_config(), &def)
        .expect("best schedule compiles");
    let inputs = atim_workloads::data::generate_inputs(&def, 1);
    let run = atim.execute(&module, &inputs).expect("execution succeeds");
    assert!(run.report.total_ms() > 0.0);
}
