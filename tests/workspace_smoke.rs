//! Workspace-wiring smoke test: the `Session` tune → compile → execute path
//! advertised in the `atim-core` crate docs must run, on a tiny MTV
//! workload, using only the public cross-crate API.  This guards the
//! dependency edges of the Cargo workspace (core → tir/passes/sim/
//! autotune/workloads) rather than numerical behaviour, which
//! `end_to_end.rs` covers in depth.

use atim_core::prelude::*;

#[test]
fn default_session_tunes_compiles_and_executes_a_tiny_mtv() {
    let session = Session::default();
    let def = ComputeDef::mtv("mtv", 32, 32);

    // Tune with the documented quick budget, then compile the winning trace.
    let tuned = session
        .tune(&def, &TuningOptions::quick())
        .expect("quick options are valid");
    assert!(
        tuned.best_latency_s().is_finite(),
        "quick tuning found no valid schedule"
    );
    let module = session
        .compile(tuned.best_trace(), &def)
        .expect("best schedule compiles");

    // Execute with real data and check against the reference result.
    let inputs = atim_workloads::data::generate_inputs(&def, 1);
    let run = session
        .execute(&module, &inputs)
        .expect("execution succeeds");
    assert!(run.report.total_ms() > 0.0, "execution reports zero time");
    let expect = def.reference(&inputs);
    let got = run.output.as_ref().expect("functional output present");
    assert_eq!(got.len(), expect.len());
    for (g, e) in got.iter().zip(&expect) {
        assert!((g - e).abs() < 1e-2, "output diverges: {g} vs {e}");
    }
}

#[test]
fn knob_vector_configs_still_compile_through_the_conversion_layer() {
    // `ScheduleConfig` survives as the conversion layer for fixed baseline
    // configurations: the knob view of the tuned trace round-trips through
    // `compile_config` to the same DPU grid.
    let session = Session::default();
    let def = ComputeDef::mtv("mtv", 32, 32);
    let tuned = session
        .tune(&def, &TuningOptions::quick())
        .expect("quick options are valid");
    let via_trace = session
        .compile(tuned.best_trace(), &def)
        .expect("best trace compiles");
    let via_config = session
        .compile_config(&tuned.best_config(), &def)
        .expect("best knob vector compiles");
    assert_eq!(via_trace.num_dpus(), via_config.num_dpus());
    let inputs = atim_workloads::data::generate_inputs(&def, 1);
    let run = session
        .execute(&via_config, &inputs)
        .expect("execution succeeds");
    assert!(run.report.total_ms() > 0.0);
}
