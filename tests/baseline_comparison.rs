//! Integration tests of the headline comparisons: the *shape* of the paper's
//! results must hold on the simulator (who wins, roughly by how much), even
//! though absolute numbers differ from the authors' testbed.

use atim_bench::{atim_report, cpu_report, prim_report, prim_search_report, simplepim_report};
use atim_core::prelude::*;

#[test]
fn atim_beats_prim_on_large_gemv() {
    // §7.1: MTV/GEMV is where 2-D tiling + hierarchical reduction pay off
    // most (up to 6.18x in the paper).  Require at least a 1.3x win here.
    let session = Session::new(UpmemConfig::default());
    let w = Workload::new(WorkloadKind::Gemv, vec![4096, 4096]);
    let prim = prim_report(&session, &w).expect("prim").total_ms();
    let prim_search = prim_search_report(&session, &w)
        .expect("prim+search")
        .total_ms();
    let (cfg, atim_r) = atim_report(&session, &w, 64);
    let atim_ms = atim_r.total_ms();
    assert!(
        atim_ms < prim / 1.3,
        "ATiM ({atim_ms} ms) must clearly beat PrIM ({prim} ms); best cfg {cfg:?}"
    );
    assert!(
        atim_ms <= prim_search * 1.05,
        "ATiM ({atim_ms} ms) must not lose to PrIM+search ({prim_search} ms)"
    );
}

#[test]
fn pim_beats_cpu_on_large_tensors_but_not_tiny_ones() {
    // §7.1 "UPMEM vs CPU": PIM wins for large tensors, CPU wins for small
    // ones where transfer/launch overheads dominate.  The paper's crossover
    // is at 64 MB; in the simulator the per-launch vector broadcast is not
    // modelled as a hardware broadcast, which pushes the crossover between
    // the 64 MB and 256 MB presets, so the large case here uses 256 MB.
    let session = Session::new(UpmemConfig::default());
    let big = Workload::new(WorkloadKind::Mtv, vec![8192, 8192]);
    let (_, big_pim) = atim_report(&session, &big, 48);
    let big_cpu = cpu_report(&big, session.hardware()).total_ms();
    assert!(
        big_pim.total_ms() < big_cpu,
        "256 MB MTV: PIM ({} ms) should beat CPU ({} ms)",
        big_pim.total_ms(),
        big_cpu
    );

    let tiny = Workload::new(WorkloadKind::Mtv, vec![256, 256]);
    let (_, tiny_pim) = atim_report(&session, &tiny, 24);
    let tiny_cpu = cpu_report(&tiny, session.hardware()).total_ms();
    assert!(
        tiny_cpu < tiny_pim.total_ms(),
        "256 KB MTV: CPU ({tiny_cpu} ms) should beat PIM ({} ms) because transfers dominate",
        tiny_pim.total_ms()
    );
}

#[test]
fn simplepim_loses_to_prim_and_atim_on_va() {
    // §7.1: SimplePIM's whole-tensor D2H copies cost it 4-11x on VA.
    let session = Session::new(UpmemConfig::default());
    let w = Workload::new(WorkloadKind::Va, vec![1 << 24]);
    let prim = prim_report(&session, &w).expect("prim").total_ms();
    let simple = simplepim_report(&session, &w)
        .expect("simplepim")
        .total_ms();
    let (_, atim_r) = atim_report(&session, &w, 32);
    assert!(
        simple > prim,
        "SimplePIM ({simple} ms) must be slower than PrIM ({prim} ms)"
    );
    assert!(simple > atim_r.total_ms());
}

#[test]
fn hierarchical_reduction_wins_when_the_reduction_dimension_dominates() {
    // §7.2: for MTV, tiling the reduction dimension helps more when K >> M
    // (the paper contrasts 16384x4096 with 4096x16384).
    let session = Session::new(UpmemConfig::default());
    let wide = Workload::new(WorkloadKind::Mtv, vec![1024, 16384]);
    let tall = Workload::new(WorkloadKind::Mtv, vec![16384, 1024]);
    let (cfg_wide, _) = atim_report(&session, &wide, 64);
    let (_cfg_tall, _) = atim_report(&session, &tall, 64);
    assert!(
        cfg_wide.uses_rfactor(),
        "K=16384 with only 1024 rows should pick hierarchical reduction, got {cfg_wide:?}"
    );
}
