//! Replay-equivalence pin: for every paper workload, resolving an
//! already-tuned key from the `ScheduleCache` on a *fresh* `Session` is
//! bit-identical — same trace, same reported latency — to replaying the
//! original `TuneLog`, and performs **zero** candidate measurements.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use atim_autotune::log::TuneLog;
use atim_autotune::tuner::{Cancellation, MeasureOutcome};
use atim_autotune::{Trace, TuningOptions};
use atim_core::{AnalyticBackend, Backend, CompileOptions, CompiledModule, ExecutedRun, Session};
use atim_sim::{ExecutionReport, UpmemConfig};
use atim_tir::compute::ComputeDef;
use atim_tir::error::Result as TirResult;
use atim_workloads::{Workload, WorkloadKind};

/// Delegates to the analytic backend while counting every call that could
/// measure a candidate — the proof that the cache-hit path touches the
/// backend zero times.
struct CountingBackend {
    inner: AnalyticBackend,
    measurements: AtomicUsize,
}

impl CountingBackend {
    fn new() -> Arc<Self> {
        Arc::new(CountingBackend {
            inner: AnalyticBackend::new(UpmemConfig::default()),
            measurements: AtomicUsize::new(0),
        })
    }

    fn measurements(&self) -> usize {
        self.measurements.load(Ordering::SeqCst)
    }
}

impl Backend for CountingBackend {
    fn name(&self) -> &str {
        self.inner.name() // same fingerprint as the session that tuned
    }
    fn hardware(&self) -> &UpmemConfig {
        self.inner.hardware()
    }
    fn compile_options(&self) -> CompileOptions {
        self.inner.compile_options()
    }
    fn time(&self, module: &CompiledModule) -> TirResult<ExecutionReport> {
        self.measurements.fetch_add(1, Ordering::SeqCst);
        self.inner.time(module)
    }
    fn execute(&self, module: &CompiledModule, inputs: &[Vec<f32>]) -> TirResult<ExecutedRun> {
        self.inner.execute(module, inputs)
    }
    fn measure(&self, trace: &Trace, def: &ComputeDef) -> Option<f64> {
        self.measurements.fetch_add(1, Ordering::SeqCst);
        self.inner.measure(trace, def)
    }
    fn measure_batch(&self, traces: &[Trace], def: &ComputeDef) -> Vec<Option<f64>> {
        self.measurements.fetch_add(traces.len(), Ordering::SeqCst);
        self.inner.measure_batch(traces, def)
    }
    fn measure_batch_cancellable(
        &self,
        traces: &[Trace],
        def: &ComputeDef,
        cancel: &Cancellation,
    ) -> Vec<MeasureOutcome> {
        self.measurements.fetch_add(traces.len(), Ordering::SeqCst);
        self.inner.measure_batch_cancellable(traces, def, cancel)
    }
}

/// One modest shape per workload kind (the analytic backend is closed-form,
/// so the exact sizes only pick distinct cache keys).
fn shape_for(kind: WorkloadKind) -> Vec<i64> {
    match kind.rank() {
        1 => vec![1 << 20],
        2 => vec![1024, 512],
        3 => vec![32, 64, 512],
        _ => vec![8, 32, 64, 128],
    }
}

#[test]
fn cache_resolution_is_bit_identical_to_tune_log_replay_per_workload() {
    let path = std::env::temp_dir().join("atim_replay_equivalence_test.jsonl");
    let _ = std::fs::remove_file(&path);
    let options = TuningOptions::quick();

    for kind in WorkloadKind::ALL {
        let def = Workload::new(kind, shape_for(kind))
            .try_compute_def()
            .unwrap();

        // Tune once, persisting both artifacts a fleet would ship: the
        // schedule cache entry and the full tune log.
        let tuned = Session::builder()
            .backend(AnalyticBackend::new(UpmemConfig::default()))
            .schedule_cache(&path)
            .build()
            .tune(&def, &options)
            .unwrap();
        assert!(tuned.measured() > 0, "{kind}: the search must measure");
        let log = TuneLog::new(&def.name, options.seed, tuned.result().clone());
        let log = TuneLog::from_json_str(&log.to_json_string()).unwrap();

        // A fresh session resolves the cache with zero backend activity.
        let backend = CountingBackend::new();
        let fresh = Session::builder()
            .backend_arc(backend.clone())
            .schedule_cache(&path)
            .build();
        let cached = fresh
            .cached(&def)
            .unwrap_or_else(|| panic!("{kind}: tuned key must resolve from the shipped cache"));
        assert_eq!(
            backend.measurements(),
            0,
            "{kind}: cache resolution must perform zero measurements"
        );
        assert_eq!(cached.measured(), 0);
        assert!(cached.history().is_empty());

        // Bit-identical to direct log replay: same trace, same latency.
        let replayed = fresh.replay(&def, &log);
        assert_eq!(
            cached.best_trace().decisions().collect::<Vec<_>>(),
            replayed.best_trace().decisions().collect::<Vec<_>>(),
            "{kind}: cached trace must match the replayed one"
        );
        assert_eq!(cached.best_config(), replayed.best_config());
        assert_eq!(
            cached.best_latency_s().to_bits(),
            replayed.best_latency_s().to_bits(),
            "{kind}: latency must be bit-identical"
        );
        // And to the original tuning run.
        assert_eq!(cached.best_config(), tuned.best_config());
        assert_eq!(
            cached.best_latency_s().to_bits(),
            tuned.best_latency_s().to_bits()
        );

        // tune_cached on the fresh session is the same pure hit.
        let via_tune = fresh.tune_cached(&def, &options).unwrap();
        assert_eq!(backend.measurements(), 0, "{kind}: tune_cached re-measured");
        assert_eq!(
            via_tune.best_latency_s().to_bits(),
            cached.best_latency_s().to_bits()
        );
    }

    let _ = std::fs::remove_file(&path);
}

/// The same pin end-to-end on the *simulated* machine: real measurements
/// during the tune, zero afterwards, identical module from cache and log.
#[test]
fn cache_resolution_matches_replay_on_the_simulator() {
    let path = std::env::temp_dir().join("atim_replay_equivalence_sim_test.jsonl");
    let _ = std::fs::remove_file(&path);
    let def = ComputeDef::mtv("mtv", 120, 96);
    let options = TuningOptions {
        trials: 8,
        population: 8,
        measure_per_round: 4,
        ..TuningOptions::default()
    };

    let tuned = Session::builder()
        .hardware(UpmemConfig::small())
        .schedule_cache(&path)
        .build()
        .tune(&def, &options)
        .unwrap();
    let log = TuneLog::new(&def.name, options.seed, tuned.result().clone());

    let fresh = Session::builder()
        .hardware(UpmemConfig::small())
        .schedule_cache(&path)
        .build();
    let cached = fresh.cached(&def).expect("sim-tuned key must hit");
    let replayed = fresh.replay(&def, &log);
    assert_eq!(cached.measured(), 0);
    assert_eq!(cached.best_config(), replayed.best_config());
    assert_eq!(
        cached.best_latency_s().to_bits(),
        replayed.best_latency_s().to_bits()
    );

    // The cached module compiles and runs to the same reference result.
    let module = fresh.compile(cached.best_trace(), &def).unwrap();
    let report = fresh.time(&module).unwrap();
    assert!(report.total_s() > 0.0);

    let _ = std::fs::remove_file(&path);
}
