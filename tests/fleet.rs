//! Measurement-fleet integration: distributed tuning must be
//! **bit-identical** to the sequential in-process path, and must survive
//! workers being SIGKILLed mid-round without losing or duplicating a
//! single trial.
//!
//! Worker processes are this test binary re-invoked with
//! `ATIM_FLEET_TEST_CHILD` set (the same `current_exe` trick as
//! `schedule_cache_stress.rs`), so the suite needs no pre-built
//! `atim-worker` binary.

use std::sync::Arc;
use std::time::{Duration, Instant};

use atim_autotune::{CancelToken, Cancellation, MeasureOutcome, ScheduleConfig, TuningOptions};
use atim_core::fleet::{BackendSpec, FleetBackend, FleetOptions};
use atim_core::{Backend, Session};
use atim_sim::UpmemConfig;
use atim_tir::compute::ComputeDef;
use atim_workloads::{Workload, WorkloadKind};

/// Address handoff to re-invoked children; its presence turns the
/// `fleet_child_worker` "test" into a worker process.
const CHILD_ENV: &str = "ATIM_FLEET_TEST_CHILD";

/// Re-invoked child entry point: serve fleet jobs until the fleet hangs
/// up.  A no-op in the parent test run (the variable is unset).
#[test]
fn fleet_child_worker() {
    let Ok(addr) = std::env::var(CHILD_ENV) else {
        return;
    };
    atim_core::fleet::worker_connect(&addr).expect("child worker failed");
}

/// Fleet options that spawn workers by re-invoking this test binary.
fn reinvoke_options(delay_ms: Option<u64>) -> FleetOptions {
    let exe = std::env::current_exe().expect("current_exe");
    let args = vec![
        "fleet_child_worker".to_string(),
        "--exact".to_string(),
        "--nocapture".to_string(),
    ];
    let mut envs = vec![(CHILD_ENV.to_string(), "{addr}".to_string())];
    if let Some(ms) = delay_ms {
        envs.push(("ATIM_WORKER_DELAY_MS".to_string(), ms.to_string()));
    }
    FleetOptions {
        command: Some((exe, args)),
        envs,
        job_timeout: Duration::from_secs(60),
        connect_timeout: Duration::from_secs(30),
        // Keep reconnect cycles snappy under test.
        reconnect_backoff: Duration::from_millis(20),
        reconnect_backoff_cap: Duration::from_millis(100),
        ..FleetOptions::default()
    }
}

fn spawn_fleet(workers: usize, delay_ms: Option<u64>) -> FleetBackend {
    let fleet = FleetBackend::spawn(
        BackendSpec::analytic(UpmemConfig::small()),
        workers,
        reinvoke_options(delay_ms),
    )
    .expect("fleet spawn");
    assert_eq!(
        fleet.workers_alive(),
        workers,
        "every spawned worker must pass the configure handshake"
    );
    fleet
}

fn paper_defs() -> Vec<ComputeDef> {
    [
        (WorkloadKind::Va, vec![4096]),
        (WorkloadKind::Red, vec![4096]),
        (WorkloadKind::Mtv, vec![96, 64]),
        (WorkloadKind::Ttv, vec![16, 16, 32]),
        (WorkloadKind::Mmtv, vec![8, 16, 32]),
        (WorkloadKind::Geva, vec![2048]),
        (WorkloadKind::Gemv, vec![96, 64]),
    ]
    .into_iter()
    .map(|(kind, shape)| Workload::new(kind, shape).compute_def())
    .collect()
}

fn options() -> TuningOptions {
    TuningOptions {
        trials: 16,
        population: 16,
        measure_per_round: 8,
        ..TuningOptions::default()
    }
}

fn assert_identical_results(
    fleet_session: &Session,
    sequential: &Session,
    def: &ComputeDef,
    label: &str,
) {
    let fast = fleet_session.tune(def, &options()).expect("fleet tune");
    let slow = sequential.tune(def, &options()).expect("sequential tune");
    let (fr, sr) = (fast.result(), slow.result());
    assert_eq!(
        fr.best, sr.best,
        "{label}/{}: best must be bit-identical",
        def.name
    );
    assert_eq!(
        fr.history, sr.history,
        "{label}/{}: trial history must be bit-identical",
        def.name
    );
    assert_eq!(fr.measured, sr.measured, "{label}/{}", def.name);
    assert_eq!(fr.failed, sr.failed, "{label}/{}", def.name);
    assert_eq!(fr.rejected, sr.rejected, "{label}/{}", def.name);
    for (i, record) in fr.history.iter().enumerate() {
        assert_eq!(
            record.trial, i,
            "{label}/{}: history must stay dense",
            def.name
        );
    }
}

fn analytic_session() -> Session {
    Session::builder()
        .backend_arc(BackendSpec::analytic(UpmemConfig::small()).build().into())
        .build()
}

/// The headline regression bar: fixed-seed tuning through 1-, 2- and
/// 4-worker fleets produces bit-identical `TuningResult`s to the
/// sequential in-process path, for every paper workload kind.
#[test]
fn fleet_tuning_is_bit_identical_to_sequential_for_every_paper_workload() {
    let sequential = analytic_session();
    for workers in [1usize, 2, 4] {
        let fleet = spawn_fleet(workers, None);
        let session = Session::builder().backend(fleet).build();
        for def in paper_defs() {
            assert_identical_results(&session, &sequential, &def, &format!("{workers}w"));
        }
    }
}

/// SIGKILLing a worker while jobs are in flight must neither lose nor
/// duplicate a trial: the dead worker's job is re-queued on a live worker
/// and the result stays bit-identical to sequential tuning.
#[test]
fn killing_a_worker_mid_round_loses_and_duplicates_nothing() {
    let def = ComputeDef::mtv("mtv", 96, 64);
    let fleet = Arc::new(spawn_fleet(3, Some(60)));
    let session = Session::builder().backend_arc(fleet.clone()).build();

    let killer = {
        let fleet = Arc::clone(&fleet);
        std::thread::spawn(move || {
            // Wait until the round is genuinely under way (workers hold
            // in-flight jobs), then kill one process mid-measurement.
            let deadline = Instant::now() + Duration::from_secs(30);
            while fleet.stats().jobs_in_flight < 2 {
                assert!(Instant::now() < deadline, "round never started");
                std::thread::sleep(Duration::from_millis(5));
            }
            std::thread::sleep(Duration::from_millis(30));
            assert!(fleet.kill_worker(2), "third worker must exist to kill");
        })
    };

    let tuned = session.tune(&def, &options()).expect("fleet tune");
    killer.join().expect("killer thread");

    let sequential = analytic_session();
    let slow = sequential.tune(&def, &options()).expect("sequential tune");
    assert_eq!(tuned.result().best, slow.result().best);
    assert_eq!(
        tuned.result().history,
        slow.result().history,
        "a worker kill must not change a single measurement"
    );
    for (i, record) in tuned.result().history.iter().enumerate() {
        assert_eq!(record.trial, i, "budget accounting must stay dense");
    }

    let stats = fleet.stats();
    assert!(
        stats.jobs_requeued >= 1,
        "the dead worker's in-flight job must have been re-queued, stats: {stats:?}"
    );
    // Self-healing: the supervisor respawns the killed worker and
    // re-handshakes, so the fleet ends the run back at full strength.
    assert!(
        stats.reconnects >= 1,
        "the killed worker must have been respawned and re-handshaken, stats: {stats:?}"
    );
    assert_eq!(
        stats.workers_alive, 3,
        "a healed fleet is back at full strength, stats: {stats:?}"
    );
}

/// With every worker dead and reconnection disabled the fleet degrades to
/// in-process measurement: the run still completes, still bit-identical
/// to sequential, and both workers end up retired.
#[test]
fn a_fleet_with_all_workers_dead_degrades_to_in_process() {
    let def = ComputeDef::mtv("mtv", 96, 64);
    let fleet = FleetBackend::spawn(
        BackendSpec::analytic(UpmemConfig::small()),
        2,
        FleetOptions {
            // A zero budget restores the pre-supervision semantics: the
            // first fault retires the worker instead of respawning it.
            reconnect_attempts: 0,
            ..reinvoke_options(None)
        },
    )
    .expect("fleet spawn");
    let fleet = Arc::new(fleet);
    fleet.kill_worker(0);
    fleet.kill_worker(1);
    let session = Session::builder().backend_arc(fleet.clone()).build();
    let tuned = session.tune(&def, &options()).expect("degraded tune");

    let sequential = analytic_session();
    let slow = sequential.tune(&def, &options()).expect("sequential tune");
    assert_eq!(tuned.result().best, slow.result().best);
    assert_eq!(tuned.result().history, slow.result().history);
    let stats = fleet.stats();
    assert_eq!(
        stats.workers_alive, 0,
        "both deaths must be detected once dispatch touches the sockets"
    );
    assert_eq!(
        stats.workers_retired, 2,
        "a zero reconnect budget retires workers on their first fault"
    );
}

/// The fleet composes with `CancelToken`: a fired token skips candidates
/// instead of dispatching them.
#[test]
fn fleet_batches_respect_cancellation() {
    let def = ComputeDef::mtv("mtv", 64, 48);
    let fleet = spawn_fleet(1, None);
    let base = ScheduleConfig::default_for(&def, fleet.hardware());
    let batch: Vec<_> = (0..4)
        .map(|i| {
            ScheduleConfig {
                tasklets: 1 + i,
                ..base.clone()
            }
            .to_trace(&def)
        })
        .collect();
    let token = CancelToken::new();
    token.cancel();
    let cancel = Cancellation::new(Some(token), None);
    let outcomes = fleet.measure_batch_cancellable(&batch, &def, &cancel);
    assert!(outcomes.iter().all(|o| *o == MeasureOutcome::Skipped));
    assert_eq!(fleet.stats().jobs_requeued, 0);
}

/// Fleet sessions share schedule-cache entries with sequential sessions:
/// a win tuned through the fleet resolves as a cache hit in a plain
/// in-process session (same fingerprint, same key).
#[test]
fn fleet_tuning_wins_serve_sequential_cache_hits() {
    let def = ComputeDef::mtv("mtv", 96, 64);
    let dir = std::env::temp_dir().join(format!("atim-fleet-cache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("cache dir");
    let path = dir.join("cache.jsonl");

    let fleet = spawn_fleet(2, None);
    let fleet_session = Session::builder()
        .backend(fleet)
        .schedule_cache(&path)
        .build();
    let tuned = fleet_session
        .tune_cached(&def, &options())
        .expect("fleet tune_cached");

    let sequential = Session::builder()
        .backend_arc(BackendSpec::analytic(UpmemConfig::small()).build().into())
        .schedule_cache(&path)
        .build();
    let hit = sequential
        .cached(&def)
        .expect("the fleet's win must hit for the sequential session");
    assert_eq!(hit.best_trace(), tuned.best_trace());
    std::fs::remove_dir_all(&dir).ok();
}
