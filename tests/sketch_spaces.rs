//! Acceptance tests of the sketch-rule schedule-space subsystem:
//!
//! 1. **Generator matrix** — tuning converges under every resident
//!    generator (`upmem`, `tiled`, `hw-native`), and the tuned trace
//!    carries its generator's sketch tag.
//! 2. **Competitive spaces** — at an equal trial budget, the rule-built
//!    spaces reach a tuned latency no worse than the fixed-knob UPMEM
//!    sketch on at least two paper workloads (the new spaces are openings,
//!    not regressions).
//! 3. **New workloads end-to-end** — batched GEMM, the fused attention
//!    block and int8 GEMV tune, resolve as schedule-cache hits, and
//!    measure bit-identically through the fleet and the sequential
//!    in-process path.

use std::time::Duration;

use atim_core::fleet::{BackendSpec, FleetBackend, FleetOptions};
use atim_core::prelude::*;

/// Address handoff to re-invoked children; its presence turns the
/// `sketch_child_worker` "test" into a worker process (the same
/// `current_exe` trick as `tests/fleet.rs`).
const CHILD_ENV: &str = "ATIM_SKETCH_TEST_CHILD";

/// Re-invoked child entry point: serve fleet jobs until the fleet hangs
/// up.  A no-op in the parent test run (the variable is unset).
#[test]
fn sketch_child_worker() {
    let Ok(addr) = std::env::var(CHILD_ENV) else {
        return;
    };
    atim_core::fleet::worker_connect(&addr).expect("child worker failed");
}

/// Fleet options that spawn workers by re-invoking this test binary and
/// configure them for `generator`.
fn reinvoke_options(generator: &str) -> FleetOptions {
    let exe = std::env::current_exe().expect("current_exe");
    let args = vec![
        "sketch_child_worker".to_string(),
        "--exact".to_string(),
        "--nocapture".to_string(),
    ];
    FleetOptions {
        command: Some((exe, args)),
        envs: vec![(CHILD_ENV.to_string(), "{addr}".to_string())],
        job_timeout: Duration::from_secs(60),
        connect_timeout: Duration::from_secs(30),
        space_generator: Some(generator.to_string()),
        ..FleetOptions::default()
    }
}

fn options(trials: usize) -> TuningOptions {
    TuningOptions {
        trials,
        population: 24,
        measure_per_round: 8,
        ..TuningOptions::default()
    }
}

/// A simulator-backed session tuning in `generator`'s schedule space.
fn sim_session(generator: &str) -> Session {
    Session::builder()
        .hardware(UpmemConfig::default())
        .space_generator_arc(resolve_generator(generator).expect("resident id"))
        .build()
}

/// Tuning converges under every resident generator, and the winning trace
/// stays in its generator's sketch family.
#[test]
fn every_resident_generator_converges_on_gemv() {
    let def = ComputeDef::gemv("gemv", 256, 256, 1.0);
    for id in RESIDENT_GENERATOR_IDS {
        let session = sim_session(id);
        let tuned = session.tune(&def, &options(12)).expect("tune");
        assert!(
            tuned.best_latency_s().is_finite() && tuned.best_latency_s() > 0.0,
            "{id}: tuning did not converge"
        );
        assert_eq!(
            tuned.best_trace().sketch(),
            id,
            "{id}: winner left its sketch family"
        );
        assert!(
            !tuned.result().history.is_empty(),
            "{id}: no measurements recorded"
        );
    }
}

/// The pinned competitive bar: at an equal trial budget, `tiled` or
/// `hw-native` reaches a tuned latency **no worse than** the fixed-knob
/// UPMEM sketch on at least two paper workloads.  The simulator and the
/// search are deterministic, so this is a stable regression anchor, not a
/// flaky benchmark.
#[test]
fn rule_built_spaces_match_the_fixed_sketch_on_paper_workloads() {
    let workloads = [
        ComputeDef::mtv("mtv", 512, 512),
        ComputeDef::mmtv("mmtv", 8, 64, 128),
        ComputeDef::gemv("gemv", 384, 320, 1.0),
        ComputeDef::ttv("ttv", 8, 64, 64),
    ];
    let trials = 24;
    let mut wins = 0usize;
    for def in &workloads {
        let mut tuned_s = Vec::new();
        for id in RESIDENT_GENERATOR_IDS {
            let session = sim_session(id);
            let tuned = session.tune(def, &options(trials)).expect("tune");
            tuned_s.push(tuned.best_latency_s());
        }
        let (upmem, tiled, native) = (tuned_s[0], tuned_s[1], tuned_s[2]);
        let best_rule_built = tiled.min(native);
        println!(
            "{}: upmem {upmem:.6e} s, tiled {tiled:.6e} s, hw-native {native:.6e} s",
            def.name
        );
        if best_rule_built <= upmem {
            wins += 1;
        }
    }
    assert!(
        wins >= 2,
        "rule-built spaces must match or beat the UPMEM sketch on >= 2 \
         paper workloads at t{trials}; won {wins}/{}",
        workloads.len()
    );
}

/// The three sketch-space workloads run the full production path: tuning
/// through a multi-worker fleet is bit-identical to the sequential
/// in-process path, the win lands in the schedule cache, and a fresh
/// session resolves it without a single measurement.
#[test]
fn new_workloads_tune_cache_and_fleet_bit_identically() {
    let combos = [
        (
            Workload::new(WorkloadKind::Bgemm, vec![4, 16, 16, 32]),
            "tiled",
        ),
        (
            Workload::new(WorkloadKind::Attn, vec![8, 32, 64]),
            "hw-native",
        ),
        (Workload::new(WorkloadKind::Qgemv, vec![96, 64]), "upmem"),
    ];
    let dir = std::env::temp_dir().join(format!("atim-sketch-fleet-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("cache dir");

    for (workload, generator) in &combos {
        let def = workload.compute_def();
        let label = format!("{}/{generator}", workload.label());
        let cache = dir.join(format!("{}_{generator}.jsonl", workload.kind.name()));

        let fleet = FleetBackend::spawn(
            BackendSpec::analytic(UpmemConfig::small()),
            2,
            reinvoke_options(generator),
        )
        .expect("fleet spawn");
        assert_eq!(fleet.workers_alive(), 2, "{label}: handshake failed");
        let fleet_session = Session::builder()
            .backend(fleet)
            .space_generator_arc(resolve_generator(generator).expect("resident id"))
            .schedule_cache(&cache)
            .build();
        let fast = fleet_session
            .tune_cached(&def, &options(16))
            .expect("fleet tune_cached");

        let sequential = Session::builder()
            .backend_arc(BackendSpec::analytic(UpmemConfig::small()).build().into())
            .space_generator_arc(resolve_generator(generator).expect("resident id"))
            .build();
        let slow = sequential
            .tune(&def, &options(16))
            .expect("sequential tune");
        assert_eq!(
            fast.result().best,
            slow.result().best,
            "{label}: fleet best must be bit-identical to sequential"
        );
        assert_eq!(
            fast.result().history,
            slow.result().history,
            "{label}: fleet history must be bit-identical to sequential"
        );

        // The win is durable: a fresh session on the same machine and in
        // the same schedule space resolves it with zero measurements.
        let fresh = Session::builder()
            .backend_arc(BackendSpec::analytic(UpmemConfig::small()).build().into())
            .space_generator_arc(resolve_generator(generator).expect("resident id"))
            .schedule_cache(&cache)
            .build();
        let hit = fresh
            .cached(&def)
            .unwrap_or_else(|| panic!("{label}: tuned win must hit the cache"));
        assert_eq!(hit.best_trace(), fast.best_trace(), "{label}: cache hit");
    }
    std::fs::remove_dir_all(&dir).ok();
}
