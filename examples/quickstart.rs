//! Quickstart: offload a matrix-vector product to the (simulated) UPMEM
//! system with ATiM-RS.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example defines the computation, builds a [`Session`], lets the
//! autotuner search the joint host/kernel schedule space (streaming
//! progress through an observer), compiles the winner with the PIM-aware
//! passes, executes it with real data, checks the result against a plain
//! CPU reference — and finally saves the search to a `TuneLog` and replays
//! it, the "tune once, serve many" path.

use atim_autotune::TuningRecord;
use atim_core::prelude::*;
use atim_workloads::data::{generate_inputs, results_match};

/// Prints a line whenever the search finds a better schedule.
struct Progress {
    flops: f64,
}

impl TuningObserver for Progress {
    fn on_best_improved(&mut self, record: &TuningRecord) {
        println!(
            "  trial {:>3}: best {:.3} ms ({:.1} GFLOP/s)",
            record.trial,
            record.latency_s * 1e3,
            self.flops / record.latency_s / 1e9
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A session for the target machine: the paper's UPMEM server
    //    (2048 DPUs, 64 KB WRAM, 24 tasklets per DPU) on the default
    //    simulator backend.  `UpmemConfig::small()` gives a 16-DPU box, and
    //    `.backend(..)` plugs in a different measurement backend entirely.
    let session = Session::builder().hardware(UpmemConfig::default()).build();

    // 2. The computation, declared independently of any implementation
    //    decision: C(i) = sum_k A(i,k) * B(k).
    let def = ComputeDef::mtv("mtv", 2048, 2048);
    println!(
        "workload: {} ({} MFLOP, {:.1} MB of tensors)",
        def.name,
        def.total_flops() / 1_000_000,
        def.total_bytes() as f64 / (1024.0 * 1024.0)
    );

    // 3. Autotune: the search explores DPU distribution, hierarchical
    //    reduction, tasklet counts and WRAM caching tiles jointly.  The
    //    observer streams every improvement as it happens; a `Budget` could
    //    additionally cap wall-clock time or stop on stall.
    let options = TuningOptions {
        trials: 64,
        ..TuningOptions::default()
    };
    let mut progress = Progress {
        flops: def.total_flops() as f64,
    };
    let tuned = session.tune_observed(&def, &options, &Budget::unlimited(), &mut progress)?;
    // The winner is a schedule *trace*; its UPMEM knob view prints nicely.
    let best = tuned.best_config();
    println!(
        "autotuned: {} DPUs ({:?} spatial x {} reduce), {} tasklets, {}-element cache tiles",
        best.num_dpus(),
        best.spatial_dpus,
        best.reduce_dpus,
        best.tasklets,
        best.cache_elems
    );
    println!(
        "  measured {} candidates, verifier rejected {}, best latency {:.3} ms ({:.1} GFLOP/s)",
        tuned.measured(),
        tuned.rejected(),
        tuned.best_latency_s() * 1e3,
        tuned.best_gflops()
    );

    // 4. Compile the winning schedule (PIM-aware passes included) and run it
    //    with real data.
    let module = session.compile(tuned.best_trace(), &def)?;
    let inputs = generate_inputs(&def, 2024);
    let run = session.execute(&module, &inputs)?;
    let report = &run.report;
    println!(
        "executed on {} DPUs: H2D {:.3} ms, kernel {:.3} ms, D2H {:.3} ms, host reduce {:.3} ms",
        report.num_dpus,
        report.h2d_s * 1e3,
        report.kernel_s * 1e3,
        report.d2h_s * 1e3,
        report.reduce_s * 1e3
    );

    // 5. Validate against the reference implementation.
    let expect = def.reference(&inputs);
    let ok = results_match(run.output.as_ref().unwrap(), &expect, 2048);
    println!("result check: {}", if ok { "PASS" } else { "FAIL" });
    assert!(ok);

    // 6. Tune once, serve many: persist the search and replay it — a fresh
    //    process (or machine) gets the identical tuned module back without
    //    searching again.
    let log_path = std::env::temp_dir().join("atim_quickstart_tune_log.json");
    tuned.to_log(options.seed).save(&log_path)?;
    let reloaded = TuneLog::load(&log_path)?;
    let replayed = session.replay(&def, &reloaded);
    assert_eq!(replayed.best_trace(), tuned.best_trace());
    assert_eq!(replayed.best_latency_s(), tuned.best_latency_s());
    println!(
        "tuning log: {} trials saved to {} and replayed identically",
        reloaded.len(),
        log_path.display()
    );
    std::fs::remove_file(&log_path).ok();
    Ok(())
}
