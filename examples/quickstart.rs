//! Quickstart: offload a matrix-vector product to the (simulated) UPMEM
//! system with ATiM-RS.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example defines the computation, lets the autotuner search the joint
//! host/kernel schedule space, compiles the winner with the PIM-aware
//! passes, executes it with real data and checks the result against a plain
//! CPU reference.

use atim_core::prelude::*;
use atim_workloads::data::{generate_inputs, results_match};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Target machine: the paper's UPMEM server (2048 DPUs, 64 KB WRAM,
    //    24 tasklets per DPU).  `UpmemConfig::small()` gives a 16-DPU box.
    let atim = Atim::new(UpmemConfig::default());

    // 2. The computation, declared independently of any implementation
    //    decision: C(i) = sum_k A(i,k) * B(k).
    let def = ComputeDef::mtv("mtv", 2048, 2048);
    println!(
        "workload: {} ({} MFLOP, {:.1} MB of tensors)",
        def.name,
        def.total_flops() / 1_000_000,
        def.total_bytes() as f64 / (1024.0 * 1024.0)
    );

    // 3. Autotune: the search explores DPU distribution, hierarchical
    //    reduction, tasklet counts and WRAM caching tiles jointly.
    let options = TuningOptions {
        trials: 64,
        ..TuningOptions::default()
    };
    let tuned = atim.autotune(&def, &options);
    let best = tuned.best_config();
    println!(
        "autotuned: {} DPUs ({:?} spatial x {} reduce), {} tasklets, {}-element cache tiles",
        best.num_dpus(),
        best.spatial_dpus,
        best.reduce_dpus,
        best.tasklets,
        best.cache_elems
    );
    println!(
        "  measured {} candidates, verifier rejected {}, best latency {:.3} ms ({:.1} GFLOP/s)",
        tuned.measured(),
        tuned.rejected(),
        tuned.best_latency_s() * 1e3,
        tuned.best_gflops()
    );

    // 4. Compile the winning schedule (PIM-aware passes included) and run it
    //    with real data.
    let module = atim.compile_config(best, &def)?;
    let inputs = generate_inputs(&def, 2024);
    let run = atim.execute(&module, &inputs)?;
    let report = &run.report;
    println!(
        "executed on {} DPUs: H2D {:.3} ms, kernel {:.3} ms, D2H {:.3} ms, host reduce {:.3} ms",
        report.num_dpus,
        report.h2d_s * 1e3,
        report.kernel_s * 1e3,
        report.d2h_s * 1e3,
        report.reduce_s * 1e3
    );

    // 5. Validate against the reference implementation.
    let expect = def.reference(&inputs);
    let ok = results_match(run.output.as_ref().unwrap(), &expect, 2048);
    println!("result check: {}", if ok { "PASS" } else { "FAIL" });
    assert!(ok);
    Ok(())
}
