//! Tuning-as-a-service client: talk to a running `atim-serve` daemon.
//!
//! ```text
//! # terminal 1 — the server (analytic backend, cache-backed)
//! cargo run --release --bin atim-serve -- --analytic --cache /tmp/atim_cache.jsonl
//!
//! # terminal 2 — this client
//! cargo run --release --example serve_client
//! ```
//!
//! The example sends the same tune request twice.  The first call runs the
//! search on the server (watching its progress stream live); the second must
//! be answered from the server's `ScheduleCache` — no measurements, same
//! trace — which is exactly what a fleet of clients sharing one tuning
//! server experiences after the first request per workload.
//!
//! Environment knobs (both optional):
//! * `ATIM_SERVE_ADDR` — server address (default `127.0.0.1:7421`).
//! * `ATIM_SERVE_SHUTDOWN=1` — ask the server to exit when done (used by the
//!   CI smoke test so the background daemon doesn't outlive the job).

use atim_serve::{Client, TuneRequest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let addr = std::env::var("ATIM_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7421".into());
    let client = Client::parse(&addr)?;
    println!("connecting to atim-serve at {addr}");

    // A quick-budget GEMV tune: small enough to finish in seconds even on
    // the simulator backend, unique enough to have its own cache key.
    let mut request = TuneRequest::quick("mtv", vec![512, 256]);
    request.watch = true; // stream per-trial progress on the first call

    // First call: a cache miss runs the search server-side; the progress
    // frames stream back while it happens.
    let first = client.tune_watch(&request, |p| {
        println!(
            "  trial {:>3}: {:.3} ms (best {:.3} ms)",
            p.trial,
            p.latency_s * 1e3,
            p.best_latency_s * 1e3
        );
    })?;
    println!(
        "first call:  cache_hit={} measured={} latency={:.3} ms",
        first.cache_hit,
        first.measured,
        first.latency_s * 1e3
    );

    // Second call: must be a pure cache hit — zero measurements, and the
    // exact trace the search found.
    let second = client.tune(&request)?;
    println!(
        "second call: cache_hit={} measured={} latency={:.3} ms",
        second.cache_hit,
        second.measured,
        second.latency_s * 1e3
    );
    assert!(
        second.cache_hit,
        "second identical request must hit the schedule cache"
    );
    assert_eq!(second.measured, 0, "a cache hit performs no measurements");
    assert_eq!(
        second.trace, first.trace,
        "the cache must return the trace the search found"
    );
    assert_eq!(
        second.latency_s.to_bits(),
        first.latency_s.to_bits(),
        "cached latency must be bit-identical to the tuned one"
    );

    let stats = client.stats()?;
    println!(
        "server stats: {} requests, {} cache hits, {} dedup joins, {} tunes run, {} cache entries",
        stats.requests, stats.cache_hits, stats.dedup_joins, stats.tunes_run, stats.cache_entries
    );
    assert!(stats.cache_hits >= 1);

    if std::env::var("ATIM_SERVE_SHUTDOWN").as_deref() == Ok("1") {
        client.shutdown()?;
        println!("server asked to shut down");
    }
    println!("serve client: PASS");
    Ok(())
}
