//! Compare ATiM's autotuned GEMV against the PrIM-style hand-tuned kernel
//! and an autotuned CPU — a miniature version of the paper's Fig. 9.
//!
//! ```text
//! cargo run --release --example gemv_autotune
//! ```
//!
//! Knobs:
//!
//! * `ATIM_GEMV_SIZES` — comma-separated `MxK` sizes to sweep (default
//!   `1024x1024,4096x4096,8192x8192`).
//! * `ATIM_FLEET_WORKERS` — fan each tuning round across N local
//!   `atim-worker` processes.  The output is bit-identical to the
//!   in-process run (that is the fleet's contract), so diffing this
//!   example's stdout across fleet sizes is a regression test.
//! * `ATIM_SPACE_GENERATOR` — the schedule space to search (`upmem`,
//!   `tiled`, `hw-native`); fleet workers are configured with the same
//!   space automatically.

use atim_autotune::JsonCodec;
use atim_baselines::cpu::cpu_latency;
use atim_baselines::prim::{prim_default, prim_search_candidates};
use atim_core::prelude::*;

fn total_ms(
    session: &Session,
    workload: &Workload,
    cfg: &atim_autotune::ScheduleConfig,
) -> Option<f64> {
    let def = workload.compute_def();
    let module = session.compile_config(cfg, &def).ok()?;
    session.time(&module).ok().map(|r| r.total_ms())
}

/// Parses `ATIM_GEMV_SIZES` (`MxK[,MxK...]`), defaulting to the paper-ish
/// sweep.
fn sizes_from_env() -> Vec<(i64, i64)> {
    let Ok(raw) = std::env::var("ATIM_GEMV_SIZES") else {
        return vec![(1024, 1024), (4096, 4096), (8192, 8192)];
    };
    raw.split(',')
        .map(|part| {
            let (m, k) = part
                .trim()
                .split_once(['x', 'X'])
                .unwrap_or_else(|| panic!("ATIM_GEMV_SIZES entry {part:?} is not MxK"));
            let parse = |s: &str| {
                s.trim()
                    .parse::<i64>()
                    .unwrap_or_else(|_| panic!("ATIM_GEMV_SIZES entry {part:?} is not MxK"))
            };
            (parse(m), parse(k))
        })
        .collect()
}

fn build_session() -> Session {
    match FleetBackend::from_env(BackendSpec::sim(UpmemConfig::default())) {
        Some(fleet) => {
            eprintln!(
                "gemv_autotune: measuring on a fleet of {} worker process(es)",
                fleet.workers_alive()
            );
            Session::builder().backend(fleet).build()
        }
        None => Session::new(UpmemConfig::default()),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = build_session();
    println!("GEMV end-to-end latency (ms), lower is better\n");
    println!(
        "{:<14}{:>10}{:>14}{:>10}{:>10}",
        "size", "PrIM", "PrIM+search", "ATiM", "CPU"
    );

    let mut tuned_traces = Vec::new();
    for (m, k) in sizes_from_env() {
        let workload = Workload::new(WorkloadKind::Gemv, vec![m, k]);
        let def = workload.compute_def();

        // PrIM: programming-guide defaults (1-D row tiling, 16 tasklets,
        // 1024-byte caching tiles).
        let prim_ms = total_ms(
            &session,
            &workload,
            &prim_default(&workload, session.hardware()),
        )
        .unwrap_or(f64::NAN);

        // PrIM+search: grid search over DPUs x tasklets x caching tile, but
        // still 1-D tiling.
        let prim_search_ms = prim_search_candidates(&workload, session.hardware())
            .into_iter()
            .filter_map(|c| total_ms(&session, &workload, &c))
            .fold(f64::INFINITY, f64::min);

        // ATiM: joint-space autotuning (2-D tiling + hierarchical reduction
        // become available).
        let tuned = session.tune(
            &def,
            &TuningOptions {
                trials: 64,
                ..TuningOptions::default()
            },
        )?;
        // Time the winning trace directly — works in every schedule space
        // (tiled/hw-native traces have no fixed-knob view).
        let atim_ms = session
            .compile(tuned.best_trace(), &def)
            .ok()
            .and_then(|module| session.time(&module).ok())
            .map(|r| r.total_ms())
            .unwrap_or(f64::NAN);

        // Autotuned CPU roofline.
        let cpu_ms = cpu_latency(&workload, session.hardware()).time_s * 1e3;

        println!(
            "{:<14}{:>10.3}{:>14.3}{:>10.3}{:>10.3}",
            format!("{m}x{k}"),
            prim_ms,
            prim_search_ms,
            atim_ms,
            cpu_ms
        );
        tuned_traces.push((m, k, tuned.best_trace().to_json().to_string()));
    }

    // The winning schedules in replayable form — paste one into a trace
    // file (or a schedule cache) to skip the search next time.
    println!("\ntuned traces:");
    for (m, k, trace) in tuned_traces {
        println!("  {m}x{k}: {trace}");
    }
    println!("\n(The paper reports ATiM speedups up to 6.18x over PrIM for MTV/GEMV;");
    println!(" the gap grows with the reduction dimension because only ATiM tiles it.)");
    Ok(())
}
