//! Offload the multi-head-attention MMTV of a GPT-J layer — the paper's §7.2
//! scenario — and report how the schedule adapts as the batch size grows.
//!
//! ```text
//! cargo run --release --example gptj_attention
//! ```

use atim_core::prelude::*;
use atim_workloads::gptj::{mha_workload, GptJModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::new(UpmemConfig::default());
    let model = GptJModel::B6;
    println!(
        "{} multi-head attention: MMTV of shape (batch x {} heads, tokens, 256)\n",
        model.label(),
        model.heads()
    );
    println!(
        "{:<22}{:>12}{:>12}{:>10}{:>16}",
        "shape", "latency_ms", "DPUs", "rfactor", "cache_elems"
    );

    for (batch, tokens) in [(1, 64), (1, 256), (4, 128), (16, 256)] {
        let workload = mha_workload(model, batch, tokens);
        let def = workload.compute_def();
        let tuned = session.tune(
            &def,
            &TuningOptions {
                trials: 48,
                ..TuningOptions::default()
            },
        )?;
        let cfg = tuned.best_config();
        let module = session.compile(tuned.best_trace(), &def)?;
        let report = session.time(&module)?;
        println!(
            "{:<22}{:>12.3}{:>12}{:>10}{:>16}",
            format!("b={batch} t={tokens} {:?}", workload.shape),
            report.total_ms(),
            cfg.num_dpus(),
            if cfg.uses_rfactor() { "yes" } else { "no" },
            cfg.cache_elems
        );
    }

    println!();
    println!("Small spatial dimensions leave DPUs idle unless the reduction dimension is");
    println!("also tiled (rfactor); as batch x tokens grows, spatial parallelism suffices —");
    println!("the same trend the paper shows in Fig. 11.");
    Ok(())
}
