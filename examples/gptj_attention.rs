//! Offload the multi-head-attention MMTV of a GPT-J layer — the paper's §7.2
//! scenario — and report how the schedule adapts as the batch size grows.
//! Then tune the **full fused attention block** (scores *and* value
//! aggregation as one `attn` workload) in the multi-level-tiling schedule
//! space (`TiledSketchGenerator`), which the fixed-knob sketch cannot
//! express.
//!
//! ```text
//! cargo run --release --example gptj_attention
//! ```

use atim_core::prelude::*;
use atim_workloads::gptj::{attention_block_workload, mha_workload, GptJModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::new(UpmemConfig::default());
    let model = GptJModel::B6;
    println!(
        "{} multi-head attention: MMTV of shape (batch x {} heads, tokens, 256)\n",
        model.label(),
        model.heads()
    );
    println!(
        "{:<22}{:>12}{:>12}{:>10}{:>16}",
        "shape", "latency_ms", "DPUs", "rfactor", "cache_elems"
    );

    for (batch, tokens) in [(1, 64), (1, 256), (4, 128), (16, 256)] {
        let workload = mha_workload(model, batch, tokens);
        let def = workload.compute_def();
        let tuned = session.tune(
            &def,
            &TuningOptions {
                trials: 48,
                ..TuningOptions::default()
            },
        )?;
        let cfg = tuned.best_config();
        let module = session.compile(tuned.best_trace(), &def)?;
        let report = session.time(&module)?;
        println!(
            "{:<22}{:>12.3}{:>12}{:>10}{:>16}",
            format!("b={batch} t={tokens} {:?}", workload.shape),
            report.total_ms(),
            cfg.num_dpus(),
            if cfg.uses_rfactor() { "yes" } else { "no" },
            cfg.cache_elems
        );
    }

    println!();
    println!("Small spatial dimensions leave DPUs idle unless the reduction dimension is");
    println!("also tiled (rfactor); as batch x tokens grows, spatial parallelism suffices —");
    println!("the same trend the paper shows in Fig. 11.");

    // Part 2: the whole MHA inner block — O(b,d) = Σ_j Σ_e Q·K·V — as one
    // fused `attn` workload, searched in the tiled schedule space.  The
    // per-input cache placement (stage K deep, stream V, or vice versa) is
    // a sampled decision the fixed-knob sketch has no site for.
    println!();
    println!(
        "{} fused attention block, tiled schedule space (\"{}\"):\n",
        model.label(),
        TiledSketchGenerator::default().name()
    );
    let tiled = Session::builder()
        .hardware(UpmemConfig::default())
        .space_generator(TiledSketchGenerator::default())
        .build();
    println!(
        "{:<22}{:>12}{:>12}{:>10}",
        "shape", "latency_ms", "DPUs", "tasklets"
    );
    for (batch, tokens) in [(1, 64), (4, 128)] {
        let workload = attention_block_workload(model, batch, tokens);
        let def = workload.compute_def();
        let tuned = tiled.tune(
            &def,
            &TuningOptions {
                trials: 32,
                ..TuningOptions::default()
            },
        )?;
        let trace = tuned.best_trace();
        let module = tiled.compile(trace, &def)?;
        let report = tiled.time(&module)?;
        println!(
            "{:<22}{:>12.3}{:>12}{:>10}",
            format!("b={batch} t={tokens} {:?}", workload.shape),
            report.total_ms(),
            trace.num_dpus(),
            trace.tasklets(),
        );
    }
    println!();
    println!("The fused block reads Q, K and V with different reuse patterns; the tiled");
    println!("space stages each input independently instead of one all-or-nothing cache");
    println!("knob, and the decision is searched per shape.");
    Ok(())
}
