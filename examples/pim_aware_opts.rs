//! Demonstrate the three PIM-aware optimizations of §5.3 on the paper's
//! Fig. 8 running example: a misaligned 7x40 GEMV tile processed with a 2x16
//! caching pattern.
//!
//! ```text
//! cargo run --release --example pim_aware_opts
//! ```
//!
//! Prints the generated TIR before and after optimization and the simulated
//! effect on branches, DMA requests and kernel cycles.

use atim_autotune::ScheduleConfig;
use atim_core::prelude::*;
use atim_core::{compile_config, CompileOptions};
use atim_tir::printer::print_stmt;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::new(UpmemConfig::default());
    // The Fig. 8 example: 7x40 matrix, single DPU, 4 tasklets, 16-element
    // caching tiles — every tile boundary is misaligned.
    let def = ComputeDef::mtv("mtv", 7, 40);
    let cfg = ScheduleConfig {
        spatial_dpus: vec![1],
        reduce_dpus: 1,
        tasklets: 4,
        cache_elems: 16,
        use_cache: true,
        unroll: false,
        host_threads: 1,
        parallel_transfer: true,
    };

    println!("=== kernel TIR without PIM-aware optimization (Fig. 8(a)) ===\n");
    let baseline = compile_config(
        &cfg,
        &def,
        CompileOptions {
            opt_level: OptLevel::NoOpt,
            parallel_transfer: true,
        },
        session.hardware(),
    )?;
    println!("{}", print_stmt(&baseline.lowered.kernel.body));

    println!("=== kernel TIR with DMA + loop tightening + branch hoisting (Fig. 8(d)) ===\n");
    let optimized = compile_config(&cfg, &def, CompileOptions::default(), session.hardware())?;
    println!("{}", print_stmt(&optimized.lowered.kernel.body));

    println!("=== simulated effect ===\n");
    println!(
        "{:<12}{:>12}{:>12}{:>12}{:>14}",
        "level", "branches", "dma_reqs", "instrs", "kernel_us"
    );
    for level in OptLevel::ALL {
        let module = compile_config(
            &cfg,
            &def,
            CompileOptions {
                opt_level: level,
                parallel_transfer: true,
            },
            session.hardware(),
        )?;
        let report = session.time(&module)?;
        println!(
            "{:<12}{:>12}{:>12}{:>12}{:>14.2}",
            level.label(),
            report.dpu.branches,
            report.dpu.dma_requests + report.dpu.mram_scalar_accesses,
            report.instructions,
            report.kernel_s * 1e6
        );
    }
    println!("\nThe branch count collapses and the element-wise copies become DMA transfers,");
    println!(
        "mirroring the 288 -> 2 branch and 96 -> 6 DMA reduction in the paper's Fig. 8 table."
    );
    Ok(())
}
