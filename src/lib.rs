//! # atim — umbrella crate for the ATiM-RS workspace
//!
//! Re-exports every workspace crate under one roof so the repository-level
//! examples (`examples/`) and integration tests (`tests/`) have a single
//! dependency, and so downstream users can depend on one crate:
//!
//! ```
//! use atim::prelude::*;
//!
//! let session = Session::default();
//! let def = ComputeDef::mtv("mtv", 8, 8);
//! // A candidate is a schedule trace; the knob-vector conversion layer
//! // still provides a sensible default point in the space.
//! let trace = ScheduleConfig::default_for(&def, session.hardware()).to_trace(&def);
//! let module = session.compile(&trace, &def).unwrap();
//! let inputs = atim::workloads::data::generate_inputs(&def, 1);
//! let run = session.execute(&module, &inputs).unwrap();
//! assert!(run.report.total_ms() > 0.0);
//! ```
//!
//! See the workspace `README.md` for the architecture overview and
//! `docs/REPRODUCING.md` for the paper-reproduction harnesses.

pub use atim_autotune as autotune;
pub use atim_baselines as baselines;
pub use atim_bench as bench;
pub use atim_core as core;
pub use atim_passes as passes;
pub use atim_serve as serve;
pub use atim_sim as sim;
pub use atim_tir as tir;
pub use atim_workloads as workloads;

/// The same convenience re-exports as [`atim_core::prelude`].
pub mod prelude {
    pub use atim_core::prelude::*;
}
