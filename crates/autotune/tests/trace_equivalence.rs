//! Pins the trace migration against the pre-trace implementation:
//!
//! 1. **Schedule equivalence** — for every paper workload, the traces the
//!    `UpmemSketchGenerator` materializes instantiate the *same schedules*
//!    (same lowered programs, structurally identical) as the original
//!    `ScheduleConfig::instantiate`, whose body is kept verbatim as the
//!    deprecated reference.
//! 2. **Tuned-result equivalence** — for a fixed seed, the trace-based
//!    `TuningSession` drives the *identical search trajectory* (same
//!    candidates in the same order, same latencies, same best, same
//!    failure/rejection counters) as a faithful reimplementation of the
//!    pre-trace tuning loop over `ScheduleConfig`s.

#![allow(deprecated)]

use atim_autotune::cost_model::{featurize_config, CostModel, NUM_FEATURES};
use atim_autotune::session::{Budget, NullObserver, TuningSession};
use atim_autotune::verifier::verify_lowered;
use atim_autotune::{
    ScheduleConfig, SearchSpace, SequentialMeasurer, Trace, TuningOptions, VerifyError,
};
use atim_sim::UpmemConfig;
use atim_tir::compute::ComputeDef;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Renders a value's `Debug` output with process-global identifiers
/// (`Var { id }`, `BufferId(n)`) rewritten to first-occurrence ordinals, so
/// two structurally identical programs built at different times compare
/// equal.
fn normalized_debug(value: &impl std::fmt::Debug) -> String {
    // `loop_id` values are schedule-local (not process-global) and already
    // comparable; mask the field so the `id: ` scan below skips it.
    let text = format!("{value:?}").replace("loop_id: ", "loopid· ");
    let mut out = String::with_capacity(text.len());
    let mut var_ids: Vec<String> = Vec::new();
    let mut buf_ids: Vec<String> = Vec::new();
    let mut rest = text.as_str();
    while let Some(pos) = rest.find("id: ").map(|p| (p, "id: ")).or(None) {
        let (at, tag) = pos;
        // Only rewrite numeric ids directly after the tag.
        out.push_str(&rest[..at + tag.len()]);
        rest = &rest[at + tag.len()..];
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if digits.is_empty() {
            continue;
        }
        rest = &rest[digits.len()..];
        let ord = match var_ids.iter().position(|d| *d == digits) {
            Some(i) => i,
            None => {
                var_ids.push(digits);
                var_ids.len() - 1
            }
        };
        out.push_str(&format!("#{ord}"));
    }
    out.push_str(rest);
    // Second pass: BufferId(n).
    let text = out;
    let mut out = String::with_capacity(text.len());
    let mut rest = text.as_str();
    while let Some(at) = rest.find("BufferId(") {
        out.push_str(&rest[..at + "BufferId(".len()]);
        rest = &rest[at + "BufferId(".len()..];
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        rest = &rest[digits.len()..];
        let ord = match buf_ids.iter().position(|d| *d == digits) {
            Some(i) => i,
            None => {
                buf_ids.push(digits);
                buf_ids.len() - 1
            }
        };
        out.push_str(&format!("#{ord}"));
    }
    out.push_str(rest);
    out
}

fn paper_workloads() -> Vec<ComputeDef> {
    vec![
        ComputeDef::va("va", 1 << 16),
        ComputeDef::red("red", 1 << 14),
        ComputeDef::mtv("mtv", 512, 768),
        ComputeDef::mmtv("mmtv", 8, 64, 128),
        ComputeDef::ttv("ttv", 6, 96, 64),
        ComputeDef::geva("geva", 10_000, 1.5, -0.5),
        ComputeDef::gemv("gemv", 384, 640, 2.0),
        // Deliberately awkward, misaligned shapes.
        ComputeDef::mtv("mtv_odd", 33, 47),
        ComputeDef::gemv("gemv_odd", 97, 103, 0.5),
    ]
}

/// Every sampled knob vector, applied through the recorded trace, must
/// produce the identical lowered program as the original `instantiate` —
/// and un-instantiable vectors must fail on both paths.
#[test]
fn traces_instantiate_the_same_schedules_as_schedule_config() {
    let hw = UpmemConfig::default();
    let mut rng = StdRng::seed_from_u64(0xE9);
    for def in paper_workloads() {
        let space = SearchSpace::new(&def, &hw);
        let mut compared = 0;
        for trial in 0..24 {
            let cfg = space.sample(&mut rng, trial % 2 == 0);
            let reference = cfg.instantiate(&def);
            let trace = cfg.to_trace(&def);
            let via_trace = trace.apply(&def);
            match (reference, via_trace) {
                (Ok(want), Ok(got)) => {
                    // The schedule and its lowering are structurally
                    // identical (Debug covers loops, bindings, caching
                    // directives, grid, kernels, transfer programs) up to
                    // process-global Var/Buffer identifiers.
                    assert_eq!(
                        normalized_debug(&want),
                        normalized_debug(&got),
                        "{}: schedules diverge for {cfg:?}",
                        def.name
                    );
                    let want_low = want.lower();
                    let got_low = got.lower();
                    match (want_low, got_low) {
                        (Ok(a), Ok(b)) => {
                            assert_eq!(
                                normalized_debug(&a),
                                normalized_debug(&b),
                                "{}: lowered programs diverge for {cfg:?}",
                                def.name
                            );
                        }
                        (a, b) => assert_eq!(
                            a.is_err(),
                            b.is_err(),
                            "{}: lowering outcome diverges for {cfg:?}",
                            def.name
                        ),
                    }
                    compared += 1;
                }
                (want, got) => {
                    assert_eq!(
                        want.is_err(),
                        got.is_err(),
                        "{}: instantiation outcome diverges for {cfg:?}",
                        def.name
                    );
                }
            }
            // The decisions-only twin re-materializes to the same identity.
            assert_eq!(cfg.to_decision_trace(), trace);
            assert_eq!(ScheduleConfig::from_trace(&trace), Some(cfg));
        }
        assert!(compared >= 8, "{}: too few comparable samples", def.name);
    }
}

/// The pre-trace verifier semantics, inlined: raw-knob pre-checks, then
/// `instantiate` + `lower` + the structural checks.
fn old_verify(cfg: &ScheduleConfig, def: &ComputeDef, hw: &UpmemConfig) -> Result<(), VerifyError> {
    if cfg.tasklets > hw.max_tasklets as i64 {
        return Err(VerifyError::TooManyTasklets {
            requested: cfg.tasklets,
            limit: hw.max_tasklets as i64,
        });
    }
    if cfg.num_dpus() > hw.total_dpus() as i64 {
        return Err(VerifyError::TooManyDpus {
            requested: cfg.num_dpus(),
            available: hw.total_dpus() as i64,
        });
    }
    let sch = cfg
        .instantiate(def)
        .map_err(|e| VerifyError::Invalid(e.to_string()))?;
    let lowered = sch
        .lower()
        .map_err(|e| VerifyError::Invalid(e.to_string()))?;
    verify_lowered(&lowered, hw)
}

struct OldEntry {
    config: ScheduleConfig,
    latency_s: f64,
}

/// A faithful reimplementation of the pre-trace tuning loop (the Fig. 6
/// driver exactly as it shipped before this migration): knob-vector
/// sampling/mutation, config-keyed dedup and database, knob-vector
/// features, old verifier order.
struct OldTuner {
    entries: Vec<OldEntry>,
    measured_set: HashSet<ScheduleConfig>,
}

impl OldTuner {
    fn top_k(&self, k: usize, balanced: bool) -> Vec<&OldEntry> {
        if !balanced {
            return self.entries.iter().take(k).collect();
        }
        let half = k.div_ceil(2);
        let with: Vec<&OldEntry> = self
            .entries
            .iter()
            .filter(|e| e.config.uses_rfactor())
            .take(half)
            .collect();
        let without: Vec<&OldEntry> = self
            .entries
            .iter()
            .filter(|e| !e.config.uses_rfactor())
            .take(half)
            .collect();
        let mut out = Vec::with_capacity(k);
        out.extend(with);
        out.extend(without);
        if out.len() < k {
            for e in &self.entries {
                if out.len() >= k {
                    break;
                }
                if !out.iter().any(|x| std::ptr::eq(*x, e)) {
                    out.push(e);
                }
            }
        }
        out.truncate(k);
        out
    }

    fn insert(&mut self, config: ScheduleConfig, latency_s: f64) {
        self.measured_set.insert(config.clone());
        let at = self.entries.partition_point(|e| e.latency_s <= latency_s);
        self.entries.insert(at, OldEntry { config, latency_s });
    }
}

struct OldResult {
    history: Vec<(ScheduleConfig, f64, f64)>,
    best: Option<(ScheduleConfig, f64)>,
    measured: usize,
    failed: usize,
    rejected: usize,
}

fn old_tune(
    def: &ComputeDef,
    hw: &UpmemConfig,
    options: &TuningOptions,
    measure: &mut dyn FnMut(&ScheduleConfig) -> Option<f64>,
) -> OldResult {
    let space = SearchSpace::new(def, hw);
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut db = OldTuner {
        entries: Vec::new(),
        measured_set: HashSet::new(),
    };
    let mut model = CostModel::new();
    let mut samples: Vec<([f64; NUM_FEATURES], f64)> = Vec::new();
    let mut history = Vec::new();
    let (mut measured, mut failed, mut rejected) = (0usize, 0usize, 0usize);
    let max_rounds = options.trials * 8 / options.measure_per_round + 8;
    let mut round = 0usize;
    while measured < options.trials && round < max_rounds {
        round += 1;
        let progress = measured as f64 / options.trials as f64;
        let epsilon = options.strategy.epsilon_at(progress);
        let balanced = options.strategy.balanced_at(progress);

        let mut candidates: Vec<ScheduleConfig> = Vec::with_capacity(options.population);
        {
            let parents = db.top_k(16, balanced);
            for i in 0..options.population {
                let with_rfactor = def.has_reduce() && i % 2 == 0;
                let explore = parents.is_empty() || rng.gen_bool(epsilon);
                let cand = if explore {
                    space.sample(&mut rng, with_rfactor)
                } else {
                    let parent = parents[rng.gen_range(0..parents.len())];
                    space.mutate(&mut rng, &parent.config)
                };
                candidates.push(cand);
            }
        }

        let mut verified: Vec<ScheduleConfig> = Vec::new();
        let mut seen: HashSet<ScheduleConfig> = HashSet::with_capacity(candidates.len());
        for cand in candidates {
            if db.measured_set.contains(&cand) || !seen.insert(cand.clone()) {
                continue;
            }
            match old_verify(&cand, def, hw) {
                Ok(()) => verified.push(cand),
                Err(_) => rejected += 1,
            }
        }
        if verified.is_empty() {
            continue;
        }

        // Equal scores break on trace identity, mirroring the session's
        // deterministic ranking tie-break.
        let mut ranked: Vec<(f64, String, ScheduleConfig)> = verified
            .into_iter()
            .map(|c| {
                let score = model.predict(&featurize_config(&c, def, hw));
                let key = c.to_decision_trace().to_string();
                (score, key, c)
            })
            .collect();
        ranked.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
        });
        let budget = options.measure_per_round.min(options.trials - measured);
        for (_, _, cand) in ranked.into_iter().take(budget) {
            match measure(&cand) {
                Some(latency) => {
                    samples.push((featurize_config(&cand, def, hw), latency));
                    db.insert(cand.clone(), latency);
                    let best = db.entries.first().map(|e| e.latency_s).unwrap_or(latency);
                    history.push((cand, latency, best));
                    measured += 1;
                }
                None => failed += 1,
            }
        }
        model.train(&samples);
    }
    OldResult {
        best: db.entries.first().map(|e| (e.config.clone(), e.latency_s)),
        history,
        measured,
        failed,
        rejected,
    }
}

fn analytic(def: &ComputeDef) -> impl Fn(&ScheduleConfig) -> Option<f64> {
    let work = def.total_flops() as f64;
    move |cfg: &ScheduleConfig| {
        if cfg.tasklets > 24 {
            return None;
        }
        let dpus = cfg.num_dpus() as f64;
        let tasklets = cfg.tasklets.min(11) as f64;
        let cache = if cfg.use_cache {
            1.0 + (64.0 - cfg.cache_elems as f64).abs() / 256.0
        } else {
            12.0
        };
        let bonus = if cfg.uses_rfactor() { 0.8 } else { 1.0 };
        Some((work / (dpus * tasklets) * cache * bonus + dpus * 0.002) * 1e-6)
    }
}

/// Fixed seed ⇒ the trace-based session reproduces the pre-trace tuner's
/// trajectory bit-for-bit: candidates, order, latencies, best, counters.
#[test]
fn fixed_seed_tuning_matches_the_pre_trace_tuner() {
    let hw = UpmemConfig::default();
    for (def, trials) in [
        (ComputeDef::mtv("mtv", 2048, 2048), 48),
        (ComputeDef::gemv("gemv", 1024, 768, 1.0), 32),
        (ComputeDef::va("va", 1 << 18), 24),
    ] {
        let options = TuningOptions {
            trials,
            population: 32,
            measure_per_round: 8,
            ..TuningOptions::default()
        };

        let f = analytic(&def);
        let mut old_measure = |cfg: &ScheduleConfig| f(cfg);
        let old = old_tune(&def, &hw, &options, &mut old_measure);

        let mut session = TuningSession::new(&def, &hw, &options).unwrap();
        let mut new_measure = |t: &Trace| -> Option<f64> {
            let cfg = ScheduleConfig::from_trace(t).expect("upmem trace carries knobs");
            f(&cfg)
        };
        let new = session.run(
            &mut SequentialMeasurer::new(&mut new_measure),
            &Budget::unlimited(),
            &mut NullObserver,
        );

        assert_eq!(new.measured, old.measured, "{}: measured", def.name);
        assert_eq!(new.failed, old.failed, "{}: failed", def.name);
        assert_eq!(new.rejected, old.rejected, "{}: rejected", def.name);
        assert_eq!(new.history.len(), old.history.len(), "{}", def.name);
        for (i, (rec, (old_cfg, old_lat, old_best))) in
            new.history.iter().zip(&old.history).enumerate()
        {
            assert_eq!(
                ScheduleConfig::from_trace(&rec.trace).as_ref(),
                Some(old_cfg),
                "{}: trial {i} proposes a different candidate",
                def.name
            );
            assert_eq!(
                rec.latency_s.to_bits(),
                old_lat.to_bits(),
                "{}: trial {i} latency",
                def.name
            );
            assert_eq!(
                rec.best_so_far_s.to_bits(),
                old_best.to_bits(),
                "{}: trial {i} best-so-far",
                def.name
            );
        }
        let (new_best, new_lat) = new.best.expect("search succeeds");
        let (old_best, old_lat) = old.best.expect("search succeeds");
        assert_eq!(ScheduleConfig::from_trace(&new_best), Some(old_best));
        assert_eq!(new_lat.to_bits(), old_lat.to_bits());
    }
}
