//! Property tests of the tuning-log persistence layer: JSON encode→decode
//! must be the identity for every `ScheduleConfig`, `Trace`, `TuningRecord`,
//! `TuningResult` and `TuneLog` the tuner can produce.

use atim_autotune::json::{Json, JsonCodec};
use atim_autotune::log::TuneLog;
use atim_autotune::{
    CacheEntry, CacheKey, Decision, ScheduleCache, ScheduleConfig, Trace, TuningRecord,
    TuningResult,
};
use proptest::prelude::*;
use proptest::strategy::ValueTree;

/// Builds an arbitrary-but-plausible `ScheduleConfig` from raw case inputs.
fn config_from(
    dpu_seed: u64,
    axes: usize,
    reduce_pow: u32,
    tasklets: i64,
    cache_pow: u32,
    flags: u8,
    host_pow: u32,
) -> ScheduleConfig {
    let spatial_dpus: Vec<i64> = (0..axes)
        .map(|j| 1i64 << ((dpu_seed >> (4 * j)) % 12))
        .collect();
    ScheduleConfig {
        spatial_dpus,
        reduce_dpus: 1i64 << reduce_pow,
        tasklets,
        cache_elems: 1i64 << cache_pow,
        use_cache: flags & 1 != 0,
        unroll: flags & 2 != 0,
        host_threads: 1usize << host_pow,
        parallel_transfer: flags & 4 != 0,
    }
}

/// A finite, positive latency derived from arbitrary bits: the exact kind of
/// awkward doubles (subnormal-adjacent, many significant digits) the
/// shortest-round-trip encoding must preserve bit-for-bit.
fn latency_from(bits: u64) -> f64 {
    let mantissa = (bits % 900_719_925_474_099) as f64 + 1.0;
    let exponent = ((bits >> 50) % 24) as i32 - 12;
    mantissa * 10f64.powi(exponent) * 1e-9
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn schedule_config_json_round_trip_is_identity(
        dpu_seed in 0u64..u64::MAX,
        axes in 1usize..4,
        reduce_pow in 0u32..7,
        tasklets in 1i64..25,
        cache_pow in 1u32..9,
        flags in 0u8..8,
        host_pow in 0u32..6,
    ) {
        let cfg = config_from(dpu_seed, axes, reduce_pow, tasklets, cache_pow, flags, host_pow);
        let text = cfg.to_json().to_string();
        let back = ScheduleConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(cfg, back);
    }

    #[test]
    fn tuning_record_json_round_trip_is_identity(
        dpu_seed in 0u64..u64::MAX,
        trial in 0usize..1_000_000,
        latency_bits in 0u64..u64::MAX,
        best_bits in 0u64..u64::MAX,
    ) {
        let record = TuningRecord {
            trial,
            trace: config_from(dpu_seed, 2, 3, 16, 6, 5, 3).to_decision_trace(),
            latency_s: latency_from(latency_bits),
            best_so_far_s: latency_from(best_bits),
        };
        let text = record.to_json().to_string();
        let back = TuningRecord::from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(record.trial, back.trial);
        prop_assert_eq!(&record.trace, &back.trace);
        prop_assert_eq!(record.latency_s.to_bits(), back.latency_s.to_bits());
        prop_assert_eq!(record.best_so_far_s.to_bits(), back.best_so_far_s.to_bits());
    }

    #[test]
    fn trace_json_round_trip_is_identity(
        sketch_seed in 0u64..4,
        sites in 1usize..12,
        value_seed in 0u64..u64::MAX,
    ) {
        // Random traces over random decision sites — not just the UPMEM
        // sketch's — must survive the codec with identity (Eq and Hash)
        // intact.
        let sketch = ["upmem", "custom", "sketch-α", "with \"quotes\""][sketch_seed as usize];
        let decisions: Vec<(String, Decision)> = (0..sites)
            .map(|i| {
                let bits = value_seed.rotate_left(7 * i as u32);
                let site = format!("site_{i}.{}", bits % 10);
                let decision = if bits % 3 == 0 {
                    Decision::Bool(bits % 2 == 0)
                } else {
                    Decision::Int((bits % 100_000) as i64 - 50_000)
                };
                (site, decision)
            })
            .collect();
        let trace = Trace::from_decisions(sketch, decisions);
        let text = trace.to_json().to_string();
        let back = Trace::from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(&back, &trace);
        prop_assert_eq!(back.sketch(), trace.sketch());
        let pairs: Vec<(String, Decision)> =
            trace.decisions().map(|(s, d)| (s.to_string(), d)).collect();
        let back_pairs: Vec<(String, Decision)> =
            back.decisions().map(|(s, d)| (s.to_string(), d)).collect();
        prop_assert_eq!(pairs, back_pairs);
    }

    #[test]
    fn materialized_upmem_traces_round_trip_to_their_decision_twin(
        dpu_seed in 0u64..u64::MAX,
        axes in 1usize..3,
        reduce_pow in 0u32..7,
        tasklets in 1i64..25,
        cache_pow in 1u32..9,
        flags in 0u8..8,
    ) {
        use atim_tir::compute::ComputeDef;
        let cfg = config_from(dpu_seed, axes, reduce_pow, tasklets, cache_pow, flags, 2);
        let def = if axes == 1 {
            ComputeDef::va("va", 4096)
        } else {
            ComputeDef::mtv("mtv", 512, 256)
        };
        let full = cfg.to_trace(&def);
        let back = Trace::from_json(&Json::parse(&full.to_json().to_string()).unwrap()).unwrap();
        // The codec persists decisions only, and identity is decisions-only,
        // so the decoded twin is equal and recovers the exact knob vector.
        prop_assert_eq!(&back, &full);
        prop_assert_eq!(ScheduleConfig::from_trace(&back), Some(cfg));
    }

    #[test]
    fn tune_log_json_round_trip_is_identity(
        dpu_seed in 0u64..u64::MAX,
        records in 0usize..8,
        latency_bits in 0u64..u64::MAX,
        failed in 0usize..100,
        rejected in 0usize..100,
        seed in 0u64..u64::MAX,
        has_best in 0u8..2,
    ) {
        let history: Vec<TuningRecord> = (0..records)
            .map(|i| {
                let latency = latency_from(latency_bits.wrapping_add(i as u64 * 0x9E37_79B9));
                TuningRecord {
                    trial: i,
                    trace: config_from(dpu_seed.wrapping_add(i as u64), 1 + i % 3, 2, 8, 5, i as u8 % 8, 2)
                        .to_decision_trace(),
                    latency_s: latency,
                    best_so_far_s: latency,
                }
            })
            .collect();
        let best = if has_best == 1 && !history.is_empty() {
            Some((history[0].trace.clone(), history[0].latency_s))
        } else {
            None
        };
        let result = TuningResult {
            best,
            history,
            measured: records,
            failed,
            rejected,
        };
        let log = TuneLog::new("proptest-workload \"escaped\"", seed, result);
        let back = TuneLog::from_json_str(&log.to_json_string()).unwrap();
        prop_assert_eq!(&back.workload, &log.workload);
        prop_assert_eq!(back.seed, log.seed);
        prop_assert_eq!(&back.result.best, &log.result.best);
        prop_assert_eq!(&back.result.history, &log.result.history);
        prop_assert_eq!(back.result.measured, log.result.measured);
        prop_assert_eq!(back.result.failed, log.result.failed);
        prop_assert_eq!(back.result.rejected, log.result.rejected);
    }
}

/// Builds an arbitrary cache entry; `key_bits` selects the coordinates,
/// `entry_bits` the payload, so callers control key collisions precisely.
fn cache_entry_from(key_bits: u64, entry_bits: u64) -> CacheEntry {
    CacheEntry {
        key: CacheKey {
            workload: format!("wl{}", key_bits % 5),
            shape: (0..1 + key_bits % 3)
                .map(|i| 1 + ((key_bits >> (8 * i)) % 4096) as i64)
                .collect(),
            machine: format!("sim/{:016x}", key_bits.rotate_left(17)),
            generator: if key_bits & 64 != 0 {
                "upmem-sketch"
            } else {
                "custom"
            }
            .into(),
        },
        trace: config_from(
            entry_bits,
            2,
            3,
            1 + (entry_bits % 24) as i64,
            6,
            entry_bits as u8 % 8,
            2,
        )
        .to_decision_trace(),
        latency_s: latency_from(entry_bits),
        seed: entry_bits.rotate_right(9),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cache_entry_json_round_trip_is_identity(
        key_bits in 0u64..u64::MAX,
        entry_bits in 0u64..u64::MAX,
    ) {
        let entry = cache_entry_from(key_bits, entry_bits);
        let text = entry.to_json().to_string();
        let back = CacheEntry::from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(back, entry);
    }

    /// Serialize → parse is lossless for whole files, for any mix of
    /// distinct and colliding keys.
    #[test]
    fn cache_file_round_trip_preserves_every_winner(
        seed_bits in 0u64..u64::MAX,
        entries in 1usize..12,
    ) {
        let mut cache = ScheduleCache::new();
        for i in 0..entries {
            let bits = seed_bits.wrapping_add(i as u64 * 0x9E37_79B9);
            cache.insert(cache_entry_from(bits % 97, bits));
        }
        let back = ScheduleCache::from_json_lines(&cache.to_json_lines()).unwrap();
        prop_assert_eq!(back.len(), cache.len());
        for entry in cache.entries() {
            prop_assert_eq!(back.lookup(&entry.key), Some(entry));
        }
    }

    /// A cache file truncated mid-append — any byte boundary inside its
    /// final line — still loads, recovering every completed line, exactly
    /// like the streaming `TuneLog` tolerance.
    #[test]
    fn truncated_cache_files_recover_all_complete_lines(
        seed_bits in 0u64..u64::MAX,
        entries in 1usize..8,
        cut_bits in 0u64..u64::MAX,
    ) {
        // Distinct keys so the recovered count is exactly the line count.
        let all: Vec<CacheEntry> = (0..entries)
            .map(|i| cache_entry_from(i as u64, seed_bits.wrapping_add(i as u64 * 0x9E37_79B9)))
            .collect();
        let mut text = String::new();
        for entry in &all {
            text.push_str(&entry.to_json().to_string());
            text.push('\n');
        }
        let last_line_start = text[..text.len() - 1].rfind('\n').map_or(0, |p| p + 1);
        // Cut anywhere strictly inside the last line (a torn final append).
        let span = text.len() - last_line_start - 1;
        let cut = last_line_start + 1 + (cut_bits % span.max(1) as u64) as usize;
        let torn = &text[..cut.min(text.len() - 1)];

        let recovered = ScheduleCache::from_json_lines(torn).unwrap();
        prop_assert_eq!(recovered.len(), entries - 1);
        for entry in &all[..entries - 1] {
            prop_assert_eq!(recovered.lookup(&entry.key), Some(entry));
        }
    }

    /// The merged view of a cache is a pure function of its entry *set*:
    /// replaying the same entries in opposite orders elects the same
    /// winner (the strictly-better-latency, deterministically tie-broken
    /// one) for every key.
    #[test]
    fn winner_selection_is_append_order_independent(
        seed_bits in 0u64..u64::MAX,
        entries in 1usize..10,
        keys in 1u64..4,
    ) {
        let all: Vec<CacheEntry> = (0..entries)
            .map(|i| {
                let bits = seed_bits.wrapping_add(i as u64 * 0xC2B2_AE35);
                cache_entry_from(bits % keys, bits)
            })
            .collect();
        let mut forward = ScheduleCache::new();
        let mut backward = ScheduleCache::new();
        for entry in &all {
            forward.insert(entry.clone());
        }
        for entry in all.iter().rev() {
            backward.insert(entry.clone());
        }
        prop_assert_eq!(forward.len(), backward.len());
        for entry in forward.entries() {
            prop_assert_eq!(backward.lookup(&entry.key), Some(entry));
        }
    }
}

/// Exhaustive-ish float round-trip over deterministically generated bit
/// patterns, independent of the proptest strategies above.
#[test]
fn f64_shortest_round_trip_holds_for_many_bit_patterns() {
    let mut runner = proptest::test_runner::TestRunner::deterministic();
    for _ in 0..4096 {
        let bits = (0u64..u64::MAX).new_tree(&mut runner).unwrap().current();
        let v = f64::from_bits(bits);
        if !v.is_finite() {
            continue;
        }
        let text = Json::Float(v).to_string();
        let back = Json::parse(&text).unwrap().as_f64().unwrap();
        assert_eq!(v.to_bits(), back.to_bits(), "{v:?} -> {text}");
    }
}
