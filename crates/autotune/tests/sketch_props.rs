//! Property tests of the sketch-rule generators (`tiled`, `hw-native`):
//!
//! 1. **Replay identity** — every trace a rule-built generator samples
//!    re-materializes bit-identically (same instruction stream, same
//!    registers), its decisions-only twin (the form tuning logs persist)
//!    recovers the identical full trace, and the verifier reaches the same
//!    verdict on both.
//! 2. **Operator validity** — decision mutation and crossover on
//!    variable-length decision lists (different workloads, different tiling
//!    depths, even corrupted decision values) always yield traces the
//!    owning generator can materialize, and materialization is idempotent.

use atim_autotune::{
    verify_trace, Decision, HardwareNativeGenerator, SpaceGenerator, TiledSketchGenerator, Trace,
};
use atim_sim::UpmemConfig;
use atim_tir::compute::ComputeDef;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A pool of small-but-shape-diverse workloads: the classic paper kernels
/// plus the three sketch-space workloads (batched GEMM, the fused
/// attention block, int8 GEMV), with deliberately awkward extents mixed in.
fn def_from(idx: usize) -> ComputeDef {
    match idx % 9 {
        0 => ComputeDef::va("va", 4096),
        1 => ComputeDef::red("red", 1024),
        2 => ComputeDef::mtv("mtv", 96, 112),
        3 => ComputeDef::mmtv("mmtv", 4, 32, 64),
        4 => ComputeDef::gemv("gemv_odd", 97, 103, 1.5),
        5 => ComputeDef::bgemm("bgemm", 4, 16, 16, 32),
        6 => ComputeDef::attn("attn", 8, 32, 64),
        7 => ComputeDef::qgemv("qgemv", 128, 160),
        _ => ComputeDef::ttv("ttv", 4, 48, 32),
    }
}

/// One of the rule-built resident generators; `native` selects the
/// hardware-native space, otherwise a tiled space of depth `levels`.
fn generator_from(native: bool, levels: usize) -> Box<dyn SpaceGenerator> {
    if native {
        Box::new(HardwareNativeGenerator::default())
    } else {
        Box::new(TiledSketchGenerator::new(levels))
    }
}

/// The decisions-only twin of a trace — what a `TuneLog` or cache entry
/// stores.
fn thin(trace: &Trace) -> Trace {
    Trace::from_decisions(
        trace.sketch().to_string(),
        trace
            .decisions()
            .map(|(s, d)| (s.to_string(), d))
            .collect::<Vec<_>>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Sampled traces replay bit-identically through `materialize`, their
    /// decisions-only twins recover the full instruction stream, and
    /// `verify_trace` agrees on the original and the replay.
    #[test]
    fn sampled_traces_replay_bit_identically(
        seed in 0u64..u64::MAX,
        def_idx in 0usize..9,
        levels in 0usize..4,
        native_bit in 0u8..2,
        rfactor_bit in 0u8..2,
    ) {
        let (native, rfactor) = (native_bit == 1, rfactor_bit == 1);
        let def = def_from(def_idx);
        let hw = UpmemConfig::default();
        let gen = generator_from(native, levels);
        let mut rng = StdRng::seed_from_u64(seed);
        let t = gen.sample(&mut rng, &def, &hw, rfactor && def.has_reduce());
        prop_assert!(t.is_materialized(), "sample must be materialized");
        prop_assert!(t.decisions().count() > 0, "sample records no decisions");

        let again = gen.materialize(&t, &def, &hw).unwrap();
        prop_assert_eq!(again.insts(), t.insts(), "instruction streams diverge");
        prop_assert_eq!(again.regs(), t.regs());
        prop_assert_eq!(&again, &t);

        let full = gen.materialize(&thin(&t), &def, &hw).unwrap();
        prop_assert_eq!(full.insts(), t.insts(), "decisions-only twin diverges");
        prop_assert_eq!(full.regs(), t.regs());

        prop_assert_eq!(
            verify_trace(&t, &def, &hw).is_ok(),
            verify_trace(&again, &def, &hw).is_ok(),
            "verifier verdict changed across replay"
        );
    }

    /// Chains of mutations stay in-family: every link is materialized,
    /// carries the same sketch tag and the same decision-site list (a pure
    /// function of the workload), and replays bit-identically.
    #[test]
    fn mutation_chains_always_yield_valid_traces(
        seed in 0u64..u64::MAX,
        def_idx in 0usize..9,
        levels in 0usize..4,
        native_bit in 0u8..2,
        steps in 1usize..6,
    ) {
        let native = native_bit == 1;
        let def = def_from(def_idx);
        let hw = UpmemConfig::default();
        let gen = generator_from(native, levels);
        let mut rng = StdRng::seed_from_u64(seed);
        let base = gen.sample(&mut rng, &def, &hw, false);
        let sites: Vec<String> = base.decisions().map(|(s, _)| s.to_string()).collect();

        let mut current = base;
        for step in 0..steps {
            current = gen.mutate(&mut rng, &def, &hw, &current);
            prop_assert_eq!(current.sketch(), gen.name(), "step {} left the family", step);
            prop_assert!(current.is_materialized(), "step {} not materialized", step);
            let now: Vec<String> = current.decisions().map(|(s, _)| s.to_string()).collect();
            prop_assert_eq!(&now, &sites, "step {} changed the site list", step);
            let again = gen.materialize(&current, &def, &hw).unwrap();
            prop_assert_eq!(again.insts(), current.insts(), "step {} does not replay", step);
        }
    }

    /// Crossover between decision lists of *different lengths* — parents
    /// sampled from tiled spaces of different depths share the `tiled` tag
    /// but not the site list — always yields a trace the deeper space can
    /// materialize, bit-identically.
    #[test]
    fn crossover_of_variable_length_lists_yields_valid_traces(
        seed in 0u64..u64::MAX,
        def_idx in 0usize..9,
        levels_a in 0usize..4,
        levels_b in 0usize..4,
    ) {
        let def = def_from(def_idx);
        let hw = UpmemConfig::default();
        let gen_a = TiledSketchGenerator::new(levels_a);
        let gen_b = TiledSketchGenerator::new(levels_b);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = gen_a.sample(&mut rng, &def, &hw, false);
        let b = gen_b.sample(&mut rng, &def, &hw, def.has_reduce());

        let child = gen_a.crossover(&mut rng, &def, &hw, &a, &b);
        prop_assert_eq!(child.sketch(), gen_a.name());
        prop_assert!(child.is_materialized(), "crossover child not materialized");
        let again = gen_a.materialize(&child, &def, &hw).unwrap();
        prop_assert_eq!(again.insts(), child.insts(), "crossover child does not replay");
        // The child's sites are gen_a's sites — crossover never smuggles
        // foreign sites in or drops native ones.
        let child_sites: Vec<String> = child.decisions().map(|(s, _)| s.to_string()).collect();
        let a_sites: Vec<String> = a.decisions().map(|(s, _)| s.to_string()).collect();
        prop_assert_eq!(child_sites, a_sites);
    }

    /// Corrupted decision values (arbitrary integers written over a valid
    /// trace, as a hand-edited log or a buggy client could produce) never
    /// break materialization: values are clamped at their use sites, the
    /// recorded decisions are preserved verbatim, and materialization is
    /// idempotent.
    #[test]
    fn corrupted_decision_values_still_materialize_idempotently(
        seed in 0u64..u64::MAX,
        def_idx in 0usize..9,
        levels in 0usize..4,
        native_bit in 0u8..2,
        noise in 0u64..u64::MAX,
    ) {
        let native = native_bit == 1;
        let def = def_from(def_idx);
        let hw = UpmemConfig::default();
        let gen = generator_from(native, levels);
        let mut rng = StdRng::seed_from_u64(seed);
        let base = gen.sample(&mut rng, &def, &hw, false);

        let corrupted: Vec<(String, Decision)> = base
            .decisions()
            .enumerate()
            .map(|(i, (s, d))| {
                let bits = noise.rotate_left(11 * i as u32);
                let value = match d {
                    Decision::Int(_) => Decision::Int((bits % 100_000) as i64 - 50_000),
                    Decision::Bool(_) => Decision::Bool(bits % 2 == 0),
                };
                (s.to_string(), value)
            })
            .collect();
        let forged = Trace::from_decisions(base.sketch().to_string(), corrupted);

        let once = gen.materialize(&forged, &def, &hw).unwrap();
        prop_assert!(once.is_materialized());
        // Decisions survive verbatim — clamping happens at use sites only.
        let forged_pairs: Vec<(String, Decision)> =
            forged.decisions().map(|(s, d)| (s.to_string(), d)).collect();
        let once_pairs: Vec<(String, Decision)> =
            once.decisions().map(|(s, d)| (s.to_string(), d)).collect();
        prop_assert_eq!(&once_pairs, &forged_pairs);

        let twice = gen.materialize(&once, &def, &hw).unwrap();
        prop_assert_eq!(twice.insts(), once.insts(), "materialization not idempotent");
        prop_assert_eq!(twice.regs(), once.regs());
    }
}
