//! The resumable tuning session: Fig. 6's loop split into inspectable steps.
//!
//! [`TuningSession`] owns the search state (design space, RNG, candidate
//! database, cost model, history) and exposes the loop one round at a time:
//! [`TuningSession::next_batch`] generates, verifies and ranks the next
//! round's candidates, the caller measures them however it likes, and
//! [`TuningSession::record_batch`] feeds the results back.  The convenience
//! driver [`TuningSession::run`] ties the two together with a
//! [`BatchMeasurer`], a [`Budget`] (trial, wall-clock and early-stop limits)
//! and a [`TuningObserver`] that streams progress as it happens.
//!
//! Because the session never hides its state behind a blocking call, a
//! caller can pause between rounds, persist the history to a
//! [`crate::log::TuneLog`], change the measurement backend, or stop on any
//! condition the [`Budget`] does not already cover.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use atim_sim::UpmemConfig;
use atim_tir::compute::ComputeDef;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cost_model::{featurize, CostEstimator, CostModel, NUM_FEATURES};
use crate::generator::{SpaceGenerator, UpmemSketchGenerator};
use crate::search::CandidateDb;
use crate::trace::Trace;
use crate::tuner::{
    BatchMeasurer, CancelToken, Cancellation, MeasureOutcome, TuningOptions, TuningRecord,
    TuningResult,
};
use crate::verifier::verify_trace;

/// A typed error raised when a tuning session is configured incorrectly.
///
/// Every variant is detected *at session start* ([`TuningSession::new`]), so
/// an invalid configuration can never silently mis-loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuningError {
    /// `trials` was zero: the session would never measure anything.
    ZeroTrials,
    /// `population` was zero: no candidates would ever be generated.
    ZeroPopulation,
    /// `measure_per_round` was zero: rounds would never consume the budget.
    ZeroMeasurePerRound,
    /// `measure_per_round` exceeded `population`: the ranking can never fill
    /// a round's measurement quota.
    MeasureExceedsPopulation {
        /// The configured candidates-measured-per-round.
        measure_per_round: usize,
        /// The configured candidates-generated-per-round.
        population: usize,
    },
    /// An unknown cost-estimator name (typically from `ATIM_COST_MODEL`):
    /// the session would silently tune with the wrong model.
    InvalidCostModel {
        /// The rejected estimator name.
        value: String,
    },
    /// An unknown space-generator id (typically from
    /// `ATIM_SPACE_GENERATOR`): the session would silently search the
    /// wrong schedule space.
    InvalidSpaceGenerator {
        /// The rejected generator id.
        value: String,
    },
}

impl fmt::Display for TuningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuningError::ZeroTrials => {
                write!(f, "invalid tuning options: trials must be > 0")
            }
            TuningError::ZeroPopulation => {
                write!(f, "invalid tuning options: population must be > 0")
            }
            TuningError::ZeroMeasurePerRound => {
                write!(f, "invalid tuning options: measure_per_round must be > 0")
            }
            TuningError::MeasureExceedsPopulation {
                measure_per_round,
                population,
            } => write!(
                f,
                "invalid tuning options: measure_per_round ({measure_per_round}) must not \
                 exceed population ({population})"
            ),
            TuningError::InvalidCostModel { value } => write!(
                f,
                "invalid cost model {value:?}: {} must be \"ridge\" or \"gbdt\"",
                crate::cost_model::COST_MODEL_ENV
            ),
            TuningError::InvalidSpaceGenerator { value } => write!(
                f,
                "invalid space generator {value:?}: {} must be one of {:?}",
                crate::sketch::SPACE_GENERATOR_ENV,
                crate::sketch::RESIDENT_GENERATOR_IDS
            ),
        }
    }
}

impl std::error::Error for TuningError {}

/// Validates tuning options, returning the first violated constraint.
///
/// # Errors
/// Returns the corresponding [`TuningError`] variant when `trials`,
/// `population` or `measure_per_round` is zero, or when `measure_per_round`
/// exceeds `population`.
pub fn validate_options(options: &TuningOptions) -> Result<(), TuningError> {
    if options.trials == 0 {
        return Err(TuningError::ZeroTrials);
    }
    if options.population == 0 {
        return Err(TuningError::ZeroPopulation);
    }
    if options.measure_per_round == 0 {
        return Err(TuningError::ZeroMeasurePerRound);
    }
    if options.measure_per_round > options.population {
        return Err(TuningError::MeasureExceedsPopulation {
            measure_per_round: options.measure_per_round,
            population: options.population,
        });
    }
    Ok(())
}

/// Limits on how long one [`TuningSession::run`] call may keep searching,
/// *in addition to* the session's own trial target
/// ([`TuningOptions::trials`]).
///
/// All limits are optional and combine with "whichever hits first"
/// semantics.  The default is [`Budget::unlimited`], which defers entirely
/// to the session's trial target.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budget {
    /// Stop after this many *successful* measurements within this `run`
    /// call (failures never consume budget, matching the trial accounting
    /// of [`TuningResult`]).
    pub max_trials: Option<usize>,
    /// Stop once this much wall-clock time has elapsed.  The deadline is
    /// threaded into the measurer as a [`Cancellation`], so cancellation-
    /// aware measurers (all in-tree ones) stop *mid-round*; a measurer that
    /// ignores it still stops at the next round boundary.
    pub max_wall_clock: Option<Duration>,
    /// Early-stop: give up after this many successful measurements in a row
    /// without improving the best latency.
    pub stall_trials: Option<usize>,
    /// Cooperative cancellation: when this token fires, the run stops — in
    /// the middle of a round for cancellation-aware measurers.
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// No limits beyond the session's own trial target.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Limits successful measurements within one `run` call.
    pub fn trials(n: usize) -> Self {
        Budget {
            max_trials: Some(n),
            ..Budget::default()
        }
    }

    /// Limits wall-clock time of one `run` call.
    pub fn wall_clock(limit: Duration) -> Self {
        Budget {
            max_wall_clock: Some(limit),
            ..Budget::default()
        }
    }

    /// Adds a trial limit to an existing budget.
    pub fn with_trials(mut self, n: usize) -> Self {
        self.max_trials = Some(n);
        self
    }

    /// Adds a wall-clock limit to an existing budget.
    pub fn with_wall_clock(mut self, limit: Duration) -> Self {
        self.max_wall_clock = Some(limit);
        self
    }

    /// Adds an early-stop window: stop after `n` successful measurements
    /// without a new best.
    pub fn with_early_stop(mut self, n: usize) -> Self {
        self.stall_trials = Some(n);
        self
    }

    /// Attaches a cooperative [`CancelToken`]: firing it (from any thread)
    /// stops the run, mid-round for cancellation-aware measurers.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// Why a [`TuningSession::run`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The session reached its [`TuningOptions::trials`] target (or ran out
    /// of rounds without finding new verifiable candidates).
    SearchComplete,
    /// [`Budget::max_trials`] was hit.
    TrialBudget,
    /// [`Budget::max_wall_clock`] was hit.
    WallClock,
    /// [`Budget::stall_trials`] measurements passed without improvement.
    EarlyStop,
    /// The [`Budget::cancel`] token was fired.
    Cancelled,
}

/// Streaming callbacks fired by [`TuningSession::record_batch`] and
/// [`TuningSession::run`] as the search progresses.
///
/// Every method has an empty default body, so observers implement only what
/// they care about.  Exactly one [`TuningObserver::on_trial`] call is fired
/// per successful measurement.
pub trait TuningObserver {
    /// A new search round began: `measured` trials done so far.
    fn on_round_start(&mut self, round: usize, measured: usize) {
        let _ = (round, measured);
    }

    /// One candidate was measured successfully (one call per trial).
    fn on_trial(&mut self, record: &TuningRecord) {
        let _ = record;
    }

    /// One candidate failed to build or run (does not consume budget).
    fn on_trial_failed(&mut self, trace: &Trace) {
        let _ = trace;
    }

    /// The best latency improved; `record` is the trial that improved it.
    fn on_best_improved(&mut self, record: &TuningRecord) {
        let _ = record;
    }

    /// A `run` call finished with the given result and reason.
    fn on_finish(&mut self, result: &TuningResult, reason: StopReason) {
        let _ = (result, reason);
    }
}

/// The do-nothing observer (the default for callers that only want the
/// final [`TuningResult`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl TuningObserver for NullObserver {}

/// A resumable autotuning session over one workload on one machine.
///
/// Holds every piece of state the Fig. 6 loop accumulates — candidate
/// database, cost-model training samples, per-trial history — and exposes
/// the loop incrementally.  Dropping the session between `run` calls loses
/// nothing: persist [`TuningSession::result`] to a
/// [`crate::log::TuneLog`] and warm-start a future session from it.
pub struct TuningSession {
    def: ComputeDef,
    hw: UpmemConfig,
    options: TuningOptions,
    generator: Arc<dyn SpaceGenerator>,
    rng: StdRng,
    db: CandidateDb,
    model: Box<dyn CostEstimator>,
    samples: Vec<([f64; NUM_FEATURES], f64)>,
    history: Vec<TuningRecord>,
    measured: usize,
    failed: usize,
    rejected: usize,
    round: usize,
    max_rounds: usize,
}

impl fmt::Debug for TuningSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TuningSession")
            .field("workload", &self.def.name)
            .field("measured", &self.measured)
            .field("failed", &self.failed)
            .field("rejected", &self.rejected)
            .field("round", &self.round)
            .finish()
    }
}

impl TuningSession {
    /// Creates a session over the default UPMEM sketch space, validating
    /// the options up front.
    ///
    /// # Errors
    /// Returns a [`TuningError`] when the options are inconsistent (zero
    /// trials/population/measure-per-round, or a per-round quota larger
    /// than the population).
    pub fn new(
        def: &ComputeDef,
        hw: &UpmemConfig,
        options: &TuningOptions,
    ) -> Result<Self, TuningError> {
        Self::with_generator(def, hw, options, Arc::new(UpmemSketchGenerator))
    }

    /// Creates a session over a custom [`SpaceGenerator`] — the pluggable
    /// seam for new workload families and sketch designs.
    ///
    /// # Errors
    /// Returns a [`TuningError`] when the options are inconsistent, exactly
    /// as [`TuningSession::new`].
    pub fn with_generator(
        def: &ComputeDef,
        hw: &UpmemConfig,
        options: &TuningOptions,
        generator: Arc<dyn SpaceGenerator>,
    ) -> Result<Self, TuningError> {
        validate_options(options)?;
        let max_rounds = options.trials * 8 / options.measure_per_round + 8;
        Ok(TuningSession {
            def: def.clone(),
            hw: hw.clone(),
            options: options.clone(),
            generator,
            rng: StdRng::seed_from_u64(options.seed),
            db: CandidateDb::new(),
            model: Box::new(CostModel::new()),
            samples: Vec::new(),
            history: Vec::new(),
            measured: 0,
            failed: 0,
            rejected: 0,
            round: 0,
            max_rounds,
        })
    }

    /// Replaces the session's cost estimator — the pluggable seam for
    /// learned models beyond the default ridge regression (the `atim-model`
    /// crate's gradient-boosted trees enter here).
    ///
    /// A pretrained estimator (e.g. a corpus-trained global model) is used
    /// as-is until the first round's measurements arrive, so a fresh session
    /// on an unseen shape ranks its very first batch with transferred
    /// knowledge instead of measuring blind.  Samples already recorded in
    /// this session (seeded or measured) are immediately fit into the new
    /// estimator.
    pub fn with_cost_estimator(mut self, estimator: Box<dyn CostEstimator>) -> Self {
        self.model = estimator;
        if !self.samples.is_empty() {
            self.model.fit(&self.samples);
        }
        self
    }

    /// The cost estimator currently ranking this session's candidates.
    pub fn cost_estimator(&self) -> &dyn CostEstimator {
        &*self.model
    }

    /// The workload this session tunes.
    pub fn def(&self) -> &ComputeDef {
        &self.def
    }

    /// The options the session was created with.
    pub fn options(&self) -> &TuningOptions {
        &self.options
    }

    /// The space generator proposing this session's candidates.
    pub fn generator(&self) -> &Arc<dyn SpaceGenerator> {
        &self.generator
    }

    /// Successful measurements so far (the consumed trial budget).
    pub fn measured(&self) -> usize {
        self.measured
    }

    /// Failed measurements so far (not charged against the budget).
    pub fn failed(&self) -> usize {
        self.failed
    }

    /// Candidates rejected by the UPMEM verifier so far.
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Per-trial history so far.
    pub fn history(&self) -> &[TuningRecord] {
        &self.history
    }

    /// The best trace and latency found so far.
    pub fn best(&self) -> Option<(&Trace, f64)> {
        self.db.best().map(|e| (&e.trace, e.latency_s))
    }

    /// Whether the session has reached its trial target or exhausted its
    /// round allowance.
    pub fn finished(&self) -> bool {
        self.measured >= self.options.trials || self.round >= self.max_rounds
    }

    /// Generates, verifies and cost-model-ranks the next round's batch of
    /// candidates to measure (at most `measure_per_round`, never more than
    /// the remaining trial budget).
    ///
    /// Returns `None` once the session is [`TuningSession::finished`].
    /// Rounds whose entire population is rejected by the verifier are
    /// skipped internally (they consume round allowance, as the blocking
    /// driver always did, but produce no batch).
    pub fn next_batch(&mut self) -> Option<Vec<Trace>> {
        loop {
            if self.finished() {
                return None;
            }
            self.round += 1;
            let progress = self.measured as f64 / self.options.trials as f64;
            let epsilon = self.options.strategy.epsilon_at(progress);
            let balanced = self.options.strategy.balanced_at(progress);
            let crossover = self.options.strategy.crossover_prob;

            // --- Design space generation + evolution --------------------------
            // Exploitation mutates (or, with `crossover_prob` set, crosses
            // over) the *decisions* of database parents; exploration samples
            // fresh traces from the generator's sketches.
            let mut candidates: Vec<Trace> = Vec::with_capacity(self.options.population);
            let parents = self.db.top_k(16, balanced);
            for i in 0..self.options.population {
                let with_rfactor = self.generator.supports_rfactor(&self.def) && i % 2 == 0;
                let explore = parents.is_empty() || self.rng.gen_bool(epsilon);
                let cand = if explore {
                    self.generator
                        .sample(&mut self.rng, &self.def, &self.hw, with_rfactor)
                } else {
                    let parent = parents[self.rng.gen_range(0..parents.len())];
                    // The crossover coin is only tossed when the knob is on,
                    // so the default configuration consumes the exact RNG
                    // sequence of the pre-trace tuner (fixed-seed replays).
                    if crossover > 0.0 && parents.len() >= 2 && self.rng.gen_bool(crossover) {
                        let other = parents[self.rng.gen_range(0..parents.len())];
                        self.generator.crossover(
                            &mut self.rng,
                            &self.def,
                            &self.hw,
                            &parent.trace,
                            &other.trace,
                        )
                    } else {
                        self.generator
                            .mutate(&mut self.rng, &self.def, &self.hw, &parent.trace)
                    }
                };
                candidates.push(cand);
            }

            // --- Verification -------------------------------------------------
            let mut verified: Vec<Trace> = Vec::new();
            let mut seen: HashSet<Trace> = HashSet::with_capacity(candidates.len());
            for cand in candidates {
                if self.db.contains(&cand) || !seen.insert(cand.clone()) {
                    continue;
                }
                match verify_trace(&cand, &self.def, &self.hw) {
                    Ok(_) => verified.push(cand),
                    Err(_) => self.rejected += 1,
                }
            }
            if verified.is_empty() {
                continue;
            }

            // --- Cost-model ranking -------------------------------------------
            // Equal predicted scores (every candidate, while the model is
            // untrained) break on trace identity, so the measured prefix is
            // a function of *which* candidates survived — not of generation
            // order, the estimator implementation, or platform float
            // quirks.
            let mut ranked: Vec<(f64, String, Trace)> = verified
                .into_iter()
                .map(|c| {
                    let score = self.model.predict(&featurize(&c, &self.def, &self.hw));
                    (score, c.to_string(), c)
                })
                .collect();
            ranked.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.1.cmp(&b.1))
            });

            let budget = self
                .options
                .measure_per_round
                .min(self.options.trials - self.measured);
            return Some(
                ranked
                    .into_iter()
                    .take(budget)
                    .map(|(_, _, cand)| cand)
                    .collect(),
            );
        }
    }

    /// Records one measured batch (results slot-aligned with `batch`),
    /// updating the database, history and cost model, and firing one
    /// observer callback per candidate.
    ///
    /// # Panics
    /// Panics if `results.len() != batch.len()` — a batch measurer must
    /// return one result per candidate.
    pub fn record_batch(
        &mut self,
        batch: &[Trace],
        results: Vec<Option<f64>>,
        observer: &mut dyn TuningObserver,
    ) {
        self.record_outcomes(
            batch,
            results
                .into_iter()
                .map(MeasureOutcome::from_result)
                .collect(),
            observer,
        );
    }

    /// Records one cancellable measured batch: [`MeasureOutcome::Skipped`]
    /// candidates are ignored entirely (not failures, not trials — a later
    /// round may re-propose them); the rest behave as in
    /// [`TuningSession::record_batch`].
    ///
    /// # Panics
    /// Panics if `outcomes.len() != batch.len()`.
    pub fn record_outcomes(
        &mut self,
        batch: &[Trace],
        outcomes: Vec<MeasureOutcome>,
        observer: &mut dyn TuningObserver,
    ) {
        assert_eq!(
            outcomes.len(),
            batch.len(),
            "BatchMeasurer must return one result per candidate"
        );
        for (cand, outcome) in batch.iter().zip(outcomes) {
            let latency = match outcome {
                MeasureOutcome::Measured(latency) => latency,
                MeasureOutcome::Failed => {
                    self.failed += 1;
                    observer.on_trial_failed(cand);
                    continue;
                }
                MeasureOutcome::Skipped => continue,
            };
            let improved = self
                .db
                .best()
                .map(|e| latency < e.latency_s)
                .unwrap_or(true);
            self.samples
                .push((featurize(cand, &self.def, &self.hw), latency));
            self.db.insert(cand.clone(), latency);
            let record = TuningRecord {
                trial: self.measured,
                trace: cand.clone(),
                latency_s: latency,
                best_so_far_s: self.db.best().map(|e| e.latency_s).unwrap_or(latency),
            };
            self.measured += 1;
            observer.on_trial(&record);
            if improved {
                observer.on_best_improved(&record);
            }
            self.history.push(record);
        }
        self.model.fit(&self.samples);
    }

    /// Seeds the session with previously measured trials (e.g. from a
    /// [`crate::log::TuneLog`]) *without* consuming trial budget: the
    /// records enter the candidate database and cost-model training set so
    /// the evolutionary search mutates from known-good parents immediately.
    ///
    /// For bit-exact reproduction of an interrupted run, prefer replaying
    /// the log through a [`crate::log::WarmStartMeasurer`] instead — that
    /// path re-drives the identical search trajectory while answering known
    /// measurements from the log.
    pub fn seed_database(&mut self, records: &[TuningRecord]) {
        for rec in records {
            if self.db.contains(&rec.trace) {
                continue;
            }
            self.samples
                .push((featurize(&rec.trace, &self.def, &self.hw), rec.latency_s));
            self.db.insert(rec.trace.clone(), rec.latency_s);
        }
        self.model.fit(&self.samples);
    }

    /// Snapshot of the tuning result so far.
    pub fn result(&self) -> TuningResult {
        TuningResult {
            best: self.db.best().map(|e| (e.trace.clone(), e.latency_s)),
            history: self.history.clone(),
            measured: self.measured,
            failed: self.failed,
            rejected: self.rejected,
        }
    }

    /// Drives the session until the trial target, the budget, or the search
    /// space is exhausted, measuring through `measurer` and streaming
    /// progress to `observer`.
    ///
    /// Can be called repeatedly: each call applies `budget` afresh to the
    /// work done *within that call*, so `run(.., &Budget::trials(10), ..)`
    /// twice performs (up to) 20 measured trials in total.
    pub fn run(
        &mut self,
        measurer: &mut dyn BatchMeasurer,
        budget: &Budget,
        observer: &mut dyn TuningObserver,
    ) -> TuningResult {
        let start = Instant::now();
        let deadline = budget.max_wall_clock.map(|limit| start + limit);
        let cancellation = Cancellation::new(budget.cancel.clone(), deadline);
        let measured_at_start = self.measured;
        let mut best_at_last_improvement = self.db.best().map(|e| e.latency_s);
        let mut trials_since_improvement = 0usize;
        let reason = loop {
            if let Some(max) = budget.max_trials {
                if self.measured - measured_at_start >= max {
                    break StopReason::TrialBudget;
                }
            }
            if cancellation.token_cancelled() {
                break StopReason::Cancelled;
            }
            if cancellation.deadline_passed() {
                break StopReason::WallClock;
            }
            if let Some(stall) = budget.stall_trials {
                if trials_since_improvement >= stall {
                    break StopReason::EarlyStop;
                }
            }
            let Some(batch) = self.next_batch() else {
                break StopReason::SearchComplete;
            };
            observer.on_round_start(self.round, self.measured);
            let measured_before = self.measured;
            let outcomes = measurer.measure_batch_cancellable(&batch, &cancellation);
            let skipped = outcomes
                .iter()
                .filter(|o| matches!(o, MeasureOutcome::Skipped))
                .count();
            self.record_outcomes(&batch, outcomes, observer);
            // Early-stop accounting: count trials since the last new best.
            let new_best = self.db.best().map(|e| e.latency_s);
            if new_best != best_at_last_improvement {
                best_at_last_improvement = new_best;
                trials_since_improvement = 0;
            } else {
                trials_since_improvement += self.measured - measured_before;
            }
            // A measurer that skipped candidates observed the cancellation
            // mid-round; stop without starting another round.
            if skipped > 0 {
                break if cancellation.token_cancelled() {
                    StopReason::Cancelled
                } else {
                    StopReason::WallClock
                };
            }
        };
        let result = self.result();
        observer.on_finish(&result, reason);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::SequentialMeasurer;

    fn analytic(def: &ComputeDef) -> impl FnMut(&Trace) -> Option<f64> {
        let work = def.total_flops() as f64;
        move |t: &Trace| {
            let dpus = t.num_dpus() as f64;
            let tasklets = t.tasklets().min(11) as f64;
            Some((work / (dpus * tasklets) + dpus * 0.001) * 1e-6)
        }
    }

    #[test]
    fn validation_catches_every_inconsistency() {
        let ok = TuningOptions::quick();
        assert!(validate_options(&ok).is_ok());
        assert_eq!(
            validate_options(&TuningOptions {
                trials: 0,
                ..ok.clone()
            }),
            Err(TuningError::ZeroTrials)
        );
        assert_eq!(
            validate_options(&TuningOptions {
                population: 0,
                ..ok.clone()
            }),
            Err(TuningError::ZeroPopulation)
        );
        assert_eq!(
            validate_options(&TuningOptions {
                measure_per_round: 0,
                ..ok.clone()
            }),
            Err(TuningError::ZeroMeasurePerRound)
        );
        let err = validate_options(&TuningOptions {
            measure_per_round: 64,
            population: 8,
            ..ok
        })
        .unwrap_err();
        assert_eq!(
            err,
            TuningError::MeasureExceedsPopulation {
                measure_per_round: 64,
                population: 8
            }
        );
        assert!(err.to_string().contains("64"));
    }

    #[test]
    fn untrained_ranking_orders_the_batch_by_trace_identity() {
        // Round one ranks with an untrained model: every candidate ties, so
        // the batch must come out in trace-identity order — a deterministic
        // prefix that does not depend on generation order.
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let hw = UpmemConfig::default();
        let mut session = TuningSession::new(&def, &hw, &TuningOptions::quick()).unwrap();
        let batch = session.next_batch().expect("first round yields a batch");
        assert!(batch.len() > 1, "need ties to exercise the tie-break");
        let keys: Vec<String> = batch.iter().map(|t| t.to_string()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "equal scores must order by trace identity");
    }

    #[test]
    fn tie_breaking_makes_the_first_batch_estimator_independent() {
        // Two estimators that are untrained (and return *different* neutral
        // constants) must still measure the identical first batch: the
        // tie-break keys on the candidates, not on the estimator.
        struct Constant(f64);
        impl crate::cost_model::CostEstimator for Constant {
            fn name(&self) -> &'static str {
                "constant"
            }
            fn is_trained(&self) -> bool {
                false
            }
            fn fit(&mut self, _samples: &[([f64; NUM_FEATURES], f64)]) {}
            fn predict(&self, _features: &[f64; NUM_FEATURES]) -> f64 {
                self.0
            }
        }
        use crate::cost_model::NUM_FEATURES;
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let hw = UpmemConfig::default();
        let opts = TuningOptions::quick();
        let mut a = TuningSession::new(&def, &hw, &opts)
            .unwrap()
            .with_cost_estimator(Box::new(Constant(1.0)));
        let mut b = TuningSession::new(&def, &hw, &opts)
            .unwrap()
            .with_cost_estimator(Box::new(Constant(42.0)));
        assert_eq!(a.cost_estimator().name(), "constant");
        assert_eq!(a.next_batch(), b.next_batch());
    }

    #[test]
    fn invalid_cost_model_error_names_the_env_var() {
        let err = crate::cost_model::CostModelKind::parse("nonsense").unwrap_err();
        assert_eq!(
            err,
            TuningError::InvalidCostModel {
                value: "nonsense".into()
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("ATIM_COST_MODEL"), "{msg}");
        assert!(msg.contains("nonsense"), "{msg}");
    }

    #[test]
    fn incremental_session_matches_the_blocking_driver() {
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let hw = UpmemConfig::default();
        let opts = TuningOptions {
            trials: 32,
            population: 24,
            measure_per_round: 8,
            ..TuningOptions::default()
        };
        let mut m1 = analytic(&def);
        let blocking = crate::tuner::tune(&def, &hw, &opts, &mut m1);

        let mut session = TuningSession::new(&def, &hw, &opts).unwrap();
        let mut m2 = analytic(&def);
        let mut seq = SequentialMeasurer::new(&mut m2);
        while let Some(batch) = session.next_batch() {
            let results = seq.measure_batch(&batch);
            session.record_batch(&batch, results, &mut NullObserver);
        }
        let incremental = session.result();
        assert_eq!(blocking.best, incremental.best);
        assert_eq!(blocking.history, incremental.history);
        assert_eq!(blocking.measured, incremental.measured);
        assert_eq!(blocking.failed, incremental.failed);
        assert_eq!(blocking.rejected, incremental.rejected);
    }

    #[test]
    fn observer_sees_one_callback_per_measured_trial() {
        #[derive(Default)]
        struct Counter {
            rounds: usize,
            trials: usize,
            failures: usize,
            improvements: usize,
            finished: usize,
        }
        impl TuningObserver for Counter {
            fn on_round_start(&mut self, _round: usize, _measured: usize) {
                self.rounds += 1;
            }
            fn on_trial(&mut self, _record: &TuningRecord) {
                self.trials += 1;
            }
            fn on_trial_failed(&mut self, _trace: &Trace) {
                self.failures += 1;
            }
            fn on_best_improved(&mut self, _record: &TuningRecord) {
                self.improvements += 1;
            }
            fn on_finish(&mut self, _result: &TuningResult, _reason: StopReason) {
                self.finished += 1;
            }
        }

        let def = ComputeDef::mtv("mtv", 512, 512);
        let hw = UpmemConfig::default();
        let opts = TuningOptions::quick();
        let mut session = TuningSession::new(&def, &hw, &opts).unwrap();
        let mut calls = 0usize;
        let mut measurer = |t: &Trace| -> Option<f64> {
            calls += 1;
            if calls % 5 == 0 {
                None
            } else {
                Some(1.0 / t.num_dpus() as f64)
            }
        };
        let mut obs = Counter::default();
        let result = session.run(
            &mut SequentialMeasurer::new(&mut measurer),
            &Budget::unlimited(),
            &mut obs,
        );
        assert_eq!(obs.trials, result.measured, "one on_trial per measurement");
        assert_eq!(obs.failures, result.failed);
        assert!(obs.improvements >= 1);
        assert!(obs.rounds >= 1);
        assert_eq!(obs.finished, 1);
    }

    #[test]
    fn trial_budget_pauses_and_resumes_without_losing_state() {
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let hw = UpmemConfig::default();
        let opts = TuningOptions {
            trials: 32,
            population: 24,
            measure_per_round: 8,
            ..TuningOptions::default()
        };
        let mut m = analytic(&def);
        let fresh = crate::tuner::tune(&def, &hw, &opts, &mut m);

        let mut session = TuningSession::new(&def, &hw, &opts).unwrap();
        let mut m1 = analytic(&def);
        let partial = session.run(
            &mut SequentialMeasurer::new(&mut m1),
            &Budget::trials(16),
            &mut NullObserver,
        );
        assert!(partial.measured >= 16 && partial.measured < 32);
        // Resume: the second run picks up exactly where the first stopped.
        let mut m2 = analytic(&def);
        let full = session.run(
            &mut SequentialMeasurer::new(&mut m2),
            &Budget::unlimited(),
            &mut NullObserver,
        );
        assert_eq!(full.measured, 32);
        assert_eq!(full.best, fresh.best);
        assert_eq!(full.history, fresh.history);
    }

    #[test]
    fn wall_clock_budget_stops_the_run() {
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let hw = UpmemConfig::default();
        let opts = TuningOptions {
            trials: 1_000_000,
            population: 16,
            measure_per_round: 8,
            ..TuningOptions::default()
        };
        let mut session = TuningSession::new(&def, &hw, &opts).unwrap();
        let mut m = analytic(&def);
        let result = session.run(
            &mut SequentialMeasurer::new(&mut m),
            &Budget::wall_clock(Duration::from_millis(50)),
            &mut NullObserver,
        );
        assert!(result.measured < 1_000_000, "wall clock must stop the run");
    }

    #[test]
    fn early_stop_fires_when_the_best_stalls() {
        struct Reason(Option<StopReason>);
        impl TuningObserver for Reason {
            fn on_finish(&mut self, _result: &TuningResult, reason: StopReason) {
                self.0 = Some(reason);
            }
        }
        let def = ComputeDef::mtv("mtv", 256, 256);
        let hw = UpmemConfig::default();
        let opts = TuningOptions {
            trials: 200,
            population: 16,
            measure_per_round: 8,
            ..TuningOptions::default()
        };
        let mut session = TuningSession::new(&def, &hw, &opts).unwrap();
        // A constant measurer can never improve after the first trial.
        let mut m = |_: &Trace| -> Option<f64> { Some(1.0) };
        let mut obs = Reason(None);
        let result = session.run(
            &mut SequentialMeasurer::new(&mut m),
            &Budget::unlimited().with_early_stop(12),
            &mut obs,
        );
        assert!(result.measured < 200);
        assert_eq!(obs.0, Some(StopReason::EarlyStop));
    }

    #[test]
    fn cancel_token_stops_mid_round_without_recording_skipped_candidates() {
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let hw = UpmemConfig::default();
        let opts = TuningOptions {
            trials: 64,
            population: 24,
            measure_per_round: 8,
            ..TuningOptions::default()
        };
        struct Reason(Option<StopReason>);
        impl TuningObserver for Reason {
            fn on_finish(&mut self, _result: &TuningResult, reason: StopReason) {
                self.0 = Some(reason);
            }
        }
        let token = CancelToken::new();
        let mut session = TuningSession::new(&def, &hw, &opts).unwrap();
        // Fire the token after three measurements: the round (8 candidates)
        // must stop early, and the skipped candidates must not be recorded
        // as trials or failures.
        let fire = token.clone();
        let mut calls = 0usize;
        let mut measurer = move |_: &Trace| -> Option<f64> {
            calls += 1;
            if calls == 3 {
                fire.cancel();
            }
            Some(calls as f64 * 1e-6)
        };
        let mut obs = Reason(None);
        let result = session.run(
            &mut SequentialMeasurer::new(&mut measurer),
            &Budget::unlimited().with_cancel_token(token.clone()),
            &mut obs,
        );
        assert_eq!(obs.0, Some(StopReason::Cancelled));
        assert_eq!(result.measured, 3, "only pre-cancellation trials count");
        assert_eq!(result.failed, 0, "skipped candidates are not failures");
        assert!(token.is_cancelled());
        // The session is still resumable after cancellation.
        let mut more = |_: &Trace| -> Option<f64> { Some(1e-3) };
        let resumed = session.run(
            &mut SequentialMeasurer::new(&mut more),
            &Budget::trials(5),
            &mut NullObserver,
        );
        // The trial budget is checked between rounds, so the resumed run
        // completes at least 5 more trials (up to one full extra round).
        assert!(
            resumed.measured >= 8 && resumed.measured <= 3 + 8,
            "resumed {} trials",
            resumed.measured
        );
    }

    #[test]
    fn wall_clock_budget_stops_mid_round_with_cancellation_aware_measurers() {
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let hw = UpmemConfig::default();
        let opts = TuningOptions {
            trials: 1_000_000,
            population: 64,
            measure_per_round: 64,
            ..TuningOptions::default()
        };
        let mut session = TuningSession::new(&def, &hw, &opts).unwrap();
        let mut measurer = |t: &Trace| -> Option<f64> {
            std::thread::sleep(Duration::from_millis(10));
            Some(1.0 / t.num_dpus() as f64)
        };
        let result = session.run(
            &mut SequentialMeasurer::new(&mut measurer),
            &Budget::wall_clock(Duration::from_millis(35)),
            &mut NullObserver,
        );
        // Pre-cancellation behavior measured at least one full 64-candidate
        // round (~640 ms); the intra-round deadline stops after a handful.
        assert!(
            result.measured < 64,
            "wall clock must stop inside the first round, measured {}",
            result.measured
        );
        assert!(result.measured >= 1);
    }

    #[test]
    fn seeding_the_database_biases_the_search() {
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let hw = UpmemConfig::default();
        let opts = TuningOptions::quick();
        let mut session = TuningSession::new(&def, &hw, &opts).unwrap();
        let good = crate::space::ScheduleConfig::default_for(&def, &hw).to_trace(&def);
        session.seed_database(&[TuningRecord {
            trial: 0,
            trace: good.clone(),
            latency_s: 1e-6,
            best_so_far_s: 1e-6,
        }]);
        assert_eq!(session.best().unwrap().0, &good);
        assert_eq!(session.measured(), 0, "seeding consumes no trial budget");
    }

    #[test]
    fn custom_space_generators_drive_the_whole_session() {
        use crate::generator::SpaceGenerator;
        use crate::trace::{Decision, Instruction, Trace};
        use atim_tir::schedule::Binding;

        /// A miniature foreign sketch: split the first axis across a sampled
        /// number of DPUs, nothing else.
        struct RowSplitGenerator;
        impl RowSplitGenerator {
            fn build(def: &ComputeDef, dpus: i64) -> Trace {
                let extent = def.axes[0].extent;
                let dpus = dpus.clamp(1, extent);
                let mut insts = vec![Instruction::SampleInt {
                    site: "dpus".into(),
                    value: dpus,
                }];
                insts.push(Instruction::GetLoop { axis: 0, dst: 0 });
                if dpus > 1 {
                    let factor = (extent + dpus - 1) / dpus;
                    insts.push(Instruction::Split {
                        lv: 0,
                        factor,
                        outer: 1,
                        inner: 2,
                    });
                    insts.push(Instruction::Bind {
                        lv: 1,
                        binding: Binding::DpuX,
                    });
                }
                insts.push(Instruction::ParallelHost { threads: 1 });
                insts.push(Instruction::ParallelTransfer { enabled: true });
                Trace::new("row-split", insts, 3)
            }
        }
        impl SpaceGenerator for RowSplitGenerator {
            fn name(&self) -> &str {
                "row-split"
            }
            fn sketches(&self, def: &ComputeDef, _hw: &UpmemConfig) -> Vec<Trace> {
                vec![Self::build(def, 1)]
            }
            fn sample(
                &self,
                rng: &mut StdRng,
                def: &ComputeDef,
                _hw: &UpmemConfig,
                _with_rfactor: bool,
            ) -> Trace {
                Self::build(def, 1i64 << rng.gen_range(0..6))
            }
            fn mutate(
                &self,
                rng: &mut StdRng,
                def: &ComputeDef,
                hw: &UpmemConfig,
                _base: &Trace,
            ) -> Trace {
                self.sample(rng, def, hw, false)
            }
            fn materialize(
                &self,
                trace: &Trace,
                def: &ComputeDef,
                _hw: &UpmemConfig,
            ) -> atim_tir::error::Result<Trace> {
                let dpus = trace.int_decision("dpus").unwrap_or(1);
                Ok(Self::build(def, dpus))
            }
            fn supports_rfactor(&self, _def: &ComputeDef) -> bool {
                false
            }
        }

        let def = ComputeDef::va("va", 4096);
        let hw = UpmemConfig::default();
        let opts = TuningOptions::quick();
        let mut session =
            TuningSession::with_generator(&def, &hw, &opts, Arc::new(RowSplitGenerator)).unwrap();
        assert_eq!(session.generator().name(), "row-split");
        let mut measurer =
            |t: &Trace| -> Option<f64> { Some(1.0 / t.int_decision("dpus").unwrap_or(1) as f64) };
        let result = session.run(
            &mut crate::tuner::SequentialMeasurer::new(&mut measurer),
            &Budget::unlimited(),
            &mut NullObserver,
        );
        let (best, _) = result.best.expect("search finds a candidate");
        assert_eq!(best.sketch(), "row-split");
        assert_eq!(
            best.int_decision("dpus"),
            Some(32),
            "the analytic optimum is the largest sampled DPU count"
        );
        // Decisions survive the record path and key the history.
        assert!(result
            .history
            .iter()
            .all(|r| r.trace.int_decision("dpus").is_some()));
        let _ = Decision::Int(1);
    }

    #[test]
    fn crossover_probability_mixes_parent_decisions_and_still_converges() {
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let hw = UpmemConfig::default();
        let opts = TuningOptions {
            trials: 24,
            population: 16,
            measure_per_round: 8,
            strategy: crate::search::SearchStrategy {
                crossover_prob: 0.5,
                ..Default::default()
            },
            ..TuningOptions::default()
        };
        let mut session = TuningSession::new(&def, &hw, &opts).unwrap();
        let mut m = analytic(&def);
        let result = session.run(
            &mut SequentialMeasurer::new(&mut m),
            &Budget::unlimited(),
            &mut NullObserver,
        );
        assert_eq!(result.measured, 24);
        assert!(result.best_latency().is_finite());
    }
}
