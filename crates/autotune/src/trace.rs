//! Schedule traces: the trace-based search space of TVM MetaSchedule,
//! extended with ATiM's UPMEM-aware primitives (§5.2).
//!
//! A [`Trace`] is an ordered, replayable list of [`Instruction`]s.  Two kinds
//! of instruction appear:
//!
//! * **`Sample*` instructions** carry a [`Decision`] recorded at a named
//!   sampling site (`"tasklets"`, `"spatial_dpus.0"`, ...).  They are the
//!   *free variables* of a sketch: the evolutionary search mutates and
//!   crosses over these decisions, the JSON log codec persists them, and
//!   trace identity (`Eq`/`Hash`) is defined over them.
//! * **Structural instructions** mirror the schedule primitives of the
//!   paper's Table 2 (`Split`/`Bind`/`Rfactor`/`Reorder`/`CacheRead`/
//!   `CacheWrite`/`Unroll`/host parallelism/transfer mode).  Replaying them
//!   onto a fresh [`Schedule`] with [`Trace::apply`] deterministically
//!   reconstructs the candidate.  Loops are named by *virtual registers*
//!   (plain indices): `GetLoop` and `Split` define registers, later
//!   instructions consume them, so a trace is self-contained and
//!   workload-portable in a way raw [`LoopRef`]s are not.
//!
//! The structural part is a deterministic function of the decisions (a
//! [`crate::generator::SpaceGenerator`] materializes it), which is why
//! identity ignores it: a decisions-only trace — e.g. decoded from a v2
//! [`crate::log::TuneLog`], or shimmed from a v1 `ScheduleConfig` — compares
//! and hashes equal to its fully materialized twin.  [`Trace::apply`]
//! re-materializes decisions-only traces of the default UPMEM sketch on the
//! fly; traces from custom generators must be re-materialized by their
//! generator first.

use std::fmt;
use std::hash::{Hash, Hasher};

use atim_tir::compute::ComputeDef;
use atim_tir::error::{Result, TirError};
use atim_tir::schedule::{Attach, Binding, LoopRef, Schedule};

/// The sketch tag of traces produced by
/// [`crate::generator::UpmemSketchGenerator`].
pub const UPMEM_SKETCH: &str = "upmem";

/// One recorded sampling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decision {
    /// An integer decision (split factors, DPU/tasklet counts, tile sizes).
    Int(i64),
    /// A boolean decision (caching on/off, unrolling, transfer mode).
    Bool(bool),
}

impl Decision {
    /// The decision as an `i64`, if it is an integer.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Decision::Int(v) => Some(v),
            Decision::Bool(_) => None,
        }
    }

    /// The decision as a `bool`, if it is a boolean.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Decision::Bool(v) => Some(v),
            Decision::Int(_) => None,
        }
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Int(v) => write!(f, "{v}"),
            Decision::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// One instruction of a [`Trace`].
///
/// Loop-valued operands (`lv`, `outer`, `inner`, `at`, `order`) are virtual
/// registers: indices into the trace's register file, defined by `GetLoop`
/// and `Split` and resolved to concrete [`LoopRef`]s during
/// [`Trace::apply`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Records an integer decision at a sampling site.
    SampleInt {
        /// Site name (stable within a sketch family).
        site: String,
        /// The recorded decision.
        value: i64,
    },
    /// Records a boolean decision at a sampling site.
    SampleBool {
        /// Site name (stable within a sketch family).
        site: String,
        /// The recorded decision.
        value: bool,
    },
    /// Loads the first loop iterating `axis` into register `dst`.
    GetLoop {
        /// Axis index in the [`ComputeDef`].
        axis: usize,
        /// Destination register.
        dst: usize,
    },
    /// Splits the loop in `lv` by `factor` into `(outer, inner)` registers.
    Split {
        /// Register of the loop being split (consumed).
        lv: usize,
        /// Inner extent of the split.
        factor: i64,
        /// Register receiving the outer loop.
        outer: usize,
        /// Register receiving the inner loop.
        inner: usize,
    },
    /// Binds the loop in `lv` to a hardware resource.
    Bind {
        /// Register of the loop.
        lv: usize,
        /// DPU grid / tasklet / unroll binding.
        binding: Binding,
    },
    /// Declares hierarchical reduction on the loop in `lv`.
    Rfactor {
        /// Register of the reduction loop.
        lv: usize,
    },
    /// Reorders the listed loops into the given relative order.
    Reorder {
        /// Registers of the loops, outermost first.
        order: Vec<usize>,
    },
    /// Stages input `input` into WRAM at the loop in `at`.
    CacheRead {
        /// Input tensor index.
        input: usize,
        /// Register of the attach loop.
        at: usize,
    },
    /// Accumulates the output in WRAM, written back at the loop in `at`.
    CacheWrite {
        /// Register of the attach loop.
        at: usize,
    },
    /// Marks the loop in `lv` for unrolling.
    Unroll {
        /// Register of the loop.
        lv: usize,
    },
    /// Sets the host post-processing thread count.
    ParallelHost {
        /// Host threads.
        threads: usize,
    },
    /// Selects rank-parallel host transfers (Fig. 7(d)).
    ParallelTransfer {
        /// Whether the rank-parallel push path is used.
        enabled: bool,
    },
}

impl Instruction {
    /// Whether this is a `Sample*` instruction (a decision site).
    pub fn is_sample(&self) -> bool {
        matches!(
            self,
            Instruction::SampleInt { .. } | Instruction::SampleBool { .. }
        )
    }

    /// The `(site, decision)` pair of a `Sample*` instruction.
    pub fn decision(&self) -> Option<(&str, Decision)> {
        match self {
            Instruction::SampleInt { site, value } => Some((site, Decision::Int(*value))),
            Instruction::SampleBool { site, value } => Some((site, Decision::Bool(*value))),
            _ => None,
        }
    }
}

/// An ordered, hashable, replayable schedule trace (sampling decisions plus
/// the structural primitives derived from them).
///
/// Identity (`Eq`/`Hash`) covers the sketch tag and the decision list only —
/// see the module docs for why.  This is what lets the candidate database,
/// measurement memo, dedup set and [`crate::log::WarmStartMeasurer`] key on
/// traces whether or not a given instance happens to carry its structural
/// instructions.
#[derive(Debug, Clone)]
pub struct Trace {
    sketch: String,
    insts: Vec<Instruction>,
    regs: usize,
}

impl Trace {
    /// Builds a trace from instructions.  `regs` is the number of virtual
    /// loop registers the structural instructions reference.
    pub fn new(sketch: impl Into<String>, insts: Vec<Instruction>, regs: usize) -> Self {
        Trace {
            sketch: sketch.into(),
            insts,
            regs,
        }
    }

    /// Builds a decisions-only (unmaterialized) trace from `(site,
    /// decision)` pairs — the form a JSON log decodes to.
    pub fn from_decisions<S: Into<String>>(
        sketch: impl Into<String>,
        decisions: impl IntoIterator<Item = (S, Decision)>,
    ) -> Self {
        let insts = decisions
            .into_iter()
            .map(|(site, decision)| {
                let site = site.into();
                match decision {
                    Decision::Int(value) => Instruction::SampleInt { site, value },
                    Decision::Bool(value) => Instruction::SampleBool { site, value },
                }
            })
            .collect();
        Trace {
            sketch: sketch.into(),
            insts,
            regs: 0,
        }
    }

    /// The sketch family tag (part of trace identity).
    pub fn sketch(&self) -> &str {
        &self.sketch
    }

    /// The instructions, in application order.
    pub fn insts(&self) -> &[Instruction] {
        &self.insts
    }

    /// Number of virtual loop registers the trace references.
    pub fn regs(&self) -> usize {
        self.regs
    }

    /// The decision list, in trace order.
    pub fn decisions(&self) -> impl Iterator<Item = (&str, Decision)> {
        self.insts.iter().filter_map(Instruction::decision)
    }

    /// The integer decision at `site`, if present.
    pub fn int_decision(&self, site: &str) -> Option<i64> {
        self.decisions()
            .find(|(s, _)| *s == site)
            .and_then(|(_, d)| d.as_int())
    }

    /// The boolean decision at `site`, if present.
    pub fn bool_decision(&self, site: &str) -> Option<bool> {
        self.decisions()
            .find(|(s, _)| *s == site)
            .and_then(|(_, d)| d.as_bool())
    }

    /// Returns this trace with the decision at `site` replaced.  The
    /// structural instructions are dropped (they were derived from the old
    /// decisions); re-materialize through the space generator before
    /// applying.
    pub fn with_decision(&self, site: &str, decision: Decision) -> Trace {
        let decisions: Vec<(String, Decision)> = self
            .decisions()
            .map(|(s, d)| {
                if s == site {
                    (s.to_string(), decision)
                } else {
                    (s.to_string(), d)
                }
            })
            .collect();
        Trace::from_decisions(self.sketch.clone(), decisions)
    }

    /// Whether the trace carries structural instructions (i.e. can be
    /// applied directly, without re-materialization).
    pub fn is_materialized(&self) -> bool {
        self.insts.iter().any(|i| !i.is_sample())
    }

    /// Whether the trace uses hierarchical (rfactor) reduction — the
    /// decision §5.2.3's balanced sampler keys on.
    pub fn uses_rfactor(&self) -> bool {
        match self.int_decision(crate::generator::site::REDUCE_DPUS) {
            Some(v) => v > 1,
            None => self
                .insts
                .iter()
                .any(|i| matches!(i, Instruction::Rfactor { .. })),
        }
    }

    /// Total DPUs requested by the trace's raw decisions (matching the old
    /// `ScheduleConfig::num_dpus`: the *unclamped* product, which is what
    /// the verifier pre-checks against the machine's DPU count).  Traces
    /// without the UPMEM decision sites fall back to the product of
    /// DPU-bound structural split counts, or 1.
    pub fn num_dpus(&self) -> i64 {
        let spatial: i64 = self
            .decisions()
            .filter(|(s, _)| s.starts_with(crate::generator::site::SPATIAL_DPUS_PREFIX))
            .filter_map(|(_, d)| d.as_int())
            .product();
        let reduce = self
            .int_decision(crate::generator::site::REDUCE_DPUS)
            .unwrap_or(1);
        spatial.max(1) * reduce.max(1)
    }

    /// The `tasklets` decision (1 when absent).
    pub fn tasklets(&self) -> i64 {
        self.int_decision(crate::generator::site::TASKLETS)
            .unwrap_or(1)
    }

    /// The `cache_elems` decision (1 when absent).
    pub fn cache_elems(&self) -> i64 {
        self.int_decision(crate::generator::site::CACHE_ELEMS)
            .unwrap_or(1)
    }

    /// The `use_cache` decision (false when absent).
    pub fn use_cache(&self) -> bool {
        self.bool_decision(crate::generator::site::USE_CACHE)
            .unwrap_or(false)
    }

    /// Applies the trace onto a fresh [`Schedule`] for `def`, replaying
    /// every structural primitive with its recorded decisions.
    ///
    /// A decisions-only trace of the default UPMEM sketch is materialized on
    /// the fly; decisions-only traces of custom sketches must be
    /// re-materialized by their [`crate::generator::SpaceGenerator`] first.
    ///
    /// # Errors
    /// Propagates schedule-primitive errors (impossible factors, unknown
    /// loops) and rejects unmaterialized traces of unknown sketches.
    pub fn apply(&self, def: &ComputeDef) -> Result<Schedule> {
        if !self.is_materialized() {
            if self.sketch == UPMEM_SKETCH {
                let full = crate::generator::materialize_upmem(self, def)?;
                return full.apply_materialized(def);
            }
            return Err(TirError::InvalidSchedule(format!(
                "trace of sketch \"{}\" carries no structural instructions; \
                 re-materialize it through its space generator",
                self.sketch
            )));
        }
        self.apply_materialized(def)
    }

    fn apply_materialized(&self, def: &ComputeDef) -> Result<Schedule> {
        let mut sch = Schedule::new(def.clone());
        let mut regs: Vec<Option<LoopRef>> = vec![None; self.regs];
        let get = |regs: &[Option<LoopRef>], r: usize| -> Result<LoopRef> {
            regs.get(r).copied().flatten().ok_or_else(|| {
                TirError::InvalidSchedule(format!("trace register {r} used before definition"))
            })
        };
        let set = |regs: &mut Vec<Option<LoopRef>>, r: usize, l: LoopRef| {
            if r >= regs.len() {
                regs.resize(r + 1, None);
            }
            regs[r] = Some(l);
        };
        for inst in &self.insts {
            match inst {
                Instruction::SampleInt { .. } | Instruction::SampleBool { .. } => {}
                Instruction::GetLoop { axis, dst } => {
                    let l = sch.loops_of_axis(*axis).first().copied().ok_or_else(|| {
                        TirError::InvalidSchedule(format!("no loop iterates axis {axis}"))
                    })?;
                    set(&mut regs, *dst, l);
                }
                Instruction::Split {
                    lv,
                    factor,
                    outer,
                    inner,
                } => {
                    let l = get(&regs, *lv)?;
                    let (o, i) = sch.split(l, *factor)?;
                    set(&mut regs, *outer, o);
                    set(&mut regs, *inner, i);
                }
                Instruction::Bind { lv, binding } => sch.bind(get(&regs, *lv)?, *binding)?,
                Instruction::Rfactor { lv } => sch.rfactor(get(&regs, *lv)?)?,
                Instruction::Reorder { order } => {
                    let loops: Vec<LoopRef> = order
                        .iter()
                        .map(|&r| get(&regs, r))
                        .collect::<Result<Vec<_>>>()?;
                    sch.reorder(&loops)?;
                }
                Instruction::CacheRead { input, at } => {
                    sch.cache_read(*input, Attach::At(get(&regs, *at)?))?
                }
                Instruction::CacheWrite { at } => sch.cache_write(Attach::At(get(&regs, *at)?))?,
                Instruction::Unroll { lv } => sch.unroll(get(&regs, *lv)?)?,
                Instruction::ParallelHost { threads } => sch.parallel_host(*threads),
                Instruction::ParallelTransfer { enabled } => sch.set_parallel_transfer(*enabled),
            }
        }
        Ok(sch)
    }
}

impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.sketch == other.sketch && self.decisions().eq(other.decisions())
    }
}

impl Eq for Trace {}

impl Hash for Trace {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.sketch.hash(state);
        for (site, decision) in self.decisions() {
            site.hash(state);
            decision.hash(state);
        }
    }
}

impl fmt::Display for Trace {
    /// Renders the decision list (the trace's identity) compactly.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.sketch)?;
        for (i, (site, decision)) in self.decisions().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{site}={decision}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decisions_trace() -> Trace {
        Trace::from_decisions(
            UPMEM_SKETCH,
            vec![
                ("spatial_dpus.0", Decision::Int(64)),
                ("reduce_dpus", Decision::Int(4)),
                ("tasklets", Decision::Int(16)),
                ("cache_elems", Decision::Int(32)),
                ("use_cache", Decision::Bool(true)),
                ("unroll", Decision::Bool(false)),
                ("host_threads", Decision::Int(8)),
                ("parallel_transfer", Decision::Bool(true)),
            ],
        )
    }

    #[test]
    fn identity_covers_decisions_not_structure() {
        let bare = decisions_trace();
        assert!(!bare.is_materialized());
        let def = ComputeDef::mtv("mtv", 256, 256);
        let full = crate::generator::materialize_upmem(&bare, &def).unwrap();
        assert!(full.is_materialized());
        assert_eq!(bare, full, "materialization must not change identity");
        let mut h1 = std::collections::hash_map::DefaultHasher::new();
        let mut h2 = std::collections::hash_map::DefaultHasher::new();
        bare.hash(&mut h1);
        full.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());

        let other = bare.with_decision("tasklets", Decision::Int(8));
        assert_ne!(bare, other);
    }

    #[test]
    fn decision_accessors_read_sites() {
        let t = decisions_trace();
        assert_eq!(t.int_decision("tasklets"), Some(16));
        assert_eq!(t.bool_decision("use_cache"), Some(true));
        assert_eq!(t.int_decision("use_cache"), None, "type-checked access");
        assert_eq!(t.num_dpus(), 64 * 4);
        assert!(t.uses_rfactor());
        assert_eq!(t.tasklets(), 16);
        assert_eq!(t.cache_elems(), 32);
    }

    #[test]
    fn unmaterialized_upmem_traces_apply_by_rematerializing() {
        let def = ComputeDef::mtv("mtv", 256, 256);
        let sch = decisions_trace().apply(&def).unwrap();
        let lowered = sch.lower().unwrap();
        assert_eq!(lowered.grid.num_dpus(), 64 * 4);
    }

    #[test]
    fn unmaterialized_foreign_sketches_are_rejected() {
        let t = Trace::from_decisions("custom", vec![("k", Decision::Int(3))]);
        let def = ComputeDef::va("va", 64);
        let err = t.apply(&def).unwrap_err();
        assert!(err.to_string().contains("custom"), "{err}");
    }

    #[test]
    fn register_misuse_is_an_error_not_a_panic() {
        let def = ComputeDef::va("va", 64);
        let t = Trace::new("custom", vec![Instruction::Unroll { lv: 3 }], 4);
        assert!(t.apply(&def).is_err());
    }

    #[test]
    fn display_renders_the_decision_list() {
        let text = decisions_trace().to_string();
        assert!(text.starts_with("upmem{"), "{text}");
        assert!(text.contains("tasklets=16"), "{text}");
        assert!(text.contains("use_cache=true"), "{text}");
    }
}
