//! Durable tuning logs: save a search, reload it in a fresh process, and
//! either **replay** it straight to a result (tune once, serve many) or
//! **warm-start** a new search from its measurements.
//!
//! The log is the first-class artifact of autotuning — exactly the
//! AutoTVM-style record log downstream systems build on — so it is encoded
//! as plain JSON ([`crate::json`]) with a format version, the workload
//! name, the RNG seed and the full [`TuningResult`] (best candidate plus
//! per-trial history).
//!
//! Warm-starting reuses the determinism of the whole stack: a
//! [`WarmStartMeasurer`] answers measurements recorded in the log without
//! touching the backend, so re-running a session with the *same options and
//! seed* re-drives the identical search trajectory while only paying for
//! measurements the log does not already contain.  An interrupted 1000-trial
//! search resumed this way converges to the same best configuration as an
//! uninterrupted one.

use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

use crate::json::{Json, JsonCodec, JsonError};
use crate::session::TuningObserver;
use crate::trace::Trace;
use crate::tuner::{BatchMeasurer, TuningRecord, TuningResult};

/// The current log format version (bumped on breaking schema changes).
///
/// * **v1** — candidates as `ScheduleConfig` knob objects.
/// * **v2** — candidates as [`Trace`]s (sketch tag + decision list).
///
/// Loaders accept both: v1 candidates are shimmed into decisions-only
/// traces, which compare, hash and re-materialize identically — so a v1
/// `ATIM_TUNE_LOG` directory replays and warm-starts bit-identically under
/// the v2 codec.
pub const TUNE_LOG_VERSION: i64 = 2;

/// The oldest format version the loaders still understand.
pub const MIN_TUNE_LOG_VERSION: i64 = 1;

/// The `format` tag of the streaming (JSON-lines) log layout written by
/// [`TuneLogWriter`].
const STREAM_FORMAT: &str = "trial-stream";

/// A persisted tuning run: workload identity, seed, and the full result.
///
/// Two on-disk layouts decode to this type:
///
/// * the **document** layout ([`TuneLog::save`]): one self-contained JSON
///   object, written after the search finishes;
/// * the **streaming** layout ([`TuneLogWriter`]): a header line followed by
///   one flushed JSON line per measured trial and a closing summary line, so
///   a crashed session loses at most the trial that was being written.  A
///   truncated trailing line is tolerated on load; a missing summary line
///   marks the log [`TuneLog::complete`]` == false` (resume it with
///   [`crate::session::TuningSession`] + [`WarmStartMeasurer`]).
#[derive(Debug, Clone)]
pub struct TuneLog {
    /// Format version (see [`TUNE_LOG_VERSION`]).
    pub version: i64,
    /// Name of the workload the log was tuned for (matches
    /// `ComputeDef::name`; replaying against a different workload is the
    /// caller's responsibility to guard).
    pub workload: String,
    /// RNG seed of the tuning options that produced the log.  Warm-starting
    /// reproduces the original trajectory only when re-run with this seed.
    pub seed: u64,
    /// Whether the log records a finished search.  Document-layout logs are
    /// always complete; a streaming log is complete only when its summary
    /// line was written (i.e. the session did not crash mid-search).
    pub complete: bool,
    /// The recorded result: best candidate, per-trial history and counters.
    pub result: TuningResult,
}

/// Errors raised while loading or decoding a [`TuneLog`].
#[derive(Debug)]
pub enum TuneLogError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The file contents are not a valid tuning log.
    Parse(JsonError),
    /// The log has a format version this build does not understand.
    UnsupportedVersion(i64),
}

impl fmt::Display for TuneLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneLogError::Io(e) => write!(f, "tune log I/O error: {e}"),
            TuneLogError::Parse(e) => write!(f, "tune log parse error: {e}"),
            TuneLogError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "tune log version {v} is not supported (expected {TUNE_LOG_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for TuneLogError {}

impl From<std::io::Error> for TuneLogError {
    fn from(e: std::io::Error) -> Self {
        TuneLogError::Io(e)
    }
}

impl From<JsonError> for TuneLogError {
    fn from(e: JsonError) -> Self {
        TuneLogError::Parse(e)
    }
}

impl TuneLog {
    /// Packages a finished (or paused) tuning result as a log.
    pub fn new(workload: impl Into<String>, seed: u64, result: TuningResult) -> Self {
        TuneLog {
            version: TUNE_LOG_VERSION,
            workload: workload.into(),
            seed,
            complete: true,
            result,
        }
    }

    /// The best trace and latency recorded in the log.
    pub fn best(&self) -> Option<(&Trace, f64)> {
        self.result.best.as_ref().map(|(c, l)| (c, *l))
    }

    /// Number of recorded (successful) trials.
    pub fn len(&self) -> usize {
        self.result.history.len()
    }

    /// Whether the log holds no trials.
    pub fn is_empty(&self) -> bool {
        self.result.history.is_empty()
    }

    /// The `trace → latency` memo of every recorded measurement (used by
    /// [`WarmStartMeasurer`] and anything else that wants to skip
    /// re-measuring known candidates).  Keys use trace identity (sketch +
    /// decisions), so decisions-only entries loaded from a log answer for
    /// the materialized traces a live search proposes.
    pub fn memo(&self) -> HashMap<Trace, f64> {
        self.result
            .history
            .iter()
            .map(|r| (r.trace.clone(), r.latency_s))
            .collect()
    }

    /// Reconstructs the [`TuningResult`] recorded in the log — replaying a
    /// tuned workload without re-searching.
    pub fn to_result(&self) -> TuningResult {
        self.result.clone()
    }

    /// Serializes the log to JSON text (one self-contained document).
    pub fn to_json_string(&self) -> String {
        Json::Obj(vec![
            ("version".into(), Json::Int(self.version)),
            ("workload".into(), Json::Str(self.workload.clone())),
            // u64 seeds can exceed what a JSON double represents exactly, so
            // the seed travels as a decimal string.
            ("seed".into(), Json::Str(self.seed.to_string())),
            ("result".into(), self.result.to_json()),
        ])
        .to_string()
    }

    /// Parses a log from text, accepting both the document layout and the
    /// streaming (JSON-lines) layout.
    ///
    /// # Errors
    /// Returns a [`TuneLogError`] on malformed JSON, schema mismatches or an
    /// unsupported format version.  A *truncated trailing line* of a
    /// streaming log (the crash signature the layout exists for) is not an
    /// error: the damaged line is dropped and the log loads as incomplete.
    pub fn from_json_str(text: &str) -> Result<Self, TuneLogError> {
        let first = text.lines().find(|l| !l.trim().is_empty()).unwrap_or("");
        let header = Json::parse(first)?;
        let is_stream = header
            .get("format")
            .ok()
            .and_then(|f| f.as_str().ok().map(|s| s == STREAM_FORMAT))
            .unwrap_or(false);
        if is_stream {
            return Self::from_stream_str(text, &header);
        }
        let json = Json::parse(text)?;
        let version = json.get("version")?.as_i64()?;
        if !(MIN_TUNE_LOG_VERSION..=TUNE_LOG_VERSION).contains(&version) {
            return Err(TuneLogError::UnsupportedVersion(version));
        }
        Ok(TuneLog {
            version,
            workload: json.get("workload")?.as_str()?.to_string(),
            seed: parse_seed(&json)?,
            complete: true,
            result: TuningResult::from_json(json.get("result")?)?,
        })
    }

    /// Decodes the streaming layout: `header` is the already-parsed first
    /// line, the remaining non-empty lines are per-trial records plus an
    /// optional closing summary.
    fn from_stream_str(text: &str, header: &Json) -> Result<Self, TuneLogError> {
        let version = header.get("version")?.as_i64()?;
        if !(MIN_TUNE_LOG_VERSION..=TUNE_LOG_VERSION).contains(&version) {
            return Err(TuneLogError::UnsupportedVersion(version));
        }
        let lines: Vec<&str> = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .skip(1)
            .collect();
        let mut history: Vec<TuningRecord> = Vec::new();
        let mut summary: Option<(usize, usize)> = None;
        for (k, line) in lines.iter().enumerate() {
            let decoded = Json::parse(line).and_then(|json| {
                if json.get("summary").is_ok() {
                    Ok(Some((
                        json.get("failed")?.as_usize()?,
                        json.get("rejected")?.as_usize()?,
                    )))
                } else {
                    TuningRecord::from_json(&json).map(|r| {
                        history.push(r);
                        None
                    })
                }
            });
            match decoded {
                Ok(Some(s)) => summary = Some(s),
                Ok(None) => {}
                // A damaged *last* line is the expected crash signature;
                // damage anywhere else is real corruption.
                Err(_) if k + 1 == lines.len() => break,
                Err(e) => return Err(TuneLogError::Parse(e)),
            }
        }
        // Reconstruct the result the recording session held: the best entry
        // is the earliest strictly-smallest latency, matching the candidate
        // database's tie-breaking.
        let best = history
            .iter()
            .fold(None::<(&Trace, f64)>, |best, r| match best {
                Some((_, l)) if l <= r.latency_s => best,
                _ => Some((&r.trace, r.latency_s)),
            })
            .map(|(c, l)| (c.clone(), l));
        let (failed, rejected) = summary.unwrap_or((0, 0));
        Ok(TuneLog {
            version,
            workload: header.get("workload")?.as_str()?.to_string(),
            seed: parse_seed(header)?,
            complete: summary.is_some(),
            result: TuningResult {
                best,
                measured: history.len(),
                history,
                failed,
                rejected,
            },
        })
    }

    /// Writes the log to a file.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TuneLogError> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_json_string().as_bytes())?;
        file.write_all(b"\n")?;
        Ok(())
    }

    /// Reads a log from a file.
    ///
    /// # Errors
    /// Returns a [`TuneLogError`] on I/O failures or malformed content.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TuneLogError> {
        let mut text = String::new();
        std::fs::File::open(path)?.read_to_string(&mut text)?;
        Self::from_json_str(&text)
    }
}

/// Decodes the decimal-string `seed` field shared by both layouts.
fn parse_seed(json: &Json) -> Result<u64, TuneLogError> {
    Ok(json
        .get("seed")?
        .as_str()?
        .parse::<u64>()
        .map_err(|_| JsonError {
            message: "seed must be a decimal u64 string".into(),
            offset: None,
        })?)
}

/// Incremental writer of the streaming log layout: one flushed JSON line
/// per measured trial, so a crash loses at most the record being written.
///
/// Layout: a header line (version, workload, seed, format tag), then one
/// [`TuningRecord`] line per trial, then — only on [`TuneLogWriter::finish`]
/// — a summary line carrying the failure/rejection counters.  The file is
/// readable by [`TuneLog::load`] at every point in between.
#[derive(Debug)]
pub struct TuneLogWriter {
    file: std::fs::File,
    records: usize,
}

impl TuneLogWriter {
    /// Creates (truncating) the log file and writes the header line.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn create(path: impl AsRef<Path>, workload: &str, seed: u64) -> Result<Self, TuneLogError> {
        let mut file = std::fs::File::create(path)?;
        let header = Json::Obj(vec![
            ("version".into(), Json::Int(TUNE_LOG_VERSION)),
            ("workload".into(), Json::Str(workload.to_string())),
            ("seed".into(), Json::Str(seed.to_string())),
            ("format".into(), Json::Str(STREAM_FORMAT.into())),
        ]);
        writeln!(file, "{header}")?;
        file.flush()?;
        Ok(TuneLogWriter { file, records: 0 })
    }

    /// Appends one trial record and flushes it to disk.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn append(&mut self, record: &TuningRecord) -> Result<(), TuneLogError> {
        writeln!(self.file, "{}", record.to_json())?;
        self.file.flush()?;
        self.records += 1;
        Ok(())
    }

    /// Number of records appended so far.
    pub fn len(&self) -> usize {
        self.records
    }

    /// Whether no records were appended yet.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Writes the closing summary line, marking the log complete.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn finish(mut self, result: &TuningResult) -> Result<(), TuneLogError> {
        let summary = Json::Obj(vec![
            ("summary".into(), Json::Bool(true)),
            ("measured".into(), Json::Int(result.measured as i64)),
            ("failed".into(), Json::Int(result.failed as i64)),
            ("rejected".into(), Json::Int(result.rejected as i64)),
        ]);
        writeln!(self.file, "{summary}")?;
        self.file.flush()?;
        Ok(())
    }
}

/// A [`TuningObserver`] that streams every measured trial to a
/// [`TuneLogWriter`] as it happens and finalizes the log on the first
/// `on_finish`.
///
/// I/O failures never abort the search: the first write error is reported to
/// stderr and further writes are disabled (the partial log remains loadable).
#[derive(Debug)]
pub struct StreamingTuneLog {
    writer: Option<TuneLogWriter>,
}

impl StreamingTuneLog {
    /// Creates the underlying log file; see [`TuneLogWriter::create`].
    ///
    /// # Errors
    /// Propagates I/O errors from creating the file.
    pub fn create(path: impl AsRef<Path>, workload: &str, seed: u64) -> Result<Self, TuneLogError> {
        Ok(StreamingTuneLog {
            writer: Some(TuneLogWriter::create(path, workload, seed)?),
        })
    }

    /// Records streamed so far.
    pub fn recorded(&self) -> usize {
        self.writer.as_ref().map(TuneLogWriter::len).unwrap_or(0)
    }
}

impl TuningObserver for StreamingTuneLog {
    fn on_trial(&mut self, record: &TuningRecord) {
        if let Some(writer) = &mut self.writer {
            if let Err(err) = writer.append(record) {
                eprintln!("# warning: tuning log write failed, disabling streaming: {err}");
                self.writer = None;
            }
        }
    }

    fn on_finish(&mut self, result: &TuningResult, _reason: crate::session::StopReason) {
        if let Some(writer) = self.writer.take() {
            if let Err(err) = writer.finish(result) {
                eprintln!("# warning: tuning log finalization failed: {err}");
            }
        }
    }
}

/// A [`BatchMeasurer`] that answers measurements recorded in a [`TuneLog`]
/// from memory and forwards only unknown candidates to the real measurer.
///
/// Driving a fresh [`crate::session::TuningSession`] (same options, same
/// seed) through this wrapper re-creates the original search trajectory
/// bit-for-bit: the candidates the session proposes are identical, and every
/// one the log already measured is answered without touching the backend.
/// The session therefore "resumes" an interrupted search at the cost of only
/// the remaining measurements.
pub struct WarmStartMeasurer<'a> {
    memo: HashMap<Trace, f64>,
    inner: &'a mut dyn BatchMeasurer,
    replayed: usize,
    fresh: usize,
}

impl<'a> WarmStartMeasurer<'a> {
    /// Wraps `inner`, answering any measurement recorded in `log` from
    /// memory.
    pub fn new(log: &TuneLog, inner: &'a mut dyn BatchMeasurer) -> Self {
        WarmStartMeasurer {
            memo: log.memo(),
            inner,
            replayed: 0,
            fresh: 0,
        }
    }

    /// Number of measurements answered from the log.
    pub fn replayed(&self) -> usize {
        self.replayed
    }

    /// Number of measurements forwarded to the real measurer.
    pub fn fresh(&self) -> usize {
        self.fresh
    }
}

impl BatchMeasurer for WarmStartMeasurer<'_> {
    fn measure_batch_cancellable(
        &mut self,
        traces: &[Trace],
        cancel: &crate::tuner::Cancellation,
    ) -> Vec<crate::tuner::MeasureOutcome> {
        use crate::tuner::MeasureOutcome;
        // Log-recorded measurements are free — answer them even when
        // cancelled; only fresh candidates respect the cancellation.
        let mut out: Vec<Option<MeasureOutcome>> = traces
            .iter()
            .map(|c| self.memo.get(c).map(|&l| MeasureOutcome::Measured(l)))
            .collect();
        let miss_slots: Vec<usize> = (0..traces.len()).filter(|&i| out[i].is_none()).collect();
        self.replayed += traces.len() - miss_slots.len();
        if !miss_slots.is_empty() {
            let misses: Vec<Trace> = miss_slots.iter().map(|&i| traces[i].clone()).collect();
            let results = self.inner.measure_batch_cancellable(&misses, cancel);
            assert_eq!(
                results.len(),
                misses.len(),
                "BatchMeasurer must return one result per candidate"
            );
            self.fresh += results
                .iter()
                .filter(|o| !matches!(o, MeasureOutcome::Skipped))
                .count();
            for (&slot, result) in miss_slots.iter().zip(results) {
                out[slot] = Some(result);
            }
        }
        out.into_iter()
            .map(|r| r.expect("every slot answered"))
            .collect()
    }

    fn measure_batch(&mut self, traces: &[Trace]) -> Vec<Option<f64>> {
        use crate::tuner::{Cancellation, MeasureOutcome};
        // One implementation: the cancellable path with a condition that
        // never triggers (so `Skipped` is impossible).
        self.measure_batch_cancellable(traces, &Cancellation::none())
            .into_iter()
            .map(|outcome| match outcome {
                MeasureOutcome::Measured(latency) => Some(latency),
                MeasureOutcome::Failed => None,
                MeasureOutcome::Skipped => unreachable!("nothing can cancel Cancellation::none()"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Budget, NullObserver, TuningSession};
    use crate::space::ScheduleConfig;
    use crate::tuner::{SequentialMeasurer, TuningOptions, TuningRecord};
    use atim_sim::UpmemConfig;
    use atim_tir::compute::ComputeDef;

    fn analytic(def: &ComputeDef) -> impl FnMut(&Trace) -> Option<f64> {
        let work = def.total_flops() as f64;
        move |t: &Trace| {
            let dpus = t.num_dpus() as f64;
            let tasklets = t.tasklets().min(11) as f64;
            let cache = if t.use_cache() { 1.0 } else { 8.0 };
            Some((work / (dpus * tasklets) * cache + dpus * 0.001) * 1e-6)
        }
    }

    fn sample_log() -> TuneLog {
        let trace = ScheduleConfig {
            spatial_dpus: vec![64],
            reduce_dpus: 4,
            tasklets: 16,
            cache_elems: 32,
            use_cache: true,
            unroll: true,
            host_threads: 4,
            parallel_transfer: true,
        }
        .to_decision_trace();
        TuneLog::new(
            "mtv",
            0xDEAD_BEEF_DEAD_BEEF,
            TuningResult {
                best: Some((trace.clone(), 5e-4)),
                history: vec![TuningRecord {
                    trial: 0,
                    trace,
                    latency_s: 5e-4,
                    best_so_far_s: 5e-4,
                }],
                measured: 1,
                failed: 2,
                rejected: 3,
            },
        )
    }

    #[test]
    fn log_round_trips_through_json_text() {
        let log = sample_log();
        let back = TuneLog::from_json_str(&log.to_json_string()).unwrap();
        assert_eq!(back.version, TUNE_LOG_VERSION);
        assert_eq!(back.workload, "mtv");
        assert_eq!(back.seed, 0xDEAD_BEEF_DEAD_BEEF);
        assert_eq!(back.result.best, log.result.best);
        assert_eq!(back.result.history, log.result.history);
        assert_eq!(back.result.failed, 2);
        assert_eq!(back.result.rejected, 3);
    }

    #[test]
    fn log_round_trips_through_a_file() {
        let log = sample_log();
        let path = std::env::temp_dir().join("atim_log_roundtrip_test.json");
        log.save(&path).unwrap();
        let back = TuneLog::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.result.best, log.result.best);
        assert_eq!(back.result.history, log.result.history);
    }

    #[test]
    fn unsupported_versions_are_rejected() {
        let mut text = sample_log().to_json_string();
        text = text.replace("\"version\":2", "\"version\":999");
        match TuneLog::from_json_str(&text) {
            Err(TuneLogError::UnsupportedVersion(999)) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn streaming_logs_round_trip_and_mark_completion() {
        let log = sample_log();
        let path = std::env::temp_dir().join("atim_stream_roundtrip_test.jsonl");
        let mut writer = TuneLogWriter::create(&path, &log.workload, log.seed).unwrap();
        for record in &log.result.history {
            writer.append(record).unwrap();
        }

        // Before the summary line: loadable, but incomplete.
        let partial = TuneLog::load(&path).unwrap();
        assert!(!partial.complete);
        assert_eq!(partial.workload, log.workload);
        assert_eq!(partial.seed, log.seed);
        assert_eq!(partial.result.history, log.result.history);
        assert_eq!(partial.result.failed, 0, "counters unknown before summary");

        // Re-write with a finish: complete, counters restored.
        let mut writer = TuneLogWriter::create(&path, &log.workload, log.seed).unwrap();
        for record in &log.result.history {
            writer.append(record).unwrap();
        }
        writer.finish(&log.result).unwrap();
        let full = TuneLog::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(full.complete);
        assert_eq!(full.result.best, log.result.best);
        assert_eq!(full.result.history, log.result.history);
        assert_eq!(full.result.failed, log.result.failed);
        assert_eq!(full.result.rejected, log.result.rejected);
    }

    #[test]
    fn truncated_trailing_lines_lose_at_most_one_record() {
        let log = sample_log();
        let path = std::env::temp_dir().join("atim_stream_truncated_test.jsonl");
        let mut writer = TuneLogWriter::create(&path, &log.workload, log.seed).unwrap();
        let record = &log.result.history[0];
        writer.append(record).unwrap();
        writer.append(record).unwrap();
        drop(writer);
        // Simulate a crash mid-write: append half a record.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let half = &record.to_json().to_string()[..20];
        text.push_str(half);
        std::fs::write(&path, &text).unwrap();

        let loaded = TuneLog::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(!loaded.complete);
        assert_eq!(loaded.len(), 2, "the damaged trailing record is dropped");
        assert_eq!(loaded.result.history[0], *record);

        // Corruption *before* the end is a real error, not a truncation.
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines[1] = "{broken".into();
        let err = TuneLog::from_json_str(&lines.join("\n")).unwrap_err();
        assert!(matches!(err, TuneLogError::Parse(_)));
    }

    #[test]
    fn interrupted_streams_resume_via_warm_start_to_the_fresh_result() {
        let def = ComputeDef::mtv("mtv", 2048, 2048);
        let hw = UpmemConfig::default();
        let options = TuningOptions {
            trials: 32,
            population: 24,
            measure_per_round: 8,
            ..TuningOptions::default()
        };
        let mut m = analytic(&def);
        let fresh = crate::tuner::tune(&def, &hw, &options, &mut m);

        // "Crash" after 16 trials: the streaming log has those records and
        // no summary line.
        let path = std::env::temp_dir().join("atim_stream_resume_test.jsonl");
        let mut writer = TuneLogWriter::create(&path, &def.name, options.seed).unwrap();
        for record in &fresh.history[..16] {
            writer.append(record).unwrap();
        }
        drop(writer);

        let log = TuneLog::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(!log.complete);
        assert_eq!(log.len(), 16);

        let mut session = TuningSession::new(&def, &hw, &options).unwrap();
        let mut m2 = analytic(&def);
        let mut seq = SequentialMeasurer::new(&mut m2);
        let mut warm = WarmStartMeasurer::new(&log, &mut seq);
        let resumed = session.run(&mut warm, &Budget::unlimited(), &mut NullObserver);
        assert_eq!(resumed.best, fresh.best);
        assert_eq!(resumed.history, fresh.history);
        assert!(warm.replayed() >= 8, "the streamed prefix must be reused");
    }

    #[test]
    fn logs_truncated_mid_record_inside_a_round_resume_to_the_fresh_result() {
        // Regression: the resume path was only exercised with logs cut at a
        // round boundary (16 records with measure_per_round = 8).  A real
        // crash lands anywhere — here 13 complete records (mid-round) plus a
        // torn half-record (mid-append).  The loader must drop exactly the
        // torn line, report the log incomplete, and a warm start from it
        // must still reproduce the fresh trajectory bit-for-bit.
        let def = ComputeDef::mtv("mtv", 2048, 2048);
        let hw = UpmemConfig::default();
        let options = TuningOptions {
            trials: 32,
            population: 24,
            measure_per_round: 8,
            ..TuningOptions::default()
        };
        let mut m = analytic(&def);
        let fresh = crate::tuner::tune(&def, &hw, &options, &mut m);
        assert!(fresh.history.len() >= 14, "need a second round to cut into");

        let path = std::env::temp_dir().join("atim_stream_midrecord_resume_test.jsonl");
        let mut writer = TuneLogWriter::create(&path, &def.name, options.seed).unwrap();
        for record in &fresh.history[..13] {
            writer.append(record).unwrap();
        }
        drop(writer);
        // The crash tears the 14th record partway through the append.
        let torn = fresh.history[13].to_json().to_string();
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str(&torn[..torn.len() / 2]);
        std::fs::write(&path, &text).unwrap();

        let log = TuneLog::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(!log.complete, "a log without a summary is incomplete");
        assert_eq!(log.len(), 13, "only the torn record is lost");
        assert_eq!(log.result.history, fresh.history[..13]);

        let mut session = TuningSession::new(&def, &hw, &options).unwrap();
        let mut m2 = analytic(&def);
        let mut seq = SequentialMeasurer::new(&mut m2);
        let mut warm = WarmStartMeasurer::new(&log, &mut seq);
        let resumed = session.run(&mut warm, &Budget::unlimited(), &mut NullObserver);
        assert_eq!(resumed.best, fresh.best);
        assert_eq!(resumed.history, fresh.history);
        assert!(
            warm.replayed() >= 13,
            "every surviving record must be answered from the log"
        );
        assert!(
            warm.fresh() < fresh.measured,
            "resume must measure strictly less than a fresh search"
        );
    }

    #[test]
    fn warm_start_reproduces_the_fresh_search_trajectory() {
        let def = ComputeDef::mtv("mtv", 2048, 2048);
        let hw = UpmemConfig::default();
        let options = TuningOptions {
            trials: 32,
            population: 24,
            measure_per_round: 8,
            ..TuningOptions::default()
        };

        // Fresh, uninterrupted search.
        let mut m = analytic(&def);
        let fresh = crate::tuner::tune(&def, &hw, &options, &mut m);

        // Interrupted search: stop after ~half the budget and persist.
        let mut partial_session = TuningSession::new(&def, &hw, &options).unwrap();
        let mut m1 = analytic(&def);
        let partial = partial_session.run(
            &mut SequentialMeasurer::new(&mut m1),
            &Budget::trials(16),
            &mut NullObserver,
        );
        let log = TuneLog::new(&def.name, options.seed, partial);

        // Warm-started search: same options + seed, log answers the prefix.
        let mut session = TuningSession::new(&def, &hw, &options).unwrap();
        let mut m2 = analytic(&def);
        let mut seq = SequentialMeasurer::new(&mut m2);
        let mut warm = WarmStartMeasurer::new(&log, &mut seq);
        let resumed = session.run(&mut warm, &Budget::unlimited(), &mut NullObserver);

        assert_eq!(resumed.best, fresh.best, "warm start must match fresh");
        assert_eq!(resumed.history, fresh.history);
        assert!(
            warm.replayed() >= log.len() / 2,
            "the log prefix must be reused"
        );
        assert!(
            warm.fresh() < fresh.measured,
            "warm start must measure strictly less than a fresh search"
        );
    }
}
