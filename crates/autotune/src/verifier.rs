//! The UPMEM code verifier (§5.2.4).
//!
//! UPMEM imposes much stricter constraints than CPUs/GPUs: at most 2560 DPUs
//! (2048 on the paper's server), at most 24 tasklets per DPU, 64 KB of WRAM
//! for every caching tile, 64 MB of MRAM per bank, and 8-byte alignment for
//! DMA transfers.  Candidates that violate these constraints would fail to
//! compile or run on real hardware; filtering them out *before* measurement
//! keeps the evolutionary search from wasting its measurement budget.

use atim_sim::UpmemConfig;
use atim_tir::compute::ComputeDef;
use atim_tir::schedule::Lowered;

use crate::space::ScheduleConfig;
use crate::trace::Trace;

/// Reasons a candidate is rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The DPU grid exceeds the machine's DPU count.
    TooManyDpus {
        /// DPUs requested.
        requested: i64,
        /// DPUs available.
        available: i64,
    },
    /// More tasklets than the hardware supports.
    TooManyTasklets {
        /// Tasklets requested.
        requested: i64,
        /// Hardware limit.
        limit: i64,
    },
    /// The WRAM caching tiles do not fit.
    WramOverflow {
        /// Estimated bytes required.
        required: usize,
        /// WRAM capacity.
        capacity: usize,
    },
    /// The per-DPU MRAM tiles do not fit in the bank.
    MramOverflow {
        /// Estimated bytes required.
        required: usize,
        /// MRAM capacity.
        capacity: usize,
    },
    /// A DMA/caching tile violates the 8-byte alignment requirement.
    Misalignment {
        /// Offending tile size in bytes.
        bytes: usize,
    },
    /// The schedule could not be instantiated or lowered at all.
    Invalid(String),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::TooManyDpus {
                requested,
                available,
            } => write!(f, "uses {requested} DPUs but only {available} exist"),
            VerifyError::TooManyTasklets { requested, limit } => {
                write!(f, "uses {requested} tasklets but the DPU supports {limit}")
            }
            VerifyError::WramOverflow { required, capacity } => {
                write!(f, "needs {required} B of WRAM but only {capacity} B exist")
            }
            VerifyError::MramOverflow { required, capacity } => {
                write!(f, "needs {required} B of MRAM but only {capacity} B exist")
            }
            VerifyError::Misalignment { bytes } => {
                write!(f, "caching tile of {bytes} B violates 8-byte DMA alignment")
            }
            VerifyError::Invalid(msg) => write!(f, "invalid schedule: {msg}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a lowered program against the hardware constraints.
pub fn verify_lowered(lowered: &Lowered, hw: &UpmemConfig) -> Result<(), VerifyError> {
    let dpus = lowered.grid.num_dpus();
    if dpus > hw.total_dpus() as i64 {
        return Err(VerifyError::TooManyDpus {
            requested: dpus,
            available: hw.total_dpus() as i64,
        });
    }
    if lowered.kernel.tasklets > hw.max_tasklets as i64 {
        return Err(VerifyError::TooManyTasklets {
            requested: lowered.kernel.tasklets,
            limit: hw.max_tasklets as i64,
        });
    }
    if lowered.kernel.wram_bytes > hw.wram_bytes {
        return Err(VerifyError::WramOverflow {
            required: lowered.kernel.wram_bytes,
            capacity: hw.wram_bytes,
        });
    }
    let mram = lowered.mram_bytes_per_dpu();
    if mram > hw.mram_bytes {
        return Err(VerifyError::MramOverflow {
            required: mram,
            capacity: hw.mram_bytes,
        });
    }
    // 8-byte DMA alignment: every MRAM tile's innermost extent must be a
    // multiple of two 4-byte elements.
    for tile in lowered
        .mram_inputs
        .iter()
        .chain(std::iter::once(&lowered.mram_output))
    {
        if let Some(&last) = tile.tile_shape.last() {
            let bytes = (last * tile.buf.dtype.bytes() as i64) as usize;
            if bytes % 8 != 0 && tile.buf.len() * tile.buf.dtype.bytes() > 8 {
                return Err(VerifyError::Misalignment { bytes });
            }
        }
    }
    Ok(())
}

/// Verifies a candidate trace by applying and lowering it, returning the
/// lowered program so callers measuring the candidate don't need to lower it
/// twice.
///
/// Traces carrying the UPMEM sketch's decision sites are pre-checked against
/// the machine's tasklet and DPU limits from their *raw* decisions (the
/// unclamped values, exactly as the knob-vector verifier always did), before
/// the more expensive apply + lower + structural checks run.  Traces of
/// custom generators skip the pre-checks; the structural checks on the
/// lowered program still enforce every limit.
pub fn verify_trace(
    trace: &Trace,
    def: &ComputeDef,
    hw: &UpmemConfig,
) -> Result<Lowered, VerifyError> {
    if let Some(config) = ScheduleConfig::from_trace(trace) {
        if config.tasklets > hw.max_tasklets as i64 {
            return Err(VerifyError::TooManyTasklets {
                requested: config.tasklets,
                limit: hw.max_tasklets as i64,
            });
        }
        if config.num_dpus() > hw.total_dpus() as i64 {
            return Err(VerifyError::TooManyDpus {
                requested: config.num_dpus(),
                available: hw.total_dpus() as i64,
            });
        }
    }
    let sch = trace
        .apply(def)
        .map_err(|e| VerifyError::Invalid(e.to_string()))?;
    let lowered = sch
        .lower()
        .map_err(|e| VerifyError::Invalid(e.to_string()))?;
    verify_lowered(&lowered, hw)?;
    Ok(lowered)
}

/// Verifies a knob-vector configuration — the pre-trace entry point, now a
/// thin wrapper over [`verify_trace`] via the `ScheduleConfig → Trace`
/// conversion.
#[deprecated(since = "0.3.0", note = "use `verify_trace` with a schedule trace")]
pub fn verify(
    config: &ScheduleConfig,
    def: &ComputeDef,
    hw: &UpmemConfig,
) -> Result<Lowered, VerifyError> {
    verify_trace(&config.to_trace(def), def, hw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atim_tir::compute::ComputeDef;

    fn base_config() -> ScheduleConfig {
        ScheduleConfig {
            spatial_dpus: vec![16],
            reduce_dpus: 2,
            tasklets: 8,
            cache_elems: 64,
            use_cache: true,
            unroll: false,
            host_threads: 4,
            parallel_transfer: true,
        }
    }

    #[test]
    fn valid_trace_passes() {
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let hw = UpmemConfig::default();
        let lowered = verify_trace(&base_config().to_trace(&def), &def, &hw).unwrap();
        assert_eq!(lowered.grid.num_dpus(), 32);
    }

    #[test]
    fn rejects_too_many_tasklets() {
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let hw = UpmemConfig::default();
        let mut cfg = base_config();
        cfg.tasklets = 32;
        assert!(matches!(
            verify_trace(&cfg.to_trace(&def), &def, &hw),
            Err(VerifyError::TooManyTasklets { .. })
        ));
    }

    #[test]
    fn rejects_too_many_dpus_from_raw_decisions() {
        let def = ComputeDef::mtv("mtv", 8192, 8192);
        let hw = UpmemConfig::default();
        let mut cfg = base_config();
        cfg.spatial_dpus = vec![4096];
        assert!(matches!(
            verify_trace(&cfg.to_trace(&def), &def, &hw),
            Err(VerifyError::TooManyDpus { .. })
        ));
        // The decisions-only twin is rejected identically: the pre-checks
        // read raw decisions, not materialized structure.
        assert!(matches!(
            verify_trace(&cfg.to_decision_trace(), &def, &hw),
            Err(VerifyError::TooManyDpus { .. })
        ));
    }

    #[test]
    fn rejects_wram_overflow() {
        // A huge caching tile times many tasklets cannot fit in 64 KB.
        let def = ComputeDef::mtv("mtv", 8192, 65536);
        let hw = UpmemConfig::default();
        let mut cfg = base_config();
        cfg.spatial_dpus = vec![8];
        cfg.reduce_dpus = 1;
        cfg.tasklets = 24;
        cfg.cache_elems = 4096;
        let err = verify_trace(&cfg.to_trace(&def), &def, &hw).unwrap_err();
        assert!(
            matches!(err, VerifyError::WramOverflow { .. }),
            "expected WRAM overflow, got {err}"
        );
    }

    #[test]
    fn rejects_mram_overflow() {
        // One DPU asked to hold a 512 MB matrix tile.
        let def = ComputeDef::mtv("mtv", 8192, 16384);
        let hw = UpmemConfig::default();
        let mut cfg = base_config();
        cfg.spatial_dpus = vec![1];
        cfg.reduce_dpus = 1;
        cfg.cache_elems = 64;
        let err = verify_trace(&cfg.to_trace(&def), &def, &hw).unwrap_err();
        assert!(
            matches!(err, VerifyError::MramOverflow { .. }),
            "expected MRAM overflow, got {err}"
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_config_wrapper_agrees_with_verify_trace() {
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let hw = UpmemConfig::default();
        let cfg = base_config();
        let via_config = verify(&cfg, &def, &hw).unwrap();
        let via_trace = verify_trace(&cfg.to_trace(&def), &def, &hw).unwrap();
        assert_eq!(via_config.grid.num_dpus(), via_trace.grid.num_dpus());
    }

    #[test]
    fn error_messages_are_informative() {
        let e = VerifyError::WramOverflow {
            required: 100_000,
            capacity: 65_536,
        };
        assert!(e.to_string().contains("WRAM"));
        let e = VerifyError::TooManyDpus {
            requested: 4096,
            available: 2048,
        };
        assert!(e.to_string().contains("4096"));
    }
}
