//! The rule engine: [`RuleSet::elaborate`] turns a [`ComputeDef`] plus a
//! decision source into a materialized sketch [`Trace`].
//!
//! Every rule records the decisions it consumes through the shared
//! [`Decider`], then applies its structural move through the same
//! [`SketchRecorder`] the UPMEM sketch uses — so rule-built traces replay
//! through `Trace::apply`, the verifier and the simulator like any other.
//! Recorded decision values are never rewritten: invalid or oversized
//! values (from crossover mixes or hand-written logs) are clamped — or, in
//! divisor mode, snapped to the nearest even divisor — at the point of use
//! only, which keeps elaboration idempotent over its own output.

use atim_sim::UpmemConfig;
use atim_tir::compute::ComputeDef;
use atim_tir::error::Result;
use atim_tir::schedule::{Binding, LoopRef};

use crate::generator::{div_ceil, site, SketchRecorder};
use crate::trace::{Instruction, Trace};

use super::Decider;

/// One declarative structural move of a sketch space.
///
/// Rules are applied in rule-set order; the decision sites they declare
/// appear in the trace in the same order.  The site list of a rule is a
/// pure function of the workload and the rule's own configuration — never
/// of other decisions (see the module docs for why that matters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SketchRule {
    /// Distribute every spatial axis over DPUs (`spatial_dpus.{j}` sites,
    /// bound to `DpuX`).
    BindSpatialDpus,
    /// Hierarchical reduction: split the first reduction axis across DPUs,
    /// `rfactor` the outer loop and bind it to `DpuY` (`reduce_dpus` site;
    /// 1 = single-level reduction).
    RfactorReduce,
    /// Split the widest per-DPU data loop over tasklets (`tasklets` site),
    /// falling back to the reduction loop for pure reductions.
    BindTasklets,
    /// Multi-level tile every per-DPU data loop: `levels` extra splits per
    /// spatial axis (`tile.{j}.{l}` sites) and per reduction chain
    /// (`rtile.{l}` sites), each with a sampled extent.
    MultiLevelTile {
        /// Tiling levels added below the DPU/tasklet splits.
        levels: usize,
    },
    /// Per-input WRAM staging with a *sampled placement* (`cache.{i}`
    /// sites): 0 = stream from MRAM, 1 = attach at the deepest unbound
    /// loop, 2 = one level further out (bigger tile, fewer refills).
    CacheReads,
    /// WRAM output accumulator (`cache_write` site), attached outside every
    /// reduction loop.
    CacheWrite,
    /// Unroll the innermost loop (`unroll` site).
    Unroll,
    /// Host-side post-processing parallelism (`host_threads` and
    /// `parallel_transfer` sites).
    HostPostprocess,
}

/// An ordered rule list plus the space-wide policies that make a sketch
/// family: the trace tag it emits, and the hardware-native toggles.
#[derive(Debug, Clone)]
pub struct RuleSet {
    /// Sketch tag (and generator id) the elaborated traces carry.
    pub tag: &'static str,
    /// The rules, applied in order.
    pub rules: Vec<SketchRule>,
    /// Snap every sampled extent to the largest divisor of the loop being
    /// split: tiles always divide evenly (the Bolt-style native space).
    pub divisors_only: bool,
    /// Demote cache placements whose estimated per-DPU WRAM footprint
    /// exceeds the [`UpmemConfig`] budget instead of leaving them for the
    /// verifier to reject.
    pub wram_fit: bool,
}

impl RuleSet {
    /// Elaborates the rule set for one workload, pulling every free
    /// decision from `decider`.
    ///
    /// # Errors
    /// Fails when a schedule primitive cannot apply (degenerate compute
    /// definitions); decision values themselves cannot fail — they are
    /// clamped at their use sites.
    pub fn elaborate(
        &self,
        def: &ComputeDef,
        hw: &UpmemConfig,
        decider: &mut dyn Decider,
    ) -> Result<Trace> {
        let mut e = Elab::new(def, decider);
        for rule in &self.rules {
            match *rule {
                SketchRule::BindSpatialDpus => e.bind_spatial_dpus(def, hw, self.divisors_only)?,
                SketchRule::RfactorReduce => e.rfactor_reduce(def, self.divisors_only)?,
                SketchRule::BindTasklets => e.bind_tasklets(hw, self.divisors_only)?,
                SketchRule::MultiLevelTile { levels } => {
                    e.multi_level_tile(levels, self.divisors_only)?
                }
                SketchRule::CacheReads => e.cache_reads(def, hw, self.wram_fit)?,
                SketchRule::CacheWrite => e.cache_write(def)?,
                SketchRule::Unroll => e.unroll()?,
                SketchRule::HostPostprocess => e.host_postprocess()?,
            }
        }
        Ok(e.finish(self.tag))
    }
}

/// Powers of two `1, 2, 4, ... <= cap` (always contains 1).
fn pow2_up_to(cap: i64) -> Vec<i64> {
    let mut v = vec![1];
    let mut x = 2;
    while x <= cap {
        v.push(x);
        x *= 2;
    }
    v
}

/// Powers of two up to `cap` that divide `extent` evenly.
fn even_pow2(extent: i64, cap: i64) -> Vec<i64> {
    pow2_up_to(cap)
        .into_iter()
        .filter(|&c| c == 1 || (extent > 0 && extent % c == 0))
        .collect()
}

/// The largest divisor of `extent` that is `<= wanted` (>= 1).
pub(crate) fn snap_divisor(extent: i64, wanted: i64) -> i64 {
    let w = wanted.clamp(1, extent.max(1));
    (1..=w).rev().find(|d| extent % d == 0).unwrap_or(1)
}

/// Elaboration state: the recorder plus the loop roles the rules hand each
/// other (grid prefix, tasklet loop, per-axis tile chains and currents).
struct Elab<'d> {
    rec: SketchRecorder,
    decider: &'d mut dyn Decider,
    decisions: Vec<Instruction>,
    /// DPU-bound loops, in outermost order.
    grid: Vec<LoopRef>,
    /// The tasklet-bound loop, if any.
    tasklet: Option<LoopRef>,
    /// Per spatial axis: tile-split outer loops, outermost first.
    chains: Vec<Vec<LoopRef>>,
    /// Per spatial axis: the current (deepest) data loop.
    cur: Vec<LoopRef>,
    /// Reduction tile-split outer loops.
    rchain: Vec<LoopRef>,
    /// The current (deepest) reduction loop.
    rcur: Option<LoopRef>,
    /// The clamped tasklet count (WRAM footprint estimation).
    tasklets_val: i64,
    /// Final nesting order, set by the first post-tiling rule.
    order: Option<Vec<LoopRef>>,
    /// Loops hosting a cache directive (excluded from unrolling).
    attach_used: Vec<LoopRef>,
}

impl<'d> Elab<'d> {
    fn new(def: &ComputeDef, decider: &'d mut dyn Decider) -> Self {
        Elab {
            rec: SketchRecorder::new(def),
            decider,
            decisions: Vec::new(),
            grid: Vec::new(),
            tasklet: None,
            chains: Vec::new(),
            cur: Vec::new(),
            rchain: Vec::new(),
            rcur: None,
            tasklets_val: 1,
            order: None,
            attach_used: Vec::new(),
        }
    }

    fn decide_int(&mut self, site: String, choices: &[i64], default: i64) -> i64 {
        let value = self.decider.int(&site, choices, default);
        self.decisions.push(Instruction::SampleInt { site, value });
        value
    }

    fn decide_flag(&mut self, site: String, default: bool, p_true: f64) -> bool {
        let value = self.decider.flag(&site, default, p_true);
        self.decisions.push(Instruction::SampleBool { site, value });
        value
    }

    fn bind_spatial_dpus(
        &mut self,
        def: &ComputeDef,
        hw: &UpmemConfig,
        divisors_only: bool,
    ) -> Result<()> {
        let total = hw.total_dpus() as i64;
        for (j, &axis) in def.spatial_axes().iter().enumerate() {
            let extent = def.axes[axis].extent;
            let cap = extent.min(total);
            let choices = if divisors_only {
                even_pow2(extent, cap)
            } else {
                pow2_up_to(cap)
            };
            // Default sketch: spread the first axis over up to 256 DPUs.
            let default = if j == 0 {
                choices
                    .iter()
                    .copied()
                    .filter(|&c| c <= 256)
                    .max()
                    .unwrap_or(1)
            } else {
                1
            };
            let v = self.decide_int(
                format!("{}{j}", site::SPATIAL_DPUS_PREFIX),
                &choices,
                default,
            );
            let l = self.rec.get_loop(axis)?;
            let dpus = if divisors_only {
                snap_divisor(extent, v)
            } else {
                v.clamp(1, extent)
            };
            self.chains.push(Vec::new());
            if dpus > 1 {
                let (dpu, inner) = self.rec.split(l, div_ceil(extent, dpus))?;
                self.rec.bind(dpu, Binding::DpuX)?;
                self.grid.push(dpu);
                self.cur.push(inner);
            } else {
                self.cur.push(l);
            }
        }
        Ok(())
    }

    fn rfactor_reduce(&mut self, def: &ComputeDef, divisors_only: bool) -> Result<()> {
        let Some(&raxis) = def.reduce_axes().first() else {
            return Ok(());
        };
        let extent = def.axes[raxis].extent;
        let choices = if divisors_only {
            even_pow2(extent, 64.min(extent))
        } else {
            pow2_up_to(64.min(extent))
        };
        let v = self.decide_int(site::REDUCE_DPUS.into(), &choices, 1);
        let l = self.rec.get_loop(raxis)?;
        let dpus = if divisors_only {
            snap_divisor(extent, v)
        } else {
            v.clamp(1, extent)
        };
        if dpus > 1 {
            let (r_dpu, r_in) = self.rec.split(l, div_ceil(extent, dpus))?;
            self.rec.rfactor(r_dpu)?;
            self.rec.bind(r_dpu, Binding::DpuY)?;
            self.grid.push(r_dpu);
            self.rcur = Some(r_in);
        } else {
            self.rcur = Some(l);
        }
        Ok(())
    }

    fn bind_tasklets(&mut self, hw: &UpmemConfig, divisors_only: bool) -> Result<()> {
        let maxt = hw.max_tasklets as i64;
        let choices: Vec<i64> = [1, 2, 4, 8, 12, 16, 20, 24]
            .into_iter()
            .filter(|&t| t <= maxt)
            .collect();
        let v = self.decide_int(site::TASKLETS.into(), &choices, 16.min(maxt));
        self.tasklets_val = v.clamp(1, maxt);
        if self.tasklets_val <= 1 {
            return Ok(());
        }
        // Widest per-DPU spatial loop; pure reductions use the reduce loop.
        let slot = (0..self.cur.len()).max_by_key(|&j| {
            self.rec
                .loop_info(self.cur[j])
                .map(|i| i.extent)
                .unwrap_or(0)
        });
        let target = match slot {
            Some(j) => Some(TaskletTarget::Spatial(j)),
            None => self.rcur.map(|_| TaskletTarget::Reduce),
        };
        let Some(target) = target else {
            return Ok(());
        };
        let l = match target {
            TaskletTarget::Spatial(j) => self.cur[j],
            TaskletTarget::Reduce => self.rcur.expect("checked above"),
        };
        let extent = self.rec.loop_info(l)?.extent;
        if extent <= 1 {
            return Ok(());
        }
        let t = if divisors_only {
            snap_divisor(extent, self.tasklets_val.min(extent))
        } else {
            self.tasklets_val.min(extent)
        };
        if t <= 1 {
            return Ok(());
        }
        let (tl, rest) = self.rec.split(l, div_ceil(extent, t))?;
        self.rec.bind(tl, Binding::Tasklet)?;
        self.tasklet = Some(tl);
        match target {
            TaskletTarget::Spatial(j) => self.cur[j] = rest,
            TaskletTarget::Reduce => self.rcur = Some(rest),
        }
        Ok(())
    }

    fn multi_level_tile(&mut self, levels: usize, divisors_only: bool) -> Result<()> {
        const TILE_CHOICES: [i64; 7] = [1, 2, 4, 8, 16, 32, 64];
        for j in 0..self.cur.len() {
            for lvl in 0..levels {
                // Default sketch: one level of 8-wide tiles, rest untiled.
                let default = if lvl == 0 { 8 } else { 1 };
                let v = self.decide_int(format!("tile.{j}.{lvl}"), &TILE_CHOICES, default);
                let l = self.cur[j];
                let extent = self.rec.loop_info(l)?.extent;
                let t = if divisors_only {
                    snap_divisor(extent, v)
                } else {
                    v.clamp(1, extent.max(1))
                };
                if t > 1 && t < extent {
                    let (outer, inner) = self.rec.split(l, t)?;
                    self.chains[j].push(outer);
                    self.cur[j] = inner;
                }
            }
        }
        if self.rcur.is_some() {
            for lvl in 0..levels {
                let default = if lvl == 0 { 8 } else { 1 };
                let v = self.decide_int(format!("rtile.{lvl}"), &TILE_CHOICES, default);
                let l = self.rcur.expect("checked above");
                let extent = self.rec.loop_info(l)?.extent;
                let t = if divisors_only {
                    snap_divisor(extent, v)
                } else {
                    v.clamp(1, extent.max(1))
                };
                if t > 1 && t < extent {
                    let (outer, inner) = self.rec.split(l, t)?;
                    self.rchain.push(outer);
                    self.rcur = Some(inner);
                }
            }
        }
        Ok(())
    }

    /// Applies the canonical nesting once: grid prefix, tasklet loop, tile
    /// chains, spatial currents, then the full reduction chain innermost
    /// (which is what lets the accumulator attach outside every reduction
    /// loop).
    fn ensure_reordered(&mut self) -> Result<()> {
        if self.order.is_some() {
            return Ok(());
        }
        let mut order = self.grid.clone();
        order.extend(self.tasklet);
        for chain in &self.chains {
            order.extend(chain.iter().copied());
        }
        order.extend(self.cur.iter().copied());
        order.extend(self.rchain.iter().copied());
        order.extend(self.rcur);
        self.rec.reorder(&order)?;
        self.order = Some(order);
        Ok(())
    }

    /// Unbound attach candidates, deepest-but-one first (placement 1), then
    /// one level further out (placement 2).
    fn attach_candidates(&self) -> Result<Vec<(usize, LoopRef)>> {
        let order = self.order.as_ref().expect("reordered before caching");
        let mut cands = Vec::new();
        for idx in (0..order.len().saturating_sub(1)).rev() {
            let l = order[idx];
            if self.rec.loop_info(l)?.binding == Binding::None {
                cands.push((idx, l));
            }
            if cands.len() == 2 {
                break;
            }
        }
        Ok(cands)
    }

    /// Elements iterated inside position `idx` of the final order — the
    /// (conservative) per-tasklet staging footprint of an attach there.
    fn elems_inside(&self, idx: usize) -> Result<i64> {
        let order = self.order.as_ref().expect("reordered before caching");
        let mut elems = 1i64;
        for &l in &order[idx + 1..] {
            elems = elems.saturating_mul(self.rec.loop_info(l)?.extent.max(1));
        }
        Ok(elems)
    }

    fn cache_reads(&mut self, def: &ComputeDef, hw: &UpmemConfig, wram_fit: bool) -> Result<()> {
        self.ensure_reordered()?;
        let cands = self.attach_candidates()?;
        // Half the WRAM is the staging budget; the rest is stack + output
        // accumulators.  Split evenly across the inputs that could stage.
        let budget = (hw.wram_bytes as i64 / 2) / (def.inputs.len().max(1) as i64);
        for (i, input) in def.inputs.iter().enumerate() {
            let v = self.decide_int(format!("cache.{i}"), &[0, 1, 2], 1);
            let mut placement = v.clamp(0, 2) as usize;
            if wram_fit {
                let bytes_per_elem = input.dtype.bytes() as i64;
                while placement > 0 {
                    let Some(&(idx, _)) = cands.get(placement - 1) else {
                        placement -= 1;
                        continue;
                    };
                    let bytes = self
                        .elems_inside(idx)?
                        .saturating_mul(bytes_per_elem)
                        .saturating_mul(self.tasklets_val);
                    if bytes <= budget {
                        break;
                    }
                    placement -= 1;
                }
            }
            if placement == 0 {
                continue;
            }
            // Placement 2 falls back to the deeper candidate when only one
            // unbound loop exists.
            let Some(&(_, at)) = cands.get(placement - 1).or_else(|| cands.first()) else {
                continue;
            };
            self.rec.cache_read(i, at)?;
            if !self.attach_used.contains(&at) {
                self.attach_used.push(at);
            }
        }
        Ok(())
    }

    fn cache_write(&mut self, def: &ComputeDef) -> Result<()> {
        self.ensure_reordered()?;
        let v = self.decide_flag("cache_write".into(), true, 0.7);
        // Accumulate in WRAM only when something is staged at all —
        // mirroring the UPMEM sketch's `use_cache` coupling.
        if !v || self.attach_used.is_empty() {
            return Ok(());
        }
        let attach = if def.has_reduce() {
            // Outside every reduction loop: the deepest spatial current.
            self.cur.last().copied()
        } else {
            let order = self.order.as_ref().expect("reordered above");
            (order.len() >= 2).then(|| order[order.len() - 2])
        };
        let Some(l) = attach else {
            return Ok(());
        };
        if self.rec.loop_info(l)?.binding != Binding::None {
            return Ok(());
        }
        self.rec.cache_write(l)?;
        if !self.attach_used.contains(&l) {
            self.attach_used.push(l);
        }
        Ok(())
    }

    fn unroll(&mut self) -> Result<()> {
        self.ensure_reordered()?;
        let v = self.decide_flag(site::UNROLL.into(), false, 0.5);
        if !v {
            return Ok(());
        }
        let Some(&inner) = self.order.as_ref().expect("reordered above").last() else {
            return Ok(());
        };
        if self.attach_used.contains(&inner) || self.rec.loop_info(inner)?.binding != Binding::None
        {
            return Ok(());
        }
        self.rec.unroll(inner)
    }

    fn host_postprocess(&mut self) -> Result<()> {
        const THREAD_CHOICES: [i64; 6] = [1, 2, 4, 8, 16, 32];
        let v = self.decide_int(site::HOST_THREADS.into(), &THREAD_CHOICES, 8);
        self.rec.parallel_host(v.clamp(1, 1 << 16) as usize);
        let pt = self.decide_flag(site::PARALLEL_TRANSFER.into(), true, 0.9);
        self.rec.set_parallel_transfer(pt);
        Ok(())
    }

    /// The finished trace: the decision list leads, structure follows.
    fn finish(mut self, tag: &str) -> Trace {
        let mut insts = std::mem::take(&mut self.decisions);
        insts.append(&mut self.rec.insts);
        Trace::new(tag, insts, self.rec.regs)
    }
}

/// Where the tasklet split lands.
#[derive(Clone, Copy)]
enum TaskletTarget {
    Spatial(usize),
    Reduce,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_tables() {
        assert_eq!(pow2_up_to(1), vec![1]);
        assert_eq!(pow2_up_to(16), vec![1, 2, 4, 8, 16]);
        assert_eq!(pow2_up_to(20), vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn even_pow2_filters_non_divisors() {
        assert_eq!(even_pow2(24, 24), vec![1, 2, 4, 8]);
        assert_eq!(even_pow2(7, 7), vec![1]);
        assert_eq!(even_pow2(64, 16), vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn snap_divisor_finds_the_largest_even_split() {
        assert_eq!(snap_divisor(24, 10), 8);
        assert_eq!(snap_divisor(24, 24), 24);
        assert_eq!(snap_divisor(7, 6), 1);
        assert_eq!(snap_divisor(1, 64), 1);
        assert_eq!(snap_divisor(100, 30), 25);
    }
}
