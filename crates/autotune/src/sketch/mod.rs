//! Sketch-rule schedule spaces: declarative rules, two resident generators
//! and the generator registry.
//!
//! Where [`crate::generator::UpmemSketchGenerator`] hard-codes ATiM's UPMEM
//! sketch (Fig. 6), this module *composes* schedule spaces from declarative
//! [`SketchRule`]s: each rule elaborates one structural move (multi-level
//! tiling, DPU/tasklet binding, `rfactor`, cache placement, unrolling) and
//! declares the decision sites it leaves free.  A [`RuleSet`] runs its rules
//! in order, asking a [`Decider`] for every site it passes, and emits a
//! fully materialized [`Trace`] whose decision list leads the instruction
//! stream — exactly the shape the evolutionary search, the tuning logs and
//! the measurement fleet already understand.
//!
//! Two generators are built from rules here:
//!
//! * [`TiledSketchGenerator`] (`"tiled"`) — multi-level tiling with a
//!   configurable depth and *per-input* cache-read placement sampled as a
//!   decision, opening schedules the fixed-knob sketch cannot reach
//!   (different staging depths per operand, tile pyramids per axis).
//! * [`HardwareNativeGenerator`] (`"hw-native"`) — a Bolt-style
//!   hardware-native space: every sampled extent is snapped to a divisor of
//!   the loop it splits (tiles always divide evenly) and cache placements
//!   are demoted when their estimated WRAM footprint exceeds the budget
//!   from `UpmemConfig`, so the space contains (almost) only
//!   verifier-clean schedules.
//!
//! The *site list* of a rule set is a pure function of the workload and the
//! rule configuration — never of other decisions.  That invariant is what
//! makes decision mutation and crossover on variable-length decision lists
//! valid by construction: any two traces of the same workload share the
//! same sites, and replaying an arbitrary decision vector (clamping at use
//! sites, never rewriting the recorded values) is always well-defined and
//! idempotent.

mod native;
mod rules;
mod tiled;

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;

use crate::generator::{site, SpaceGenerator, UpmemSketchGenerator};
use crate::session::TuningError;
use crate::trace::{Decision, Trace, UPMEM_SKETCH};

pub use native::{HardwareNativeGenerator, HW_NATIVE_SKETCH};
pub use rules::{RuleSet, SketchRule};
pub use tiled::{TiledSketchGenerator, TILED_SKETCH};

/// Answers the free decisions a [`RuleSet`] passes during elaboration.
///
/// The rule engine calls `int`/`flag` once per site, in canonical order,
/// and records the returned value verbatim in the trace — clamping or
/// divisor-snapping happens only at the *use* site, so replaying a trace's
/// own decisions through [`ReplayDecider`] reproduces it bit-identically.
pub trait Decider {
    /// Picks an integer decision for `site` from `choices` (`default` is
    /// the deterministic sketch value).
    fn int(&mut self, site: &str, choices: &[i64], default: i64) -> i64;
    /// Picks a boolean decision for `site` (`p_true` is the sampling
    /// probability; `default` the deterministic sketch value).
    fn flag(&mut self, site: &str, default: bool, p_true: f64) -> bool;
}

/// Deterministic decider: every site takes its default (the rule set's
/// canonical sketch).
#[derive(Debug, Default)]
pub struct DefaultDecider;

impl Decider for DefaultDecider {
    fn int(&mut self, _site: &str, _choices: &[i64], default: i64) -> i64 {
        default
    }

    fn flag(&mut self, _site: &str, default: bool, _p_true: f64) -> bool {
        default
    }
}

/// Random decider driving [`SpaceGenerator::sample`].
///
/// `rfactor` forces the hierarchical-reduction subspace on or off (the
/// balanced-sampling contract of the session); `None` samples it freely.
pub struct SampleDecider<'r> {
    rng: &'r mut StdRng,
    rfactor: Option<bool>,
}

impl<'r> SampleDecider<'r> {
    /// A decider drawing every site uniformly from its choice list.
    pub fn new(rng: &'r mut StdRng, rfactor: Option<bool>) -> Self {
        SampleDecider { rng, rfactor }
    }
}

impl Decider for SampleDecider<'_> {
    fn int(&mut self, site_name: &str, choices: &[i64], default: i64) -> i64 {
        if site_name == site::REDUCE_DPUS {
            match self.rfactor {
                Some(false) => return 1,
                Some(true) => {
                    let hi: Vec<i64> = choices.iter().copied().filter(|&c| c > 1).collect();
                    if hi.is_empty() {
                        return 1;
                    }
                    return hi[self.rng.gen_range(0..hi.len())];
                }
                None => {}
            }
        }
        if choices.is_empty() {
            return default;
        }
        choices[self.rng.gen_range(0..choices.len())]
    }

    fn flag(&mut self, _site: &str, _default: bool, p_true: f64) -> bool {
        self.rng.gen_bool(p_true)
    }
}

/// Replays the decisions of an existing trace (materialization, crossover
/// children, decisions-only traces from logs); sites the trace lacks take
/// their defaults.
#[derive(Debug)]
pub struct ReplayDecider {
    decisions: HashMap<String, Decision>,
}

impl ReplayDecider {
    /// A decider replaying `trace`'s decision list.
    pub fn new(trace: &Trace) -> Self {
        ReplayDecider {
            decisions: trace.decisions().map(|(s, d)| (s.to_string(), d)).collect(),
        }
    }
}

impl Decider for ReplayDecider {
    fn int(&mut self, site: &str, _choices: &[i64], default: i64) -> i64 {
        self.decisions
            .get(site)
            .and_then(|d| d.as_int())
            .unwrap_or(default)
    }

    fn flag(&mut self, site: &str, default: bool, _p_true: f64) -> bool {
        self.decisions
            .get(site)
            .and_then(|d| d.as_bool())
            .unwrap_or(default)
    }
}

/// Replays a base trace with exactly one site (by visit index) resampled —
/// the mutation operator of the rule-built generators.
pub(crate) struct MutateDecider<'r> {
    rng: &'r mut StdRng,
    base: HashMap<String, Decision>,
    target: usize,
    seen: usize,
}

impl<'r> MutateDecider<'r> {
    pub(crate) fn new(rng: &'r mut StdRng, base: &Trace, target: usize) -> Self {
        MutateDecider {
            rng,
            base: base.decisions().map(|(s, d)| (s.to_string(), d)).collect(),
            target,
            seen: 0,
        }
    }
}

impl Decider for MutateDecider<'_> {
    fn int(&mut self, site: &str, choices: &[i64], default: i64) -> i64 {
        let idx = self.seen;
        self.seen += 1;
        let current = self
            .base
            .get(site)
            .and_then(|d| d.as_int())
            .unwrap_or(default);
        if idx != self.target || choices.is_empty() {
            return current;
        }
        // Prefer a different value; a single-choice site stays put.
        let fresh: Vec<i64> = choices.iter().copied().filter(|&c| c != current).collect();
        if fresh.is_empty() {
            current
        } else {
            fresh[self.rng.gen_range(0..fresh.len())]
        }
    }

    fn flag(&mut self, site: &str, default: bool, _p_true: f64) -> bool {
        let idx = self.seen;
        self.seen += 1;
        let current = self
            .base
            .get(site)
            .and_then(|d| d.as_bool())
            .unwrap_or(default);
        if idx == self.target {
            !current
        } else {
            current
        }
    }
}

/// Fixes a handful of sites, defaulting the rest — how the hardware-native
/// generator enumerates its sketch grid.
#[derive(Debug, Default)]
pub(crate) struct OverlayDecider {
    fixed: HashMap<String, Decision>,
}

impl OverlayDecider {
    pub(crate) fn set(mut self, site: impl Into<String>, d: Decision) -> Self {
        self.fixed.insert(site.into(), d);
        self
    }
}

impl Decider for OverlayDecider {
    fn int(&mut self, site: &str, _choices: &[i64], default: i64) -> i64 {
        self.fixed
            .get(site)
            .and_then(|d| d.as_int())
            .unwrap_or(default)
    }

    fn flag(&mut self, site: &str, default: bool, _p_true: f64) -> bool {
        self.fixed
            .get(site)
            .and_then(|d| d.as_bool())
            .unwrap_or(default)
    }
}

/// Environment variable selecting the resident space generator by id
/// (`"upmem"`, `"tiled"`, `"hw-native"`).  Read by `SessionBuilder::build`
/// in `atim-core` and by fleet workers; unknown values fail loudly with
/// [`TuningError::InvalidSpaceGenerator`].
pub const SPACE_GENERATOR_ENV: &str = "ATIM_SPACE_GENERATOR";

/// The ids of the generators every binary in the tree knows how to resolve
/// (tuner, server, fleet workers, bench harness).
pub const RESIDENT_GENERATOR_IDS: [&str; 3] = [UPMEM_SKETCH, TILED_SKETCH, HW_NATIVE_SKETCH];

/// Resolves a resident generator by its id (`SpaceGenerator::name`).
///
/// This is the one id → generator mapping in the tree: sessions, cache
/// keys, measure jobs and fleet workers all round-trip generator identity
/// through it.
pub fn resolve_generator(id: &str) -> Option<Arc<dyn SpaceGenerator>> {
    match id {
        UPMEM_SKETCH => Some(Arc::new(UpmemSketchGenerator)),
        TILED_SKETCH => Some(Arc::new(TiledSketchGenerator::default())),
        HW_NATIVE_SKETCH => Some(Arc::new(HardwareNativeGenerator::default())),
        _ => None,
    }
}

/// The generator selected by [`SPACE_GENERATOR_ENV`], if the variable is
/// set.
///
/// # Errors
/// [`TuningError::InvalidSpaceGenerator`] when the variable holds an
/// unknown id — a typo must not silently fall back to the default space.
pub fn generator_from_env() -> Result<Option<Arc<dyn SpaceGenerator>>, TuningError> {
    match std::env::var(SPACE_GENERATOR_ENV) {
        Ok(raw) => match resolve_generator(raw.trim()) {
            Some(g) => Ok(Some(g)),
            None => Err(TuningError::InvalidSpaceGenerator { value: raw }),
        },
        Err(_) => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_every_resident_id() {
        for id in RESIDENT_GENERATOR_IDS {
            let g = resolve_generator(id).expect("resident id must resolve");
            assert_eq!(g.name(), id, "generator name must round-trip its id");
        }
        assert!(resolve_generator("no-such-space").is_none());
    }

    #[test]
    fn resident_ids_are_distinct() {
        for (i, a) in RESIDENT_GENERATOR_IDS.iter().enumerate() {
            for b in &RESIDENT_GENERATOR_IDS[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
