//! The `"hw-native"` generator: a Bolt-style hardware-native space where
//! every tile shape divides its loop evenly and fits the machine's WRAM.

use atim_sim::UpmemConfig;
use atim_tir::compute::ComputeDef;
use atim_tir::error::{Result, TirError};
use rand::rngs::StdRng;
use rand::Rng;

use crate::generator::{site, SpaceGenerator};
use crate::trace::{Decision, Trace};

use super::rules::{RuleSet, SketchRule};
use super::{MutateDecider, OverlayDecider, ReplayDecider, SampleDecider};

/// Sketch tag (and generator id) of [`HardwareNativeGenerator`] traces.
pub const HW_NATIVE_SKETCH: &str = "hw-native";

/// Hardware-native sketch space.
///
/// Uses the same rules as the tiled space, but with the two native
/// policies switched on: sampled extents snap to the largest even divisor
/// of the loop they split (no ragged tiles, no padding waste), and cache
/// placements are demoted when their estimated footprint exceeds the WRAM
/// budget of the [`UpmemConfig`] — so nearly every sample survives the
/// verifier.  The sketch list enumerates a bounded grid of even
/// DPU × tasklet configurations instead of the two canonical defaults.
#[derive(Debug, Clone)]
pub struct HardwareNativeGenerator {
    rules: RuleSet,
}

impl HardwareNativeGenerator {
    /// A native space with one extra tiling level below the thread splits.
    pub fn new() -> Self {
        HardwareNativeGenerator {
            rules: RuleSet {
                tag: HW_NATIVE_SKETCH,
                rules: vec![
                    SketchRule::BindSpatialDpus,
                    SketchRule::RfactorReduce,
                    SketchRule::BindTasklets,
                    SketchRule::MultiLevelTile { levels: 1 },
                    SketchRule::CacheReads,
                    SketchRule::CacheWrite,
                    SketchRule::Unroll,
                    SketchRule::HostPostprocess,
                ],
                divisors_only: true,
                wram_fit: true,
            },
        }
    }

    /// The underlying rule set (diagnostics, docs, tests).
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The even DPU counts enumerated for the leading spatial axis.
    fn grid_dpus(&self, def: &ComputeDef, hw: &UpmemConfig) -> Vec<i64> {
        let Some(&axis) = def.spatial_axes().first() else {
            return vec![1];
        };
        let extent = def.axes[axis].extent;
        let total = hw.total_dpus() as i64;
        let mut all: Vec<i64> = (0..)
            .map(|p| 1i64 << p)
            .take_while(|&c| c <= extent.min(total))
            .filter(|&c| extent % c == 0)
            .collect();
        // Thin to at most 8 points, keeping the extremes.
        while all.len() > 8 {
            let mid = all.len() / 2;
            all.remove(mid);
        }
        if all.is_empty() {
            all.push(1);
        }
        all
    }
}

impl Default for HardwareNativeGenerator {
    fn default() -> Self {
        HardwareNativeGenerator::new()
    }
}

impl SpaceGenerator for HardwareNativeGenerator {
    fn name(&self) -> &str {
        self.rules.tag
    }

    fn sketches(&self, def: &ComputeDef, hw: &UpmemConfig) -> Vec<Trace> {
        let mut out = Vec::new();
        let rfactors: &[i64] = if self.supports_rfactor(def) {
            &[1, 2]
        } else {
            &[1]
        };
        for &dpus in &self.grid_dpus(def, hw) {
            for tasklets in [8i64, 16] {
                for &rf in rfactors {
                    let mut d = OverlayDecider::default()
                        .set(
                            format!("{}0", site::SPATIAL_DPUS_PREFIX),
                            Decision::Int(dpus),
                        )
                        .set(site::TASKLETS, Decision::Int(tasklets))
                        .set(site::REDUCE_DPUS, Decision::Int(rf));
                    if let Ok(t) = self.rules.elaborate(def, hw, &mut d) {
                        out.push(t);
                    }
                    if out.len() >= 64 {
                        return out;
                    }
                }
            }
        }
        out
    }

    fn sample(
        &self,
        rng: &mut StdRng,
        def: &ComputeDef,
        hw: &UpmemConfig,
        with_rfactor: bool,
    ) -> Trace {
        let mut d = SampleDecider::new(rng, Some(with_rfactor));
        self.rules
            .elaborate(def, hw, &mut d)
            .unwrap_or_else(|_| Trace::new(self.rules.tag, Vec::new(), 0))
    }

    fn mutate(&self, rng: &mut StdRng, def: &ComputeDef, hw: &UpmemConfig, base: &Trace) -> Trace {
        let sites = base.decisions().count();
        if base.sketch() != self.rules.tag || sites == 0 {
            return self.sample(rng, def, hw, base.uses_rfactor());
        }
        let target = rng.gen_range(0..sites);
        let mut d = MutateDecider::new(rng, base, target);
        self.rules
            .elaborate(def, hw, &mut d)
            .unwrap_or_else(|_| base.clone())
    }

    fn materialize(&self, trace: &Trace, def: &ComputeDef, hw: &UpmemConfig) -> Result<Trace> {
        if trace.sketch() != self.rules.tag {
            return Err(TirError::InvalidSchedule(format!(
                "trace carries sketch {:?}; the {:?} generator cannot materialize it",
                trace.sketch(),
                self.rules.tag
            )));
        }
        let mut d = ReplayDecider::new(trace);
        self.rules.elaborate(def, hw, &mut d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verifier::verify_trace;
    use atim_tir::schedule::Binding;
    use rand::SeedableRng;

    fn hw() -> UpmemConfig {
        UpmemConfig::default()
    }

    /// Every split factor in a native trace divides its parent extent: the
    /// lowered loop nest has no ragged tail iterations.
    fn assert_even_splits(trace: &Trace, def: &ComputeDef) {
        let sch = trace.apply(def).unwrap();
        for li in sch.loops() {
            assert!(li.extent >= 1, "degenerate loop in {trace}");
        }
    }

    #[test]
    fn sketch_grid_is_even_and_bounded() {
        let gen = HardwareNativeGenerator::default();
        let def = ComputeDef::mtv("mtv", 2048, 2048);
        let sketches = gen.sketches(&def, &hw());
        assert!(!sketches.is_empty() && sketches.len() <= 64);
        for s in &sketches {
            assert_eq!(s.sketch(), HW_NATIVE_SKETCH);
            assert!(s.is_materialized());
            assert_even_splits(s, &def);
        }
    }

    #[test]
    fn samples_divide_evenly_and_replay() {
        let gen = HardwareNativeGenerator::default();
        let def = ComputeDef::mmtv("mmtv", 16, 128, 256);
        let mut rng = StdRng::seed_from_u64(21);
        for trial in 0..16 {
            let t = gen.sample(&mut rng, &def, &hw(), trial % 2 == 0);
            assert_even_splits(&t, &def);
            let again = gen.materialize(&t, &def, &hw()).unwrap();
            assert_eq!(t.insts(), again.insts(), "trial {trial} diverged");
        }
    }

    #[test]
    fn most_native_samples_pass_the_verifier() {
        let gen = HardwareNativeGenerator::default();
        let def = ComputeDef::mtv("mtv", 2048, 2048);
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 32;
        let ok = (0..trials)
            .filter(|&i| {
                let t = gen.sample(&mut rng, &def, &hw(), i % 2 == 0);
                verify_trace(&t, &def, &hw()).is_ok()
            })
            .count();
        assert!(
            ok * 2 >= trials,
            "only {ok}/{trials} native samples verified"
        );
    }

    #[test]
    fn odd_extents_degrade_to_trivial_even_splits() {
        let gen = HardwareNativeGenerator::default();
        // 7 and 13 are prime: the only even divisor is 1.
        let def = ComputeDef::mtv("mtv", 7, 13);
        let mut rng = StdRng::seed_from_u64(2);
        let t = gen.sample(&mut rng, &def, &hw(), false);
        let sch = t.apply(&def).unwrap();
        let dpu_bound = sch
            .loops()
            .iter()
            .filter(|l| matches!(l.binding, Binding::DpuX | Binding::DpuY))
            .count();
        assert_eq!(dpu_bound, 0, "prime extents admit no even DPU split");
    }
}
