//! The `"tiled"` generator: multi-level tiling with sampled per-input
//! cache placement, built from [`SketchRule`]s.

use atim_sim::UpmemConfig;
use atim_tir::compute::ComputeDef;
use atim_tir::error::{Result, TirError};
use rand::rngs::StdRng;
use rand::Rng;

use crate::generator::{site, SpaceGenerator};
use crate::trace::{Decision, Trace};

use super::rules::{RuleSet, SketchRule};
use super::{DefaultDecider, MutateDecider, OverlayDecider, ReplayDecider, SampleDecider};

/// Sketch tag (and generator id) of [`TiledSketchGenerator`] traces.
pub const TILED_SKETCH: &str = "tiled";

/// Multi-level tiling sketch space.
///
/// Extends the joint UPMEM space with `levels` extra tile splits per data
/// loop (`tile.{j}.{l}` / `rtile.{l}` sites) and a *per-input* cache-read
/// placement decision (`cache.{i}`: stream, deep attach, or shallow
/// attach) — schedules the fixed-knob sketch cannot express, e.g. staging
/// only the operand that is reused while streaming the other.
#[derive(Debug, Clone)]
pub struct TiledSketchGenerator {
    rules: RuleSet,
}

impl TiledSketchGenerator {
    /// A tiled space with `levels` tile splits below the DPU/tasklet
    /// distribution (`levels = 0` degenerates to binding + caching only).
    pub fn new(levels: usize) -> Self {
        TiledSketchGenerator {
            rules: RuleSet {
                tag: TILED_SKETCH,
                rules: vec![
                    SketchRule::BindSpatialDpus,
                    SketchRule::RfactorReduce,
                    SketchRule::BindTasklets,
                    SketchRule::MultiLevelTile { levels },
                    SketchRule::CacheReads,
                    SketchRule::CacheWrite,
                    SketchRule::Unroll,
                    SketchRule::HostPostprocess,
                ],
                divisors_only: false,
                wram_fit: false,
            },
        }
    }

    /// The underlying rule set (diagnostics, docs, tests).
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }
}

impl Default for TiledSketchGenerator {
    fn default() -> Self {
        TiledSketchGenerator::new(2)
    }
}

impl SpaceGenerator for TiledSketchGenerator {
    fn name(&self) -> &str {
        self.rules.tag
    }

    fn sketches(&self, def: &ComputeDef, hw: &UpmemConfig) -> Vec<Trace> {
        let mut out = Vec::new();
        if let Ok(t) = self.rules.elaborate(def, hw, &mut DefaultDecider) {
            out.push(t);
        }
        if self.supports_rfactor(def) {
            let mut d = OverlayDecider::default().set(site::REDUCE_DPUS, Decision::Int(2));
            if let Ok(t) = self.rules.elaborate(def, hw, &mut d) {
                out.push(t);
            }
        }
        out
    }

    fn sample(
        &self,
        rng: &mut StdRng,
        def: &ComputeDef,
        hw: &UpmemConfig,
        with_rfactor: bool,
    ) -> Trace {
        let mut d = SampleDecider::new(rng, Some(with_rfactor));
        self.rules
            .elaborate(def, hw, &mut d)
            .unwrap_or_else(|_| Trace::new(self.rules.tag, Vec::new(), 0))
    }

    fn mutate(&self, rng: &mut StdRng, def: &ComputeDef, hw: &UpmemConfig, base: &Trace) -> Trace {
        let sites = base.decisions().count();
        if base.sketch() != self.rules.tag || sites == 0 {
            // Foreign (or empty) traces restart from a fresh sample in the
            // matching design subspace.
            return self.sample(rng, def, hw, base.uses_rfactor());
        }
        let target = rng.gen_range(0..sites);
        let mut d = MutateDecider::new(rng, base, target);
        self.rules
            .elaborate(def, hw, &mut d)
            .unwrap_or_else(|_| base.clone())
    }

    fn materialize(&self, trace: &Trace, def: &ComputeDef, hw: &UpmemConfig) -> Result<Trace> {
        if trace.sketch() != self.rules.tag {
            return Err(TirError::InvalidSchedule(format!(
                "trace carries sketch {:?}; the {:?} generator cannot materialize it",
                trace.sketch(),
                self.rules.tag
            )));
        }
        let mut d = ReplayDecider::new(trace);
        self.rules.elaborate(def, hw, &mut d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn hw() -> UpmemConfig {
        UpmemConfig::default()
    }

    #[test]
    fn sketches_are_materialized_and_tagged() {
        let gen = TiledSketchGenerator::default();
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let sketches = gen.sketches(&def, &hw());
        assert_eq!(sketches.len(), 2);
        for s in &sketches {
            assert_eq!(s.sketch(), TILED_SKETCH);
            assert!(s.is_materialized());
            s.apply(&def).unwrap();
        }
        assert!(!sketches[0].uses_rfactor());
        assert!(sketches[1].uses_rfactor());
    }

    #[test]
    fn samples_replay_bit_identically() {
        let gen = TiledSketchGenerator::default();
        let def = ComputeDef::mmtv("mmtv", 8, 64, 128);
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..16 {
            let t = gen.sample(&mut rng, &def, &hw(), trial % 2 == 0);
            let again = gen.materialize(&t, &def, &hw()).unwrap();
            assert_eq!(t.insts(), again.insts(), "trial {trial} diverged");
            assert_eq!(t.regs(), again.regs());
        }
    }

    #[test]
    fn per_input_cache_placement_sites_exist() {
        let gen = TiledSketchGenerator::default();
        let def = ComputeDef::mtv("mtv", 512, 512);
        let sketch = &gen.sketches(&def, &hw())[0];
        for i in 0..def.inputs.len() {
            assert!(
                sketch.int_decision(&format!("cache.{i}")).is_some(),
                "input {i} lacks a placement site"
            );
        }
        assert!(sketch.int_decision("tile.0.0").is_some());
        assert!(sketch.int_decision("rtile.0").is_some());
    }

    #[test]
    fn mutation_stays_in_family_and_materialized() {
        let gen = TiledSketchGenerator::default();
        let def = ComputeDef::gemv("gemv", 256, 256, 1.5);
        let mut rng = StdRng::seed_from_u64(9);
        let base = gen.sample(&mut rng, &def, &hw(), false);
        let mut changed = false;
        for _ in 0..32 {
            let m = gen.mutate(&mut rng, &def, &hw(), &base);
            assert_eq!(m.sketch(), TILED_SKETCH);
            assert!(m.is_materialized());
            changed |= m != base;
        }
        assert!(changed, "32 mutations never changed a decision");
    }

    #[test]
    fn materialize_rejects_foreign_sketches() {
        let gen = TiledSketchGenerator::default();
        let def = ComputeDef::va("va", 64);
        let foreign = Trace::from_decisions("upmem", vec![("tasklets", Decision::Int(4))]);
        assert!(gen.materialize(&foreign, &def, &hw()).is_err());
    }
}
