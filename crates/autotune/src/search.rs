//! Balanced evolutionary search components (§5.2.3).
//!
//! The UPMEM joint search space is strongly biased toward inter-DPU
//! parallelism: there are orders of magnitude more DPUs than tasklets, so a
//! naive evolutionary search floods its best-candidate database with
//! `rfactor` candidates early and prematurely drops the non-`rfactor` design
//! space.  The paper counters this with two techniques reproduced here:
//!
//! * **Balanced sampling** — during the first 40% of trials, parents are
//!   drawn half from `rfactor` and half from non-`rfactor` candidates in the
//!   database.
//! * **Adaptive ε-greedy** — the exploration probability starts at 0.5 and
//!   decays linearly to 0.05 over the same window, after which exploitation
//!   dominates to accelerate convergence.

use std::collections::HashSet;

use crate::trace::Trace;

/// Knobs of the evolutionary search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchStrategy {
    /// Enable balanced sampling of the two design spaces during exploration.
    pub balanced_sampling: bool,
    /// Enable the adaptive ε schedule (otherwise ε stays at `final_epsilon`).
    pub adaptive_epsilon: bool,
    /// ε at the start of tuning (probability of sampling a fresh random
    /// candidate instead of mutating a database parent).
    pub initial_epsilon: f64,
    /// ε after the exploration window.
    pub final_epsilon: f64,
    /// Fraction of total trials considered "early" for both techniques.
    pub exploration_fraction: f64,
    /// Probability that an exploitation step crosses over two database
    /// parents (mixing their trace decisions site-wise) instead of mutating
    /// one.  The default is 0.0 — pure mutation, matching the paper's
    /// search and keeping fixed-seed trajectories identical to the
    /// pre-trace tuner.
    pub crossover_prob: f64,
}

impl Default for SearchStrategy {
    fn default() -> Self {
        SearchStrategy {
            balanced_sampling: true,
            adaptive_epsilon: true,
            initial_epsilon: 0.5,
            final_epsilon: 0.05,
            exploration_fraction: 0.4,
            crossover_prob: 0.0,
        }
    }
}

impl SearchStrategy {
    /// TVM's default strategy: no balancing, fixed ε.
    pub fn tvm_default() -> Self {
        SearchStrategy {
            balanced_sampling: false,
            adaptive_epsilon: false,
            ..Self::default()
        }
    }

    /// The exploration probability at the given tuning progress (0..1).
    pub fn epsilon_at(&self, progress: f64) -> f64 {
        if !self.adaptive_epsilon {
            return self.final_epsilon;
        }
        let p = progress.clamp(0.0, 1.0);
        if p >= self.exploration_fraction {
            self.final_epsilon
        } else {
            let t = p / self.exploration_fraction;
            self.initial_epsilon + t * (self.final_epsilon - self.initial_epsilon)
        }
    }

    /// Whether balanced parent selection applies at the given progress.
    pub fn balanced_at(&self, progress: f64) -> bool {
        self.balanced_sampling && progress < self.exploration_fraction
    }
}

/// One measured candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct DbEntry {
    /// The measured candidate trace.
    pub trace: Trace,
    /// Measured latency in seconds.
    pub latency_s: f64,
}

/// The best-candidate database shared by all search rounds.
///
/// Entries are kept sorted by latency via binary-search insertion (one
/// `partition_point` plus one `Vec::insert` per measurement, instead of the
/// full re-sort a naive implementation pays), and membership queries go
/// through a hash set, so neither operation is quadratic across a tuning
/// session.
#[derive(Debug, Clone, Default)]
pub struct CandidateDb {
    /// Sorted by latency ascending; ties keep insertion order.
    entries: Vec<DbEntry>,
    /// Hash-based dedup set backing `contains`, keyed on trace identity
    /// (sketch + decision list).
    measured: HashSet<Trace>,
}

impl CandidateDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of measured candidates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a trace has already been measured (keyed on trace identity:
    /// sketch + decisions, so a decisions-only twin of a measured candidate
    /// also answers true).
    pub fn contains(&self, trace: &Trace) -> bool {
        self.measured.contains(trace)
    }

    /// Records a measurement, keeping entries sorted by latency.  Ties
    /// preserve insertion order (matching what a stable sort after every
    /// push used to produce).
    pub fn insert(&mut self, trace: Trace, latency_s: f64) {
        self.measured.insert(trace.clone());
        let at = self.entries.partition_point(|e| e.latency_s <= latency_s);
        self.entries.insert(at, DbEntry { trace, latency_s });
    }

    /// The best entry so far.
    pub fn best(&self) -> Option<&DbEntry> {
        self.entries.first()
    }

    /// Selects up to `k` parent candidates.  With `balanced` set, half the
    /// slots are reserved for `rfactor` candidates and half for
    /// non-`rfactor` candidates (§5.2.3's balanced sampler, keyed on each
    /// trace's rfactor decision); otherwise the plain top-k by latency is
    /// returned.
    pub fn top_k(&self, k: usize, balanced: bool) -> Vec<&DbEntry> {
        if !balanced {
            return self.entries.iter().take(k).collect();
        }
        let half = k.div_ceil(2);
        let with: Vec<&DbEntry> = self
            .entries
            .iter()
            .filter(|e| e.trace.uses_rfactor())
            .take(half)
            .collect();
        let without: Vec<&DbEntry> = self
            .entries
            .iter()
            .filter(|e| !e.trace.uses_rfactor())
            .take(half)
            .collect();
        let mut out = Vec::with_capacity(k);
        out.extend(with);
        out.extend(without);
        // Fill up with remaining best entries if one side is short.
        if out.len() < k {
            for e in &self.entries {
                if out.len() >= k {
                    break;
                }
                if !out.iter().any(|x| std::ptr::eq(*x, e)) {
                    out.push(e);
                }
            }
        }
        out.truncate(k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ScheduleConfig;

    fn cfg(dpus: i64, rfactor: i64) -> Trace {
        ScheduleConfig {
            spatial_dpus: vec![dpus],
            reduce_dpus: rfactor,
            tasklets: 8,
            cache_elems: 64,
            use_cache: true,
            unroll: false,
            host_threads: 4,
            parallel_transfer: true,
        }
        .to_decision_trace()
    }

    #[test]
    fn epsilon_schedule_decays_linearly() {
        let s = SearchStrategy::default();
        assert!((s.epsilon_at(0.0) - 0.5).abs() < 1e-12);
        assert!((s.epsilon_at(0.2) - 0.275).abs() < 1e-12);
        assert!((s.epsilon_at(0.4) - 0.05).abs() < 1e-12);
        assert!((s.epsilon_at(0.9) - 0.05).abs() < 1e-12);
        let fixed = SearchStrategy::tvm_default();
        assert!((fixed.epsilon_at(0.0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn balanced_window_follows_exploration_fraction() {
        let s = SearchStrategy::default();
        assert!(s.balanced_at(0.1));
        assert!(!s.balanced_at(0.5));
        let off = SearchStrategy::tvm_default();
        assert!(!off.balanced_at(0.1));
    }

    #[test]
    fn db_orders_by_latency() {
        let mut db = CandidateDb::new();
        db.insert(cfg(64, 1), 3.0);
        db.insert(cfg(128, 1), 1.0);
        db.insert(cfg(256, 2), 2.0);
        assert_eq!(db.len(), 3);
        assert_eq!(db.best().unwrap().latency_s, 1.0);
        assert!(db.contains(&cfg(64, 1)));
        assert!(!db.contains(&cfg(999, 1)));
    }

    #[test]
    fn binary_insertion_matches_the_naive_resort_implementation() {
        // Reference: the previous push-then-stable-sort implementation.
        let mut naive: Vec<DbEntry> = Vec::new();
        let mut db = CandidateDb::new();
        let latencies = [3.0, 1.0, 2.0, 1.0, 5.0, 0.5, 2.0, 1.0, 4.0, 0.5];
        for (i, &lat) in latencies.iter().enumerate() {
            let config = cfg(8 + i as i64, if i % 3 == 0 { 4 } else { 1 });
            naive.push(DbEntry {
                trace: config.clone(),
                latency_s: lat,
            });
            naive.sort_by(|a, b| {
                a.latency_s
                    .partial_cmp(&b.latency_s)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            db.insert(config, lat);
            // Ordering (including tie order) is identical after every insert.
            let got: Vec<(&Trace, f64)> = db
                .top_k(db.len(), false)
                .iter()
                .map(|e| (&e.trace, e.latency_s))
                .collect();
            let want: Vec<(&Trace, f64)> = naive.iter().map(|e| (&e.trace, e.latency_s)).collect();
            assert_eq!(got, want, "after insert #{i}");
        }
        // Balanced top-k picks the same parents as the naive ordering would.
        let balanced: Vec<f64> = db.top_k(4, true).iter().map(|e| e.latency_s).collect();
        assert_eq!(balanced.len(), 4);
        let rfactor_picks = db
            .top_k(4, true)
            .iter()
            .filter(|e| e.trace.uses_rfactor())
            .count();
        assert_eq!(rfactor_picks, 2);
        // And membership still answers through the hash set.
        assert!(db.contains(&cfg(8, 4)));
        assert!(!db.contains(&cfg(999, 1)));
    }

    #[test]
    fn balanced_top_k_keeps_both_design_spaces() {
        let mut db = CandidateDb::new();
        // rfactor candidates dominate the top of the database.
        for (i, lat) in (0..6).zip([1.0, 1.1, 1.2, 1.3, 1.4, 1.5]) {
            db.insert(cfg(64 + i, 4), lat);
        }
        db.insert(cfg(32, 1), 9.0);
        db.insert(cfg(16, 1), 10.0);

        let plain = db.top_k(4, false);
        assert!(plain.iter().all(|e| e.trace.uses_rfactor()));

        let balanced = db.top_k(4, true);
        let non_rfactor = balanced.iter().filter(|e| !e.trace.uses_rfactor()).count();
        assert_eq!(
            non_rfactor, 2,
            "balanced sampling must keep non-rfactor parents"
        );
    }

    #[test]
    fn balanced_top_k_fills_when_one_side_is_short() {
        let mut db = CandidateDb::new();
        db.insert(cfg(64, 4), 1.0);
        db.insert(cfg(128, 4), 2.0);
        db.insert(cfg(256, 4), 3.0);
        let picked = db.top_k(3, true);
        assert_eq!(picked.len(), 3);
    }
}
