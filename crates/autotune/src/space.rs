//! The legacy knob-vector view of the UPMEM design space.
//!
//! The tuning stack searches over [`crate::trace::Trace`]s now — sampled
//! schedule traces emitted by a [`crate::generator::SpaceGenerator`].
//! [`ScheduleConfig`] survives as the *conversion layer*: the named knob
//! vector of the default UPMEM sketch, used to express fixed baseline
//! configurations (PrIM, SimplePIM), to shim v1 tuning logs into traces
//! ([`ScheduleConfig::to_decision_trace`]) and to read the knobs back out of
//! a trace ([`ScheduleConfig::from_trace`]).  Each knob maps one-to-one onto
//! the schedule-primitive sequences of the paper's Table 2:
//!
//! | Decision              | Primitives it controls                                |
//! |-----------------------|-------------------------------------------------------|
//! | `spatial_dpus`        | host-to-DPU data distribution (`split`/`reorder`/`bind`) |
//! | `reduce_dpus`         | reduction strategy (`rfactor` + `bind`)               |
//! | `tasklets`            | multi-level tiling (`split` + tasklet `bind`)         |
//! | `cache_elems`         | intra-DPU caching (`cache_read/write` + `compute_at`) |
//! | `use_cache`           | whether WRAM staging is generated at all              |
//! | `unroll`              | innermost-loop unrolling                              |
//! | `host_threads`        | post-processing (`split` + `parallel`)                |
//! | `parallel_transfer`   | bulk/bank-parallel transfer intrinsics (Fig. 7)       |

use atim_sim::UpmemConfig;
use atim_tir::compute::ComputeDef;
use atim_tir::error::Result;
use atim_tir::schedule::{Attach, Binding, Schedule};
use rand::Rng;

use crate::generator;
use crate::trace::Trace;

/// The named knob vector of the default UPMEM sketch — one point in the
/// joint host/kernel design space, as a struct instead of a trace.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScheduleConfig {
    /// DPUs assigned to each spatial axis (one entry per spatial axis).
    pub spatial_dpus: Vec<i64>,
    /// DPUs assigned to the reduction axis (1 = no hierarchical reduction).
    pub reduce_dpus: i64,
    /// Tasklets per DPU.
    pub tasklets: i64,
    /// Elements per WRAM caching tile along the innermost loop.
    pub cache_elems: i64,
    /// Whether inputs/outputs are staged through WRAM at all.
    pub use_cache: bool,
    /// Whether the innermost loop is unrolled.
    pub unroll: bool,
    /// Host threads used for post-processing (final reduction).
    pub host_threads: usize,
    /// Whether host transfers use the rank-parallel push path.
    pub parallel_transfer: bool,
}

impl ScheduleConfig {
    /// Total number of DPUs this configuration uses.
    pub fn num_dpus(&self) -> i64 {
        self.spatial_dpus.iter().product::<i64>().max(1) * self.reduce_dpus.max(1)
    }

    /// Whether the configuration uses hierarchical (rfactor) reduction.
    pub fn uses_rfactor(&self) -> bool {
        self.reduce_dpus > 1
    }

    /// A sensible starting point for a workload: one DPU per row-ish chunk,
    /// 16 tasklets, 64-element caching tiles (PrIM-like defaults).
    pub fn default_for(def: &ComputeDef, hw: &UpmemConfig) -> Self {
        let spatial = def.spatial_axes();
        let total = hw.total_dpus() as i64;
        let mut spatial_dpus = vec![1i64; spatial.len()];
        if let Some(&first) = spatial.first() {
            spatial_dpus[0] = def.axes[first].extent.min(total).min(256);
        }
        ScheduleConfig {
            spatial_dpus,
            reduce_dpus: 1,
            tasklets: 16,
            cache_elems: 64,
            use_cache: true,
            unroll: false,
            host_threads: 8,
            parallel_transfer: true,
        }
    }

    /// The decisions-only UPMEM trace of this knob vector — the context-free
    /// `ScheduleConfig → Trace` shim (no workload needed; v1 tuning logs
    /// decode through this).  The result compares and hashes equal to the
    /// materialized trace of the same knobs.
    pub fn to_decision_trace(&self) -> Trace {
        generator::decision_trace_of(self)
    }

    /// The fully materialized UPMEM trace of this knob vector for a
    /// workload.  Knob vectors the sketch cannot instantiate yield a
    /// decisions-only trace, which the verifier rejects — exactly as it
    /// rejected un-instantiable configs.
    pub fn to_trace(&self, def: &ComputeDef) -> Trace {
        generator::trace_of_config(self, def)
    }

    /// Reads the knob vector back out of a trace's decisions.  `None` for
    /// traces of custom space generators (which have no UPMEM knobs).
    pub fn from_trace(trace: &Trace) -> Option<Self> {
        generator::knobs_of(trace)
    }

    /// Instantiates the ATiM sketch for this configuration: a complete
    /// schedule with DPU distribution, optional hierarchical reduction,
    /// tasklet binding, WRAM caching and post-processing parallelism.
    ///
    /// This is the pre-trace reference implementation; the trace pipeline
    /// builds the identical schedule via [`ScheduleConfig::to_trace`] +
    /// [`Trace::apply`], and `tests/trace_equivalence.rs` pins the two
    /// against each other for every paper workload.
    ///
    /// # Errors
    /// Returns an error if a primitive application fails (e.g. impossible
    /// factors); such configurations should simply be discarded by the
    /// caller.
    #[deprecated(
        since = "0.3.0",
        note = "use `to_trace(def)` + `Trace::apply` — kept as the reference the \
                trace equivalence tests pin against"
    )]
    pub fn instantiate(&self, def: &ComputeDef) -> Result<Schedule> {
        let mut sch = Schedule::new(def.clone());
        let spatial_axes = def.spatial_axes();
        let reduce_axes = def.reduce_axes();

        let mut grid_loops = Vec::new();
        let mut spatial_inner = Vec::new();

        // Host-to-DPU data distribution over the spatial axes.
        for (j, &axis) in spatial_axes.iter().enumerate() {
            let dpus = self
                .spatial_dpus
                .get(j)
                .copied()
                .unwrap_or(1)
                .clamp(1, def.axes[axis].extent);
            let l = sch.loops_of_axis(axis)[0];
            if dpus > 1 {
                let inner_extent = div_ceil(def.axes[axis].extent, dpus);
                let (dpu, inner) = sch.split(l, inner_extent)?;
                sch.bind(dpu, Binding::DpuX)?;
                grid_loops.push(dpu);
                spatial_inner.push((axis, inner));
            } else {
                spatial_inner.push((axis, l));
            }
        }

        // Reduction strategy: hierarchical reduction across DPUs.
        let mut reduce_inner = None;
        if let Some(&raxis) = reduce_axes.first() {
            let l = sch.loops_of_axis(raxis)[0];
            if self.uses_rfactor() {
                let dpus = self.reduce_dpus.clamp(2, def.axes[raxis].extent);
                let inner_extent = div_ceil(def.axes[raxis].extent, dpus);
                let (r_dpu, r_in) = sch.split(l, inner_extent)?;
                sch.rfactor(r_dpu)?;
                sch.bind(r_dpu, Binding::DpuY)?;
                grid_loops.push(r_dpu);
                reduce_inner = Some((raxis, r_in));
            } else {
                reduce_inner = Some((raxis, l));
            }
        }

        // Multi-level tiling: tasklets over the spatial axis with the most
        // per-DPU work (falling back to the reduction axis for pure
        // reductions).
        let mut tasklet_loop = None;
        if self.tasklets > 1 {
            let candidate = spatial_inner
                .iter()
                .enumerate()
                .max_by_key(|(_, (_, l))| sch.loop_info(*l).map(|i| i.extent).unwrap_or(0));
            if let Some((slot, &(axis, l))) = candidate {
                let extent = sch.loop_info(l)?.extent;
                if extent > 1 {
                    let per_tasklet = div_ceil(extent, self.tasklets.min(extent));
                    let (t, rest) = sch.split(l, per_tasklet)?;
                    sch.bind(t, Binding::Tasklet)?;
                    tasklet_loop = Some(t);
                    spatial_inner[slot] = (axis, rest);
                }
            } else if let Some((_, l)) = reduce_inner {
                let extent = sch.loop_info(l)?.extent;
                if extent > 1 {
                    let per_tasklet = div_ceil(extent, self.tasklets.min(extent));
                    let (t, rest) = sch.split(l, per_tasklet)?;
                    sch.bind(t, Binding::Tasklet)?;
                    tasklet_loop = Some(t);
                    reduce_inner = Some((reduce_inner.expect("checked").0, rest));
                }
            }
        }

        // Intra-DPU caching: split the innermost data loop by the caching
        // tile size so the cache chunk loop exists, then attach the caching
        // tiles there.
        let (cache_axis_loop, _is_reduce_cache) = match reduce_inner {
            Some((_, l)) => (Some(l), true),
            None => (spatial_inner.last().map(|&(_, l)| l), false),
        };
        let mut cache_attach = None;
        let mut innermost = None;
        // When the cache split consumes a spatial inner loop, remember the
        // original reference so the reorder below does not mention it.
        let mut consumed = None;
        if let Some(l) = cache_axis_loop {
            let extent = sch.loop_info(l)?.extent;
            let tile = self.cache_elems.clamp(1, extent.max(1));
            if tile < extent {
                let (outer, inner) = sch.split(l, tile)?;
                cache_attach = Some(outer);
                innermost = Some(inner);
                consumed = Some(l);
            } else {
                cache_attach = Some(l);
                innermost = Some(l);
            }
        }

        // Loop order: grid loops, tasklet loop, spatial inner loops, then the
        // cache chunk loop and the innermost loop.
        let mut order = Vec::new();
        order.extend(grid_loops.iter().copied());
        if let Some(t) = tasklet_loop {
            order.push(t);
        }
        for &(_, l) in &spatial_inner {
            if Some(l) != cache_attach && Some(l) != innermost && Some(l) != consumed {
                order.push(l);
            }
        }
        if let Some(c) = cache_attach {
            if !order.contains(&c) {
                order.push(c);
            }
        }
        if let Some(i) = innermost {
            if !order.contains(&i) {
                order.push(i);
            }
        }
        sch.reorder(&order)?;

        // Caching directives.
        if self.use_cache {
            if let Some(attach) = cache_attach {
                for input in 0..def.inputs.len() {
                    sch.cache_read(input, Attach::At(attach))?;
                }
                // The output accumulator must enclose every reduction loop, so
                // attach it at the innermost loop that is still outside the
                // reduction: the last spatial inner loop if one exists.
                if def.has_reduce() {
                    if let Some(&(_, spatial_attach)) = spatial_inner.last() {
                        if sch
                            .loops()
                            .iter()
                            .position(|li| li.id == spatial_attach.0)
                            .is_some()
                        {
                            sch.cache_write(Attach::At(spatial_attach))?;
                        }
                    }
                } else {
                    sch.cache_write(Attach::At(attach))?;
                }
            }
        }

        // Unrolling of the innermost loop.
        if self.unroll {
            if let Some(inner) = innermost {
                if cache_attach != Some(inner) {
                    sch.unroll(inner)?;
                }
            }
        }

        sch.parallel_host(self.host_threads);
        sch.set_parallel_transfer(self.parallel_transfer);
        Ok(sch)
    }
}

fn div_ceil(a: i64, b: i64) -> i64 {
    (a + b - 1) / b
}

/// The sampling ranges of the design space for one workload on one machine.
///
/// The trace pipeline samples through
/// [`crate::generator::UpmemSketchGenerator`], which wraps this type's
/// `sample`/`mutate` verbatim — same RNG consumption, same decision
/// distributions — so fixed-seed searches are bit-identical across the
/// migration.
#[deprecated(
    since = "0.3.0",
    note = "use `generator::UpmemSketchGenerator` (a `SpaceGenerator`) — this type \
            remains as its decision-distribution backend"
)]
#[derive(Debug, Clone)]
pub struct SearchSpace {
    def: ComputeDef,
    total_dpus: i64,
    max_tasklets: i64,
}

#[allow(deprecated)]
impl SearchSpace {
    /// Builds the design space for a workload.
    pub fn new(def: &ComputeDef, hw: &UpmemConfig) -> Self {
        SearchSpace {
            def: def.clone(),
            total_dpus: hw.total_dpus() as i64,
            max_tasklets: hw.max_tasklets as i64,
        }
    }

    /// The workload this space was built for.
    pub fn def(&self) -> &ComputeDef {
        &self.def
    }

    /// Whether the workload has a reduction axis at all (if not, the
    /// `rfactor` design space is empty).
    pub fn supports_rfactor(&self) -> bool {
        self.def.has_reduce()
    }

    /// Samples a random configuration, optionally forcing the
    /// `rfactor`/non-`rfactor` design space (the two sketches of Fig. 6).
    pub fn sample(&self, rng: &mut impl Rng, with_rfactor: bool) -> ScheduleConfig {
        sample_knobs(
            &self.def,
            self.total_dpus,
            self.max_tasklets,
            rng,
            with_rfactor,
        )
    }

    /// Mutates one decision of a configuration (the evolutionary search's
    /// mutation operator).
    pub fn mutate(&self, rng: &mut impl Rng, base: &ScheduleConfig) -> ScheduleConfig {
        mutate_knobs(&self.def, self.total_dpus, self.max_tasklets, rng, base)
    }
}

/// Samples a random knob vector for a *borrowed* workload (the body behind
/// [`SearchSpace::sample`], shared with the trace generator so the
/// per-candidate hot path clones nothing).
pub(crate) fn sample_knobs(
    def: &ComputeDef,
    total_dpus: i64,
    max_tasklets: i64,
    rng: &mut impl Rng,
    with_rfactor: bool,
) -> ScheduleConfig {
    let spatial = def.spatial_axes();
    let mut spatial_dpus = Vec::with_capacity(spatial.len());
    let mut budget = total_dpus;
    for &axis in &spatial {
        let extent = def.axes[axis].extent;
        let max_pow = log2_floor(extent.min(budget).max(1));
        let choice = 1i64 << rng.gen_range(0..=max_pow);
        spatial_dpus.push(choice);
        budget = (budget / choice).max(1);
    }
    let reduce_dpus = if with_rfactor && def.has_reduce() {
        let raxis = def.reduce_axes()[0];
        let extent = def.axes[raxis].extent;
        let max_pow = log2_floor(extent.min(budget).clamp(2, 64));
        1i64 << rng.gen_range(1..=max_pow.max(1))
    } else {
        1
    };
    let tasklet_choices = [1i64, 2, 4, 8, 12, 16, 20, 24];
    let tasklets = tasklet_choices[rng.gen_range(0..tasklet_choices.len())].min(max_tasklets);
    let cache_choices = [2i64, 4, 8, 16, 32, 64, 128, 256];
    let cache_elems = cache_choices[rng.gen_range(0..cache_choices.len())];
    ScheduleConfig {
        spatial_dpus,
        reduce_dpus,
        tasklets,
        cache_elems,
        use_cache: rng.gen_bool(0.9),
        unroll: rng.gen_bool(0.5),
        host_threads: 1usize << rng.gen_range(0..6),
        parallel_transfer: true,
    }
}

/// Mutates one knob of a configuration (the body behind
/// [`SearchSpace::mutate`], shared with the trace generator).
pub(crate) fn mutate_knobs(
    def: &ComputeDef,
    total_dpus: i64,
    max_tasklets: i64,
    rng: &mut impl Rng,
    base: &ScheduleConfig,
) -> ScheduleConfig {
    let mut c = base.clone();
    match rng.gen_range(0..6) {
        0 => {
            // Re-sample one spatial DPU dimension.
            if !c.spatial_dpus.is_empty() {
                let j = rng.gen_range(0..c.spatial_dpus.len());
                let axis = def.spatial_axes()[j];
                let extent = def.axes[axis].extent;
                let max_pow = log2_floor(extent.min(total_dpus).max(1));
                c.spatial_dpus[j] = 1i64 << rng.gen_range(0..=max_pow);
            }
        }
        1 => {
            if def.has_reduce() {
                let raxis = def.reduce_axes()[0];
                let extent = def.axes[raxis].extent;
                let max_pow = log2_floor(extent.clamp(2, 64));
                c.reduce_dpus = if rng.gen_bool(0.3) {
                    1
                } else {
                    1i64 << rng.gen_range(1..=max_pow.max(1))
                };
            }
        }
        2 => {
            let choices = [1i64, 2, 4, 8, 12, 16, 20, 24];
            c.tasklets = choices[rng.gen_range(0..choices.len())].min(max_tasklets);
        }
        3 => {
            let choices = [2i64, 4, 8, 16, 32, 64, 128, 256];
            c.cache_elems = choices[rng.gen_range(0..choices.len())];
        }
        4 => c.unroll = !c.unroll,
        _ => c.host_threads = 1usize << rng.gen_range(0..6),
    }
    c
}

fn log2_floor(v: i64) -> u32 {
    63 - (v.max(1) as u64).leading_zeros()
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use atim_tir::schedule::execute_functional;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hw() -> UpmemConfig {
        UpmemConfig::default()
    }

    #[test]
    fn default_config_instantiates_and_runs() {
        let def = ComputeDef::mtv("mtv", 40, 60);
        let cfg = ScheduleConfig {
            spatial_dpus: vec![4],
            reduce_dpus: 2,
            tasklets: 2,
            cache_elems: 8,
            use_cache: true,
            unroll: true,
            host_threads: 2,
            parallel_transfer: true,
        };
        let sch = cfg.instantiate(&def).unwrap();
        let lowered = sch.lower().unwrap();
        assert_eq!(lowered.grid.num_dpus(), 8);
        let inputs = atim_workloads_testdata(&def);
        let got = execute_functional(&lowered, &inputs).unwrap();
        let expect = def.reference(&inputs);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-2, "{g} vs {e}");
        }
    }

    fn atim_workloads_testdata(def: &ComputeDef) -> Vec<Vec<f32>> {
        (0..def.inputs.len())
            .map(|t| {
                (0..def.input_len(t))
                    .map(|i| ((i + t) % 5) as f32 - 2.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn random_samples_instantiate_and_preserve_semantics() {
        let mut rng = StdRng::seed_from_u64(7);
        for def in [
            ComputeDef::va("va", 100),
            ComputeDef::red("red", 90),
            ComputeDef::mtv("mtv", 33, 47),
            ComputeDef::mmtv("mmtv", 4, 10, 24),
            ComputeDef::ttv("ttv", 3, 14, 20),
            ComputeDef::geva("geva", 77, 1.5, -0.5),
            ComputeDef::gemv("gemv", 29, 31, 2.0),
        ] {
            let space = SearchSpace::new(&def, &hw());
            let expect = def.reference(&atim_workloads_testdata(&def));
            let mut checked = 0;
            for trial in 0..12 {
                let cfg = space.sample(&mut rng, trial % 2 == 0);
                // Skip configurations that need more DPUs than small tensors
                // provide; the verifier rejects them in the real flow.
                let Ok(sch) = cfg.instantiate(&def) else {
                    continue;
                };
                let Ok(lowered) = sch.lower() else { continue };
                if lowered.grid.num_dpus() > 512 {
                    continue;
                }
                let got = execute_functional(&lowered, &atim_workloads_testdata(&def)).unwrap();
                let tol = 1e-2 * (def.total_flops() as f32).sqrt().max(1.0);
                for (g, e) in got.iter().zip(&expect) {
                    assert!(
                        (g - e).abs() < tol,
                        "{}: {g} vs {e} (cfg {cfg:?})",
                        def.name
                    );
                }
                checked += 1;
            }
            assert!(checked >= 4, "{}: too few valid samples", def.name);
        }
    }

    #[test]
    fn sample_respects_rfactor_flag() {
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let space = SearchSpace::new(&def, &hw());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            assert!(!space.sample(&mut rng, false).uses_rfactor());
            assert!(space.sample(&mut rng, true).uses_rfactor());
        }
        // Workloads without a reduction never get rfactor.
        let va = ComputeDef::va("va", 4096);
        let va_space = SearchSpace::new(&va, &hw());
        assert!(!va_space.sample(&mut rng, true).uses_rfactor());
    }

    #[test]
    fn mutation_changes_something_eventually() {
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let space = SearchSpace::new(&def, &hw());
        let mut rng = StdRng::seed_from_u64(11);
        let base = space.sample(&mut rng, true);
        let mut changed = false;
        for _ in 0..20 {
            if space.mutate(&mut rng, &base) != base {
                changed = true;
                break;
            }
        }
        assert!(changed);
    }

    #[test]
    fn num_dpus_accounts_for_both_dimensions() {
        let c = ScheduleConfig {
            spatial_dpus: vec![8, 4],
            reduce_dpus: 16,
            tasklets: 16,
            cache_elems: 64,
            use_cache: true,
            unroll: false,
            host_threads: 8,
            parallel_transfer: true,
        };
        assert_eq!(c.num_dpus(), 8 * 4 * 16);
        assert!(c.uses_rfactor());
    }
}
