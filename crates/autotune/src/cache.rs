//! A persistent, shippable schedule cache: tune a workload once — on any
//! machine of the fleet — and every later process resolves the same
//! `(workload, shape, machine, generator)` key straight to the tuned trace
//! without a single measurement.
//!
//! This is the cost-amortization layer the tuning-as-a-service story needs
//! (and the deployment move kubecl makes for GPU kernels: cache tuned
//! kernels, reuse them, ship the cache with the program to cut cold start).
//! A [`ScheduleCache`] memoizes the best tuned [`Trace`] per [`CacheKey`]
//! and persists itself as a JSON-lines file:
//!
//! * **One self-contained entry per line** — no header, no global state —
//!   so concurrent processes append without coordinating.  Appends go
//!   through the OS append mode (`O_APPEND`) as a single `write` call,
//!   which keeps lines intact under cross-process races (the stress suite
//!   in `tests/schedule_cache_stress.rs` pins this).
//! * **Merge-on-load winner selection** — the file may hold many entries
//!   for one key (several processes tuned the same shape); loading keeps
//!   the *deterministic* winner per key (strictly lower latency wins, exact
//!   ties break on the trace encoding), so every reader of the same file
//!   agrees on the same schedule regardless of append order.
//! * **Truncation tolerance** — a process killed mid-append leaves a
//!   partial trailing line; loaders drop it, exactly like the streaming
//!   [`crate::log::TuneLog`] layout drops its torn last record.
//! * **Compaction via write-temp + rename** — [`ScheduleCache::save`]
//!   rewrites the merged view atomically (readers see the old or the new
//!   file, never a half-written one).  Compaction is a maintenance
//!   operation: run it while no writer is appending, or the appends that
//!   race the rename land in the unlinked old file.
//!
//! The environment knob [`SCHEDULE_CACHE_ENV`] (`ATIM_SCHEDULE_CACHE`)
//! names the cache file a `Session` (in `atim-core`) opens by default —
//! set it, ship the file next to your binary, and cold start becomes a
//! lookup.

use std::collections::HashMap;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

use atim_sim::UpmemConfig;
use atim_tir::compute::ComputeDef;

use crate::json::{Json, JsonCodec, JsonError};
use crate::trace::Trace;

/// Environment variable naming the schedule-cache file sessions open by
/// default ("ship the cache with your program" mode).
pub const SCHEDULE_CACHE_ENV: &str = "ATIM_SCHEDULE_CACHE";

/// The current cache entry format version (each line carries it, so a file
/// can in principle mix versions after an upgrade).
pub const SCHEDULE_CACHE_VERSION: i64 = 1;

/// A stable fingerprint of a machine configuration: schedules tuned for one
/// machine must never be served for another, so the cache key hashes every
/// timing-relevant [`UpmemConfig`] field.
///
/// The hash is FNV-1a over a canonical field encoding — deliberately *not*
/// Rust's `DefaultHasher`, whose output may change across releases; a cache
/// file written today must still hit after a toolchain upgrade.
pub fn machine_fingerprint(hw: &UpmemConfig) -> String {
    let canon = format!(
        "{:?}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
        hw.target,
        hw.ranks,
        hw.dpus_per_rank,
        hw.max_tasklets,
        hw.wram_bytes,
        hw.iram_bytes,
        hw.mram_bytes,
        hw.dpu_freq_hz,
        hw.issue_interval,
        hw.dma_setup_cycles,
        hw.dma_bytes_per_cycle,
        hw.branch_instrs,
        hw.loop_iter_instrs,
        hw.transfer_call_overhead_s,
        hw.h2d_rank_bw,
        hw.d2h_rank_bw,
        hw.serial_transfer_bw,
        hw.host_cores,
        hw.host_mem_bw,
        hw.host_thread_bw,
        hw.host_core_flops,
    );
    format!("{:016x}", fnv1a(canon.as_bytes()))
}

/// FNV-1a 64-bit: tiny, dependency-free and stable across platforms and
/// toolchains (unlike `std`'s `DefaultHasher`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A stable structural fingerprint of a trace's sketch: FNV-1a over the
/// sketch tag plus the *ordered decision-site list* (values excluded).
///
/// Two traces share a structure hash exactly when they come from the same
/// sketch family elaborated over the same workload — the property
/// [`ScheduleCache::lookup_verified`] checks so a generator id that was
/// reused (or a generator whose site schema changed across versions) can
/// never silently serve a stale schedule.
pub fn sketch_structure_hash(trace: &Trace) -> String {
    let mut canon = String::from(trace.sketch());
    for (site, _) in trace.decisions() {
        canon.push('|');
        canon.push_str(site);
    }
    format!("{:016x}", fnv1a(canon.as_bytes()))
}

/// What a cached schedule was tuned *for*: the four coordinates that must
/// all match for a stored trace to be valid for a request.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// Workload kind (the `ComputeDef` name, e.g. `"mtv"`).
    pub workload: String,
    /// Exact iteration-space shape (every axis extent, in order).  Tuned
    /// schedules are shape-specific — a 2048×2048 MTV schedule is not the
    /// 512×512 one.
    pub shape: Vec<i64>,
    /// Machine-configuration fingerprint (see [`machine_fingerprint`]; the
    /// `Backend` trait in `atim-core` prepends its backend name).
    pub machine: String,
    /// Identifier of the space generator whose sketch the trace belongs to
    /// ([`crate::generator::SpaceGenerator::name`]).
    pub generator: String,
}

impl CacheKey {
    /// Builds the key for a workload under an already-computed machine
    /// fingerprint and generator id.
    pub fn new(def: &ComputeDef, machine: impl Into<String>, generator: impl Into<String>) -> Self {
        CacheKey {
            workload: def.name.clone(),
            shape: def.axes.iter().map(|a| a.extent).collect(),
            machine: machine.into(),
            generator: generator.into(),
        }
    }

    /// Convenience: key a workload directly on a machine configuration
    /// (fingerprinted with [`machine_fingerprint`]).
    pub fn for_machine(def: &ComputeDef, hw: &UpmemConfig, generator: impl Into<String>) -> Self {
        CacheKey::new(def, machine_fingerprint(hw), generator)
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{:?}@{}#{}",
            self.workload, self.shape, self.machine, self.generator
        )
    }
}

/// One memoized tuning outcome: the best trace found for a key, with its
/// measured latency and the seed of the search that produced it (provenance
/// for warm starts and debugging).
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// What the trace was tuned for.
    pub key: CacheKey,
    /// The best tuned trace (decisions are what matters; structure
    /// re-materializes deterministically).
    pub trace: Trace,
    /// The measured latency of `trace`, in seconds.
    pub latency_s: f64,
    /// RNG seed of the tuning run that found the trace.
    pub seed: u64,
}

impl CacheEntry {
    /// Deterministic winner selection: strictly lower latency wins; an
    /// *exact* latency tie breaks on the canonical trace encoding (then the
    /// seed), so the merged view of a cache file is a pure function of its
    /// entry *set* — independent of append order across processes.
    pub fn beats(&self, other: &CacheEntry) -> bool {
        if self.latency_s != other.latency_s {
            return self.latency_s < other.latency_s;
        }
        let (a, b) = (
            self.trace.to_json().to_string(),
            other.trace.to_json().to_string(),
        );
        if a != b {
            return a < b;
        }
        self.seed < other.seed
    }
}

impl JsonCodec for CacheEntry {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("v".into(), Json::Int(SCHEDULE_CACHE_VERSION)),
            ("workload".into(), Json::Str(self.key.workload.clone())),
            (
                "shape".into(),
                Json::Arr(self.key.shape.iter().map(|&e| Json::Int(e)).collect()),
            ),
            ("machine".into(), Json::Str(self.key.machine.clone())),
            ("generator".into(), Json::Str(self.key.generator.clone())),
            ("latency_s".into(), Json::Float(self.latency_s)),
            // u64 seeds can exceed exact-f64 range; travel as decimal text
            // (the same convention as TuneLog).
            ("seed".into(), Json::Str(self.seed.to_string())),
            ("trace".into(), self.trace.to_json()),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let version = json.get("v")?.as_i64()?;
        if version != SCHEDULE_CACHE_VERSION {
            return Err(JsonError {
                message: format!(
                    "schedule cache entry version {version} is not supported \
                     (expected {SCHEDULE_CACHE_VERSION})"
                ),
                offset: None,
            });
        }
        let shape = json
            .get("shape")?
            .as_arr()?
            .iter()
            .map(Json::as_i64)
            .collect::<Result<Vec<i64>, JsonError>>()?;
        Ok(CacheEntry {
            key: CacheKey {
                workload: json.get("workload")?.as_str()?.to_string(),
                shape,
                machine: json.get("machine")?.as_str()?.to_string(),
                generator: json.get("generator")?.as_str()?.to_string(),
            },
            latency_s: json.get("latency_s")?.as_f64()?,
            seed: json
                .get("seed")?
                .as_str()?
                .parse::<u64>()
                .map_err(|_| JsonError {
                    message: "seed must be a decimal u64 string".into(),
                    offset: None,
                })?,
            trace: Trace::from_json(json.get("trace")?)?,
        })
    }
}

/// Errors raised while loading or persisting a [`ScheduleCache`].
#[derive(Debug)]
pub enum CacheError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The file contents are not a valid schedule cache.
    Parse(JsonError),
    /// A cached entry's generator id matched a lookup but its sketch
    /// structure did not ([`ScheduleCache::lookup_verified`]): either two
    /// generators collided on one id, or a generator's site schema changed
    /// since the entry was tuned.  Serving the entry anyway would replay a
    /// schedule from the wrong space, so this fails loudly instead.
    SketchMismatch {
        /// The colliding cache key (display form).
        key: String,
        /// The structure hash the requesting generator elaborates.
        expected: String,
        /// The structure hash of the cached trace.
        found: String,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Io(e) => write!(f, "schedule cache I/O error: {e}"),
            CacheError::Parse(e) => write!(f, "schedule cache parse error: {e}"),
            CacheError::SketchMismatch {
                key,
                expected,
                found,
            } => write!(
                f,
                "schedule cache entry for {key} carries sketch structure {found}, but the \
                 requesting generator elaborates structure {expected}: generator-id collision \
                 or a changed sketch schema; refusing to serve the entry"
            ),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<std::io::Error> for CacheError {
    fn from(e: std::io::Error) -> Self {
        CacheError::Io(e)
    }
}

impl From<JsonError> for CacheError {
    fn from(e: JsonError) -> Self {
        CacheError::Parse(e)
    }
}

/// The in-memory view of a schedule cache: best entry per key, optionally
/// backed by an append-only JSON-lines file.
#[derive(Debug, Default)]
pub struct ScheduleCache {
    entries: HashMap<CacheKey, CacheEntry>,
    path: Option<PathBuf>,
}

impl ScheduleCache {
    /// An empty, unbacked (memory-only) cache.
    pub fn new() -> Self {
        ScheduleCache::default()
    }

    /// Opens a file-backed cache: loads the file if it exists (an absent
    /// file starts empty) and remembers the path so [`ScheduleCache::record`]
    /// appends new winners durably.
    ///
    /// # Errors
    /// Returns a [`CacheError`] when an existing file cannot be read or is
    /// corrupt beyond a torn trailing line.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, CacheError> {
        let path = path.into();
        let mut cache = if path.exists() {
            Self::load(&path)?
        } else {
            ScheduleCache::new()
        };
        cache.path = Some(path);
        Ok(cache)
    }

    /// Loads a cache file read-only (no backing path is remembered; use
    /// [`ScheduleCache::open`] for a writable handle).
    ///
    /// Entries for the same key merge by [`CacheEntry::beats`]; a truncated
    /// trailing line — the signature of a writer killed mid-append — is
    /// dropped, mirroring the tolerance of streaming `TuneLog`s.
    ///
    /// # Errors
    /// Returns a [`CacheError`] on I/O failures or corruption anywhere but
    /// the trailing line.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CacheError> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json_lines(&text)
    }

    /// Opens the cache named by `ATIM_SCHEDULE_CACHE`, or `None` when the
    /// variable is unset.
    ///
    /// # Errors
    /// Returns a [`CacheError`] when the variable is set but the file is
    /// unreadable or corrupt — a misconfigured knob must fail loudly.
    pub fn from_env() -> Result<Option<Self>, CacheError> {
        match std::env::var(SCHEDULE_CACHE_ENV) {
            Ok(path) if !path.trim().is_empty() => Ok(Some(Self::open(path)?)),
            _ => Ok(None),
        }
    }

    /// Decodes the JSON-lines text of a cache file.
    ///
    /// # Errors
    /// Returns a [`CacheError`] when any line but the last is malformed
    /// (the torn last line of an interrupted append is dropped).
    pub fn from_json_lines(text: &str) -> Result<Self, CacheError> {
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let mut cache = ScheduleCache::new();
        for (k, line) in lines.iter().enumerate() {
            match Json::parse(line).and_then(|json| CacheEntry::from_json(&json)) {
                Ok(entry) => {
                    cache.insert(entry);
                }
                // A damaged *last* line is the expected crash signature;
                // damage anywhere else is real corruption.
                Err(_) if k + 1 == lines.len() => break,
                Err(e) => return Err(CacheError::Parse(e)),
            }
        }
        Ok(cache)
    }

    /// The backing file, if the cache was opened with one.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Number of distinct keys held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The winning entry for a key, if one is cached.
    pub fn lookup(&self, key: &CacheKey) -> Option<&CacheEntry> {
        self.entries.get(key)
    }

    /// The winning entry for a key, *verified* against the sketch structure
    /// the requesting generator elaborates (see [`sketch_structure_hash`]).
    ///
    /// # Errors
    /// [`CacheError::SketchMismatch`] when an entry exists for the key but
    /// its trace's structure hash differs from `expected_structure` — a
    /// generator-id collision must fail loudly, never silently replay a
    /// schedule from the wrong space.
    pub fn lookup_verified(
        &self,
        key: &CacheKey,
        expected_structure: &str,
    ) -> Result<Option<&CacheEntry>, CacheError> {
        match self.entries.get(key) {
            None => Ok(None),
            Some(entry) => {
                let found = sketch_structure_hash(&entry.trace);
                if found == expected_structure {
                    Ok(Some(entry))
                } else {
                    Err(CacheError::SketchMismatch {
                        key: key.to_string(),
                        expected: expected_structure.to_string(),
                        found,
                    })
                }
            }
        }
    }

    /// Iterates over the winning entries (arbitrary order).
    pub fn entries(&self) -> impl Iterator<Item = &CacheEntry> {
        self.entries.values()
    }

    /// Merges one entry into the in-memory view.  Returns `true` when the
    /// entry became (or improved) the winner for its key.
    pub fn insert(&mut self, entry: CacheEntry) -> bool {
        match self.entries.get_mut(&entry.key) {
            Some(existing) => {
                if entry.beats(existing) {
                    *existing = entry;
                    true
                } else {
                    false
                }
            }
            None => {
                self.entries.insert(entry.key.clone(), entry);
                true
            }
        }
    }

    /// Merges every winning entry of `other`; returns how many keys were
    /// created or improved.
    pub fn merge(&mut self, other: ScheduleCache) -> usize {
        other
            .entries
            .into_values()
            .filter(|e| self.insert(e.clone()))
            .count()
    }

    /// Records a tuning outcome: merges it in memory and — when it won its
    /// key and the cache is file-backed — appends it durably.
    ///
    /// Concurrent processes may append interleaved entries; that is fine by
    /// construction (merge-on-load keeps the deterministic winner).  The
    /// in-memory check only avoids appending entries that are *known* to be
    /// losers already.
    ///
    /// # Errors
    /// Propagates append I/O failures (the in-memory merge has already
    /// happened; callers may treat the error as a warning).
    pub fn record(&mut self, entry: CacheEntry) -> Result<bool, CacheError> {
        let line = entry.to_json().to_string();
        let improved = self.insert(entry);
        if improved {
            if let Some(path) = &self.path {
                append_line(path, &line)?;
            }
        }
        Ok(improved)
    }

    /// Serializes the merged (compacted) view: one line per key, sorted by
    /// key so the output is canonical.
    pub fn to_json_lines(&self) -> String {
        let mut entries: Vec<&CacheEntry> = self.entries.values().collect();
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        let mut out = String::new();
        for entry in entries {
            out.push_str(&entry.to_json().to_string());
            out.push('\n');
        }
        out
    }

    /// Writes the compacted view to `path` atomically (write a temp file in
    /// the same directory, then rename over the target): readers — and the
    /// "ship the cache" deployment copying the file — always see a complete
    /// cache.  Run compaction only while no writer is appending.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CacheError> {
        let path = path.as_ref();
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        let tmp = dir.unwrap_or_else(|| Path::new(".")).join(format!(
            ".{}.tmp.{}",
            file_name_of(path),
            std::process::id()
        ));
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(self.to_json_lines().as_bytes())?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Compacts the backing file in place (see [`ScheduleCache::save`]).
    ///
    /// # Errors
    /// Propagates I/O errors; does nothing for a memory-only cache.
    pub fn compact(&self) -> Result<(), CacheError> {
        match &self.path {
            Some(path) => self.save(path),
            None => Ok(()),
        }
    }
}

fn file_name_of(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "schedule-cache".into())
}

/// Appends one line to `path` in OS append mode with a single `write` call,
/// creating the file if needed.  On local filesystems a single small
/// `O_APPEND` write lands contiguously, so concurrent appenders never tear
/// each other's lines — the property the cross-process stress suite pins.
fn append_line(path: &Path, line: &str) -> Result<(), CacheError> {
    let mut buf = String::with_capacity(line.len() + 1);
    buf.push_str(line);
    buf.push('\n');
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(buf.as_bytes())?;
    file.flush()?;
    Ok(())
}

/// Appends one entry to a cache file without loading it first — the
/// fire-and-forget producer path (e.g. a tuning process that only ever
/// writes).  Same atomicity contract as [`ScheduleCache::record`].
///
/// # Errors
/// Propagates I/O errors.
pub fn append_entry(path: impl AsRef<Path>, entry: &CacheEntry) -> Result<(), CacheError> {
    append_line(path.as_ref(), &entry.to_json().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ScheduleConfig;

    fn trace(tasklets: i64) -> Trace {
        ScheduleConfig {
            spatial_dpus: vec![64],
            reduce_dpus: 2,
            tasklets,
            cache_elems: 32,
            use_cache: true,
            unroll: false,
            host_threads: 4,
            parallel_transfer: true,
        }
        .to_decision_trace()
    }

    fn key(workload: &str) -> CacheKey {
        CacheKey {
            workload: workload.into(),
            shape: vec![512, 256],
            machine: "test-machine".into(),
            generator: "upmem".into(),
        }
    }

    fn entry(workload: &str, tasklets: i64, latency_s: f64) -> CacheEntry {
        CacheEntry {
            key: key(workload),
            trace: trace(tasklets),
            latency_s,
            seed: 7,
        }
    }

    #[test]
    fn fingerprints_separate_machines_and_are_stable() {
        let a = machine_fingerprint(&UpmemConfig::default());
        let b = machine_fingerprint(&UpmemConfig::small());
        assert_ne!(a, b, "different machines must fingerprint differently");
        assert_eq!(
            a,
            machine_fingerprint(&UpmemConfig::default()),
            "fingerprints must be deterministic"
        );
        let mut tweaked = UpmemConfig::default();
        tweaked.dpu_freq_hz += 1.0;
        assert_ne!(a, machine_fingerprint(&tweaked));
    }

    #[test]
    fn insert_keeps_the_strictly_better_entry() {
        let mut cache = ScheduleCache::new();
        assert!(cache.insert(entry("mtv", 8, 2e-3)));
        assert!(!cache.insert(entry("mtv", 4, 3e-3)), "worse must lose");
        assert!(cache.insert(entry("mtv", 16, 1e-3)), "better must win");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(&key("mtv")).unwrap().latency_s, 1e-3);
        assert_eq!(cache.lookup(&key("mtv")).unwrap().trace, trace(16));
    }

    #[test]
    fn exact_ties_resolve_deterministically_regardless_of_order() {
        let (a, b) = (entry("mtv", 8, 1e-3), entry("mtv", 12, 1e-3));
        let mut fwd = ScheduleCache::new();
        fwd.insert(a.clone());
        fwd.insert(b.clone());
        let mut rev = ScheduleCache::new();
        rev.insert(b);
        rev.insert(a);
        assert_eq!(
            fwd.lookup(&key("mtv")).unwrap(),
            rev.lookup(&key("mtv")).unwrap(),
            "tie winner must not depend on insertion order"
        );
    }

    #[test]
    fn entries_round_trip_through_json() {
        let e = entry("gemv", 11, 5.5e-4);
        let back = CacheEntry::from_json(&Json::parse(&e.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.latency_s.to_bits(), e.latency_s.to_bits());
    }

    #[test]
    fn file_round_trip_append_and_reload() {
        let path = std::env::temp_dir().join("atim_cache_roundtrip_test.jsonl");
        std::fs::remove_file(&path).ok();
        let mut cache = ScheduleCache::open(&path).unwrap();
        assert!(cache.is_empty());
        cache.record(entry("mtv", 8, 2e-3)).unwrap();
        cache.record(entry("mtv", 16, 1e-3)).unwrap();
        cache.record(entry("red", 4, 9e-3)).unwrap();

        let reloaded = ScheduleCache::load(&path).unwrap();
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.lookup(&key("mtv")).unwrap().latency_s, 1e-3);
        assert_eq!(reloaded.lookup(&key("red")).unwrap().latency_s, 9e-3);

        // Compaction rewrites one line per key and stays loadable.
        cache.compact().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        let compacted = ScheduleCache::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(compacted.len(), 2);
        assert_eq!(compacted.lookup(&key("mtv")).unwrap().trace, trace(16));
    }

    #[test]
    fn truncated_trailing_lines_are_dropped_not_fatal() {
        let path = std::env::temp_dir().join("atim_cache_truncated_test.jsonl");
        std::fs::remove_file(&path).ok();
        append_entry(&path, &entry("mtv", 8, 2e-3)).unwrap();
        append_entry(&path, &entry("red", 4, 9e-3)).unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        let partial = &entry("ttv", 2, 1e-3).to_json().to_string()[..25];
        text.push_str(partial);
        std::fs::write(&path, &text).unwrap();

        let loaded = ScheduleCache::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), 2, "the torn trailing line is dropped");

        // Damage anywhere else is real corruption, not truncation.
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines[0] = "{torn".into();
        let err = ScheduleCache::from_json_lines(&lines.join("\n")).unwrap_err();
        assert!(matches!(err, CacheError::Parse(_)));
    }

    #[test]
    fn resident_generators_never_share_cache_entries() {
        use crate::sketch::{resolve_generator, RESIDENT_GENERATOR_IDS};
        let def = ComputeDef::mtv("mtv", 512, 512);
        let hw = UpmemConfig::default();
        let keys: Vec<CacheKey> = RESIDENT_GENERATOR_IDS
            .iter()
            .map(|id| CacheKey::for_machine(&def, &hw, *id))
            .collect();
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "two resident generators share a cache key");
            }
        }
        // Their sketch structures are pairwise distinct too: a swapped
        // generator id can never be mistaken for the right space.
        let hashes: Vec<String> = RESIDENT_GENERATOR_IDS
            .iter()
            .map(|id| {
                let g = resolve_generator(id).unwrap();
                sketch_structure_hash(&g.sketches(&def, &hw)[0])
            })
            .collect();
        for (i, a) in hashes.iter().enumerate() {
            for b in &hashes[i + 1..] {
                assert_ne!(a, b, "two resident generators share a sketch structure");
            }
        }
    }

    #[test]
    fn lookup_verified_rejects_structure_mismatches_loudly() {
        use crate::sketch::{resolve_generator, TILED_SKETCH};
        let mut cache = ScheduleCache::new();
        let e = entry("mtv", 8, 2e-3);
        let expected = sketch_structure_hash(&e.trace);
        cache.insert(e);

        // Matching structure: served normally; absent key: None.
        assert!(cache
            .lookup_verified(&key("mtv"), &expected)
            .unwrap()
            .is_some());
        assert!(cache
            .lookup_verified(&key("gemv"), &expected)
            .unwrap()
            .is_none());

        // Same key, different sketch schema (as if another generator had
        // reused the id "upmem"): a typed error, not a silent hit.
        let def = ComputeDef::mtv("mtv", 512, 256);
        let hw = UpmemConfig::default();
        let tiled = resolve_generator(TILED_SKETCH).unwrap();
        let foreign = sketch_structure_hash(&tiled.sketches(&def, &hw)[0]);
        let err = cache.lookup_verified(&key("mtv"), &foreign).unwrap_err();
        match &err {
            CacheError::SketchMismatch {
                expected, found, ..
            } => {
                assert_ne!(expected, found);
            }
            other => panic!("expected SketchMismatch, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("collision"), "{msg}");
    }

    #[test]
    fn from_env_is_silent_when_unset_and_loud_when_corrupt() {
        // The variable is process-global, so this test covers the unset and
        // corrupt paths in one place (tests of different files could race on
        // the variable otherwise).
        std::env::remove_var(SCHEDULE_CACHE_ENV);
        assert!(ScheduleCache::from_env().unwrap().is_none());

        let path = std::env::temp_dir().join("atim_cache_env_corrupt_test.jsonl");
        std::fs::write(&path, "{torn\n{also torn\n").unwrap();
        std::env::set_var(SCHEDULE_CACHE_ENV, &path);
        let result = ScheduleCache::from_env();
        std::env::remove_var(SCHEDULE_CACHE_ENV);
        std::fs::remove_file(&path).ok();
        assert!(matches!(result, Err(CacheError::Parse(_))));
    }
}
