//! The autotuning driver: design-space generation → verification → cost-model
//! ranking → measurement → database/model update (Fig. 6's loop).
//!
//! Measurement — the stage that dominates tuning cost, exactly as in AutoTVM
//! — is dispatched through a [`BatchMeasurer`]: each round's ranked slice is
//! handed over as one batch so implementations can fan candidates out across
//! worker threads (`atim-core`'s simulator measurer does).  Plain
//! single-candidate [`Measurer`]s keep working through the
//! [`SequentialMeasurer`] adapter.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use atim_sim::UpmemConfig;
use atim_tir::compute::ComputeDef;

use crate::search::SearchStrategy;
use crate::session::{Budget, NullObserver, TuningSession};
use crate::trace::Trace;

/// A shareable cooperative-cancellation flag.
///
/// Cloning shares the flag: cancel from any thread (a signal handler, a UI,
/// a supervisor) and every [`BatchMeasurer`] that supports intra-batch
/// cancellation stops before its next candidate.  Attach one to a
/// [`Budget`] through its `with_cancel_token`
/// builder method.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; observable from every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

impl Eq for CancelToken {}

/// The combined stop condition threaded through a cancellable batch: an
/// optional caller-owned [`CancelToken`] plus an optional deadline (derived
/// from [`Budget::max_wall_clock`]
/// by [`TuningSession::run`], so a wall-clock budget can now stop
/// *mid-round* instead of only between rounds).
#[derive(Debug, Clone, Default)]
pub struct Cancellation {
    token: Option<CancelToken>,
    deadline: Option<Instant>,
}

impl Cancellation {
    /// A condition that never triggers.
    pub fn none() -> Self {
        Self::default()
    }

    /// Combines an optional token and an optional deadline.
    pub fn new(token: Option<CancelToken>, deadline: Option<Instant>) -> Self {
        Cancellation { token, deadline }
    }

    /// Whether measurement should stop before the next candidate.
    pub fn cancelled(&self) -> bool {
        self.token_cancelled() || self.deadline_passed()
    }

    /// Whether this condition can never trigger (no token, no deadline) —
    /// lets adapters route an uncancellable batch through the plain
    /// [`BatchMeasurer::measure_batch`] path unchanged.
    pub fn is_inert(&self) -> bool {
        self.token.is_none() && self.deadline.is_none()
    }

    /// Whether the caller's token requested cancellation.
    pub fn token_cancelled(&self) -> bool {
        self.token
            .as_ref()
            .map(CancelToken::is_cancelled)
            .unwrap_or(false)
    }

    /// Whether the deadline has passed.
    pub fn deadline_passed(&self) -> bool {
        self.deadline.map(|d| Instant::now() >= d).unwrap_or(false)
    }
}

/// Per-candidate outcome of a cancellable measurement batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MeasureOutcome {
    /// The candidate measured successfully (latency in seconds).
    Measured(f64),
    /// The candidate failed to build or run (does not consume trial budget).
    Failed,
    /// Measurement was cancelled before this candidate ran; the candidate is
    /// *not* recorded and may be re-proposed by a later round.
    Skipped,
}

impl MeasureOutcome {
    /// Converts the plain measurement signal (`Some(latency)` / `None`).
    pub fn from_result(result: Option<f64>) -> Self {
        match result {
            Some(latency) => MeasureOutcome::Measured(latency),
            None => MeasureOutcome::Failed,
        }
    }
}

/// How a candidate's latency is obtained.  `atim-core` implements this by
/// compiling the candidate trace (PIM-aware passes included) and running it
/// on the simulated UPMEM machine; tests may use analytic stand-ins reading
/// the trace's decisions.
pub trait Measurer {
    /// Measures one candidate, returning its latency in seconds, or `None`
    /// if the candidate failed to build or run.
    fn measure(&mut self, trace: &Trace) -> Option<f64>;
}

impl<F> Measurer for F
where
    F: FnMut(&Trace) -> Option<f64>,
{
    fn measure(&mut self, trace: &Trace) -> Option<f64> {
        self(trace)
    }
}

/// Measures a whole round's worth of candidates at once.
///
/// The tuning loop never depends on measurement *order within a batch*, only
/// on the returned slots, so implementations are free to measure candidates
/// concurrently as long as results land at the index of their candidate.
/// Given a deterministic per-candidate measurer this makes parallel tuning
/// bit-identical to sequential tuning.
pub trait BatchMeasurer {
    /// Measures every candidate, returning one result per candidate **in
    /// input order** (`result[i]` belongs to `traces[i]`).  `None` marks a
    /// candidate that failed to build or run.
    fn measure_batch(&mut self, traces: &[Trace]) -> Vec<Option<f64>>;

    /// Like [`BatchMeasurer::measure_batch`], but allowed to stop mid-batch
    /// when `cancel` triggers; candidates not measured return
    /// [`MeasureOutcome::Skipped`] (slot-aligned, like the plain batch).
    ///
    /// The default cannot interrupt `measure_batch` and therefore measures
    /// the whole batch; implementations that control their own candidate
    /// loop should override it and check `cancel` between candidates.
    fn measure_batch_cancellable(
        &mut self,
        traces: &[Trace],
        cancel: &Cancellation,
    ) -> Vec<MeasureOutcome> {
        let _ = cancel;
        self.measure_batch(traces)
            .into_iter()
            .map(MeasureOutcome::from_result)
            .collect()
    }
}

/// Adapter running a plain [`Measurer`] one candidate at a time — the default
/// way analytic test measurers and closures participate in the batch
/// interface.
pub struct SequentialMeasurer<'a> {
    inner: &'a mut dyn Measurer,
}

impl<'a> SequentialMeasurer<'a> {
    /// Wraps a single-candidate measurer.
    pub fn new(inner: &'a mut dyn Measurer) -> Self {
        SequentialMeasurer { inner }
    }
}

impl BatchMeasurer for SequentialMeasurer<'_> {
    fn measure_batch(&mut self, traces: &[Trace]) -> Vec<Option<f64>> {
        traces.iter().map(|c| self.inner.measure(c)).collect()
    }

    fn measure_batch_cancellable(
        &mut self,
        traces: &[Trace],
        cancel: &Cancellation,
    ) -> Vec<MeasureOutcome> {
        traces
            .iter()
            .map(|c| {
                if cancel.cancelled() {
                    MeasureOutcome::Skipped
                } else {
                    MeasureOutcome::from_result(self.inner.measure(c))
                }
            })
            .collect()
    }
}

/// Tuning options.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningOptions {
    /// Total number of hardware measurements (the paper uses 1000 trials).
    pub trials: usize,
    /// Candidates generated per search round.
    pub population: usize,
    /// Candidates measured per round (the top of the cost-model ranking).
    pub measure_per_round: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Search strategy (balanced sampling + adaptive ε by default).
    pub strategy: SearchStrategy,
}

impl Default for TuningOptions {
    fn default() -> Self {
        TuningOptions {
            trials: 128,
            population: 64,
            measure_per_round: 16,
            seed: 0xA71B,
            strategy: SearchStrategy::default(),
        }
    }
}

impl TuningOptions {
    /// A small budget suitable for tests and quick demos.
    pub fn quick() -> Self {
        TuningOptions {
            trials: 24,
            population: 24,
            measure_per_round: 8,
            ..Self::default()
        }
    }
}

/// One measured trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningRecord {
    /// Trial index: dense over *successful* measurements, so
    /// `history[i].trial == i` always holds.
    pub trial: usize,
    /// The measured candidate trace.
    pub trace: Trace,
    /// Measured latency in seconds.
    pub latency_s: f64,
    /// Best latency observed up to and including this trial.
    pub best_so_far_s: f64,
}

/// Result of a tuning session.
#[derive(Debug, Clone)]
pub struct TuningResult {
    /// The best trace found, with its latency (absent only if every
    /// measurement failed).
    pub best: Option<(Trace, f64)>,
    /// Per-trial history (for convergence plots like the paper's Fig. 14).
    /// One record per successful measurement; `history.len() == measured`.
    pub history: Vec<TuningRecord>,
    /// Number of successful measurements.  Only these count against the
    /// trial budget.
    pub measured: usize,
    /// Number of measurements that failed to build or run.  Failures are
    /// reported here instead of being charged against the trial budget.
    pub failed: usize,
    /// Number of candidates rejected by the UPMEM verifier before
    /// measurement.
    pub rejected: usize,
}

impl TuningResult {
    /// Best latency in seconds (infinity if nothing was measured).
    pub fn best_latency(&self) -> f64 {
        self.best.as_ref().map(|(_, l)| *l).unwrap_or(f64::INFINITY)
    }
}

/// Runs the full autotuning loop for one workload with a single-candidate
/// measurer.
///
/// Equivalent to [`tune_batch`] with the [`SequentialMeasurer`] adapter; see
/// there for the loop structure.
///
/// # Panics
/// Panics if `options` is inconsistent (see
/// [`crate::session::validate_options`]); use [`TuningSession::new`] for a
/// typed error instead.
pub fn tune(
    def: &ComputeDef,
    hw: &UpmemConfig,
    options: &TuningOptions,
    measurer: &mut dyn Measurer,
) -> TuningResult {
    tune_batch(def, hw, options, &mut SequentialMeasurer::new(measurer))
}

/// Runs the full autotuning loop for one workload.
///
/// Candidates are generated from the two design spaces (with and without
/// `rfactor`), filtered by the UPMEM verifier, ranked by the cost model and
/// handed to `measurer` one round-sized batch at a time; measurements feed
/// the best-candidate database and retrain the cost model every round.
///
/// Only *successful* measurements consume the trial budget; failures are
/// tallied in [`TuningResult::failed`].
///
/// This is the blocking convenience wrapper around [`TuningSession`]: it
/// creates a session and drives it to completion with an unlimited
/// [`Budget`] and no observer.  Use [`TuningSession`] directly for
/// incremental driving, streaming progress, wall-clock budgets, early-stop
/// or warm-started searches.
///
/// # Panics
/// Panics if `options` is inconsistent (see
/// [`crate::session::validate_options`]); use [`TuningSession::new`] for a
/// typed error instead.
pub fn tune_batch(
    def: &ComputeDef,
    hw: &UpmemConfig,
    options: &TuningOptions,
    measurer: &mut dyn BatchMeasurer,
) -> TuningResult {
    let mut session =
        TuningSession::new(def, hw, options).unwrap_or_else(|err| panic!("tune_batch: {err}"));
    session.run(measurer, &Budget::unlimited(), &mut NullObserver)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An analytic measurer with a known optimum: latency is minimized by
    /// using many DPUs, many tasklets and a mid-sized caching tile, with a
    /// penalty for skipping rfactor on reduction-heavy shapes.
    fn analytic_measure(def: &ComputeDef) -> impl FnMut(&Trace) -> Option<f64> {
        let work = def.total_flops() as f64;
        move |t: &Trace| {
            let dpus = t.num_dpus() as f64;
            let tasklets = t.tasklets().min(11) as f64;
            let kernel = work / (dpus * tasklets);
            let cache_penalty = if t.use_cache() {
                1.0 + (64.0 - t.cache_elems() as f64).abs() / 256.0
            } else {
                20.0
            };
            let reduce_bonus = if t.uses_rfactor() { 0.7 } else { 1.0 };
            let transfer = work.sqrt() / 50.0 + dpus * 0.001;
            Some((kernel * cache_penalty * reduce_bonus + transfer) * 1e-6)
        }
    }

    #[test]
    fn tuner_converges_toward_good_configurations() {
        let def = ComputeDef::mtv("mtv", 4096, 4096);
        let hw = UpmemConfig::default();
        let opts = TuningOptions {
            trials: 64,
            population: 32,
            measure_per_round: 8,
            ..TuningOptions::default()
        };
        let mut measurer = analytic_measure(&def);
        let result = tune(&def, &hw, &opts, &mut measurer);
        assert_eq!(result.measured, 64);
        let (best, best_lat) = result.best.clone().unwrap();
        assert!(best_lat.is_finite());
        // The analytic optimum wants lots of DPUs and tasklets and caching.
        assert!(best.num_dpus() >= 256, "best used {} DPUs", best.num_dpus());
        assert!(best.tasklets() >= 8);
        assert!(best.use_cache());
        // Convergence: the best at the end is no worse than the first trial.
        let first = result.history.first().unwrap().latency_s;
        assert!(result.best_latency() <= first);
        // History is monotone in best_so_far.
        let mut prev = f64::INFINITY;
        for rec in &result.history {
            assert!(rec.best_so_far_s <= prev + 1e-15);
            prev = rec.best_so_far_s;
        }
    }

    #[test]
    fn verifier_rejections_are_counted() {
        let def = ComputeDef::mtv("mtv", 8192, 8192);
        let hw = UpmemConfig::default();
        let opts = TuningOptions::quick();
        let mut measurer = analytic_measure(&def);
        let result = tune(&def, &hw, &opts, &mut measurer);
        // Some random candidates will exceed WRAM or DPU limits for this
        // shape; the exact number is seed-dependent but must be tracked.
        assert!(result.measured > 0);
        assert_eq!(result.history.len(), result.measured);
        let _ = result.rejected;
    }

    #[test]
    fn failed_measurements_do_not_poison_the_database() {
        let def = ComputeDef::va("va", 1 << 20);
        let hw = UpmemConfig::default();
        let opts = TuningOptions::quick();
        let mut calls = 0usize;
        let mut measurer = |_: &Trace| -> Option<f64> {
            calls += 1;
            if calls % 2 == 0 {
                None
            } else {
                Some(calls as f64 * 1e-6)
            }
        };
        let result = tune(&def, &hw, &opts, &mut measurer);
        assert!(result.best.is_some());
        // Failures are reported separately and do not consume trial budget:
        // every budgeted trial is a successful measurement.
        assert_eq!(result.measured, opts.trials);
        assert!(result.failed > 0);
        assert_eq!(result.history.len(), result.measured);
        // Trial indices stay dense even though every other measurement fails.
        for (i, rec) in result.history.iter().enumerate() {
            assert_eq!(rec.trial, i);
        }
        // The failed latencies never entered the database.
        assert!(result.best_latency().is_finite());
    }

    #[test]
    fn all_failing_measurers_terminate_with_zero_measured() {
        let def = ComputeDef::va("va", 1 << 16);
        let hw = UpmemConfig::default();
        let opts = TuningOptions::quick();
        let mut measurer = |_: &Trace| -> Option<f64> { None };
        let result = tune(&def, &hw, &opts, &mut measurer);
        assert!(result.best.is_none());
        assert_eq!(result.measured, 0);
        assert!(result.history.is_empty());
        assert!(result.failed > 0);
    }

    #[test]
    fn batch_and_sequential_measurement_agree() {
        struct CountingBatch<F: FnMut(&Trace) -> Option<f64>> {
            inner: F,
            max_batch: usize,
            batches: usize,
        }
        impl<F: FnMut(&Trace) -> Option<f64>> BatchMeasurer for CountingBatch<F> {
            fn measure_batch(&mut self, traces: &[Trace]) -> Vec<Option<f64>> {
                self.batches += 1;
                self.max_batch = self.max_batch.max(traces.len());
                traces.iter().map(|c| (self.inner)(c)).collect()
            }
        }

        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let hw = UpmemConfig::default();
        let opts = TuningOptions {
            trials: 32,
            population: 24,
            measure_per_round: 8,
            ..TuningOptions::default()
        };
        let mut seq = analytic_measure(&def);
        let sequential = tune(&def, &hw, &opts, &mut seq);
        let mut batch = CountingBatch {
            inner: analytic_measure(&def),
            max_batch: 0,
            batches: 0,
        };
        let batched = tune_batch(&def, &hw, &opts, &mut batch);
        // Identical search trajectory: same history, same best.
        assert_eq!(sequential.history, batched.history);
        assert_eq!(sequential.best, batched.best);
        // Batches respect the per-round measurement budget.
        assert!(batch.batches > 1);
        assert!(batch.max_batch <= opts.measure_per_round);
        assert!(batched.measured <= opts.trials);
    }

    #[test]
    fn strategies_affect_the_search_but_all_converge() {
        let def = ComputeDef::mtv("mtv", 2048, 2048);
        let hw = UpmemConfig::default();
        for strategy in [SearchStrategy::default(), SearchStrategy::tvm_default()] {
            let opts = TuningOptions {
                trials: 40,
                population: 24,
                measure_per_round: 8,
                strategy,
                ..TuningOptions::default()
            };
            let mut measurer = analytic_measure(&def);
            let result = tune(&def, &hw, &opts, &mut measurer);
            assert!(result.best_latency().is_finite());
        }
    }
}
