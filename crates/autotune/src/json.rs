//! A dependency-free JSON encoder/decoder for tuning artifacts.
//!
//! The build environment is fully offline (no serde), yet tuning logs must
//! be durable, diffable and readable by external tooling — so this module
//! implements the small JSON subset the logs need from scratch: objects,
//! arrays, strings (with escapes), integers, floats, booleans and null.
//!
//! Floats are written with Rust's shortest-round-trip `Display` formatting,
//! so `encode → decode` is the identity for every finite `f64` (a property
//! test in `tests/proptests.rs` pins this).  Non-finite floats, which JSON
//! cannot represent as numbers, are encoded as the strings `"inf"`,
//! `"-inf"` and `"nan"`.
//!
//! The [`JsonCodec`] trait is implemented for [`Trace`] (encoded as its
//! sketch tag plus decision list — the v2 format), [`TuningRecord`] and
//! [`TuningResult`]; [`crate::log::TuneLog`] builds its file format on top
//! of those.  Decoding accepts both the v2 `trace` field and the v1
//! [`ScheduleConfig`] `config` field, shimming the latter into a
//! decisions-only trace, so v1 tuning logs keep loading and replaying
//! bit-identically.

use std::fmt;

use crate::space::ScheduleConfig;
use crate::trace::{Decision, Trace};
use crate::tuner::{TuningRecord, TuningResult};

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent.
    Int(i64),
    /// A number with fractional part or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A decode error: what went wrong and (for parse errors) where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input, when the error came from the parser.
    pub offset: Option<usize>,
}

impl JsonError {
    /// A decode error with no input position (for semantic errors found
    /// after parsing, e.g. a missing field or an out-of-range value).
    pub fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: None,
        }
    }

    fn at(message: impl Into<String>, offset: usize) -> Self {
        JsonError {
            message: message.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(at) => write!(f, "{} (at byte {at})", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for JsonError {}

impl fmt::Display for Json {
    /// Serializes the value to compact JSON text.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl Json {
    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                out.push_str(&v.to_string());
            }
            Json::Float(v) => write_f64(*v, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    /// Returns a [`JsonError`] with a byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::at("trailing characters after value", p.pos));
        }
        Ok(value)
    }

    /// Looks up a field of an object.
    ///
    /// # Errors
    /// Fails when the value is not an object or the key is absent.
    pub fn get(&self, key: &str) -> Result<&Json, JsonError> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError::new(format!("missing field \"{key}\""))),
            _ => Err(JsonError::new(format!(
                "expected an object while looking up \"{key}\""
            ))),
        }
    }

    /// The value as an `i64`.
    ///
    /// # Errors
    /// Fails when the value is not an integer.
    pub fn as_i64(&self) -> Result<i64, JsonError> {
        match self {
            Json::Int(v) => Ok(*v),
            _ => Err(JsonError::new(format!("expected an integer, got {self:?}"))),
        }
    }

    /// The value as a `usize`.
    ///
    /// # Errors
    /// Fails when the value is not a non-negative integer.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        usize::try_from(self.as_i64()?)
            .map_err(|_| JsonError::new("expected a non-negative integer"))
    }

    /// The value as an `f64` (integers widen; the strings `"inf"`, `"-inf"`
    /// and `"nan"` decode to the corresponding non-finite values).
    ///
    /// # Errors
    /// Fails when the value is not numeric.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Int(v) => Ok(*v as f64),
            Json::Float(v) => Ok(*v),
            Json::Str(s) => match s.as_str() {
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                "nan" => Ok(f64::NAN),
                _ => Err(JsonError::new(format!("expected a number, got {self:?}"))),
            },
            _ => Err(JsonError::new(format!("expected a number, got {self:?}"))),
        }
    }

    /// The value as a `bool`.
    ///
    /// # Errors
    /// Fails when the value is not a boolean.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => Err(JsonError::new(format!("expected a boolean, got {self:?}"))),
        }
    }

    /// The value as a string slice.
    ///
    /// # Errors
    /// Fails when the value is not a string.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(JsonError::new(format!("expected a string, got {self:?}"))),
        }
    }

    /// The value as an array slice.
    ///
    /// # Errors
    /// Fails when the value is not an array.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err(JsonError::new(format!("expected an array, got {self:?}"))),
        }
    }
}

/// Encodes an `f64`, routing non-finite values through their string spelling
/// (JSON numbers cannot represent them).
pub fn encode_f64(v: f64) -> Json {
    if v.is_finite() {
        Json::Float(v)
    } else if v.is_nan() {
        Json::Str("nan".into())
    } else if v > 0.0 {
        Json::Str("inf".into())
    } else {
        Json::Str("-inf".into())
    }
}

fn write_f64(v: f64, out: &mut String) {
    // Rust's `Display` for f64 prints the shortest string that parses back
    // to the same bits, but prints integral values without a decimal point
    // ("1" for 1.0); force one so the value re-parses as a float.
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(format!("expected '{}'", b as char), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::at(format!("expected \"{word}\""), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(JsonError::at("expected a JSON value", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::at("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(JsonError::at("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(JsonError::at("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a following \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        char::from_u32(
                                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00),
                                        )
                                    } else {
                                        // A high surrogate not followed by a
                                        // low one is malformed input, not a
                                        // reason to underflow.
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            let c = c.ok_or_else(|| JsonError::at("invalid \\u escape", start))?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(JsonError::at("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 character (input is a &str, so the
                    // boundary math is safe).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let s = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| JsonError::at("invalid UTF-8 in string", self.pos))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| JsonError::at("truncated \\u escape", self.pos))?;
        let s = std::str::from_utf8(chunk)
            .map_err(|_| JsonError::at("invalid \\u escape", self.pos))?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| JsonError::at("invalid \\u escape", self.pos))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::at("invalid number", start))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| JsonError::at("invalid number", start))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| JsonError::at("invalid number", start))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Types that round-trip through [`Json`].
pub trait JsonCodec: Sized {
    /// Encodes the value.
    fn to_json(&self) -> Json;

    /// Decodes a value.
    ///
    /// # Errors
    /// Returns a [`JsonError`] on missing fields or type mismatches.
    fn from_json(json: &Json) -> Result<Self, JsonError>;
}

impl JsonCodec for ScheduleConfig {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "spatial_dpus".into(),
                Json::Arr(self.spatial_dpus.iter().map(|&d| Json::Int(d)).collect()),
            ),
            ("reduce_dpus".into(), Json::Int(self.reduce_dpus)),
            ("tasklets".into(), Json::Int(self.tasklets)),
            ("cache_elems".into(), Json::Int(self.cache_elems)),
            ("use_cache".into(), Json::Bool(self.use_cache)),
            ("unroll".into(), Json::Bool(self.unroll)),
            ("host_threads".into(), Json::Int(self.host_threads as i64)),
            (
                "parallel_transfer".into(),
                Json::Bool(self.parallel_transfer),
            ),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(ScheduleConfig {
            spatial_dpus: json
                .get("spatial_dpus")?
                .as_arr()?
                .iter()
                .map(|v| v.as_i64())
                .collect::<Result<Vec<i64>, JsonError>>()?,
            reduce_dpus: json.get("reduce_dpus")?.as_i64()?,
            tasklets: json.get("tasklets")?.as_i64()?,
            cache_elems: json.get("cache_elems")?.as_i64()?,
            use_cache: json.get("use_cache")?.as_bool()?,
            unroll: json.get("unroll")?.as_bool()?,
            host_threads: json.get("host_threads")?.as_usize()?,
            parallel_transfer: json.get("parallel_transfer")?.as_bool()?,
        })
    }
}

impl JsonCodec for Trace {
    /// Encodes the trace as its identity: the sketch tag plus the decision
    /// list (`[["site", value], ...]`).  Structural instructions are *not*
    /// persisted — they are a deterministic function of the decisions and
    /// are re-materialized by the space generator on replay.
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("sketch".into(), Json::Str(self.sketch().to_string())),
            (
                "decisions".into(),
                Json::Arr(
                    self.decisions()
                        .map(|(site, d)| {
                            Json::Arr(vec![
                                Json::Str(site.to_string()),
                                match d {
                                    Decision::Int(v) => Json::Int(v),
                                    Decision::Bool(v) => Json::Bool(v),
                                },
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let sketch = json.get("sketch")?.as_str()?.to_string();
        let mut decisions: Vec<(String, Decision)> = Vec::new();
        for entry in json.get("decisions")?.as_arr()? {
            let pair = entry.as_arr()?;
            if pair.len() != 2 {
                return Err(JsonError::new("a decision must be a [site, value] pair"));
            }
            let site = pair[0].as_str()?.to_string();
            let decision = match &pair[1] {
                Json::Bool(v) => Decision::Bool(*v),
                Json::Int(v) => Decision::Int(*v),
                other => {
                    return Err(JsonError::new(format!(
                        "decision values are integers or booleans, got {other:?}"
                    )))
                }
            };
            decisions.push((site, decision));
        }
        Ok(Trace::from_decisions(sketch, decisions))
    }
}

/// Decodes a candidate from either layout: the v2 `trace` field, or the v1
/// `config` knob vector shimmed into a decisions-only trace.
fn candidate_from_json(json: &Json) -> Result<Trace, JsonError> {
    if let Ok(trace) = json.get("trace") {
        return Trace::from_json(trace);
    }
    match json.get("config") {
        Ok(config) => Ok(ScheduleConfig::from_json(config)?.to_decision_trace()),
        Err(_) => Err(JsonError::new(
            "record carries no candidate: expected a v2 \"trace\" (or v1 \"config\") field",
        )),
    }
}

impl JsonCodec for TuningRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("trial".into(), Json::Int(self.trial as i64)),
            ("trace".into(), self.trace.to_json()),
            ("latency_s".into(), encode_f64(self.latency_s)),
            ("best_so_far_s".into(), encode_f64(self.best_so_far_s)),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(TuningRecord {
            trial: json.get("trial")?.as_usize()?,
            trace: candidate_from_json(json)?,
            latency_s: json.get("latency_s")?.as_f64()?,
            best_so_far_s: json.get("best_so_far_s")?.as_f64()?,
        })
    }
}

impl JsonCodec for TuningResult {
    fn to_json(&self) -> Json {
        let best = match &self.best {
            Some((trace, latency)) => Json::Obj(vec![
                ("trace".into(), trace.to_json()),
                ("latency_s".into(), encode_f64(*latency)),
            ]),
            None => Json::Null,
        };
        Json::Obj(vec![
            ("best".into(), best),
            (
                "history".into(),
                Json::Arr(self.history.iter().map(JsonCodec::to_json).collect()),
            ),
            ("measured".into(), Json::Int(self.measured as i64)),
            ("failed".into(), Json::Int(self.failed as i64)),
            ("rejected".into(), Json::Int(self.rejected as i64)),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let best = match json.get("best")? {
            Json::Null => None,
            b => Some((candidate_from_json(b)?, b.get("latency_s")?.as_f64()?)),
        };
        Ok(TuningResult {
            best,
            history: json
                .get("history")?
                .as_arr()?
                .iter()
                .map(TuningRecord::from_json)
                .collect::<Result<Vec<_>, JsonError>>()?,
            measured: json.get("measured")?.as_usize()?,
            failed: json.get("failed")?.as_usize()?,
            rejected: json.get("rejected")?.as_usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_config() -> ScheduleConfig {
        ScheduleConfig {
            spatial_dpus: vec![8, 4],
            reduce_dpus: 16,
            tasklets: 12,
            cache_elems: 64,
            use_cache: true,
            unroll: false,
            host_threads: 8,
            parallel_transfer: true,
        }
    }

    #[test]
    fn parses_scalars_arrays_and_objects() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("2.5e-3").unwrap(), Json::Float(0.0025));
        assert_eq!(
            Json::parse("[1, 2, 3]").unwrap(),
            Json::Arr(vec![Json::Int(1), Json::Int(2), Json::Int(3)])
        );
        let obj = Json::parse(r#"{"a": 1, "b": [true, null]}"#).unwrap();
        assert_eq!(obj.get("a").unwrap(), &Json::Int(1));
        assert_eq!(obj.get("b").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslash\\",
            "newline\nand\ttab",
            "unicode: αβγ — δ",
            "control \u{1} char",
        ] {
            let encoded = Json::Str(s.into()).to_string();
            assert_eq!(Json::parse(&encoded).unwrap(), Json::Str(s.into()));
        }
        // \u escapes (including a surrogate pair) decode correctly.
        assert_eq!(Json::parse(r#""A😀""#).unwrap(), Json::Str("A😀".into()));
    }

    #[test]
    fn malformed_input_reports_offsets() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"open"] {
            let err = Json::parse(bad).unwrap_err();
            assert!(err.offset.is_some(), "{bad:?} should report an offset");
        }
        // Broken surrogate pairs are a parse error, never a panic.
        for bad in [
            "\"\\ud800A\"",       // high surrogate + plain character
            "\"\\ud800\\u0041\"", // high surrogate + non-low \u escape
            "\"\\udc00\"",        // lone low surrogate
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [
            0.0,
            -0.0,
            1.0,
            -1.5,
            1e-308,
            123456.789,
            f64::MIN,
            f64::MAX,
            std::f64::consts::PI,
            2.2250738585072014e-308,
        ] {
            let text = Json::Float(v).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} -> {text} -> {back}");
        }
        // Non-finite values go through their string spelling.
        for v in [f64::INFINITY, f64::NEG_INFINITY] {
            let back = Json::parse(&encode_f64(v).to_string())
                .unwrap()
                .as_f64()
                .unwrap();
            assert_eq!(v, back);
        }
        assert!(Json::parse(&encode_f64(f64::NAN).to_string())
            .unwrap()
            .as_f64()
            .unwrap()
            .is_nan());
    }

    #[test]
    fn schedule_config_round_trips() {
        let cfg = sample_config();
        let back =
            ScheduleConfig::from_json(&Json::parse(&cfg.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn tuning_result_round_trips() {
        let trace = sample_config().to_decision_trace();
        let result = TuningResult {
            best: Some((trace.clone(), 1.25e-3)),
            history: vec![
                TuningRecord {
                    trial: 0,
                    trace: trace.clone(),
                    latency_s: 2.5e-3,
                    best_so_far_s: 2.5e-3,
                },
                TuningRecord {
                    trial: 1,
                    trace: ScheduleConfig {
                        unroll: true,
                        ..sample_config()
                    }
                    .to_decision_trace(),
                    latency_s: 1.25e-3,
                    best_so_far_s: 1.25e-3,
                },
            ],
            measured: 2,
            failed: 1,
            rejected: 4,
        };
        let text = result.to_json().to_string();
        let back = TuningResult::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(result.best, back.best);
        assert_eq!(result.history, back.history);
        assert_eq!(result.measured, back.measured);
        assert_eq!(result.failed, back.failed);
        assert_eq!(result.rejected, back.rejected);
    }

    #[test]
    fn traces_round_trip_and_materialization_does_not_change_the_encoding() {
        use atim_tir::compute::ComputeDef;
        let cfg = sample_config();
        let def = ComputeDef::mtv("mtv", 256, 512);
        let bare = cfg.to_decision_trace();
        let full = cfg.to_trace(&def);
        // Same identity, same JSON: the codec persists decisions only.
        assert_eq!(bare.to_json().to_string(), full.to_json().to_string());
        let back = Trace::from_json(&Json::parse(&full.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, full);
        assert!(!back.is_materialized());
        assert_eq!(ScheduleConfig::from_trace(&back), Some(cfg));
    }

    #[test]
    fn v1_records_with_config_fields_decode_to_shimmed_traces() {
        let cfg = sample_config();
        let v1 = Json::Obj(vec![
            ("trial".into(), Json::Int(3)),
            ("config".into(), cfg.to_json()),
            ("latency_s".into(), encode_f64(2e-3)),
            ("best_so_far_s".into(), encode_f64(1e-3)),
        ]);
        let record = TuningRecord::from_json(&v1).unwrap();
        assert_eq!(record.trial, 3);
        assert_eq!(record.trace, cfg.to_decision_trace());
        assert_eq!(ScheduleConfig::from_trace(&record.trace), Some(cfg));
    }

    #[test]
    fn decode_errors_name_the_missing_field() {
        let err = ScheduleConfig::from_json(&Json::parse("{}").unwrap()).unwrap_err();
        assert!(err.message.contains("spatial_dpus"), "{err}");
    }
}
