//! A learned cost model guiding the evolutionary search.
//!
//! TVM's MetaSchedule uses an XGBoost model over program features; ATiM-RS
//! substitutes a ridge-regression model over features derived from each
//! candidate's [`Trace`].  The model predicts the log-latency of a candidate
//! and is retrained from all measured candidates after every search round,
//! which is enough to steer the search away from obviously bad regions (too
//! few DPUs, tiny caching tiles, WRAM-thrashing configurations) without
//! measuring them.

use atim_sim::UpmemConfig;
use atim_tir::compute::ComputeDef;
use atim_tir::schedule::Binding;

use crate::session::TuningError;
use crate::space::ScheduleConfig;
use crate::trace::{Instruction, Trace};

/// Number of features extracted per candidate.
pub const NUM_FEATURES: usize = 10;

/// Environment variable selecting the cost estimator a session ranks
/// candidates with (`ridge` or `gbdt`).  Unknown values fail loudly at
/// session start with [`TuningError::InvalidCostModel`], exactly like the
/// `ATIM_MEASURE_THREADS` contract.
pub const COST_MODEL_ENV: &str = "ATIM_COST_MODEL";

/// Which cost-estimator family ranks a session's candidates.
///
/// `Ridge` is the default; `Gbdt` selects the gradient-boosted trees of the
/// `atim-model` crate (trained online per round, or warm-started from a
/// corpus-trained model file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModelKind {
    /// The ridge-regression [`CostModel`] (the default).
    #[default]
    Ridge,
    /// Gradient-boosted decision trees (`atim-model`'s `GbdtModel`).
    Gbdt,
}

impl CostModelKind {
    /// The estimator's short identifier (the value `ATIM_COST_MODEL`
    /// accepts).
    pub fn name(self) -> &'static str {
        match self {
            CostModelKind::Ridge => "ridge",
            CostModelKind::Gbdt => "gbdt",
        }
    }

    /// Parses an estimator name (case-insensitive, surrounding whitespace
    /// ignored).
    ///
    /// # Errors
    /// Returns [`TuningError::InvalidCostModel`] for anything other than
    /// `ridge` or `gbdt`.
    pub fn parse(raw: &str) -> Result<Self, TuningError> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "ridge" => Ok(CostModelKind::Ridge),
            "gbdt" => Ok(CostModelKind::Gbdt),
            _ => Err(TuningError::InvalidCostModel {
                value: raw.to_string(),
            }),
        }
    }

    /// Reads [`COST_MODEL_ENV`]: `Ok(None)` when unset, the parsed kind
    /// when valid.
    ///
    /// # Errors
    /// Returns [`TuningError::InvalidCostModel`] when the variable holds an
    /// unknown estimator name — misconfiguration fails loudly at session
    /// start instead of silently tuning with the wrong model.
    pub fn from_env() -> Result<Option<Self>, TuningError> {
        match std::env::var(COST_MODEL_ENV) {
            Ok(raw) => Self::parse(&raw).map(Some),
            Err(_) => Ok(None),
        }
    }
}

impl std::fmt::Display for CostModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The estimator interface [`crate::session::TuningSession`] ranks
/// candidates through.
///
/// Implementations predict a latency-like score (lower = better) from a
/// candidate's feature vector and are refit from the full set of measured
/// samples after every search round, so online learners can boost
/// incrementally while batch learners simply retrain.  [`CostModel`] (ridge
/// regression) is the resident default; the `atim-model` crate plugs in a
/// gradient-boosted alternative behind the same seam.
pub trait CostEstimator: Send {
    /// Short identifier of the estimator family (`"ridge"`, `"gbdt"`).
    fn name(&self) -> &'static str;

    /// Whether the estimator has been fit at least once.
    fn is_trained(&self) -> bool;

    /// (Re)fits the estimator from every `(features, latency_seconds)`
    /// sample measured so far.  Called after every search round with the
    /// *cumulative* sample set.
    fn fit(&mut self, samples: &[([f64; NUM_FEATURES], f64)]);

    /// Predicts a latency-like score for a candidate (lower ranks earlier).
    /// Untrained estimators must return a constant so every candidate ties
    /// (ties break deterministically on trace identity).
    fn predict(&self, features: &[f64; NUM_FEATURES]) -> f64;
}

/// Extracts the feature vector of a candidate trace.
///
/// Traces of the default UPMEM sketch featurize from their decision list
/// (bit-identical to the pre-trace knob-vector features, so fixed-seed
/// searches rank candidates identically).  Traces of custom generators fall
/// back to a structural read of their instructions: split factors of
/// DPU-bound and tasklet-bound loops recover the parallelism knobs, caching
/// directives the staging knobs.
pub fn featurize(trace: &Trace, def: &ComputeDef, hw: &UpmemConfig) -> [f64; NUM_FEATURES] {
    match ScheduleConfig::from_trace(trace) {
        Some(config) => featurize_config(&config, def, hw),
        None => {
            let k = structural_knobs(trace, def);
            raw_features(
                k.dpus,
                k.tasklets,
                k.cache_elems,
                k.reduce_dpus,
                k.use_cache,
                def,
                hw,
            )
        }
    }
}

/// Extracts the feature vector of a knob vector (the reference feature
/// definition the trace path reproduces for UPMEM-sketch traces).
pub fn featurize_config(
    config: &ScheduleConfig,
    def: &ComputeDef,
    hw: &UpmemConfig,
) -> [f64; NUM_FEATURES] {
    raw_features(
        config.num_dpus(),
        config.tasklets,
        config.cache_elems,
        config.reduce_dpus,
        config.use_cache,
        def,
        hw,
    )
}

/// The feature formula over raw knob values.  Features are dimensionless
/// logs/ratios so one model generalizes across workload sizes reasonably
/// well within a single tuning session.
fn raw_features(
    num_dpus: i64,
    tasklets: i64,
    cache_elems: i64,
    reduce_dpus: i64,
    use_cache: bool,
    def: &ComputeDef,
    hw: &UpmemConfig,
) -> [f64; NUM_FEATURES] {
    let total_work = def.total_flops().max(1) as f64;
    let dpus = num_dpus as f64;
    let tasklets = tasklets.max(1) as f64;
    let per_dpu = total_work / dpus;
    let per_tasklet = per_dpu / tasklets;
    let bytes = def.total_bytes() as f64;
    let reduce_len: i64 = def
        .reduce_axes()
        .iter()
        .map(|&a| def.axes[a].extent)
        .product();
    let out_len = def.output_len() as f64;
    [
        (dpus).ln(),
        (tasklets).ln(),
        (cache_elems.max(1) as f64).ln(),
        if reduce_dpus > 1 { 1.0 } else { 0.0 },
        per_dpu.ln(),
        per_tasklet.ln(),
        (bytes / dpus).ln(),
        (out_len * reduce_dpus as f64).max(1.0).ln(),
        if use_cache { 1.0 } else { 0.0 },
        (dpus / hw.total_dpus() as f64).min(1.0) * (reduce_len.max(1) as f64).ln(),
    ]
}

/// Knob values recovered from a custom trace's structure.
struct StructuralKnobs {
    dpus: i64,
    tasklets: i64,
    cache_elems: i64,
    reduce_dpus: i64,
    use_cache: bool,
}

/// One loop of the simulated nest the structural walk maintains.
struct NestLoop {
    /// The trace register referring to this loop (`None` for axis loops the
    /// trace never touched).
    reg: Option<usize>,
    extent: i64,
    binding: Binding,
}

/// Walks a materialized trace's instructions over a simulated loop nest —
/// positions, per-level tile extents and bindings included — and recovers
/// the parallelism/caching knobs the feature formula needs.
///
/// Unlike a flat register walk this is *order-aware*: `Reorder` moves
/// loops, and a caching directive's `cache_elems` is the product of the
/// trace-managed tile extents nested inside its attach point (the staged
/// footprint of a multi-level tile chain), not merely the factor of the
/// last split.  Parallelism knobs are read off the final nest, so a
/// DPU-bound loop that is split again contributes its final extent.
/// Decisions-only custom traces yield neutral knobs (everything 1).
fn structural_knobs(trace: &Trace, def: &ComputeDef) -> StructuralKnobs {
    let mut nest: Vec<NestLoop> = def
        .axes
        .iter()
        .map(|a| NestLoop {
            reg: None,
            extent: a.extent,
            binding: Binding::None,
        })
        .collect();
    // Which original axis each nest position iterates (for GetLoop).
    let mut axis_of: Vec<Option<usize>> = (0..def.axes.len()).map(Some).collect();
    let pos_of = |nest: &[NestLoop], reg: usize| nest.iter().position(|l| l.reg == Some(reg));

    let mut k = StructuralKnobs {
        dpus: 1,
        tasklets: 1,
        cache_elems: 1,
        reduce_dpus: 1,
        use_cache: false,
    };
    for inst in trace.insts() {
        match inst {
            Instruction::GetLoop { axis, dst } => {
                if let Some(p) = axis_of.iter().position(|&a| a == Some(*axis)) {
                    nest[p].reg = Some(*dst);
                }
            }
            Instruction::Split {
                lv,
                factor,
                outer,
                inner,
            } => {
                if let Some(p) = pos_of(&nest, *lv) {
                    let parent = nest[p].extent;
                    let f = (*factor).max(1);
                    // Mirrors `Schedule::split`: the outer loop inherits the
                    // binding, the inner extent is the factor exactly.
                    nest[p] = NestLoop {
                        reg: Some(*outer),
                        extent: (parent + f - 1) / f,
                        binding: nest[p].binding,
                    };
                    nest.insert(
                        p + 1,
                        NestLoop {
                            reg: Some(*inner),
                            extent: f,
                            binding: Binding::None,
                        },
                    );
                    let axis = axis_of[p];
                    axis_of.insert(p + 1, axis);
                }
            }
            Instruction::Bind { lv, binding } => {
                if let Some(p) = pos_of(&nest, *lv) {
                    nest[p].binding = *binding;
                }
            }
            Instruction::Reorder { order } => {
                // Partial permutation: the listed loops are redistributed
                // over their own (sorted) positions; everything else stays.
                let slots: Vec<usize> = nest
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.reg.is_some_and(|r| order.contains(&r)))
                    .map(|(p, _)| p)
                    .collect();
                let listed: Vec<usize> = order
                    .iter()
                    .copied()
                    .filter(|&r| nest.iter().any(|l| l.reg == Some(r)))
                    .collect();
                if slots.len() == listed.len() {
                    let mut moved: Vec<(NestLoop, Option<usize>)> = Vec::new();
                    for &r in &listed {
                        let p = pos_of(&nest, r).expect("checked membership");
                        moved.push((
                            NestLoop {
                                reg: nest[p].reg,
                                extent: nest[p].extent,
                                binding: nest[p].binding,
                            },
                            axis_of[p],
                        ));
                    }
                    for (&slot, (l, a)) in slots.iter().zip(moved) {
                        nest[slot] = l;
                        axis_of[slot] = a;
                    }
                }
            }
            Instruction::CacheRead { at, .. } | Instruction::CacheWrite { at } => {
                k.use_cache = true;
                if let Some(p) = pos_of(&nest, *at) {
                    // Staged footprint: the trace-managed tile extents
                    // nested inside the attach point (untouched axis loops
                    // carry no tiling decision and are excluded).
                    let footprint: i64 = nest[p + 1..]
                        .iter()
                        .filter(|l| l.reg.is_some())
                        .map(|l| l.extent.max(1))
                        .product();
                    k.cache_elems = k.cache_elems.max(footprint);
                }
            }
            _ => {}
        }
    }
    for l in &nest {
        match l.binding {
            Binding::DpuX => k.dpus = k.dpus.saturating_mul(l.extent.max(1)),
            Binding::DpuY => {
                k.reduce_dpus = k.reduce_dpus.saturating_mul(l.extent.max(1));
                k.dpus = k.dpus.saturating_mul(l.extent.max(1));
            }
            Binding::Tasklet => k.tasklets = k.tasklets.saturating_mul(l.extent.max(1)),
            _ => {}
        }
    }
    k
}

/// Ridge-regression cost model over schedule features.
#[derive(Debug, Clone)]
pub struct CostModel {
    weights: Vec<f64>,
    bias: f64,
    trained: bool,
    lambda: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::new()
    }
}

impl CostModel {
    /// Creates an untrained model.
    pub fn new() -> Self {
        CostModel {
            weights: vec![0.0; NUM_FEATURES],
            bias: 0.0,
            trained: false,
            lambda: 1e-2,
        }
    }

    /// Whether the model has been trained at least once.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Trains the model on `(features, latency_seconds)` pairs.  Latencies
    /// are modelled in log space.
    pub fn train(&mut self, samples: &[([f64; NUM_FEATURES], f64)]) {
        if samples.len() < 4 {
            return;
        }
        let n = NUM_FEATURES + 1; // + bias column

        // Normal equations with ridge regularization: (XᵀX + λI) w = Xᵀy.
        let mut xtx = vec![vec![0.0f64; n]; n];
        let mut xty = vec![0.0f64; n];
        for (f, y) in samples {
            let y = y.max(1e-12).ln();
            let mut row = [0.0f64; NUM_FEATURES + 1];
            row[..NUM_FEATURES].copy_from_slice(f);
            row[NUM_FEATURES] = 1.0;
            for i in 0..n {
                xty[i] += row[i] * y;
                for j in 0..n {
                    xtx[i][j] += row[i] * row[j];
                }
            }
        }
        for (i, row) in xtx.iter_mut().enumerate().take(NUM_FEATURES) {
            row[i] += self.lambda * samples.len() as f64;
        }
        if let Some(w) = solve(xtx, xty) {
            self.weights = w[..NUM_FEATURES].to_vec();
            self.bias = w[NUM_FEATURES];
            self.trained = true;
        }
    }

    /// Predicts the latency (seconds) of a candidate from its features.
    /// Untrained models return a neutral constant so all candidates tie.
    pub fn predict(&self, features: &[f64; NUM_FEATURES]) -> f64 {
        if !self.trained {
            return 1.0;
        }
        let mut log_y = self.bias;
        for (w, f) in self.weights.iter().zip(features) {
            log_y += w * f;
        }
        log_y.clamp(-50.0, 50.0).exp()
    }
}

impl CostEstimator for CostModel {
    fn name(&self) -> &'static str {
        "ridge"
    }

    fn is_trained(&self) -> bool {
        CostModel::is_trained(self)
    }

    fn fit(&mut self, samples: &[([f64; NUM_FEATURES], f64)]) {
        self.train(samples);
    }

    fn predict(&self, features: &[f64; NUM_FEATURES]) -> f64 {
        CostModel::predict(self, features)
    }
}

/// Solves a dense linear system with partial-pivot Gaussian elimination.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate.
        for row in (col + 1)..n {
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot_row = &pivot_rows[col];
            let cur_row = &mut rest[0];
            let factor = cur_row[col] / pivot_row[col];
            for (x, &p) in cur_row[col..n].iter_mut().zip(&pivot_row[col..n]) {
                *x -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for col in (row + 1)..n {
            sum -= a[row][col] * x[col];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_config(dpus: i64, tasklets: i64, cache: i64) -> ScheduleConfig {
        ScheduleConfig {
            spatial_dpus: vec![dpus],
            reduce_dpus: 1,
            tasklets,
            cache_elems: cache,
            use_cache: true,
            unroll: false,
            host_threads: 8,
            parallel_transfer: true,
        }
    }

    #[test]
    fn untrained_model_is_neutral() {
        let model = CostModel::new();
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let hw = UpmemConfig::default();
        let f = featurize(&sample_config(64, 8, 64).to_decision_trace(), &def, &hw);
        assert_eq!(model.predict(&f), 1.0);
        assert!(!model.is_trained());
    }

    #[test]
    fn learns_that_more_dpus_is_faster() {
        let def = ComputeDef::mtv("mtv", 4096, 4096);
        let hw = UpmemConfig::default();
        // Synthetic ground truth: latency inversely proportional to DPUs.
        let mut samples = Vec::new();
        for &d in &[4i64, 8, 16, 32, 64, 128, 256, 512, 1024] {
            for &t in &[1i64, 4, 16] {
                let cfg = sample_config(d, t, 64);
                let latency = 1.0 / (d as f64 * t as f64).sqrt();
                samples.push((featurize(&cfg.to_decision_trace(), &def, &hw), latency));
            }
        }
        let mut model = CostModel::new();
        model.train(&samples);
        assert!(model.is_trained());
        let slow = model.predict(&featurize(
            &sample_config(4, 1, 64).to_decision_trace(),
            &def,
            &hw,
        ));
        let fast = model.predict(&featurize(
            &sample_config(1024, 16, 64).to_decision_trace(),
            &def,
            &hw,
        ));
        assert!(
            fast < slow,
            "model must rank 1024 DPUs ({fast}) faster than 4 DPUs ({slow})"
        );
    }

    #[test]
    fn training_needs_enough_samples() {
        let mut model = CostModel::new();
        model.train(&[([0.0; NUM_FEATURES], 1.0)]);
        assert!(!model.is_trained());
    }

    #[test]
    fn solver_handles_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 2.0]];
        let b = vec![3.0, 8.0];
        let x = solve(a, b).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn solver_detects_singular_matrices() {
        let a = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let b = vec![1.0, 2.0];
        assert!(solve(a, b).is_none());
    }

    #[test]
    fn cost_model_kind_parses_known_names_and_rejects_unknowns() {
        assert_eq!(CostModelKind::parse("ridge"), Ok(CostModelKind::Ridge));
        assert_eq!(CostModelKind::parse(" GBDT "), Ok(CostModelKind::Gbdt));
        assert_eq!(CostModelKind::default(), CostModelKind::Ridge);
        let err = CostModelKind::parse("xgboost").unwrap_err();
        assert_eq!(
            err,
            TuningError::InvalidCostModel {
                value: "xgboost".into()
            }
        );
        // The message names the environment variable and the accepted
        // values, matching the ATIM_MEASURE_THREADS fail-loudly precedent.
        let msg = err.to_string();
        assert!(msg.contains(COST_MODEL_ENV), "{msg}");
        assert!(msg.contains("ridge") && msg.contains("gbdt"), "{msg}");
        assert!(msg.contains("xgboost"), "{msg}");
    }

    #[test]
    fn ridge_implements_the_estimator_seam() {
        let mut model: Box<dyn CostEstimator> = Box::new(CostModel::new());
        assert_eq!(model.name(), "ridge");
        assert!(!model.is_trained());
        let def = ComputeDef::mtv("mtv", 2048, 2048);
        let hw = UpmemConfig::default();
        let samples: Vec<([f64; NUM_FEATURES], f64)> = [4i64, 16, 64, 256, 1024]
            .iter()
            .map(|&d| {
                let cfg = sample_config(d, 8, 64);
                (
                    featurize(&cfg.to_decision_trace(), &def, &hw),
                    1.0 / d as f64,
                )
            })
            .collect();
        model.fit(&samples);
        assert!(model.is_trained());
        let fast = model.predict(&samples[4].0);
        let slow = model.predict(&samples[0].0);
        assert!(fast < slow);
    }

    #[test]
    fn features_are_finite() {
        let def = ComputeDef::red("red", 1_000_000);
        let hw = UpmemConfig::default();
        let cfg = ScheduleConfig {
            spatial_dpus: vec![],
            reduce_dpus: 64,
            tasklets: 16,
            cache_elems: 128,
            use_cache: true,
            unroll: true,
            host_threads: 16,
            parallel_transfer: true,
        };
        let f = featurize(&cfg.to_decision_trace(), &def, &hw);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn trace_features_match_knob_features_for_the_upmem_sketch() {
        let def = ComputeDef::mtv("mtv", 1024, 2048);
        let hw = UpmemConfig::default();
        let cfg = ScheduleConfig {
            spatial_dpus: vec![32],
            reduce_dpus: 8,
            tasklets: 12,
            cache_elems: 128,
            use_cache: true,
            unroll: true,
            host_threads: 4,
            parallel_transfer: true,
        };
        let from_cfg = featurize_config(&cfg, &def, &hw);
        // Both the decisions-only shim and the materialized trace featurize
        // identically to the knob vector.
        assert_eq!(featurize(&cfg.to_decision_trace(), &def, &hw), from_cfg);
        assert_eq!(featurize(&cfg.to_trace(&def), &def, &hw), from_cfg);
    }

    #[test]
    fn custom_traces_featurize_from_structure() {
        use crate::trace::{Instruction, Trace};
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let hw = UpmemConfig::default();
        // A hand-built foreign sketch: split the row axis across 16 DPUs
        // (factor 64 -> outer extent 16), 8 tasklets, cached tiles of 32.
        let insts = vec![
            Instruction::GetLoop { axis: 0, dst: 0 },
            Instruction::Split {
                lv: 0,
                factor: 64,
                outer: 1,
                inner: 2,
            },
            Instruction::Bind {
                lv: 1,
                binding: atim_tir::schedule::Binding::DpuX,
            },
            Instruction::Split {
                lv: 2,
                factor: 8,
                outer: 3,
                inner: 4,
            },
            Instruction::Bind {
                lv: 3,
                binding: atim_tir::schedule::Binding::Tasklet,
            },
            Instruction::Split {
                lv: 4,
                factor: 32,
                outer: 5,
                inner: 6,
            },
            Instruction::CacheRead { input: 0, at: 5 },
        ];
        let trace = Trace::new("custom", insts, 7);
        let f = featurize(&trace, &def, &hw);
        assert!(f.iter().all(|v| v.is_finite()));
        assert!(
            (f[0] - (16f64).ln()).abs() < 1e-12,
            "dpus feature: {}",
            f[0]
        );
        assert!(
            (f[1] - (8f64).ln()).abs() < 1e-12,
            "tasklet feature: {}",
            f[1]
        );
        assert!(
            (f[2] - (32f64).ln()).abs() < 1e-12,
            "cache feature: {}",
            f[2]
        );
        assert_eq!(f[8], 1.0, "use_cache recovered from CacheRead");
    }

    #[test]
    fn structural_fallback_tracks_tile_chains_and_reorder() {
        use crate::trace::{Instruction, Trace};
        use atim_tir::schedule::Binding;
        let def = ComputeDef::mtv("mtv", 64, 128);
        let hw = UpmemConfig::default();
        // Two tile chains (i: 16x4x4 over 4 DPUs, k: 16x8), reordered into
        // [dpu, i_o, k_o, i_i, k_i]; operand staging at two depths.
        let insts = vec![
            Instruction::GetLoop { axis: 0, dst: 0 },
            Instruction::Split {
                lv: 0,
                factor: 16,
                outer: 1,
                inner: 2,
            },
            Instruction::Bind {
                lv: 1,
                binding: Binding::DpuX,
            },
            Instruction::GetLoop { axis: 1, dst: 3 },
            Instruction::Split {
                lv: 3,
                factor: 8,
                outer: 4,
                inner: 5,
            },
            Instruction::Split {
                lv: 2,
                factor: 4,
                outer: 6,
                inner: 7,
            },
            Instruction::Reorder {
                order: vec![1, 6, 4, 7, 5],
            },
            // Inside r7 sit r5 only: footprint 8.  Inside r4 sit r7 and
            // r5: footprint 32.  The feature takes the maximum.
            Instruction::CacheRead { input: 1, at: 7 },
            Instruction::CacheRead { input: 0, at: 4 },
        ];
        let trace = Trace::new("custom", insts, 8);
        let f = featurize(&trace, &def, &hw);
        assert!((f[0] - (4f64).ln()).abs() < 1e-12, "dpus feature: {}", f[0]);
        assert_eq!(f[1], 0.0, "no tasklet binding");
        assert!(
            (f[2] - (32f64).ln()).abs() < 1e-12,
            "multi-level staging footprint: {}",
            f[2]
        );
        assert_eq!(f[8], 1.0);
    }

    #[test]
    fn tiled_generator_traces_featurize_meaningfully() {
        use crate::generator::SpaceGenerator;
        use crate::sketch::TiledSketchGenerator;
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let hw = UpmemConfig::default();
        let gen = TiledSketchGenerator::default();
        for sketch in gen.sketches(&def, &hw) {
            // Tiled traces lack the fixed-knob sites, so they must route
            // through the structural fallback — and still yield finite,
            // non-degenerate features.
            assert!(ScheduleConfig::from_trace(&sketch).is_none());
            let f = featurize(&sketch, &def, &hw);
            assert!(f.iter().all(|v| v.is_finite()));
            assert!(f[0] > 0.0, "DPU parallelism must be visible: {f:?}");
            assert_eq!(f[8], 1.0, "default sketch stages operands: {f:?}");
        }
    }
}
