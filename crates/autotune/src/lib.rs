//! # atim-autotune — search-based code generation for UPMEM
//!
//! The autotuning framework of the ATiM paper (§5.2): it explores the
//! **joint search space** of host-side decisions (how tensors are tiled and
//! distributed across DPUs, whether reduction is hierarchical, how the host
//! post-processes) and kernel-side decisions (tasklet parallelism, WRAM
//! caching tile sizes and locations, unrolling).
//!
//! * [`space`] — the design space: [`space::ScheduleConfig`] decision
//!   vectors, ATiM-extended sketch instantiation (Fig. 6) and random
//!   sampling.
//! * [`verifier`] — the UPMEM code verifier (§5.2.4): rejects candidates
//!   that exceed WRAM/MRAM capacity, the tasklet limit or the DPU count
//!   before they are ever measured.
//! * [`cost_model`] — a learned cost model (ridge regression over schedule
//!   features) standing in for TVM's XGBoost model; retrained from measured
//!   candidates each round.
//! * [`search`] — the balanced evolutionary search (§5.2.3): mutation from a
//!   best-candidate database, balanced sampling of `rfactor`/non-`rfactor`
//!   design spaces in the early trials, and an adaptive ε-greedy schedule.
//! * [`tuner`] — the driver loop tying it all together, generic over a
//!   [`tuner::Measurer`] / [`tuner::BatchMeasurer`] so the caller decides how
//!   candidates are timed (the `atim-core` crate measures them on the
//!   simulated UPMEM machine, batching each round across worker threads).
//!
//! # Example
//!
//! Tuning against an analytic measurer (tests and demos do exactly this;
//! `atim-core` substitutes real simulated measurements):
//!
//! ```
//! use atim_autotune::{tune, ScheduleConfig, TuningOptions};
//! use atim_sim::UpmemConfig;
//! use atim_tir::compute::ComputeDef;
//!
//! let def = ComputeDef::mtv("mtv", 64, 64);
//! let hw = UpmemConfig::small();
//! let options = TuningOptions {
//!     trials: 8,
//!     population: 8,
//!     measure_per_round: 4,
//!     ..TuningOptions::default()
//! };
//! // Analytic stand-in: reward DPU parallelism.
//! let mut measurer = |cfg: &ScheduleConfig| Some(1.0 / cfg.num_dpus() as f64);
//! let result = tune(&def, &hw, &options, &mut measurer);
//! assert!(result.best.is_some());
//! assert!(result.best_latency().is_finite());
//! ```

pub mod cost_model;
pub mod search;
pub mod space;
pub mod tuner;
pub mod verifier;

pub use space::{ScheduleConfig, SearchSpace};
pub use tuner::{
    tune, tune_batch, BatchMeasurer, Measurer, SequentialMeasurer, TuningOptions, TuningRecord,
    TuningResult,
};
pub use verifier::{verify, VerifyError};
