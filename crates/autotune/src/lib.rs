//! # atim-autotune — search-based code generation for UPMEM
//!
//! The autotuning framework of the ATiM paper (§5.2): it explores the
//! **joint search space** of host-side decisions (how tensors are tiled and
//! distributed across DPUs, whether reduction is hierarchical, how the host
//! post-processes) and kernel-side decisions (tasklet parallelism, WRAM
//! caching tile sizes and locations, unrolling).
//!
//! * [`trace`] — the search space's currency: [`trace::Trace`]s, ordered
//!   replayable lists of schedule primitives plus `Sample*` instructions
//!   carrying the recorded [`trace::Decision`]s (TVM MetaSchedule's
//!   trace-based design, extended with the UPMEM primitives).
//! * [`generator`] — pluggable [`generator::SpaceGenerator`]s emit sketch
//!   traces; [`generator::UpmemSketchGenerator`] reproduces ATiM's joint
//!   host/kernel sketch (Fig. 6) and is the default.
//! * [`space`] — the legacy [`space::ScheduleConfig`] knob vector, kept as
//!   the conversion layer (fixed baseline configs, v1-log shimming).
//! * [`job`] — the serializable measurement contract
//!   ([`job::MeasureJob`] / [`job::MeasureReport`]): a candidate plus the
//!   workload/generator/seed context a shared-nothing worker needs to
//!   measure it bit-identically, the unit the `atim-core` measurement
//!   fleet routes over the wire.
//! * [`verifier`] — the UPMEM code verifier (§5.2.4): rejects candidate
//!   traces that exceed WRAM/MRAM capacity, the tasklet limit or the DPU
//!   count before they are ever measured.
//! * [`cost_model`] — the learned cost models ranking candidates: a
//!   pluggable [`cost_model::CostEstimator`] seam with a resident ridge
//!   regression over trace-derived features (retrained from measured
//!   candidates each round); the `atim-model` crate plugs gradient-boosted
//!   trees into the same seam (`ATIM_COST_MODEL=gbdt`).
//! * [`search`] — the balanced evolutionary search (§5.2.3): decision
//!   mutation/crossover from a best-candidate database, balanced sampling
//!   of `rfactor`/non-`rfactor` design spaces in the early trials (keyed on
//!   each trace's rfactor decision), and an adaptive ε-greedy schedule.
//! * [`session`] — the resumable [`session::TuningSession`]: the same loop
//!   split into `next_batch`/`record_batch` steps, driven under a
//!   [`session::Budget`] (trials, wall-clock, early-stop) with streaming
//!   [`session::TuningObserver`] callbacks.
//! * [`tuner`] — the blocking convenience drivers ([`tune`]/[`tune_batch`])
//!   on top of the session, generic over a [`tuner::Measurer`] /
//!   [`tuner::BatchMeasurer`] so the caller decides how candidates are timed
//!   (the `atim-core` crate measures them on the simulated UPMEM machine,
//!   batching each round across worker threads).
//! * [`json`] / [`log`] — dependency-free JSON persistence:
//!   [`log::TuneLog`] saves a search, reloads it in a fresh process, replays
//!   it straight to a result, or warm-starts a new search from its records.
//! * [`cache`] — the fleet-wide memo on top of the logs: a durable,
//!   concurrency-safe [`cache::ScheduleCache`] keyed on
//!   `(workload, shape, machine fingerprint, generator)` that resolves
//!   already-tuned workloads without a single measurement, and ships with
//!   your program (`ATIM_SCHEDULE_CACHE`).
//!
//! # Example
//!
//! An incremental tuning session against an analytic measurer (tests and
//! demos do exactly this; `atim-core` substitutes real simulated
//! measurements), persisted to a log and replayed:
//!
//! ```
//! use atim_autotune::log::TuneLog;
//! use atim_autotune::session::{Budget, NullObserver, TuningSession};
//! use atim_autotune::{SequentialMeasurer, Trace, TuningOptions};
//! use atim_sim::UpmemConfig;
//! use atim_tir::compute::ComputeDef;
//!
//! let def = ComputeDef::mtv("mtv", 64, 64);
//! let hw = UpmemConfig::small();
//! let options = TuningOptions {
//!     trials: 8,
//!     population: 8,
//!     measure_per_round: 4,
//!     ..TuningOptions::default()
//! };
//! // Analytic stand-in: reward DPU parallelism (read off the trace's
//! // decisions; the simulator backend in `atim-core` compiles and runs the
//! // trace instead).
//! let mut measurer = |t: &Trace| Some(1.0 / t.num_dpus() as f64);
//! let mut session = TuningSession::new(&def, &hw, &options).unwrap();
//! let result = session.run(
//!     &mut SequentialMeasurer::new(&mut measurer),
//!     &Budget::unlimited(),
//!     &mut NullObserver,
//! );
//! assert!(result.best.is_some());
//!
//! // The search is durable: encode, decode, and the result survives.
//! let log = TuneLog::new(&def.name, options.seed, result);
//! let reloaded = TuneLog::from_json_str(&log.to_json_string()).unwrap();
//! assert_eq!(reloaded.to_result().best, log.to_result().best);
//! ```

pub mod cache;
pub mod cost_model;
pub mod generator;
pub mod job;
pub mod json;
pub mod log;
pub mod search;
pub mod session;
pub mod sketch;
pub mod space;
pub mod trace;
pub mod tuner;
pub mod verifier;

pub use cache::{
    append_entry, machine_fingerprint, sketch_structure_hash, CacheEntry, CacheError, CacheKey,
    ScheduleCache, SCHEDULE_CACHE_ENV,
};
pub use cost_model::{
    featurize, CostEstimator, CostModel, CostModelKind, COST_MODEL_ENV, NUM_FEATURES,
};
pub use generator::{SpaceGenerator, UpmemSketchGenerator};
pub use job::{MeasureJob, MeasureReport, EXEC_TIMING};
pub use json::{Json, JsonCodec, JsonError};
pub use log::{StreamingTuneLog, TuneLog, TuneLogError, TuneLogWriter, WarmStartMeasurer};
pub use session::{
    validate_options, Budget, NullObserver, StopReason, TuningError, TuningObserver, TuningSession,
};
pub use sketch::{
    generator_from_env, resolve_generator, HardwareNativeGenerator, TiledSketchGenerator,
    HW_NATIVE_SKETCH, RESIDENT_GENERATOR_IDS, SPACE_GENERATOR_ENV, TILED_SKETCH,
};
pub use space::ScheduleConfig;
#[allow(deprecated)]
pub use space::SearchSpace;
pub use trace::{Decision, Instruction, Trace};
pub use tuner::{
    tune, tune_batch, BatchMeasurer, CancelToken, Cancellation, MeasureOutcome, Measurer,
    SequentialMeasurer, TuningOptions, TuningRecord, TuningResult,
};
#[allow(deprecated)]
pub use verifier::verify;
pub use verifier::{verify_trace, VerifyError};
