//! Pluggable schedule-space generators: how sketch [`Trace`]s are emitted,
//! sampled, mutated and re-materialized.
//!
//! A [`SpaceGenerator`] owns one *sketch family*: given a workload and a
//! machine it emits traces whose `Sample*` instructions are the free
//! decision sites the evolutionary search explores.  The default
//! [`UpmemSketchGenerator`] reproduces ATiM's joint host/kernel sketch
//! (Fig. 6) — the exact schedules the pre-trace `ScheduleConfig::instantiate`
//! built, now recorded as replayable traces (an equivalence test pins this
//! for every paper workload).  Custom workload families plug in by
//! implementing the trait and handing it to
//! [`crate::session::TuningSession::with_generator`] (or
//! `SessionBuilder::space_generator` in `atim-core`).
//!
//! Materialization is the one non-obvious move: the *structural* part of a
//! trace (splits, binds, caching) is a deterministic function of its
//! decisions, so mutating a decision drops the structure and re-derives it
//! via [`SpaceGenerator::materialize`].  This is also how decisions-only
//! traces decoded from tuning logs come back to life.

use std::collections::HashMap;

use atim_sim::UpmemConfig;
use atim_tir::compute::ComputeDef;
use atim_tir::error::{Result, TirError};
use atim_tir::schedule::{Attach, Binding, LoopInfo, LoopRef, Schedule};
use rand::rngs::StdRng;
use rand::Rng;

use crate::space::{mutate_knobs, sample_knobs, ScheduleConfig};
use crate::trace::{Decision, Instruction, Trace, UPMEM_SKETCH};

/// Canonical decision-site names of the UPMEM sketch.
pub mod site {
    /// Prefix of the per-spatial-axis DPU-count sites (`spatial_dpus.0`,
    /// `spatial_dpus.1`, ...).
    pub const SPATIAL_DPUS_PREFIX: &str = "spatial_dpus.";
    /// DPUs assigned to the reduction axis (1 = no rfactor).
    pub const REDUCE_DPUS: &str = "reduce_dpus";
    /// Tasklets per DPU.
    pub const TASKLETS: &str = "tasklets";
    /// Elements per WRAM caching tile.
    pub const CACHE_ELEMS: &str = "cache_elems";
    /// Whether WRAM staging is generated at all.
    pub const USE_CACHE: &str = "use_cache";
    /// Whether the innermost loop is unrolled.
    pub const UNROLL: &str = "unroll";
    /// Host threads for post-processing.
    pub const HOST_THREADS: &str = "host_threads";
    /// Whether host transfers use the rank-parallel push path.
    pub const PARALLEL_TRANSFER: &str = "parallel_transfer";
}

/// Emits, samples and evolves sketch traces for one workload family.
///
/// Implementations must be `Send + Sync` so a session can be shared across
/// threads.  All methods are deterministic functions of their inputs (the
/// RNG included), which is what keeps tuning replayable and logs
/// warm-startable.
pub trait SpaceGenerator: Send + Sync {
    /// A short generator name (diagnostics; also a good sketch tag).
    fn name(&self) -> &str;

    /// The sketch traces of this family with default decisions — one per
    /// structurally distinct sketch (the UPMEM generator emits the
    /// non-`rfactor` and, when the workload reduces, the `rfactor` sketch).
    fn sketches(&self, def: &ComputeDef, hw: &UpmemConfig) -> Vec<Trace>;

    /// Samples a complete (materialized) trace, optionally forcing the
    /// `rfactor` design space.
    fn sample(
        &self,
        rng: &mut StdRng,
        def: &ComputeDef,
        hw: &UpmemConfig,
        with_rfactor: bool,
    ) -> Trace;

    /// Mutates one decision of a trace (the evolutionary search's mutation
    /// operator) and re-materializes it.
    fn mutate(&self, rng: &mut StdRng, def: &ComputeDef, hw: &UpmemConfig, base: &Trace) -> Trace;

    /// Re-derives the structural instructions of a decisions-only trace
    /// (e.g. one decoded from a [`crate::log::TuneLog`]).
    ///
    /// # Errors
    /// Fails when the decisions cannot instantiate a schedule for `def`.
    fn materialize(&self, trace: &Trace, def: &ComputeDef, hw: &UpmemConfig) -> Result<Trace>;

    /// Whether the workload has an `rfactor` design space at all.
    fn supports_rfactor(&self, def: &ComputeDef) -> bool {
        def.has_reduce()
    }

    /// Crosses over two parent traces: each decision site present in both
    /// parents is drawn from one of them uniformly, then the child is
    /// re-materialized.  Falls back to cloning `a` when the mix cannot
    /// materialize.
    fn crossover(
        &self,
        rng: &mut StdRng,
        def: &ComputeDef,
        hw: &UpmemConfig,
        a: &Trace,
        b: &Trace,
    ) -> Trace {
        let other: HashMap<String, Decision> =
            b.decisions().map(|(s, d)| (s.to_string(), d)).collect();
        let mixed: Vec<(String, Decision)> = a
            .decisions()
            .map(|(s, d)| {
                let pick = match other.get(s) {
                    Some(&bd) if rng.gen_bool(0.5) => bd,
                    _ => d,
                };
                (s.to_string(), pick)
            })
            .collect();
        let child = Trace::from_decisions(a.sketch().to_string(), mixed);
        self.materialize(&child, def, hw)
            .unwrap_or_else(|_| a.clone())
    }
}

/// The default generator: ATiM's UPMEM sketch (Fig. 6) as traces.
///
/// Sampling and mutation share the decision-distribution code of the
/// original `SearchSpace` bit-for-bit (same RNG consumption, same ranges),
/// so a fixed seed drives the identical search trajectory the pre-trace
/// tuner drove — pinned by `tests/trace_equivalence.rs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct UpmemSketchGenerator;

impl SpaceGenerator for UpmemSketchGenerator {
    fn name(&self) -> &str {
        UPMEM_SKETCH
    }

    fn sketches(&self, def: &ComputeDef, hw: &UpmemConfig) -> Vec<Trace> {
        let base = ScheduleConfig::default_for(def, hw);
        let mut out = vec![trace_of_config(&base, def)];
        if self.supports_rfactor(def) {
            let rfactor = ScheduleConfig {
                reduce_dpus: 2,
                ..base
            };
            out.push(trace_of_config(&rfactor, def));
        }
        out
    }

    fn sample(
        &self,
        rng: &mut StdRng,
        def: &ComputeDef,
        hw: &UpmemConfig,
        with_rfactor: bool,
    ) -> Trace {
        let cfg = sample_knobs(
            def,
            hw.total_dpus() as i64,
            hw.max_tasklets as i64,
            rng,
            with_rfactor,
        );
        trace_of_config(&cfg, def)
    }

    fn mutate(&self, rng: &mut StdRng, def: &ComputeDef, hw: &UpmemConfig, base: &Trace) -> Trace {
        let parent = match knobs_of(base) {
            Some(cfg) => cfg,
            // A foreign trace cannot be mutated within this sketch family;
            // fall back to a fresh sample from the matching design space.
            None => return self.sample(rng, def, hw, base.uses_rfactor()),
        };
        let child = mutate_knobs(
            def,
            hw.total_dpus() as i64,
            hw.max_tasklets as i64,
            rng,
            &parent,
        );
        trace_of_config(&child, def)
    }

    fn materialize(&self, trace: &Trace, def: &ComputeDef, _hw: &UpmemConfig) -> Result<Trace> {
        materialize_upmem(trace, def)
    }
}

/// Extracts the UPMEM knob vector from a trace's decisions (the raw,
/// unclamped values, exactly as sampled).  `None` when the trace lacks the
/// UPMEM decision sites (a custom-generator trace).
pub fn knobs_of(trace: &Trace) -> Option<ScheduleConfig> {
    let mut spatial_dpus = Vec::new();
    for (s, d) in trace.decisions() {
        if let Some(idx) = s.strip_prefix(site::SPATIAL_DPUS_PREFIX) {
            if idx.parse::<usize>().ok()? != spatial_dpus.len() {
                return None;
            }
            spatial_dpus.push(d.as_int()?);
        }
    }
    Some(ScheduleConfig {
        spatial_dpus,
        reduce_dpus: trace.int_decision(site::REDUCE_DPUS)?,
        tasklets: trace.int_decision(site::TASKLETS)?,
        cache_elems: trace.int_decision(site::CACHE_ELEMS)?,
        use_cache: trace.bool_decision(site::USE_CACHE)?,
        unroll: trace.bool_decision(site::UNROLL)?,
        host_threads: usize::try_from(trace.int_decision(site::HOST_THREADS)?).ok()?,
        parallel_transfer: trace.bool_decision(site::PARALLEL_TRANSFER)?,
    })
}

/// The decisions-only UPMEM trace of a knob vector — the context-free
/// `ScheduleConfig → Trace` shim v1 tuning logs load through.
pub fn decision_trace_of(config: &ScheduleConfig) -> Trace {
    let mut decisions: Vec<(String, Decision)> = Vec::with_capacity(config.spatial_dpus.len() + 7);
    for (j, &d) in config.spatial_dpus.iter().enumerate() {
        decisions.push((
            format!("{}{j}", site::SPATIAL_DPUS_PREFIX),
            Decision::Int(d),
        ));
    }
    decisions.push((site::REDUCE_DPUS.into(), Decision::Int(config.reduce_dpus)));
    decisions.push((site::TASKLETS.into(), Decision::Int(config.tasklets)));
    decisions.push((site::CACHE_ELEMS.into(), Decision::Int(config.cache_elems)));
    decisions.push((site::USE_CACHE.into(), Decision::Bool(config.use_cache)));
    decisions.push((site::UNROLL.into(), Decision::Bool(config.unroll)));
    decisions.push((
        site::HOST_THREADS.into(),
        Decision::Int(config.host_threads as i64),
    ));
    decisions.push((
        site::PARALLEL_TRANSFER.into(),
        Decision::Bool(config.parallel_transfer),
    ));
    Trace::from_decisions(UPMEM_SKETCH, decisions)
}

/// The fully materialized UPMEM trace of a knob vector.  When the sketch
/// cannot instantiate for `def` (impossible factors), the decisions-only
/// trace is returned instead — the verifier will reject it, exactly as it
/// rejected un-instantiable `ScheduleConfig`s.
pub fn trace_of_config(config: &ScheduleConfig, def: &ComputeDef) -> Trace {
    record_sketch(config, def).unwrap_or_else(|_| decision_trace_of(config))
}

/// Materializes a decisions-only UPMEM trace for a workload.
///
/// # Errors
/// Fails when the trace lacks the UPMEM decision sites or the sketch cannot
/// instantiate for `def`.
pub fn materialize_upmem(trace: &Trace, def: &ComputeDef) -> Result<Trace> {
    let knobs = knobs_of(trace).ok_or_else(|| {
        TirError::InvalidSchedule(
            "trace lacks the UPMEM sketch decision sites; it belongs to a custom generator".into(),
        )
    })?;
    record_sketch(&knobs, def)
}

/// A [`Schedule`] wrapper that mirrors every applied primitive as a trace
/// [`Instruction`], mapping [`LoopRef`]s to virtual registers.  Shared by
/// [`record_sketch`] and the rule engine in [`crate::sketch`].
pub(crate) struct SketchRecorder {
    pub(crate) sch: Schedule,
    pub(crate) insts: Vec<Instruction>,
    pub(crate) regs: usize,
    reg_of: HashMap<LoopRef, usize>,
}

impl SketchRecorder {
    pub(crate) fn new(def: &ComputeDef) -> Self {
        SketchRecorder {
            sch: Schedule::new(def.clone()),
            insts: Vec::new(),
            regs: 0,
            reg_of: HashMap::new(),
        }
    }

    pub(crate) fn alloc(&mut self, l: LoopRef) -> usize {
        let r = self.regs;
        self.regs += 1;
        self.reg_of.insert(l, r);
        r
    }

    pub(crate) fn reg(&self, l: LoopRef) -> Result<usize> {
        self.reg_of.get(&l).copied().ok_or_else(|| {
            TirError::InvalidSchedule("sketch recorder referenced an untracked loop".into())
        })
    }

    pub(crate) fn get_loop(&mut self, axis: usize) -> Result<LoopRef> {
        let l = self
            .sch
            .loops_of_axis(axis)
            .first()
            .copied()
            .ok_or_else(|| TirError::InvalidSchedule(format!("no loop iterates axis {axis}")))?;
        let dst = self.alloc(l);
        self.insts.push(Instruction::GetLoop { axis, dst });
        Ok(l)
    }

    pub(crate) fn split(&mut self, l: LoopRef, factor: i64) -> Result<(LoopRef, LoopRef)> {
        let lv = self.reg(l)?;
        let (o, i) = self.sch.split(l, factor)?;
        let outer = self.alloc(o);
        let inner = self.alloc(i);
        self.insts.push(Instruction::Split {
            lv,
            factor,
            outer,
            inner,
        });
        Ok((o, i))
    }

    pub(crate) fn bind(&mut self, l: LoopRef, binding: Binding) -> Result<()> {
        let lv = self.reg(l)?;
        self.sch.bind(l, binding)?;
        self.insts.push(Instruction::Bind { lv, binding });
        Ok(())
    }

    pub(crate) fn rfactor(&mut self, l: LoopRef) -> Result<()> {
        let lv = self.reg(l)?;
        self.sch.rfactor(l)?;
        self.insts.push(Instruction::Rfactor { lv });
        Ok(())
    }

    pub(crate) fn reorder(&mut self, order: &[LoopRef]) -> Result<()> {
        let regs: Vec<usize> = order
            .iter()
            .map(|&l| self.reg(l))
            .collect::<Result<Vec<_>>>()?;
        self.sch.reorder(order)?;
        self.insts.push(Instruction::Reorder { order: regs });
        Ok(())
    }

    pub(crate) fn cache_read(&mut self, input: usize, at: LoopRef) -> Result<()> {
        let reg = self.reg(at)?;
        self.sch.cache_read(input, Attach::At(at))?;
        self.insts.push(Instruction::CacheRead { input, at: reg });
        Ok(())
    }

    pub(crate) fn cache_write(&mut self, at: LoopRef) -> Result<()> {
        let reg = self.reg(at)?;
        self.sch.cache_write(Attach::At(at))?;
        self.insts.push(Instruction::CacheWrite { at: reg });
        Ok(())
    }

    pub(crate) fn unroll(&mut self, l: LoopRef) -> Result<()> {
        let lv = self.reg(l)?;
        self.sch.unroll(l)?;
        self.insts.push(Instruction::Unroll { lv });
        Ok(())
    }

    pub(crate) fn parallel_host(&mut self, threads: usize) {
        self.sch.parallel_host(threads);
        self.insts.push(Instruction::ParallelHost { threads });
    }

    pub(crate) fn set_parallel_transfer(&mut self, enabled: bool) {
        self.sch.set_parallel_transfer(enabled);
        self.insts.push(Instruction::ParallelTransfer { enabled });
    }

    pub(crate) fn loop_info(&self, l: LoopRef) -> Result<&LoopInfo> {
        self.sch.loop_info(l)
    }
}

pub(crate) fn div_ceil(a: i64, b: i64) -> i64 {
    (a + b - 1) / b
}

/// Records ATiM's UPMEM sketch for one knob vector as a trace — a faithful
/// port of the original `ScheduleConfig::instantiate` (whose body is kept,
/// deprecated, as the reference implementation the equivalence tests pin
/// this against): DPU distribution, optional hierarchical reduction,
/// tasklet binding, WRAM caching and post-processing parallelism.
///
/// # Errors
/// Fails when a primitive application fails (e.g. impossible factors); such
/// decision vectors are discarded by the verifier, as before.
pub fn record_sketch(config: &ScheduleConfig, def: &ComputeDef) -> Result<Trace> {
    let mut rec = SketchRecorder::new(def);
    // The decision list leads the trace, in canonical site order.
    rec.insts = decision_trace_of(config).insts().to_vec();

    let spatial_axes = def.spatial_axes();
    let reduce_axes = def.reduce_axes();

    let mut grid_loops = Vec::new();
    let mut spatial_inner = Vec::new();

    // Host-to-DPU data distribution over the spatial axes.
    for (j, &axis) in spatial_axes.iter().enumerate() {
        let dpus = config
            .spatial_dpus
            .get(j)
            .copied()
            .unwrap_or(1)
            .clamp(1, def.axes[axis].extent);
        let l = rec.get_loop(axis)?;
        if dpus > 1 {
            let inner_extent = div_ceil(def.axes[axis].extent, dpus);
            let (dpu, inner) = rec.split(l, inner_extent)?;
            rec.bind(dpu, Binding::DpuX)?;
            grid_loops.push(dpu);
            spatial_inner.push((axis, inner));
        } else {
            spatial_inner.push((axis, l));
        }
    }

    // Reduction strategy: hierarchical reduction across DPUs.
    let mut reduce_inner = None;
    if let Some(&raxis) = reduce_axes.first() {
        let l = rec.get_loop(raxis)?;
        if config.reduce_dpus > 1 {
            let dpus = config.reduce_dpus.clamp(2, def.axes[raxis].extent);
            let inner_extent = div_ceil(def.axes[raxis].extent, dpus);
            let (r_dpu, r_in) = rec.split(l, inner_extent)?;
            rec.rfactor(r_dpu)?;
            rec.bind(r_dpu, Binding::DpuY)?;
            grid_loops.push(r_dpu);
            reduce_inner = Some((raxis, r_in));
        } else {
            reduce_inner = Some((raxis, l));
        }
    }

    // Multi-level tiling: tasklets over the spatial axis with the most
    // per-DPU work (falling back to the reduction axis for pure reductions).
    let mut tasklet_loop = None;
    if config.tasklets > 1 {
        let candidate = spatial_inner
            .iter()
            .enumerate()
            .max_by_key(|(_, (_, l))| rec.loop_info(*l).map(|i| i.extent).unwrap_or(0));
        if let Some((slot, &(axis, l))) = candidate {
            let extent = rec.loop_info(l)?.extent;
            if extent > 1 {
                let per_tasklet = div_ceil(extent, config.tasklets.min(extent));
                let (t, rest) = rec.split(l, per_tasklet)?;
                rec.bind(t, Binding::Tasklet)?;
                tasklet_loop = Some(t);
                spatial_inner[slot] = (axis, rest);
            }
        } else if let Some((_, l)) = reduce_inner {
            let extent = rec.loop_info(l)?.extent;
            if extent > 1 {
                let per_tasklet = div_ceil(extent, config.tasklets.min(extent));
                let (t, rest) = rec.split(l, per_tasklet)?;
                rec.bind(t, Binding::Tasklet)?;
                tasklet_loop = Some(t);
                reduce_inner = Some((reduce_inner.expect("checked").0, rest));
            }
        }
    }

    // Intra-DPU caching: split the innermost data loop by the caching tile
    // size so the cache chunk loop exists, then attach the caching tiles
    // there.
    let cache_axis_loop = match reduce_inner {
        Some((_, l)) => Some(l),
        None => spatial_inner.last().map(|&(_, l)| l),
    };
    let mut cache_attach = None;
    let mut innermost = None;
    // When the cache split consumes a spatial inner loop, remember the
    // original reference so the reorder below does not mention it.
    let mut consumed = None;
    if let Some(l) = cache_axis_loop {
        let extent = rec.loop_info(l)?.extent;
        let tile = config.cache_elems.clamp(1, extent.max(1));
        if tile < extent {
            let (outer, inner) = rec.split(l, tile)?;
            cache_attach = Some(outer);
            innermost = Some(inner);
            consumed = Some(l);
        } else {
            cache_attach = Some(l);
            innermost = Some(l);
        }
    }

    // Loop order: grid loops, tasklet loop, spatial inner loops, then the
    // cache chunk loop and the innermost loop.
    let mut order = Vec::new();
    order.extend(grid_loops.iter().copied());
    if let Some(t) = tasklet_loop {
        order.push(t);
    }
    for &(_, l) in &spatial_inner {
        if Some(l) != cache_attach && Some(l) != innermost && Some(l) != consumed {
            order.push(l);
        }
    }
    if let Some(c) = cache_attach {
        if !order.contains(&c) {
            order.push(c);
        }
    }
    if let Some(i) = innermost {
        if !order.contains(&i) {
            order.push(i);
        }
    }
    rec.reorder(&order)?;

    // Caching directives.
    if config.use_cache {
        if let Some(attach) = cache_attach {
            for input in 0..def.inputs.len() {
                rec.cache_read(input, attach)?;
            }
            // The output accumulator must enclose every reduction loop, so
            // attach it at the innermost loop that is still outside the
            // reduction: the last spatial inner loop if one exists.
            if def.has_reduce() {
                if let Some(&(_, spatial_attach)) = spatial_inner.last() {
                    if rec.sch.loops().iter().any(|li| li.id == spatial_attach.0) {
                        rec.cache_write(spatial_attach)?;
                    }
                }
            } else {
                rec.cache_write(attach)?;
            }
        }
    }

    // Unrolling of the innermost loop.
    if config.unroll {
        if let Some(inner) = innermost {
            if cache_attach != Some(inner) {
                rec.unroll(inner)?;
            }
        }
    }

    rec.parallel_host(config.host_threads);
    rec.set_parallel_transfer(config.parallel_transfer);
    Ok(Trace::new(UPMEM_SKETCH, rec.insts, rec.regs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn hw() -> UpmemConfig {
        UpmemConfig::default()
    }

    fn paper_workloads() -> Vec<ComputeDef> {
        vec![
            ComputeDef::va("va", 100),
            ComputeDef::red("red", 90),
            ComputeDef::mtv("mtv", 33, 47),
            ComputeDef::mmtv("mmtv", 4, 10, 24),
            ComputeDef::ttv("ttv", 3, 14, 20),
            ComputeDef::geva("geva", 77, 1.5, -0.5),
            ComputeDef::gemv("gemv", 29, 31, 2.0),
        ]
    }

    #[test]
    fn knobs_round_trip_through_decisions() {
        let cfg = ScheduleConfig {
            spatial_dpus: vec![8, 4],
            reduce_dpus: 16,
            tasklets: 12,
            cache_elems: 64,
            use_cache: true,
            unroll: false,
            host_threads: 8,
            parallel_transfer: true,
        };
        let trace = decision_trace_of(&cfg);
        assert_eq!(knobs_of(&trace), Some(cfg));
    }

    #[test]
    fn sampled_traces_are_materialized_and_apply() {
        let gen = UpmemSketchGenerator;
        let mut rng = StdRng::seed_from_u64(5);
        for def in paper_workloads() {
            for trial in 0..8 {
                let trace = gen.sample(&mut rng, &def, &hw(), trial % 2 == 0);
                if trace.is_materialized() {
                    // A materialized sample always applies cleanly (the
                    // recorder already applied the same primitives once).
                    trace.apply(&def).unwrap();
                }
                // Knobs are always recoverable from the decisions.
                assert!(knobs_of(&trace).is_some());
            }
        }
    }

    #[test]
    fn sketches_cover_both_design_spaces() {
        let gen = UpmemSketchGenerator;
        let mtv = ComputeDef::mtv("mtv", 512, 512);
        let sketches = gen.sketches(&mtv, &hw());
        assert_eq!(sketches.len(), 2);
        assert!(!sketches[0].uses_rfactor());
        assert!(sketches[1].uses_rfactor());
        let va = ComputeDef::va("va", 512);
        assert_eq!(gen.sketches(&va, &hw()).len(), 1);
    }

    #[test]
    fn mutation_changes_a_decision_eventually() {
        let gen = UpmemSketchGenerator;
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let mut rng = StdRng::seed_from_u64(11);
        let base = gen.sample(&mut rng, &def, &hw(), true);
        let mut changed = false;
        for _ in 0..20 {
            if gen.mutate(&mut rng, &def, &hw(), &base) != base {
                changed = true;
                break;
            }
        }
        assert!(changed);
    }

    #[test]
    fn crossover_mixes_parent_decisions() {
        let gen = UpmemSketchGenerator;
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let mut rng = StdRng::seed_from_u64(17);
        let a = gen.sample(&mut rng, &def, &hw(), true);
        let b = gen.sample(&mut rng, &def, &hw(), false);
        let child = gen.crossover(&mut rng, &def, &hw(), &a, &b);
        for (site, d) in child.decisions() {
            let from_a = a.decisions().any(|(s, pd)| s == site && pd == d);
            let from_b = b.decisions().any(|(s, pd)| s == site && pd == d);
            assert!(from_a || from_b, "decision {site}={d} from neither parent");
        }
        assert!(child.is_materialized());
    }

    #[test]
    fn materialize_rejects_foreign_traces() {
        let t = Trace::from_decisions("other", vec![("x", Decision::Int(1))]);
        let def = ComputeDef::va("va", 64);
        assert!(materialize_upmem(&t, &def).is_err());
    }
}
