//! The serializable measurement contract: [`MeasureJob`] / [`MeasureReport`].
//!
//! "Measure a batch of candidates" used to be an in-process method call;
//! this module turns each candidate into a routable *job* so the same
//! request can be answered by an in-process backend, a worker process on
//! the same machine, or (eventually) a remote PIM box — the distributed
//! measurement design of TVM's RPC tracker, specialized to ATiM's
//! trace-based search space.
//!
//! A job carries everything a worker with no shared memory needs to
//! reproduce the measurement bit-for-bit:
//!
//! * the **workload identity** — canonical op name plus shape extents,
//!   exactly the coordinates a [`crate::CacheKey`] uses, so the worker can
//!   re-derive the [`ComputeDef`](atim_tir::compute::ComputeDef);
//! * the **generator id** — whose [`SpaceGenerator`](crate::SpaceGenerator)
//!   re-materializes the trace's structural instructions from its decision
//!   list (the same replay path a schedule-cache hit takes);
//! * the **seed** and **exec mode** — provenance for logs and the guard
//!   against routing a functional-execution request to a timing-only
//!   worker;
//! * the **trace** itself, serialized as its decision list.
//!
//! The matching [`MeasureReport`] carries the job id back with a
//! [`MeasureOutcome`], preserving the tuner's three-way signal
//! (measured / failed / skipped-by-cancellation) across the wire.

use crate::json::{encode_f64, Json, JsonCodec, JsonError};
use crate::trace::Trace;
use crate::tuner::MeasureOutcome;

/// The exec-mode tag for timing-only measurement (the autotuner's mode:
/// latency without tensor data).
pub const EXEC_TIMING: &str = "timing";

/// One routable measurement request: a candidate trace plus the context a
/// shared-nothing worker needs to measure it identically to the local
/// backend.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureJob {
    /// Caller-chosen id, echoed by the matching [`MeasureReport`].  Batch
    /// dispatchers use the candidate's slot index.
    pub id: u64,
    /// Canonical workload name (`"mtv"`, `"gemv"`, ...): the
    /// [`crate::CacheKey::workload`] coordinate.
    pub workload: String,
    /// Shape extents in axis order: the [`crate::CacheKey::shape`]
    /// coordinate.
    pub shape: Vec<i64>,
    /// Id of the space generator that materializes the trace's structure
    /// from its decisions (the [`crate::CacheKey::generator`] coordinate).
    pub generator: String,
    /// Seed of the search that proposed this candidate (provenance).
    pub seed: u64,
    /// Execution mode; currently always [`EXEC_TIMING`].
    pub exec: String,
    /// Retry metadata: how many workers this job has already been
    /// dispatched to and lost (0 for a first dispatch).  A fleet stamps
    /// this on every requeue so workers and logs can tell a retry from a
    /// fresh job, and quarantine decisions survive the wire.
    pub attempt: u32,
    /// The candidate: serialized as sketch + decision list, like every
    /// persisted trace.
    pub trace: Trace,
}

impl MeasureJob {
    /// A timing-only job for one candidate of `def`, deriving the workload
    /// and shape coordinates exactly as [`crate::CacheKey::new`] does —
    /// the two identities must agree so a fleet and the schedule cache
    /// describe the same measurement.
    pub fn timing_for_def(
        id: u64,
        def: &atim_tir::compute::ComputeDef,
        generator: impl Into<String>,
        seed: u64,
        trace: Trace,
    ) -> Self {
        MeasureJob::timing(
            id,
            def.name.clone(),
            def.axes.iter().map(|a| a.extent).collect(),
            generator,
            seed,
            trace,
        )
    }

    /// A timing-only job for one candidate of a batch.
    pub fn timing(
        id: u64,
        workload: impl Into<String>,
        shape: Vec<i64>,
        generator: impl Into<String>,
        seed: u64,
        trace: Trace,
    ) -> Self {
        MeasureJob {
            id,
            workload: workload.into(),
            shape,
            generator: generator.into(),
            seed,
            exec: EXEC_TIMING.into(),
            attempt: 0,
            trace,
        }
    }
}

impl JsonCodec for MeasureJob {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".into(), Json::Int(self.id as i64)),
            ("workload".into(), Json::Str(self.workload.clone())),
            (
                "shape".into(),
                Json::Arr(self.shape.iter().map(|&e| Json::Int(e)).collect()),
            ),
            ("generator".into(), Json::Str(self.generator.clone())),
            // u64 seeds can exceed exact-f64 range; travel as decimal text
            // (the same convention as TuneLog and the schedule cache).
            ("seed".into(), Json::Str(self.seed.to_string())),
            ("exec".into(), Json::Str(self.exec.clone())),
            ("attempt".into(), Json::Int(self.attempt as i64)),
            ("trace".into(), self.trace.to_json()),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let shape = json
            .get("shape")?
            .as_arr()?
            .iter()
            .map(Json::as_i64)
            .collect::<Result<Vec<i64>, JsonError>>()?;
        let seed_text = json.get("seed")?.as_str()?;
        let seed = seed_text
            .parse::<u64>()
            .map_err(|_| JsonError::new(format!("seed {seed_text:?} is not a u64")))?;
        Ok(MeasureJob {
            id: json.get("id")?.as_i64()? as u64,
            workload: json.get("workload")?.as_str()?.to_string(),
            shape,
            generator: json.get("generator")?.as_str()?.to_string(),
            seed,
            exec: json.get("exec")?.as_str()?.to_string(),
            // Tolerant decode: frames from pre-retry-metadata senders
            // simply carry attempt 0.
            attempt: json
                .get("attempt")
                .and_then(|a| a.as_i64())
                .unwrap_or(0)
                .max(0) as u32,
            trace: Trace::from_json(json.get("trace")?)?,
        })
    }
}

/// The answer to one [`MeasureJob`], echoing its id.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureReport {
    /// The id of the job this report answers.
    pub id: u64,
    /// The measurement outcome, with the latency bits preserved exactly.
    pub outcome: MeasureOutcome,
}

impl MeasureReport {
    /// A report answering job `id` with `outcome`.
    pub fn new(id: u64, outcome: MeasureOutcome) -> Self {
        MeasureReport { id, outcome }
    }
}

impl JsonCodec for MeasureReport {
    fn to_json(&self) -> Json {
        let mut fields = vec![("id".into(), Json::Int(self.id as i64))];
        match self.outcome {
            MeasureOutcome::Measured(latency_s) => {
                fields.push(("status".into(), Json::Str("measured".into())));
                fields.push(("latency_s".into(), encode_f64(latency_s)));
            }
            MeasureOutcome::Failed => {
                fields.push(("status".into(), Json::Str("failed".into())));
            }
            MeasureOutcome::Skipped => {
                fields.push(("status".into(), Json::Str("skipped".into())));
            }
        }
        Json::Obj(fields)
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let id = json.get("id")?.as_i64()? as u64;
        let status = json.get("status")?.as_str()?;
        let outcome = match status {
            "measured" => MeasureOutcome::Measured(json.get("latency_s")?.as_f64()?),
            "failed" => MeasureOutcome::Failed,
            "skipped" => MeasureOutcome::Skipped,
            other => {
                return Err(JsonError::new(format!(
                    "unknown measurement status {other:?} \
                     (expected measured/failed/skipped)"
                )))
            }
        };
        Ok(MeasureReport { id, outcome })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Decision;

    fn job() -> MeasureJob {
        MeasureJob::timing(
            7,
            "mtv",
            vec![96, 64],
            "upmem",
            0xDEAD_BEEF_DEAD_BEEF,
            Trace::from_decisions(
                "upmem_sketch",
                vec![
                    ("spatial_dpus_0".to_string(), Decision::Int(64)),
                    ("use_rfactor".to_string(), Decision::Bool(true)),
                ],
            ),
        )
    }

    #[test]
    fn jobs_round_trip_including_large_seeds() {
        let original = job();
        let text = original.to_json().to_string();
        let decoded = MeasureJob::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(decoded, original);
        assert_eq!(decoded.exec, EXEC_TIMING);
    }

    #[test]
    fn retry_metadata_round_trips_and_defaults_to_zero() {
        let mut retried = job();
        retried.attempt = 2;
        let text = retried.to_json().to_string();
        let decoded = MeasureJob::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(decoded.attempt, 2);
        assert_eq!(decoded, retried);

        // A frame without the field (pre-retry-metadata sender) decodes
        // as a first dispatch.
        let legacy = match job().to_json() {
            Json::Obj(fields) => {
                Json::Obj(fields.into_iter().filter(|(k, _)| k != "attempt").collect())
            }
            other => panic!("jobs serialize as objects, got {other:?}"),
        };
        let decoded = MeasureJob::from_json(&legacy).unwrap();
        assert_eq!(decoded.attempt, 0);
        assert_eq!(decoded, job());
    }

    #[test]
    fn reports_round_trip_with_exact_latency_bits() {
        for outcome in [
            MeasureOutcome::Measured(3.141592653589793e-4),
            MeasureOutcome::Measured(f64::MIN_POSITIVE),
            MeasureOutcome::Failed,
            MeasureOutcome::Skipped,
        ] {
            let report = MeasureReport::new(42, outcome);
            let text = report.to_json().to_string();
            let decoded = MeasureReport::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(decoded, report);
            if let (MeasureOutcome::Measured(a), MeasureOutcome::Measured(b)) =
                (report.outcome, decoded.outcome)
            {
                assert_eq!(a.to_bits(), b.to_bits(), "latency bits must survive");
            }
        }
    }

    #[test]
    fn corrupt_reports_are_rejected_with_a_reason() {
        let bad = Json::parse(r#"{"id": 1, "status": "exploded"}"#).unwrap();
        let err = MeasureReport::from_json(&bad).unwrap_err();
        assert!(err.to_string().contains("exploded"));
    }
}
