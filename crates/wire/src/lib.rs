//! # atim-wire — length-prefixed JSON frames over a byte stream
//!
//! The one wire format every ATiM process speaks: a 4-byte big-endian
//! length followed by exactly that many bytes of UTF-8 JSON (the same
//! dependency-free [`Json`] layer the tune logs and the schedule cache
//! use).  The format is deliberately dumb: no multiplexing, no
//! compression, no negotiation — a connection carries a short sequence of
//! request frames one way and response frames the other.
//!
//! Two transports share this crate:
//!
//! * the `atim-serve` tuning daemon (one request frame up, a short stream
//!   of response frames down), and
//! * the `atim-core` measurement fleet (a long-lived per-worker
//!   connection carrying one `MeasureJob` frame per candidate).
//!
//! Error taxonomy mirrors the truncated-`TuneLog` tolerance contract: a
//! clean EOF *between* frames is [`WireError::Closed`] (the peer hung up,
//! normal), an EOF *inside* a frame is [`WireError::Truncated`] (the peer
//! died mid-write, abnormal), a socket read/write deadline expiring is
//! [`WireError::TimedOut`] (the peer is hung, not dead), and all are
//! distinct from malformed JSON ([`WireError::Parse`]).  The fleet treats
//! `Closed`/`Truncated`/`TimedOut` uniformly as a dead worker and
//! re-queues the in-flight job; the serve client surfaces them as typed
//! errors instead of blocking forever.

use std::fmt;
use std::io::{self, Read, Write};

use atim_autotune::{Json, JsonError};

/// Upper bound on a single frame's payload, in bytes.  Tuning requests,
/// measurement jobs and results are tiny; anything near this bound is a
/// corrupt or hostile length prefix, rejected before allocation.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Errors reading or writing frames.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The stream ended in the middle of a frame (header or payload).
    Truncated,
    /// A socket read/write deadline expired mid-operation (set one with
    /// [`std::net::TcpStream::set_read_timeout`] /
    /// [`std::net::TcpStream::set_write_timeout`]).
    TimedOut,
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    TooLarge(usize),
    /// The payload is not valid UTF-8 JSON.
    Parse(JsonError),
    /// An underlying I/O failure other than EOF or a timeout.
    Io(io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Truncated => write!(f, "stream ended mid-frame"),
            WireError::TimedOut => write!(f, "socket deadline expired mid-frame"),
            WireError::TooLarge(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            WireError::Parse(e) => write!(f, "frame payload is not valid JSON: {e}"),
            WireError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        if is_timeout(&e) {
            WireError::TimedOut
        } else {
            WireError::Io(e)
        }
    }
}

impl From<JsonError> for WireError {
    fn from(e: JsonError) -> Self {
        WireError::Parse(e)
    }
}

/// Whether an I/O error is a socket-timeout expiry.  Unix reports an
/// expired `SO_RCVTIMEO`/`SO_SNDTIMEO` as `WouldBlock`, Windows as
/// `TimedOut`; both mean the same thing here.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Encodes one frame: 4-byte big-endian payload length, then the payload.
pub fn encode_frame(json: &Json) -> Vec<u8> {
    let payload = json.to_string();
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload.as_bytes());
    out
}

/// Decodes one frame from the front of `bytes`, returning the value and
/// the number of bytes consumed.
///
/// # Errors
/// [`WireError::Truncated`] when `bytes` holds less than one whole frame
/// (including the empty buffer), [`WireError::TooLarge`] /
/// [`WireError::Parse`] for corrupt prefixes or payloads.
pub fn decode_frame(bytes: &[u8]) -> Result<(Json, usize), WireError> {
    if bytes.len() < 4 {
        return Err(WireError::Truncated);
    }
    let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::TooLarge(len));
    }
    if bytes.len() < 4 + len {
        return Err(WireError::Truncated);
    }
    let payload = std::str::from_utf8(&bytes[4..4 + len]).map_err(|_| {
        WireError::Parse(JsonError {
            message: "frame payload is not UTF-8".into(),
            offset: None,
        })
    })?;
    Ok((Json::parse(payload)?, 4 + len))
}

/// Reads exactly `buf.len()` bytes; distinguishes EOF-at-a-frame-boundary
/// (`start` true) from EOF mid-frame, and an expired socket deadline from
/// other I/O failures.
fn read_exact_or(r: &mut impl Read, buf: &mut [u8], start: bool) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if start && filled == 0 {
                    WireError::Closed
                } else {
                    WireError::Truncated
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => return Err(WireError::TimedOut),
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one frame.
///
/// # Errors
/// [`WireError::Closed`] on a clean EOF before any header byte,
/// [`WireError::Truncated`] on EOF inside the frame,
/// [`WireError::TimedOut`] when the stream's read deadline expires, and
/// the corrupt-frame variants of [`decode_frame`].
pub fn read_frame(r: &mut impl Read) -> Result<Json, WireError> {
    let mut header = [0u8; 4];
    read_exact_or(r, &mut header, true)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    read_exact_or(r, &mut payload, false)?;
    let text = String::from_utf8(payload).map_err(|_| {
        WireError::Parse(JsonError {
            message: "frame payload is not UTF-8".into(),
            offset: None,
        })
    })?;
    Ok(Json::parse(&text)?)
}

/// Writes one frame and flushes.
///
/// # Errors
/// Propagates I/O failures; an expired write deadline surfaces as
/// [`WireError::TimedOut`].
pub fn write_frame(w: &mut impl Write, json: &Json) -> Result<(), WireError> {
    w.write_all(&encode_frame(json))?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj() -> Json {
        Json::Obj(vec![
            ("type".into(), Json::Str("tune".into())),
            ("shape".into(), Json::Arr(vec![Json::Int(64), Json::Int(8)])),
        ])
    }

    #[test]
    fn frames_round_trip_through_byte_buffers_and_streams() {
        let bytes = encode_frame(&obj());
        let (decoded, used) = decode_frame(&bytes).unwrap();
        assert_eq!(decoded, obj());
        assert_eq!(used, bytes.len());

        let mut cursor = io::Cursor::new(&bytes);
        assert_eq!(read_frame(&mut cursor).unwrap(), obj());
        // The stream is exhausted: the next read is a clean close.
        assert!(matches!(read_frame(&mut cursor), Err(WireError::Closed)));
    }

    #[test]
    fn every_truncation_point_is_detected_not_misparsed() {
        let bytes = encode_frame(&obj());
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(WireError::Truncated) => {}
                other => panic!("cut at {cut}: {other:?}"),
            }
            let mut cursor = io::Cursor::new(&bytes[..cut]);
            match read_frame(&mut cursor) {
                Err(WireError::Closed) if cut == 0 => {}
                Err(WireError::Truncated) if cut > 0 => {}
                other => panic!("stream cut at {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn hostile_length_prefixes_are_rejected_before_allocation() {
        let mut bytes = vec![0xFF, 0xFF, 0xFF, 0xFF];
        bytes.extend_from_slice(b"{}");
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::TooLarge(0xFFFF_FFFF))
        ));
        let mut cursor = io::Cursor::new(&bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::TooLarge(0xFFFF_FFFF))
        ));
    }

    #[test]
    fn garbage_payloads_are_parse_errors() {
        let mut bytes = 3u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"{{{");
        assert!(matches!(decode_frame(&bytes), Err(WireError::Parse(_))));
        let mut invalid = 1u32.to_be_bytes().to_vec();
        invalid.push(0xFF); // not UTF-8
        assert!(matches!(decode_frame(&invalid), Err(WireError::Parse(_))));
    }

    #[test]
    fn an_expired_read_deadline_is_a_timeout_not_an_io_error() {
        use std::net::{TcpListener, TcpStream};
        use std::time::Duration;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();
        // Keep the peer alive but silent: the accept side never writes.
        let (_peer, _) = listener.accept().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(30)))
            .unwrap();
        assert!(matches!(read_frame(&mut stream), Err(WireError::TimedOut)));
    }
}
