//! Property tests of the fleet's measurement frames: an arbitrary
//! [`MeasureJob`] / [`MeasureReport`] survives the frame layer exactly
//! (ids, seeds and latency *bits* included), and damaged frames surface as
//! typed [`WireError`]s rather than bogus jobs.

use atim_autotune::trace::Decision;
use atim_autotune::{
    Json, JsonCodec, MeasureJob, MeasureOutcome, MeasureReport, Trace, EXEC_TIMING,
};
use atim_wire::{decode_frame, encode_frame, read_frame, WireError};
use proptest::prelude::*;

/// An arbitrary-but-plausible job built from raw case inputs: mixed
/// int/bool decision lists, multi-axis shapes, extreme seeds.
fn job_from(bits: u64, seed: u64, decisions: usize) -> MeasureJob {
    let workloads = ["va", "red", "mtv", "ttv", "mmtv", "geva", "gemv"];
    let workload = workloads[(bits % workloads.len() as u64) as usize];
    let rank = 1 + (bits / 7 % 3) as usize;
    let shape: Vec<i64> = (0..rank)
        .map(|i| 1 + ((bits >> (11 * i)) % 8192) as i64)
        .collect();
    let trace = Trace::from_decisions(
        "upmem_sketch",
        (0..decisions).map(|i| {
            let site = format!("site_{i}");
            let raw = bits.rotate_left(7 * i as u32);
            if raw & 1 == 0 {
                (site, Decision::Int((raw as i64).wrapping_mul(0x9E37_79B9)))
            } else {
                (site, Decision::Bool(raw & 2 != 0))
            }
        }),
    );
    MeasureJob::timing(bits.rotate_right(17), workload, shape, "upmem", seed, trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn measure_jobs_survive_the_frame_layer_exactly(
        bits in 0u64..u64::MAX,
        seed in 0u64..u64::MAX,
        decisions in 0usize..12,
        attempt in 0u32..16,
    ) {
        let mut job = job_from(bits, seed, decisions);
        job.attempt = attempt; // requeue metadata survives the wire too
        let bytes = encode_frame(&job.to_json());
        let (json, used) = decode_frame(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        let decoded = MeasureJob::from_json(&json).unwrap();
        prop_assert_eq!(decoded.attempt, attempt);
        prop_assert_eq!(&decoded, &job);
        prop_assert_eq!(decoded.seed, seed, "u64 seeds travel as decimal text");
        prop_assert_eq!(decoded.exec, EXEC_TIMING);
    }

    #[test]
    fn measure_reports_preserve_latency_bits(
        id in 0u64..u64::MAX,
        latency_bits in 0u64..u64::MAX,
        kind in 0u8..3,
    ) {
        // Any finite positive latency, driven down to denormal range.
        let latency = f64::from_bits(latency_bits % f64::MAX.to_bits());
        let outcome = match kind {
            0 => MeasureOutcome::Measured(latency.abs().max(f64::MIN_POSITIVE)),
            1 => MeasureOutcome::Failed,
            _ => MeasureOutcome::Skipped,
        };
        let report = MeasureReport::new(id, outcome);
        let bytes = encode_frame(&report.to_json());
        let (json, _) = decode_frame(&bytes).unwrap();
        let decoded = MeasureReport::from_json(&json).unwrap();
        prop_assert_eq!(&decoded, &report);
        if let (MeasureOutcome::Measured(a), MeasureOutcome::Measured(b)) =
            (report.outcome, decoded.outcome)
        {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "latency bits must survive the wire");
        }
    }

    #[test]
    fn truncated_job_frames_are_typed_errors_never_jobs(
        bits in 0u64..u64::MAX,
        seed in 0u64..u64::MAX,
        cut_bits in 0u64..u64::MAX,
    ) {
        let bytes = encode_frame(&job_from(bits, seed, 4).to_json());
        let cut = (cut_bits % bytes.len() as u64) as usize;
        prop_assert!(matches!(decode_frame(&bytes[..cut]), Err(WireError::Truncated)));
        let mut cursor = std::io::Cursor::new(&bytes[..cut]);
        match read_frame(&mut cursor) {
            Err(WireError::Closed) => prop_assert_eq!(cut, 0),
            Err(WireError::Truncated) => prop_assert!(cut > 0),
            other => prop_assert!(false, "cut at {}: {:?}", cut, other),
        }
    }

    #[test]
    fn job_and_report_frames_stream_back_to_back(
        bits in 0u64..u64::MAX,
        seed in 0u64..u64::MAX,
        latency_bits in 0u64..u64::MAX,
    ) {
        let job = job_from(bits, seed, 3);
        let latency = ((latency_bits % 900_719) as f64 + 1.0) * 1e-9;
        let report = MeasureReport::new(job.id, MeasureOutcome::Measured(latency));
        let mut bytes = encode_frame(&job.to_json());
        bytes.extend_from_slice(&encode_frame(&report.to_json()));
        let mut cursor = std::io::Cursor::new(&bytes);
        let first = MeasureJob::from_json(&read_frame(&mut cursor).unwrap()).unwrap();
        let second = MeasureReport::from_json(&read_frame(&mut cursor).unwrap()).unwrap();
        prop_assert_eq!(&first, &job);
        prop_assert_eq!(second.id, job.id, "a report echoes its job id");
        prop_assert_eq!(&second, &report);
        prop_assert!(matches!(read_frame(&mut cursor), Err(WireError::Closed)));
    }

    #[test]
    fn corrupt_report_status_is_rejected_with_the_offending_text(
        id in 0u64..u64::MAX,
        tag_bits in 0u64..u64::MAX,
        tag_len in 3usize..12,
    ) {
        // A leading 'z' keeps any generated tag disjoint from the three
        // legal statuses (the vendored proptest has no prop_assume).
        let tag: String = std::iter::once('z')
            .chain((0..tag_len).map(|i| {
                char::from(b'a' + (tag_bits.rotate_left(5 * i as u32) % 26) as u8)
            }))
            .collect();
        let frame = Json::Obj(vec![
            ("id".into(), Json::Int(id as i64)),
            ("status".into(), Json::Str(tag.clone())),
        ]);
        let bytes = encode_frame(&frame);
        let (json, _) = decode_frame(&bytes).unwrap();
        let err = MeasureReport::from_json(&json).unwrap_err();
        prop_assert!(err.to_string().contains(&tag));
    }
}
