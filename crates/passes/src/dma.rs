//! DMA-aware boundary-check elimination (§5.3.1).
//!
//! The ATiM lowering stages WRAM caching tiles with element-wise copy loops
//! of the form
//!
//! ```text
//! for r in range(N):
//!     if boundary(r) and boundary(i):
//!         AL[r] = A_m[base + r]
//! ```
//!
//! Because per-DPU MRAM tiles are *locally padded* (allocated in multiples of
//! the tile size) and the boundary checks guarding the actual computation and
//! the host read-out are preserved, the checks on these copies are redundant:
//! over-fetching into the padded region cannot corrupt meaningful data.  Once
//! the check is gone the copy loop is a contiguous transfer and can be
//! replaced by a single DMA instruction (`mram_read`/`mram_write`), which is
//! dramatically cheaper than `N` scalar accesses on the DPU.

use std::sync::Arc;

use atim_tir::affine::{as_linear, as_upper_bound, split_conjunction};
use atim_tir::buffer::{Buffer, MemScope, Var};
use atim_tir::expr::Expr;
use atim_tir::stmt::{ForKind, Stmt};
use atim_tir::visit::{mutate_children, StmtMutator};

/// Statistics reported by [`eliminate_boundary_checks`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmaStats {
    /// Number of copy loops converted into DMA statements.
    pub loops_converted: usize,
    /// Number of boundary checks removed in the process.
    pub checks_removed: usize,
}

/// Applies DMA-aware boundary-check elimination to a kernel body.
///
/// Returns the rewritten statement and conversion statistics.
pub fn eliminate_boundary_checks(stmt: Stmt) -> (Stmt, DmaStats) {
    let mut pass = DmaPass {
        stats: DmaStats::default(),
    };
    let out = pass.mutate_stmt(stmt);
    (out, pass.stats)
}

struct DmaPass {
    stats: DmaStats,
}

impl StmtMutator for DmaPass {
    fn mutate_stmt(&mut self, stmt: Stmt) -> Stmt {
        // Rewrite children first so inner copy loops are converted before the
        // enclosing loops are considered.
        let stmt = mutate_children(self, stmt);
        match try_convert_copy_loop(&stmt) {
            Some((dma, removed_checks)) => {
                self.stats.loops_converted += 1;
                self.stats.checks_removed += removed_checks;
                dma
            }
            None => stmt,
        }
    }
}

/// A recognized element-wise copy: `dst[dst_idx] = src[src_idx]`.
struct CopyBody {
    dst: Arc<Buffer>,
    dst_idx: Expr,
    src: Arc<Buffer>,
    src_idx: Expr,
    removed_checks: usize,
}

/// Tries to convert `for v in 0..n { [if guard] dst[..] = src[..] }` into a
/// DMA statement.
fn try_convert_copy_loop(stmt: &Stmt) -> Option<(Stmt, usize)> {
    let Stmt::For {
        var,
        extent,
        kind,
        body,
    } = stmt
    else {
        return None;
    };
    if !matches!(kind, ForKind::Serial | ForKind::Unrolled) {
        return None;
    }
    let n = extent.as_int()?;
    let copy = match_copy_body(body)?;
    // The transfer must be between WRAM and MRAM (either direction).
    let scopes = (copy.src.scope, copy.dst.scope);
    let is_wram_mram = matches!(
        scopes,
        (MemScope::Mram, MemScope::Wram) | (MemScope::Wram, MemScope::Mram)
    );
    if !is_wram_mram {
        return None;
    }
    // Both indices must be affine with unit stride in the loop variable, so
    // consecutive iterations access consecutive elements.
    let dst_lin = as_linear(&copy.dst_idx)?;
    let src_lin = as_linear(&copy.src_idx)?;
    if dst_lin.coeff(var) != 1 || src_lin.coeff(var) != 1 {
        return None;
    }
    // Base offsets are the indices evaluated at v = 0.
    let dst_off = copy.dst_idx.substitute(var, &Expr::Int(0));
    let src_off = copy.src_idx.substitute(var, &Expr::Int(0));
    let dma = Stmt::Dma {
        dst: copy.dst,
        dst_off: atim_tir::simplify::simplify_expr(&dst_off),
        src: copy.src,
        src_off: atim_tir::simplify::simplify_expr(&src_off),
        elems: Expr::Int(n),
    };
    Some((dma, copy.removed_checks))
}

/// Matches the body of a candidate copy loop: an optional affine boundary
/// guard around a single store whose value is a single load.
fn match_copy_body(body: &Stmt) -> Option<CopyBody> {
    match body {
        Stmt::Store { buf, index, value } => {
            let Expr::Load {
                buf: src,
                index: src_idx,
            } = value
            else {
                return None;
            };
            Some(CopyBody {
                dst: Arc::clone(buf),
                dst_idx: index.clone(),
                src: Arc::clone(src),
                src_idx: (**src_idx).clone(),
                removed_checks: 0,
            })
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch: None,
        } => {
            // Every conjunct must be a recognizable affine upper-bound check;
            // anything else is not a boundary check and must not be dropped.
            let conjuncts = split_conjunction(cond);
            if !conjuncts.iter().all(|c| as_upper_bound(c).is_some()) {
                return None;
            }
            let mut inner = match_copy_body(then_branch)?;
            inner.removed_checks += conjuncts.len();
            Some(inner)
        }
        _ => None,
    }
}

/// Returns true if the statement still contains an element-wise WRAM↔MRAM
/// copy loop (used by tests and diagnostics).
pub fn has_elementwise_copy(stmt: &Stmt) -> bool {
    let mut found = false;
    atim_tir::visit::walk_stmt(stmt, &mut |s| {
        if let Stmt::For { body, .. } = s {
            if match_copy_body(body).is_some() && try_convert_copy_loop(s).is_some() {
                found = true;
            }
        }
    });
    found
}

/// Helper used by tests of this crate: builds the Fig. 8(a)-style caching
/// loop for a 1-D tile.
#[doc(hidden)]
pub fn example_copy_loop(
    wram: &Arc<Buffer>,
    mram: &Arc<Buffer>,
    n: i64,
    guard_bound: Option<(Var, i64)>,
) -> Stmt {
    let r = Var::new("r");
    let store = Stmt::store(
        wram,
        Expr::var(&r),
        Expr::load(mram, Expr::var(&r).add(Expr::Int(4))),
    );
    let body = match guard_bound {
        Some((outer, bound)) => Stmt::if_then(
            Expr::var(&outer)
                .mul(Expr::Int(n))
                .add(Expr::var(&r))
                .lt(Expr::Int(bound)),
            store,
        ),
        None => store,
    };
    Stmt::for_serial(r, n, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atim_tir::buffer::Buffer;
    use atim_tir::dtype::DType;
    use atim_tir::stmt::StmtCounts;

    fn bufs() -> (Arc<Buffer>, Arc<Buffer>) {
        let w = Buffer::new("AL", DType::F32, vec![16], MemScope::Wram);
        let m = Buffer::new("Am", DType::F32, vec![64], MemScope::Mram);
        (w, m)
    }

    #[test]
    fn converts_guarded_copy_loop_to_dma() {
        let (w, m) = bufs();
        let outer = Var::new("j");
        let loop_ = example_copy_loop(&w, &m, 16, Some((outer, 40)));
        let (out, stats) = eliminate_boundary_checks(loop_);
        assert_eq!(stats.loops_converted, 1);
        assert_eq!(stats.checks_removed, 1);
        match out {
            Stmt::Dma { elems, src_off, .. } => {
                assert_eq!(elems, Expr::Int(16));
                assert_eq!(src_off, Expr::Int(4));
            }
            other => panic!("expected DMA, got {other:?}"),
        }
    }

    #[test]
    fn converts_unguarded_copy_loop() {
        let (w, m) = bufs();
        let loop_ = example_copy_loop(&w, &m, 8, None);
        let (out, stats) = eliminate_boundary_checks(loop_);
        assert_eq!(stats.loops_converted, 1);
        assert_eq!(stats.checks_removed, 0);
        assert!(matches!(out, Stmt::Dma { .. }));
    }

    #[test]
    fn leaves_non_copy_loops_alone() {
        let (w, _) = bufs();
        let i = Var::new("i");
        // Not a copy: the value is a computation, not a plain load.
        let body = Stmt::store(&w, Expr::var(&i), Expr::var(&i).add(Expr::Int(1)));
        let loop_ = Stmt::for_serial(i, 8i64, body);
        let (out, stats) = eliminate_boundary_checks(loop_.clone());
        assert_eq!(stats.loops_converted, 0);
        assert_eq!(out, loop_);
    }

    #[test]
    fn leaves_wram_to_wram_copies_alone() {
        let a = Buffer::new("X", DType::F32, vec![8], MemScope::Wram);
        let b = Buffer::new("Y", DType::F32, vec![8], MemScope::Wram);
        let i = Var::new("i");
        let loop_ = Stmt::for_serial(
            i.clone(),
            8i64,
            Stmt::store(&a, Expr::var(&i), Expr::load(&b, Expr::var(&i))),
        );
        let (out, stats) = eliminate_boundary_checks(loop_.clone());
        assert_eq!(stats.loops_converted, 0);
        assert_eq!(out, loop_);
    }

    #[test]
    fn rejects_non_unit_stride() {
        let (w, m) = bufs();
        let i = Var::new("i");
        let loop_ = Stmt::for_serial(
            i.clone(),
            8i64,
            Stmt::store(
                &w,
                Expr::var(&i),
                Expr::load(&m, Expr::var(&i).mul(Expr::Int(2))),
            ),
        );
        let (_, stats) = eliminate_boundary_checks(loop_);
        assert_eq!(stats.loops_converted, 0);
    }

    #[test]
    fn rejects_non_boundary_guards() {
        // A guard that is not an affine upper bound (equality) must not be
        // dropped.
        let (w, m) = bufs();
        let r = Var::new("r");
        let body = Stmt::if_then(
            Expr::var(&r).eq_expr(Expr::Int(3)),
            Stmt::store(&w, Expr::var(&r), Expr::load(&m, Expr::var(&r))),
        );
        let loop_ = Stmt::for_serial(r, 8i64, body);
        let (_, stats) = eliminate_boundary_checks(loop_);
        assert_eq!(stats.loops_converted, 0);
    }

    #[test]
    fn nested_loops_convert_inner_only() {
        let (w, m) = bufs();
        let outer = Var::new("j");
        let inner = example_copy_loop(&w, &m, 16, Some((outer.clone(), 40)));
        let nest = Stmt::for_serial(outer, 3i64, inner);
        let (out, stats) = eliminate_boundary_checks(nest);
        assert_eq!(stats.loops_converted, 1);
        let counts: StmtCounts = out.count_nodes();
        assert_eq!(counts.dmas, 1);
        assert_eq!(counts.loops, 1, "outer loop remains");
        assert_eq!(counts.branches, 0);
    }
}
