//! Host data-transfer optimizations (Fig. 7(c) and (d)).
//!
//! The baseline transfer code generated from a kernel's caching structure is
//! a loop of single-element `h2d`/`d2h` intrinsics.  Two rewrites improve it:
//!
//! * **Bulk transfer**: a loop of unit transfers whose global and MRAM
//!   offsets both advance by one element per iteration is coalesced into one
//!   transfer of the whole contiguous run (the call overhead of UPMEM's
//!   `dpu_copy_to`/`dpu_copy_from` dominates for small sizes, so this is the
//!   difference between thousands of SDK calls and one per tile row).
//! * **Bank-parallel transfer**: transfers are marked for the
//!   `dpu_prepare_xfer` + `dpu_push_xfer` rank-parallel path, letting all 64
//!   banks of a rank move data simultaneously.

use atim_tir::affine::{as_linear, as_upper_bound, split_conjunction};
use atim_tir::expr::Expr;
use atim_tir::simplify::simplify_expr;
use atim_tir::stmt::{ForKind, Stmt};
use atim_tir::visit::{mutate_children, StmtMutator};

/// Statistics reported by [`bulk_transfers`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BulkStats {
    /// Number of transfer loops coalesced.
    pub loops_coalesced: usize,
}

/// Coalesces loops of unit-element transfers into bulk transfers.
pub fn bulk_transfers(stmt: Stmt) -> (Stmt, BulkStats) {
    let mut pass = BulkPass {
        stats: BulkStats::default(),
    };
    let out = pass.mutate_stmt(stmt);
    (out, pass.stats)
}

/// Marks every host transfer for the rank-parallel push path.
pub fn parallelize_transfers(stmt: Stmt) -> Stmt {
    struct ParallelPass;
    impl StmtMutator for ParallelPass {
        fn mutate_stmt(&mut self, stmt: Stmt) -> Stmt {
            let stmt = mutate_children(self, stmt);
            match stmt {
                Stmt::HostTransfer {
                    dir,
                    dpu,
                    global,
                    global_off,
                    mram,
                    mram_off,
                    elems,
                    parallel: _,
                } => Stmt::HostTransfer {
                    dir,
                    dpu,
                    global,
                    global_off,
                    mram,
                    mram_off,
                    elems,
                    parallel: true,
                },
                other => other,
            }
        }
    }
    ParallelPass.mutate_stmt(stmt)
}

struct BulkPass {
    stats: BulkStats,
}

impl StmtMutator for BulkPass {
    fn mutate_stmt(&mut self, stmt: Stmt) -> Stmt {
        let stmt = mutate_children(self, stmt);
        match try_coalesce(&stmt) {
            Some(new) => {
                self.stats.loops_coalesced += 1;
                new
            }
            None => stmt,
        }
    }
}

/// Tries to turn `for e in 0..n { [if bound(e)] transfer(elems=1, off+e) }`
/// into a single clamped bulk transfer.
fn try_coalesce(stmt: &Stmt) -> Option<Stmt> {
    let Stmt::For {
        var,
        extent,
        kind: ForKind::Serial,
        body,
    } = stmt
    else {
        return None;
    };
    let n = extent.as_int()?;

    // Peel an optional boundary guard; it becomes a clamp on the length.
    let (inner, clamp): (&Stmt, Option<Expr>) = match &**body {
        Stmt::If {
            cond,
            then_branch,
            else_branch: None,
        } => {
            let conjuncts = split_conjunction(cond);
            if conjuncts.len() != 1 {
                return None;
            }
            let bound = as_upper_bound(&conjuncts[0])?;
            if bound.lhs.coeff(var) != 1 {
                return None;
            }
            // lhs_rest + e < bound  =>  valid length = bound - lhs_rest
            let mut rest = bound.lhs.clone();
            rest.coeffs.remove(var);
            let limit = Expr::Int(bound.bound).sub(rest.to_expr());
            (then_branch, Some(limit))
        }
        other => (other, None),
    };

    let Stmt::HostTransfer {
        dir,
        dpu,
        global,
        global_off,
        mram,
        mram_off,
        elems,
        parallel,
    } = inner
    else {
        return None;
    };
    if elems.as_int() != Some(1) {
        return None;
    }
    if dpu.uses_var(var) {
        return None;
    }
    // Both offsets must advance by exactly one element per iteration.
    let g_lin = as_linear(global_off)?;
    let m_lin = as_linear(mram_off)?;
    if g_lin.coeff(var) != 1 || m_lin.coeff(var) != 1 {
        return None;
    }
    let g_base = global_off.substitute(var, &Expr::Int(0));
    let m_base = mram_off.substitute(var, &Expr::Int(0));
    let length = match clamp {
        Some(limit) => Expr::Int(0).max(Expr::Int(n).min(limit)),
        None => Expr::Int(n),
    };
    Some(Stmt::HostTransfer {
        dir: *dir,
        dpu: dpu.clone(),
        global: global.clone(),
        global_off: simplify_expr(&g_base),
        mram: mram.clone(),
        mram_off: simplify_expr(&m_base),
        elems: simplify_expr(&length),
        parallel: *parallel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atim_tir::buffer::{Buffer, MemScope, Var};
    use atim_tir::dtype::DType;
    use atim_tir::eval::{CountingTracer, ExecMode, Interpreter, MemoryStore};
    use atim_tir::stmt::TransferDir;
    use std::sync::Arc;

    fn unit_transfer_loop(n: i64, guard: Option<i64>) -> (Stmt, Arc<Buffer>, Arc<Buffer>) {
        let g = Buffer::new("A", DType::F32, vec![64], MemScope::Global);
        let m = Buffer::new("Am", DType::F32, vec![32], MemScope::Mram);
        let e = Var::new("e");
        let xfer = Stmt::HostTransfer {
            dir: TransferDir::H2D,
            dpu: Expr::Int(0),
            global: Arc::clone(&g),
            global_off: Expr::Int(8).add(Expr::var(&e)),
            mram: Arc::clone(&m),
            mram_off: Expr::var(&e),
            elems: Expr::Int(1),
            parallel: false,
        };
        let body = match guard {
            Some(bound) => {
                Stmt::if_then(Expr::var(&e).add(Expr::Int(8)).lt(Expr::Int(bound)), xfer)
            }
            None => xfer,
        };
        (Stmt::for_serial(e, n, body), g, m)
    }

    fn run(stmt: &Stmt, g: &Arc<Buffer>, m: &Arc<Buffer>) -> (Vec<f32>, CountingTracer) {
        let mut store = MemoryStore::new();
        store.alloc_with(g, 0, &(0..64).map(|x| x as f32).collect::<Vec<_>>());
        store.alloc(m, 0);
        let mut tracer = CountingTracer::default();
        let mut interp = Interpreter::new(&mut store, &mut tracer, ExecMode::Functional);
        interp.run(stmt).unwrap();
        (store.read_all(m, 0).unwrap().to_vec(), tracer)
    }

    #[test]
    fn coalesces_plain_unit_loop() {
        let (prog, g, m) = unit_transfer_loop(16, None);
        let (opt, stats) = bulk_transfers(prog.clone());
        assert_eq!(stats.loops_coalesced, 1);
        let (a, ta) = run(&prog, &g, &m);
        let (b, tb) = run(&opt, &g, &m);
        assert_eq!(a, b);
        assert_eq!(ta.transfers, 16);
        assert_eq!(tb.transfers, 1);
        assert_eq!(ta.transfer_bytes, tb.transfer_bytes);
    }

    #[test]
    fn coalesces_guarded_loop_with_clamp() {
        // Guard: 8 + e < 20 → only 12 of the 16 elements are valid.
        let (prog, g, m) = unit_transfer_loop(16, Some(20));
        let (opt, stats) = bulk_transfers(prog.clone());
        assert_eq!(stats.loops_coalesced, 1);
        let (a, ta) = run(&prog, &g, &m);
        let (b, tb) = run(&opt, &g, &m);
        assert_eq!(a, b);
        assert_eq!(ta.transfer_bytes, 12 * 4);
        assert_eq!(tb.transfer_bytes, 12 * 4);
        assert_eq!(tb.transfers, 1);
    }

    #[test]
    fn leaves_strided_transfers_alone() {
        let g = Buffer::new("A", DType::F32, vec![64], MemScope::Global);
        let m = Buffer::new("Am", DType::F32, vec![32], MemScope::Mram);
        let e = Var::new("e");
        let xfer = Stmt::HostTransfer {
            dir: TransferDir::H2D,
            dpu: Expr::Int(0),
            global: g,
            global_off: Expr::var(&e).mul(Expr::Int(2)),
            mram: m,
            mram_off: Expr::var(&e),
            elems: Expr::Int(1),
            parallel: false,
        };
        let prog = Stmt::for_serial(e, 8i64, xfer);
        let (_, stats) = bulk_transfers(prog);
        assert_eq!(stats.loops_coalesced, 0);
    }

    #[test]
    fn parallelize_marks_all_transfers() {
        let (prog, _, _) = unit_transfer_loop(4, None);
        let out = parallelize_transfers(prog);
        let mut all_parallel = true;
        atim_tir::visit::walk_stmt(&out, &mut |s| {
            if let Stmt::HostTransfer { parallel, .. } = s {
                all_parallel &= parallel;
            }
        });
        assert!(all_parallel);
    }
}
