//! Invariant branch hoisting with partial dead code elimination (§5.3.3).
//!
//! After loop-bound tightening, the remaining boundary checks are invariant
//! with respect to the enclosing loop (e.g. a row check `i < M` inside the
//! column loop).  This pass:
//!
//! 1. hoists an invariant branch out of a loop
//!    (`for k { if c { body } }` → `if c { for k { body } }`),
//! 2. applies partial dead code elimination (PDCE) to *sink* DMA statements
//!    whose results are only consumed inside an invariant branch under that
//!    branch, so the branch can be hoisted past them and further out
//!    (`for j { dma; dma; if c { ... } }` →
//!    `if c { for j { dma; dma; ... } }`),
//!
//! which turns per-iteration checks into a single check per kernel (the
//! paper's example reduces dynamic branch instances by 40×).

use atim_tir::affine::{as_upper_bound, split_conjunction};
use atim_tir::buffer::MemScope;
use atim_tir::stmt::{ForKind, Stmt};
use atim_tir::visit::{mutate_children, StmtMutator};

/// Statistics reported by [`hoist_invariant_branches`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HoistStats {
    /// Number of branches hoisted out of loops.
    pub branches_hoisted: usize,
    /// Number of statements sunk under a branch by PDCE.
    pub stmts_sunk: usize,
}

/// Applies invariant branch hoisting (with PDCE) until a fixpoint is reached.
pub fn hoist_invariant_branches(stmt: Stmt) -> (Stmt, HoistStats) {
    let mut stats = HoistStats::default();
    let mut current = stmt;
    // The transformation enables itself (hoisting out of one loop exposes the
    // next), so iterate to a fixpoint with a small safety bound.
    for _ in 0..16 {
        let mut pass = HoistPass {
            stats: HoistStats::default(),
        };
        current = pass.mutate_stmt(current);
        if pass.stats == HoistStats::default() {
            break;
        }
        stats.branches_hoisted += pass.stats.branches_hoisted;
        stats.stmts_sunk += pass.stats.stmts_sunk;
    }
    (current, stats)
}

struct HoistPass {
    stats: HoistStats,
}

impl StmtMutator for HoistPass {
    fn mutate_stmt(&mut self, stmt: Stmt) -> Stmt {
        let stmt = mutate_children(self, stmt);
        let Stmt::For {
            var,
            extent,
            kind,
            body,
        } = stmt
        else {
            return stmt;
        };
        if !matches!(kind, ForKind::Serial | ForKind::Unrolled) {
            return Stmt::For {
                var,
                extent,
                kind,
                body,
            };
        }

        let rebuilt = |body: Stmt| Stmt::For {
            var: var.clone(),
            extent: extent.clone(),
            kind,
            body: Box::new(body),
        };

        match *body {
            // Case 1: the body is exactly an invariant guard.
            Stmt::If {
                cond,
                then_branch,
                else_branch: None,
            } if !cond.uses_var(&var) && is_boundary_cond(&cond) && !extent.uses_var(&var) => {
                self.stats.branches_hoisted += 1;
                Stmt::if_then(cond, rebuilt(*then_branch))
            }
            // Case 2 (PDCE): the body is a sequence of sinkable statements
            // (DMA loads / WRAM initialization) followed by an invariant
            // guard.  Sink the statements under the guard, then hoist.
            Stmt::Seq(stmts) => {
                let invariant_guard_at = stmts.iter().position(|s| {
                    matches!(s, Stmt::If { cond, else_branch: None, .. }
                             if !cond.uses_var(&var) && is_boundary_cond(cond))
                });
                let Some(pos) = invariant_guard_at else {
                    return rebuilt(Stmt::Seq(stmts));
                };
                let prefix_sinkable = stmts[..pos].iter().all(is_sinkable);
                let suffix_empty = pos + 1 == stmts.len();
                if !prefix_sinkable || !suffix_empty {
                    return rebuilt(Stmt::Seq(stmts));
                }
                let mut stmts = stmts;
                let Stmt::If {
                    cond, then_branch, ..
                } = stmts.remove(pos)
                else {
                    unreachable!("position found above");
                };
                self.stats.stmts_sunk += stmts.len();
                self.stats.branches_hoisted += 1;
                stmts.push(*then_branch);
                Stmt::if_then(cond, rebuilt(Stmt::seq(stmts)))
            }
            other => rebuilt(other),
        }
    }
}

/// Whether a condition is a conjunction of affine boundary checks (only those
/// may be hoisted; arbitrary data-dependent conditions are left alone).
fn is_boundary_cond(cond: &atim_tir::expr::Expr) -> bool {
    split_conjunction(cond)
        .iter()
        .all(|c| as_upper_bound(c).is_some())
}

/// Whether a statement may be sunk under a boundary check by PDCE: its only
/// effect is to stage data into WRAM, which is consumed exclusively inside
/// the guarded computation (guaranteed by the lowering's `compute_at`
/// semantics).
fn is_sinkable(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::Dma { dst, .. } => dst.scope == MemScope::Wram,
        Stmt::Store { buf, .. } => buf.scope == MemScope::Wram,
        Stmt::For { body, .. } => is_sinkable(body),
        Stmt::Seq(stmts) => stmts.iter().all(is_sinkable),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            is_sinkable(then_branch) && else_branch.as_ref().map(|e| is_sinkable(e)).unwrap_or(true)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atim_tir::buffer::{Buffer, Var};
    use atim_tir::dtype::DType;
    use atim_tir::eval::{CountingTracer, ExecMode, Interpreter, MemoryStore};
    use atim_tir::expr::Expr;
    use std::sync::Arc;

    /// Builds the Fig. 8(c)→(d) situation: an outer loop containing DMA loads
    /// and an invariant-guarded compute loop.
    fn fig8_program() -> (Stmt, Arc<Buffer>, Arc<Buffer>, Arc<Buffer>, Var) {
        let al = Buffer::new("AL", DType::F32, vec![16], MemScope::Wram);
        let am = Buffer::new("Am", DType::F32, vec![64], MemScope::Mram);
        let cl = Buffer::new("CL", DType::F32, vec![16], MemScope::Wram);
        let i = Var::new("i");
        let j = Var::new("j");
        let k = Var::new("k");
        let dma = Stmt::Dma {
            dst: Arc::clone(&al),
            dst_off: Expr::Int(0),
            src: Arc::clone(&am),
            src_off: Expr::var(&j).mul(Expr::Int(16)),
            elems: Expr::Int(16),
        };
        let compute = Stmt::for_serial(
            k.clone(),
            16i64,
            Stmt::store(
                &cl,
                Expr::var(&i),
                Expr::load(&cl, Expr::var(&i)).add(Expr::load(&al, Expr::var(&k))),
            ),
        );
        let guarded = Stmt::if_then(Expr::var(&i).lt(Expr::Int(7)), compute);
        let body = Stmt::seq(vec![dma, guarded]);
        let prog = Stmt::for_serial(j, 3i64, body);
        (prog, al, am, cl, i)
    }

    fn run(stmt: &Stmt, i: &Var, iv: i64, bufs: &[&Arc<Buffer>]) -> (Vec<f32>, CountingTracer) {
        let mut store = MemoryStore::new();
        for b in bufs {
            store.alloc(b, 0);
        }
        let mut tracer = CountingTracer::default();
        let mut interp = Interpreter::new(&mut store, &mut tracer, ExecMode::Functional);
        interp.bind(i, iv);
        interp.run(stmt).unwrap();
        (store.read_all(bufs[2], 0).unwrap().to_vec(), tracer)
    }

    #[test]
    fn hoists_branch_above_outer_loop_with_pdce() {
        let (prog, al, am, cl, i) = fig8_program();
        let (opt, stats) = hoist_invariant_branches(prog.clone());
        assert!(stats.branches_hoisted >= 1);
        assert!(stats.stmts_sunk >= 1);
        // The outermost statement is now the branch.
        assert!(matches!(opt, Stmt::If { .. }), "got {opt:?}");

        // Semantics preserved for both sides of the boundary, and the
        // optimized version executes strictly fewer branches when the check
        // fails.
        for iv in [0, 6, 7, 9] {
            let (a, ta) = run(&prog, &i, iv, &[&al, &am, &cl]);
            let (b, tb) = run(&opt, &i, iv, &[&al, &am, &cl]);
            assert_eq!(a, b, "iv={iv}");
            assert!(tb.branches <= ta.branches);
            if iv >= 7 {
                assert_eq!(tb.branches, 1, "single hoisted check when out of range");
                assert_eq!(tb.dma_requests, 0, "PDCE skips dead DMA transfers");
                assert!(ta.dma_requests > 0);
            }
        }
    }

    #[test]
    fn does_not_hoist_variant_conditions() {
        let cl = Buffer::new("CL", DType::F32, vec![8], MemScope::Wram);
        let k = Var::new("k");
        let body = Stmt::if_then(
            Expr::var(&k).lt(Expr::Int(4)),
            Stmt::store(&cl, Expr::var(&k), Expr::Float(1.0)),
        );
        let prog = Stmt::for_serial(k, 8i64, body);
        let (out, stats) = hoist_invariant_branches(prog.clone());
        assert_eq!(stats.branches_hoisted, 0);
        assert_eq!(out, prog);
    }

    #[test]
    fn does_not_sink_global_stores() {
        // A store to MRAM before the guard is an observable effect and must
        // not be sunk (so no hoisting happens either).
        let cm = Buffer::new("Cm", DType::F32, vec![8], MemScope::Mram);
        let cl = Buffer::new("CL", DType::F32, vec![8], MemScope::Wram);
        let i = Var::new("i");
        let j = Var::new("j");
        let side_effect = Stmt::store(&cm, Expr::var(&j), Expr::Float(1.0));
        let guarded = Stmt::if_then(
            Expr::var(&i).lt(Expr::Int(4)),
            Stmt::store(&cl, Expr::Int(0), Expr::Float(2.0)),
        );
        let prog = Stmt::for_serial(j, 4i64, Stmt::seq(vec![side_effect, guarded]));
        let (_, stats) = hoist_invariant_branches(prog);
        assert_eq!(stats.branches_hoisted, 0);
    }

    #[test]
    fn hoists_simple_invariant_guard() {
        let cl = Buffer::new("CL", DType::F32, vec![8], MemScope::Wram);
        let i = Var::new("i");
        let k = Var::new("k");
        let prog = Stmt::for_serial(
            k.clone(),
            8i64,
            Stmt::if_then(
                Expr::var(&i).lt(Expr::Int(4)),
                Stmt::store(&cl, Expr::var(&k), Expr::Float(1.0)),
            ),
        );
        let (out, stats) = hoist_invariant_branches(prog);
        assert_eq!(stats.branches_hoisted, 1);
        match out {
            Stmt::If { then_branch, .. } => {
                assert!(matches!(*then_branch, Stmt::For { .. }));
            }
            other => panic!("expected hoisted if, got {other:?}"),
        }
    }
}
