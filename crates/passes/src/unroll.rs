//! Loop unrolling for loops annotated with [`ForKind::Unrolled`].
//!
//! The autotuner samples unroll annotations for innermost kernel loops; this
//! pass expands them so the DPU timing model sees the reduced loop-management
//! overhead (the UPMEM DPU has no zero-overhead-loop hardware, so every
//! iteration otherwise pays an increment + compare + branch).

use atim_tir::expr::Expr;
use atim_tir::stmt::{ForKind, Stmt};
use atim_tir::visit::{mutate_children, StmtMutator};

/// Maximum extent this pass will fully unroll; larger annotated loops are
/// left intact (matching TVM's `max_unroll` style limits).
pub const MAX_UNROLL: i64 = 128;

/// Statistics reported by [`unroll_loops`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnrollStats {
    /// Number of loops expanded.
    pub loops_unrolled: usize,
    /// Total statements produced by expansion.
    pub copies_emitted: usize,
}

/// Fully unrolls annotated loops with small constant extents.
pub fn unroll_loops(stmt: Stmt) -> (Stmt, UnrollStats) {
    let mut pass = UnrollPass {
        stats: UnrollStats::default(),
    };
    let out = pass.mutate_stmt(stmt);
    (out, pass.stats)
}

struct UnrollPass {
    stats: UnrollStats,
}

impl StmtMutator for UnrollPass {
    fn mutate_stmt(&mut self, stmt: Stmt) -> Stmt {
        let stmt = mutate_children(self, stmt);
        let Stmt::For {
            var,
            extent,
            kind: ForKind::Unrolled,
            body,
        } = stmt
        else {
            return stmt;
        };
        let Some(n) = extent.as_int() else {
            return Stmt::For {
                var,
                extent,
                kind: ForKind::Unrolled,
                body,
            };
        };
        if !(0..=MAX_UNROLL).contains(&n) {
            return Stmt::For {
                var,
                extent,
                kind: ForKind::Unrolled,
                body,
            };
        }
        self.stats.loops_unrolled += 1;
        let mut copies = Vec::with_capacity(n as usize);
        for it in 0..n {
            copies.push(body.substitute(&var, &Expr::Int(it)));
        }
        self.stats.copies_emitted += copies.len();
        Stmt::seq(copies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atim_tir::buffer::{Buffer, MemScope, Var};
    use atim_tir::dtype::DType;
    use atim_tir::eval::run_simple;

    #[test]
    fn unrolls_annotated_loop() {
        let a = Buffer::new("A", DType::F32, vec![4], MemScope::Wram);
        let i = Var::new("i");
        let body = Stmt::store(&a, Expr::var(&i), Expr::var(&i).add(Expr::Int(1)));
        let loop_ = Stmt::for_kind(i, 4i64, ForKind::Unrolled, body);
        let (out, stats) = unroll_loops(loop_.clone());
        assert_eq!(stats.loops_unrolled, 1);
        assert_eq!(stats.copies_emitted, 4);
        assert_eq!(out.count_nodes().loops, 0);
        // Same results.
        let base = run_simple(&loop_, &[], &a).unwrap();
        let opt = run_simple(&out, &[], &a).unwrap();
        assert_eq!(base, opt);
    }

    #[test]
    fn serial_loops_untouched() {
        let a = Buffer::new("A", DType::F32, vec![4], MemScope::Wram);
        let i = Var::new("i");
        let loop_ = Stmt::for_serial(
            i.clone(),
            4i64,
            Stmt::store(&a, Expr::var(&i), Expr::Float(0.0)),
        );
        let (out, stats) = unroll_loops(loop_.clone());
        assert_eq!(stats.loops_unrolled, 0);
        assert_eq!(out, loop_);
    }

    #[test]
    fn huge_unroll_annotations_ignored() {
        let a = Buffer::new("A", DType::F32, vec![100000], MemScope::Wram);
        let i = Var::new("i");
        let loop_ = Stmt::for_kind(
            i.clone(),
            100000i64,
            ForKind::Unrolled,
            Stmt::store(&a, Expr::var(&i), Expr::Float(0.0)),
        );
        let (out, stats) = unroll_loops(loop_);
        assert_eq!(stats.loops_unrolled, 0);
        assert_eq!(out.count_nodes().loops, 1);
    }
}
