//! # atim-passes — PIM-aware TIR optimization passes
//!
//! Implementations of the tensor-level optimizations from §5.3 of the ATiM
//! paper, plus the data-transfer optimizations of §5.2.2 (Fig. 7):
//!
//! * [`dma`] — **DMA-aware boundary-check elimination** (§5.3.1): removes
//!   boundary checks guarding element-wise WRAM↔MRAM copies and replaces the
//!   copy loop with a single DMA instruction.
//! * [`tighten`] — **loop-bound tightening** (§5.3.2): intersects a loop's
//!   extent with an affine boundary condition, skipping iterations that are
//!   statically known to fail the check.
//! * [`hoist`] — **invariant branch hoisting** (§5.3.3): moves
//!   loop-invariant boundary checks out of loops, using partial-dead-code
//!   elimination to sink DMA statements under the branch so it can be hoisted
//!   further.
//! * [`unroll`] — expansion of loops annotated for unrolling.
//! * [`transfer`] — bulk and rank-parallel host transfer rewriting (Fig. 7(c)
//!   and (d)).
//! * [`pipeline`] — the optimization levels used in the paper's Fig. 12/13
//!   ablation (`No-OPT`, `DMA`, `DMA+LT`, `DMA+LT+BH`).
//!
//! All passes are semantics-preserving given the structural guarantees of the
//! ATiM lowering (see `atim-tir`'s schedule lowering); each module's tests
//! verify this by differential execution against unoptimized programs.
//!
//! # Example
//!
//! ```
//! use atim_passes::{optimize_kernel, OptLevel};
//! use atim_tir::compute::ComputeDef;
//! use atim_tir::schedule::Schedule;
//!
//! // A misaligned tiling (5 rows split by 2) forces a boundary check,
//! // which the full pipeline then optimizes away.
//! let def = ComputeDef::mtv("mtv", 5, 7);
//! let mut sch = Schedule::new(def);
//! let i = sch.loops_of_axis(0)[0];
//! sch.split(i, 2).unwrap();
//! let lowered = sch.lower().unwrap();
//! let (optimized, stats) = optimize_kernel(lowered.kernel.body.clone(), OptLevel::DmaLtBh);
//! assert_ne!(optimized, lowered.kernel.body); // something was rewritten
//! let _ = stats; // per-pass counters for ablation reports
//! ```

pub mod dma;
pub mod hoist;
pub mod pipeline;
pub mod tighten;
pub mod transfer;
pub mod unroll;

pub use pipeline::{optimize_kernel, optimize_transfers, OptLevel};
