//! Loop-bound tightening (§5.3.2).
//!
//! When a loop's body is a single `if` whose condition is a conjunction of
//! affine upper bounds and at least one conjunct involves the loop variable
//! with a positive coefficient, the loop's upper bound can be intersected
//! with the condition:
//!
//! ```text
//! for k in range(16):                  for k in range(min(16, K - j*16)):
//!     if j*16 + k < K and i < M:   =>      if i < M:
//!         body                                 body
//! ```
//!
//! Iterations that would fail the check are simply never executed, removing
//! both the wasted loop iterations and the per-iteration branch.  General-
//! purpose compilers cannot do this without the structural guarantee (no
//! statements outside the guard) that the ATiM lowering provides.

use atim_tir::affine::{as_upper_bound, rebuild_conjunction, split_conjunction};
use atim_tir::expr::Expr;
use atim_tir::simplify::simplify_expr;
use atim_tir::stmt::{ForKind, Stmt};
use atim_tir::visit::{mutate_children, StmtMutator};

/// Statistics reported by [`tighten_loop_bounds`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TightenStats {
    /// Number of loops whose bounds were tightened.
    pub loops_tightened: usize,
    /// Number of boundary conjuncts folded into loop bounds.
    pub conds_folded: usize,
}

/// Applies loop-bound tightening to a kernel body.
pub fn tighten_loop_bounds(stmt: Stmt) -> (Stmt, TightenStats) {
    let mut pass = TightenPass {
        stats: TightenStats::default(),
    };
    let out = pass.mutate_stmt(stmt);
    (out, pass.stats)
}

struct TightenPass {
    stats: TightenStats,
}

impl StmtMutator for TightenPass {
    fn mutate_stmt(&mut self, stmt: Stmt) -> Stmt {
        let stmt = mutate_children(self, stmt);
        let Stmt::For {
            var,
            extent,
            kind,
            body,
        } = stmt
        else {
            return stmt;
        };
        if !matches!(kind, ForKind::Serial | ForKind::Unrolled) {
            return Stmt::For {
                var,
                extent,
                kind,
                body,
            };
        }
        // The body must be exactly one guarded statement.
        let Stmt::If {
            cond,
            then_branch,
            else_branch: None,
        } = *body
        else {
            return Stmt::For {
                var,
                extent,
                kind,
                body,
            };
        };

        let mut kept = Vec::new();
        let mut new_extent = extent.clone();
        let mut folded = 0usize;
        for conjunct in split_conjunction(&cond) {
            let Some(bound) = as_upper_bound(&conjunct) else {
                kept.push(conjunct);
                continue;
            };
            let coeff = bound.lhs.coeff(&var);
            if coeff <= 0 {
                kept.push(conjunct);
                continue;
            }
            // lhs_rest + coeff*var < bound  =>  var < ceil((bound - lhs_rest)/coeff)
            let mut rest = bound.lhs.clone();
            rest.coeffs.remove(&var);
            let rest_expr = rest.to_expr();
            let numer = Expr::Int(bound.bound)
                .sub(rest_expr)
                .add(Expr::Int(coeff - 1));
            let limit = numer.floordiv(Expr::Int(coeff));
            new_extent = new_extent.min(limit);
            folded += 1;
        }
        if folded == 0 {
            // Nothing foldable: reconstruct the original loop.
            return Stmt::For {
                var,
                extent,
                kind,
                body: Box::new(Stmt::If {
                    cond,
                    then_branch,
                    else_branch: None,
                }),
            };
        }
        self.stats.loops_tightened += 1;
        self.stats.conds_folded += folded;
        let inner = if kept.is_empty() {
            *then_branch
        } else {
            Stmt::if_then(rebuild_conjunction(kept), *then_branch)
        };
        Stmt::For {
            var,
            extent: simplify_expr(&new_extent),
            kind,
            body: Box::new(inner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atim_tir::buffer::{Buffer, MemScope, Var};
    use atim_tir::dtype::DType;
    use atim_tir::eval::{CountingTracer, ExecMode, Interpreter, MemoryStore};

    /// Builds Fig. 8(c)'s shape: for k in 0..16 { if j*16+k < kmax && i < imax { C[i] += 1 } }
    fn guarded_loop(imax: i64, kmax: i64) -> (Stmt, std::sync::Arc<Buffer>, Var, Var) {
        let c = Buffer::new("C", DType::F32, vec![8], MemScope::Wram);
        let i = Var::new("i");
        let j = Var::new("j");
        let k = Var::new("k");
        let cond = Expr::var(&j)
            .mul(Expr::Int(16))
            .add(Expr::var(&k))
            .lt(Expr::Int(kmax))
            .and(Expr::var(&i).lt(Expr::Int(imax)));
        let body = Stmt::if_then(
            cond,
            Stmt::store(
                &c,
                Expr::var(&i),
                Expr::load(&c, Expr::var(&i)).add(Expr::Float(1.0)),
            ),
        );
        (Stmt::for_serial(k, 16i64, body), c, i, j)
    }

    fn run_counting(
        stmt: &Stmt,
        binds: &[(&Var, i64)],
        c: &std::sync::Arc<Buffer>,
    ) -> (Vec<f32>, CountingTracer) {
        let mut store = MemoryStore::new();
        store.alloc(c, 0);
        let mut tracer = CountingTracer::default();
        let mut interp = Interpreter::new(&mut store, &mut tracer, ExecMode::Functional);
        for (v, x) in binds {
            interp.bind(v, *x);
        }
        interp.run(stmt).unwrap();
        (store.read_all(c, 0).unwrap().to_vec(), tracer)
    }

    #[test]
    fn tightens_and_preserves_semantics() {
        let (orig, c, i, j) = guarded_loop(7, 40);
        let (opt, stats) = tighten_loop_bounds(orig.clone());
        assert_eq!(stats.loops_tightened, 1);
        assert_eq!(stats.conds_folded, 1);

        for (iv, jv) in [(0, 0), (3, 1), (6, 2), (7, 2)] {
            let (a, ta) = run_counting(&orig, &[(&i, iv), (&j, jv)], &c);
            let (b, tb) = run_counting(&opt, &[(&i, iv), (&j, jv)], &c);
            assert_eq!(a, b, "results differ at i={iv}, j={jv}");
            assert!(
                tb.loop_iters <= ta.loop_iters,
                "tightened loop must not run more iterations"
            );
        }
        // For j=2 only 40 - 32 = 8 of the 16 iterations survive.
        let (_, t_opt) = run_counting(&opt, &[(&i, 0), (&j, 2)], &c);
        assert_eq!(t_opt.loop_iters, 8);
    }

    #[test]
    fn keeps_invariant_conjunct() {
        let (orig, _, _, _) = guarded_loop(7, 40);
        let (opt, _) = tighten_loop_bounds(orig);
        // The i < 7 conjunct must survive inside the loop.
        let counts = opt.count_nodes();
        assert_eq!(counts.branches, 1);
    }

    #[test]
    fn leaves_loops_without_guard_alone() {
        let c = Buffer::new("C", DType::F32, vec![8], MemScope::Wram);
        let k = Var::new("k");
        let loop_ = Stmt::for_serial(
            k.clone(),
            8i64,
            Stmt::store(&c, Expr::var(&k), Expr::Float(1.0)),
        );
        let (out, stats) = tighten_loop_bounds(loop_.clone());
        assert_eq!(stats.loops_tightened, 0);
        assert_eq!(out, loop_);
    }

    #[test]
    fn leaves_non_affine_guards_alone() {
        let c = Buffer::new("C", DType::F32, vec![8], MemScope::Wram);
        let k = Var::new("k");
        let cond = Expr::var(&k).floormod(Expr::Int(2)).eq_expr(Expr::Int(0));
        let loop_ = Stmt::for_serial(
            k.clone(),
            8i64,
            Stmt::if_then(cond, Stmt::store(&c, Expr::var(&k), Expr::Float(1.0))),
        );
        let (_, stats) = tighten_loop_bounds(loop_);
        assert_eq!(stats.loops_tightened, 0);
    }

    #[test]
    fn negative_tightened_bound_runs_zero_iterations() {
        // j so large that no iteration is valid: extent becomes negative and
        // the loop simply runs zero times.
        let (orig, c, i, j) = guarded_loop(7, 40);
        let (opt, _) = tighten_loop_bounds(orig);
        let (vals, tracer) = run_counting(&opt, &[(&i, 0), (&j, 5)], &c);
        assert_eq!(tracer.loop_iters, 0);
        assert!(vals.iter().all(|v| *v == 0.0));
    }
}
