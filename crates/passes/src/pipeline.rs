//! Optimization pipelines: the `No-OPT` / `DMA` / `DMA+LT` / `DMA+LT+BH`
//! levels used throughout the paper's §7.3 ablation (Figs. 12 and 13).

use atim_tir::simplify::simplify_stmt;
use atim_tir::stmt::Stmt;

use crate::dma::{eliminate_boundary_checks, DmaStats};
use crate::hoist::{hoist_invariant_branches, HoistStats};
use crate::tighten::{tighten_loop_bounds, TightenStats};
use crate::transfer::{bulk_transfers, parallelize_transfers, BulkStats};
use crate::unroll::{unroll_loops, UnrollStats};

/// PIM-aware optimization level for DPU kernel code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum OptLevel {
    /// O0: no PIM-aware optimization (element-wise caching, all boundary
    /// checks in place).
    NoOpt,
    /// O1: DMA-aware boundary-check elimination (§5.3.1).
    Dma,
    /// O2: O1 + loop-bound tightening (§5.3.2).
    DmaLt,
    /// O3: O1 + O2 + invariant branch hoisting (§5.3.3).  This is ATiM's
    /// default.
    #[default]
    DmaLtBh,
}

impl OptLevel {
    /// All levels in ascending order (useful for ablation sweeps).
    pub const ALL: [OptLevel; 4] = [
        OptLevel::NoOpt,
        OptLevel::Dma,
        OptLevel::DmaLt,
        OptLevel::DmaLtBh,
    ];

    /// Short label used in reports (matches the paper's figure legends).
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::NoOpt => "No OPT",
            OptLevel::Dma => "DMA",
            OptLevel::DmaLt => "DMA+LT",
            OptLevel::DmaLtBh => "DMA+LT+BH",
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Aggregated statistics from one run of the kernel pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// DMA-aware boundary-check elimination results.
    pub dma: DmaStats,
    /// Loop-bound tightening results.
    pub tighten: TightenStats,
    /// Invariant branch hoisting results.
    pub hoist: HoistStats,
    /// Unrolling results.
    pub unroll: UnrollStats,
}

/// Applies the kernel-side PIM-aware optimizations at the given level.
///
/// Unrolling of annotated loops is performed at every level (it corresponds
/// to the `-O2` backend compilation the paper always uses), while the three
/// PIM-aware passes are applied cumulatively per [`OptLevel`].
pub fn optimize_kernel(kernel: Stmt, level: OptLevel) -> (Stmt, PipelineStats) {
    let mut stats = PipelineStats::default();
    let mut body = kernel;

    if level >= OptLevel::Dma {
        let (b, s) = eliminate_boundary_checks(body);
        body = b;
        stats.dma = s;
    }
    if level >= OptLevel::DmaLt {
        let (b, s) = tighten_loop_bounds(body);
        body = b;
        stats.tighten = s;
    }
    if level >= OptLevel::DmaLtBh {
        let (b, s) = hoist_invariant_branches(body);
        body = b;
        stats.hoist = s;
    }
    let (b, s) = unroll_loops(body);
    body = b;
    stats.unroll = s;

    (simplify_stmt(body), stats)
}

/// Applies the host transfer optimizations: bulk coalescing (Fig. 7(c)) and
/// optionally the rank-parallel push path (Fig. 7(d)).
pub fn optimize_transfers(transfer_prog: Stmt, parallel: bool) -> (Stmt, BulkStats) {
    let (out, stats) = bulk_transfers(transfer_prog);
    let out = if parallel {
        parallelize_transfers(out)
    } else {
        out
    };
    (simplify_stmt(out), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atim_tir::compute::ComputeDef;
    use atim_tir::schedule::{execute_functional, Attach, Binding, Lowered, Schedule};

    /// Builds the misaligned MTV schedule from the paper's Fig. 8 (7×40
    /// matrix, 2×16 caching tile, 4 "tasklets").
    fn fig8_lowered() -> (ComputeDef, Lowered) {
        let def = ComputeDef::mtv("mtv", 7, 40);
        let mut sch = Schedule::new(def.clone());
        let i = sch.loops_of_axis(0)[0];
        let k = sch.loops_of_axis(1)[0];
        let (i_t, i_c) = sch.split(i, 2).unwrap();
        sch.bind(i_t, Binding::Tasklet).unwrap();
        let (k_o, k_i) = sch.split(k, 16).unwrap();
        sch.reorder(&[i_t, i_c, k_o, k_i]).unwrap();
        sch.cache_read(0, Attach::At(k_o)).unwrap();
        sch.cache_read(1, Attach::At(k_o)).unwrap();
        sch.cache_write(Attach::At(i_c)).unwrap();
        (def, sch.lower().unwrap())
    }

    fn inputs(def: &ComputeDef) -> Vec<Vec<f32>> {
        (0..def.inputs.len())
            .map(|t| {
                (0..def.input_len(t))
                    .map(|i| ((i + t * 3) % 7) as f32 - 2.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn every_level_preserves_semantics() {
        let (def, lowered) = fig8_lowered();
        let ins = inputs(&def);
        let expect = def.reference(&ins);
        for level in OptLevel::ALL {
            let (body, _) = optimize_kernel(lowered.kernel.body.clone(), level);
            let mut opt = lowered.clone();
            opt.kernel.body = body;
            let got = execute_functional(&opt, &ins).unwrap();
            for (g, e) in got.iter().zip(&expect) {
                assert!((g - e).abs() < 1e-3, "{level}: {g} vs {e}");
            }
        }
    }

    #[test]
    fn opt_levels_progressively_remove_branches() {
        let (def, lowered) = fig8_lowered();
        let ins = inputs(&def);
        let mut prev_branches = usize::MAX;
        for level in OptLevel::ALL {
            let (body, _) = optimize_kernel(lowered.kernel.body.clone(), level);
            let mut opt = lowered.clone();
            opt.kernel.body = body;
            // Count dynamic branch executions with the counting tracer.
            let mut store = atim_tir::eval::MemoryStore::new();
            for (buf, data) in opt.global_inputs.iter().zip(&ins) {
                store.alloc_with(buf, 0, data);
            }
            store.alloc(&opt.global_output, 0);
            for tile in &opt.mram_inputs {
                store.alloc(&tile.buf, 0);
            }
            store.alloc(&opt.mram_output.buf, 0);
            let mut h2d_tracer = atim_tir::eval::NoTrace;
            let mut interp = atim_tir::eval::Interpreter::new(
                &mut store,
                &mut h2d_tracer,
                atim_tir::eval::ExecMode::Functional,
            );
            interp.run(&opt.h2d).unwrap();
            let mut tracer = atim_tir::eval::CountingTracer::default();
            let mut interp = atim_tir::eval::Interpreter::new(
                &mut store,
                &mut tracer,
                atim_tir::eval::ExecMode::Functional,
            );
            interp.run(&opt.kernel.body).unwrap();
            assert!(
                tracer.branches <= prev_branches,
                "{level}: dynamic branches increased ({} > {prev_branches})",
                tracer.branches
            );
            prev_branches = tracer.branches;
        }
        assert!(prev_branches < 50, "final level should have few branches");
    }

    #[test]
    fn dma_level_produces_dma_statements() {
        let (_, lowered) = fig8_lowered();
        let (body, stats) = optimize_kernel(lowered.kernel.body.clone(), OptLevel::Dma);
        assert!(stats.dma.loops_converted > 0);
        assert!(body.count_nodes().dmas > 0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(OptLevel::NoOpt.label(), "No OPT");
        assert_eq!(OptLevel::DmaLtBh.to_string(), "DMA+LT+BH");
        assert!(OptLevel::Dma < OptLevel::DmaLt);
    }
}
