//! Property-based tests: the PIM-aware passes must preserve program
//! semantics for arbitrary boundary geometries, and must never add dynamic
//! branches.

use atim_passes::pipeline::{optimize_kernel, OptLevel};
use atim_tir::compute::ComputeDef;
use atim_tir::eval::{CountingTracer, ExecMode, Interpreter, MemoryStore};
use atim_tir::schedule::{execute_functional, Attach, Binding, Schedule};
use proptest::prelude::*;

/// Builds a misaligned MTV schedule with the given tile geometry.
fn build_lowered(
    m: i64,
    k: i64,
    tasklets: i64,
    rows_per_iter: i64,
    cache: i64,
) -> (ComputeDef, atim_tir::schedule::Lowered) {
    let def = ComputeDef::mtv("mtv", m, k);
    let mut sch = Schedule::new(def.clone());
    let i = sch.loops_of_axis(0)[0];
    let kk = sch.loops_of_axis(1)[0];
    let (i_t, i_c) = sch.split(i, rows_per_iter.max(1)).unwrap();
    if tasklets > 1 {
        sch.bind(i_t, Binding::Tasklet).unwrap();
    }
    let (k_o, _k_i) = sch.split(kk, cache.max(1)).unwrap();
    sch.reorder(&[i_t, i_c, k_o]).unwrap();
    sch.cache_read(0, Attach::At(k_o)).unwrap();
    sch.cache_read(1, Attach::At(k_o)).unwrap();
    sch.cache_write(Attach::At(i_c)).unwrap();
    (def, sch.lower().unwrap())
}

fn inputs_for(def: &ComputeDef) -> Vec<Vec<f32>> {
    (0..def.inputs.len())
        .map(|t| {
            (0..def.input_len(t))
                .map(|i| ((i * 3 + t * 5) % 11) as f32 - 5.0)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn passes_preserve_results_for_arbitrary_boundary_geometries(
        m in 2i64..24,
        k in 2i64..48,
        tasklets in 1i64..5,
        rows in 1i64..5,
        cache in 2i64..20,
        level_idx in 0usize..4,
    ) {
        let (def, mut lowered) = build_lowered(m, k, tasklets, rows, cache);
        let level = OptLevel::ALL[level_idx];
        let (optimized, _) = optimize_kernel(lowered.kernel.body.clone(), level);
        lowered.kernel.body = optimized;
        let inputs = inputs_for(&def);
        let got = execute_functional(&lowered, &inputs).unwrap();
        let expect = def.reference(&inputs);
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!((g - e).abs() < 1e-2, "{level}: {} vs {}", g, e);
        }
    }

    #[test]
    fn full_optimization_never_adds_branches_or_loop_iterations(
        m in 2i64..24,
        k in 2i64..48,
        rows in 1i64..5,
        cache in 2i64..20,
    ) {
        let (_, lowered) = build_lowered(m, k, 2, rows, cache);
        let count_events = |body: &atim_tir::Stmt| {
            let mut store = MemoryStore::new();
            let mut tracer = CountingTracer::default();
            let mut interp = Interpreter::new(&mut store, &mut tracer, ExecMode::TimingOnly);
            interp.run(body).unwrap();
            tracer
        };
        let before = count_events(&lowered.kernel.body);
        let (optimized, _) = optimize_kernel(lowered.kernel.body.clone(), OptLevel::DmaLtBh);
        let after = count_events(&optimized);
        prop_assert!(after.branches <= before.branches,
            "branches increased: {} -> {}", before.branches, after.branches);
        prop_assert!(after.loop_iters <= before.loop_iters,
            "loop iterations increased: {} -> {}", before.loop_iters, after.loop_iters);
    }
}
