//! # atim-workloads — benchmark workload definitions
//!
//! The tensor-algebra operations and real-model layer shapes used in the
//! ATiM paper's evaluation (§6):
//!
//! * [`ops`] — constructors and size presets for VA, RED, MTV, TTV, MMTV,
//!   GEVA and GEMV, including the 4 MB / 64 MB / 256 MB / 512 MB presets of
//!   Table 3 and Fig. 9.
//! * [`gptj`] — the MTV (fully-connected) and MMTV (multi-head-attention)
//!   shapes of GPT-J 6B and 30B used in Fig. 10.
//! * [`data`] — deterministic input generation and output comparison
//!   helpers.
//!
//! # Example
//!
//! ```
//! use atim_workloads::data::generate_inputs;
//! use atim_workloads::{Workload, WorkloadKind};
//!
//! let workload = Workload::new(WorkloadKind::Mtv, vec![128, 256]);
//! let def = workload.compute_def();
//! let inputs = generate_inputs(&def, 42);
//! assert_eq!(inputs.len(), def.inputs.len());
//! let reference = def.reference(&inputs);
//! assert_eq!(reference.len(), def.output_len());
//! ```

pub mod data;
pub mod gptj;
pub mod ops;

pub use ops::{Workload, WorkloadKind, SIZE_PRESETS};
