//! Benchmark tensor operations and their size presets.

use atim_tir::compute::ComputeDef;

/// The seven tensor-algebra operations evaluated in §6 of the paper, plus
/// the extension workloads opened up by the sketch-rule schedule spaces:
/// batched GEMM, the fused attention block and quantized int8 GEMV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Vector addition `C(i) = A(i) + B(i)`.
    Va,
    /// Reduction `b = Σ A(i)`.
    Red,
    /// Matrix-times-vector `C(i) = Σ_k A(i,k) B(k)`.
    Mtv,
    /// Tensor-times-vector `C(i,j) = Σ_k A(i,j,k) B(k)`.
    Ttv,
    /// Batched matrix-times-vector `C(i,j) = Σ_k A(i,j,k) B(i,k)`.
    Mmtv,
    /// General vector addition `C(i) = c·A(i) + d·B(i)`.
    Geva,
    /// General matrix-vector product `C(i) = c·Σ_k A(i,k) B(k)`.
    Gemv,
    /// Batched matrix-matrix product `C(b,i,j) = Σ_k A(b,i,k) B(b,k,j)`.
    Bgemm,
    /// Fused single-query attention block
    /// `O(b,d) = Σ_j Σ_e Q(b,e) K(b,j,e) V(b,j,d)`.
    Attn,
    /// Quantized int8 matrix-times-vector (1-byte operands, i32 output).
    Qgemv,
}

impl WorkloadKind {
    /// All benchmark kinds: the paper's seven in the order it lists them,
    /// then the extension workloads.
    pub const ALL: [WorkloadKind; 10] = [
        WorkloadKind::Va,
        WorkloadKind::Red,
        WorkloadKind::Mtv,
        WorkloadKind::Ttv,
        WorkloadKind::Mmtv,
        WorkloadKind::Geva,
        WorkloadKind::Gemv,
        WorkloadKind::Bgemm,
        WorkloadKind::Attn,
        WorkloadKind::Qgemv,
    ];

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Va => "va",
            WorkloadKind::Red => "red",
            WorkloadKind::Mtv => "mtv",
            WorkloadKind::Ttv => "ttv",
            WorkloadKind::Mmtv => "mmtv",
            WorkloadKind::Geva => "geva",
            WorkloadKind::Gemv => "gemv",
            WorkloadKind::Bgemm => "bgemm",
            WorkloadKind::Attn => "attn",
            WorkloadKind::Qgemv => "qgemv",
        }
    }

    /// Whether the operation has a reduction axis.
    pub fn has_reduce(self) -> bool {
        !matches!(self, WorkloadKind::Va | WorkloadKind::Geva)
    }

    /// Parses a canonical lowercase name back to the kind (the inverse of
    /// [`WorkloadKind::name`]); `None` for unknown names.
    pub fn parse(name: &str) -> Option<WorkloadKind> {
        WorkloadKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// The number of shape extents the operation takes: 1 for the vector
    /// ops, 2 for MTV/GEMV/QGEMV, 3 for TTV/MMTV/ATTN, 4 for BGEMM.
    pub fn rank(self) -> usize {
        match self {
            WorkloadKind::Va | WorkloadKind::Red | WorkloadKind::Geva => 1,
            WorkloadKind::Mtv | WorkloadKind::Gemv | WorkloadKind::Qgemv => 2,
            WorkloadKind::Ttv | WorkloadKind::Mmtv | WorkloadKind::Attn => 3,
            WorkloadKind::Bgemm => 4,
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete workload: an operation kind plus its tensor shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Workload {
    /// Operation kind.
    pub kind: WorkloadKind,
    /// Shape: `[n]` for 1-D ops, `[m, k]` for MTV/GEMV, `[m, n, k]` for
    /// TTV/MMTV.
    pub shape: Vec<i64>,
}

impl Workload {
    /// Creates a workload.
    pub fn new(kind: WorkloadKind, shape: Vec<i64>) -> Self {
        Workload { kind, shape }
    }

    /// Builds the corresponding computation definition.
    ///
    /// # Panics
    /// Panics if the shape length does not match the operation.
    pub fn compute_def(&self) -> ComputeDef {
        let s = &self.shape;
        match self.kind {
            WorkloadKind::Va => ComputeDef::va("va", s[0]),
            WorkloadKind::Red => ComputeDef::red("red", s[0]),
            WorkloadKind::Geva => ComputeDef::geva("geva", s[0], 2.0, 3.0),
            WorkloadKind::Mtv => ComputeDef::mtv("mtv", s[0], s[1]),
            WorkloadKind::Gemv => ComputeDef::gemv("gemv", s[0], s[1], 2.0),
            WorkloadKind::Ttv => ComputeDef::ttv("ttv", s[0], s[1], s[2]),
            WorkloadKind::Mmtv => ComputeDef::mmtv("mmtv", s[0], s[1], s[2]),
            WorkloadKind::Bgemm => ComputeDef::bgemm("bgemm", s[0], s[1], s[2], s[3]),
            WorkloadKind::Attn => ComputeDef::attn("attn", s[0], s[1], s[2]),
            WorkloadKind::Qgemv => ComputeDef::qgemv("qgemv", s[0], s[1]),
        }
    }

    /// The validating form of [`Workload::compute_def`] for untrusted
    /// shapes (e.g. ones arriving over the tuning-server wire): `None`
    /// when the shape length does not match the operation's rank or any
    /// extent is non-positive.
    pub fn try_compute_def(&self) -> Option<ComputeDef> {
        if self.shape.len() != self.kind.rank() || self.shape.iter().any(|&e| e <= 0) {
            return None;
        }
        Some(self.compute_def())
    }

    /// Size of the main input tensor in bytes (the "Size (MB)" column of
    /// Table 3 refers to the dominant tensor).
    ///
    /// For the paper's seven kinds the dominant tensor covers every shape
    /// extent at 4 B/elem.  BGEMM's dominant tensor is `A(b,i,k)` (the `n`
    /// extent is absent), ATTN's is `K(b,j,e)` (all extents, like MMTV),
    /// and QGEMV stores 1-byte elements.
    pub fn main_tensor_bytes(&self) -> usize {
        let s = &self.shape;
        match self.kind {
            WorkloadKind::Bgemm => (s[0] * s[1] * s[3]) as usize * 4,
            WorkloadKind::Qgemv => s.iter().product::<i64>() as usize,
            _ => s.iter().product::<i64>() as usize * 4,
        }
    }

    /// Human-readable label, e.g. `mtv-64MB`.
    pub fn label(&self) -> String {
        let mb = self.main_tensor_bytes() as f64 / (1024.0 * 1024.0);
        if mb >= 1.0 {
            format!("{}-{:.0}MB", self.kind, mb)
        } else {
            format!("{}-{}KB", self.kind, self.main_tensor_bytes() / 1024)
        }
    }
}

/// A `(size label, tensor shape)` preset, e.g. `("64MB", &[4096, 4096])`.
pub type SizePreset = (&'static str, &'static [i64]);

/// The tensor-size presets of Table 3 / Fig. 9: for each workload kind, the
/// list of `(size label, shape)` pairs evaluated in the paper.
pub const SIZE_PRESETS: &[(WorkloadKind, &[SizePreset])] = &[
    (
        WorkloadKind::Va,
        &[
            ("4MB", &[1_048_576]),
            ("64MB", &[16_777_216]),
            ("256MB", &[67_108_864]),
        ],
    ),
    (
        WorkloadKind::Geva,
        &[
            ("4MB", &[1_048_576]),
            ("64MB", &[16_777_216]),
            ("256MB", &[67_108_864]),
        ],
    ),
    (
        WorkloadKind::Red,
        &[
            ("4MB", &[1_048_576]),
            ("64MB", &[16_777_216]),
            ("256MB", &[67_108_864]),
            ("512MB", &[134_217_728]),
        ],
    ),
    (
        WorkloadKind::Mtv,
        &[
            ("4MB", &[1024, 1024]),
            ("64MB", &[4096, 4096]),
            ("256MB", &[8192, 8192]),
            ("512MB", &[8192, 16384]),
        ],
    ),
    (
        WorkloadKind::Gemv,
        &[
            ("4MB", &[1024, 1024]),
            ("64MB", &[4096, 4096]),
            ("256MB", &[8192, 8192]),
            ("512MB", &[8192, 16384]),
        ],
    ),
    (
        WorkloadKind::Ttv,
        &[
            ("4MB", &[32, 64, 512]),
            ("64MB", &[128, 256, 512]),
            ("256MB", &[256, 512, 512]),
            ("512MB", &[512, 512, 512]),
        ],
    ),
    (
        WorkloadKind::Mmtv,
        &[
            ("4MB", &[32, 64, 512]),
            ("64MB", &[128, 256, 512]),
            ("256MB", &[256, 512, 512]),
            ("512MB", &[512, 512, 512]),
        ],
    ),
    (
        WorkloadKind::Bgemm,
        &[
            ("4MB", &[16, 256, 256, 256]),
            ("64MB", &[64, 512, 512, 512]),
        ],
    ),
    (
        WorkloadKind::Attn,
        &[("4MB", &[64, 512, 32]), ("64MB", &[256, 1024, 64])],
    ),
    (
        WorkloadKind::Qgemv,
        &[
            ("4MB", &[2048, 2048]),
            ("64MB", &[8192, 8192]),
            ("256MB", &[16384, 16384]),
        ],
    ),
];

/// Returns the preset workloads for one kind.
pub fn presets_for(kind: WorkloadKind) -> Vec<(String, Workload)> {
    SIZE_PRESETS
        .iter()
        .find(|(k, _)| *k == kind)
        .map(|(_, sizes)| {
            sizes
                .iter()
                .map(|(label, shape)| ((*label).to_string(), Workload::new(kind, shape.to_vec())))
                .collect()
        })
        .unwrap_or_default()
}

/// Scaled-down versions of every preset (same aspect ratios, ~1/64 of the
/// data) used by integration tests and quick demo runs.
pub fn small_presets(kind: WorkloadKind) -> Vec<Workload> {
    presets_for(kind)
        .into_iter()
        .map(|(_, w)| {
            let shape: Vec<i64> = match w.shape.len() {
                1 => vec![(w.shape[0] / 64).max(64)],
                2 => vec![(w.shape[0] / 8).max(16), (w.shape[1] / 8).max(16)],
                4 => vec![
                    (w.shape[0] / 4).max(2),
                    (w.shape[1] / 4).max(8),
                    (w.shape[2] / 4).max(8),
                    (w.shape[3] / 4).max(8),
                ],
                _ => vec![
                    (w.shape[0] / 4).max(4),
                    (w.shape[1] / 4).max(8),
                    (w.shape[2] / 4).max(8),
                ],
            };
            Workload::new(kind, shape)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_sizes() {
        let mtv = presets_for(WorkloadKind::Mtv);
        assert_eq!(mtv.len(), 4);
        let (label, w) = &mtv[1];
        assert_eq!(label, "64MB");
        assert_eq!(w.shape, vec![4096, 4096]);
        assert_eq!(w.main_tensor_bytes(), 64 * 1024 * 1024);
    }

    #[test]
    fn compute_defs_build_for_every_preset() {
        for kind in WorkloadKind::ALL {
            for (_, w) in presets_for(kind) {
                let def = w.compute_def();
                assert!(def.total_bytes() > 0);
                assert_eq!(def.has_reduce(), kind.has_reduce());
            }
        }
    }

    #[test]
    fn labels_are_informative() {
        let w = Workload::new(WorkloadKind::Gemv, vec![4096, 4096]);
        assert_eq!(w.label(), "gemv-64MB");
    }

    #[test]
    fn names_parse_back_and_untrusted_shapes_validate() {
        for kind in WorkloadKind::ALL {
            assert_eq!(WorkloadKind::parse(kind.name()), Some(kind));
            let good = Workload::new(kind, vec![64; kind.rank()]);
            assert!(good.try_compute_def().is_some());
            let short = Workload::new(kind, vec![64; kind.rank() - 1]);
            assert!(short.try_compute_def().is_none());
            let negative = Workload::new(kind, vec![-64; kind.rank()]);
            assert!(negative.try_compute_def().is_none());
        }
        assert_eq!(WorkloadKind::parse("conv2d"), None);
        assert_eq!(WorkloadKind::parse("MTV"), None, "names are lowercase");
    }

    #[test]
    fn extension_kinds_size_presets() {
        let bgemm = presets_for(WorkloadKind::Bgemm);
        assert_eq!(bgemm[1].0, "64MB");
        assert_eq!(bgemm[1].1.main_tensor_bytes(), 64 * 1024 * 1024);
        let attn = presets_for(WorkloadKind::Attn);
        assert_eq!(attn[0].1.main_tensor_bytes(), 4 * 1024 * 1024);
        let qgemv = presets_for(WorkloadKind::Qgemv);
        // int8 elements: a 8192x8192 main tensor is 64 MB, not 256 MB.
        assert_eq!(qgemv[1].1.main_tensor_bytes(), 64 * 1024 * 1024);
        assert_eq!(qgemv[1].1.label(), "qgemv-64MB");
    }

    #[test]
    fn small_presets_shrink() {
        for kind in WorkloadKind::ALL {
            for (small, (_, big)) in small_presets(kind).iter().zip(presets_for(kind)) {
                assert!(small.main_tensor_bytes() < big.main_tensor_bytes());
            }
        }
    }
}
