//! GPT-J layer shapes (Fig. 10 of the paper).
//!
//! The paper evaluates the two operation classes that dominate GPT-J
//! inference on UPMEM:
//!
//! * **FC layers** — four MTV shapes per model (QKV generation, QKV
//!   projection, FC, FC projection), evaluated as `M × K` matrices times a
//!   vector,
//! * **MHA layers** — MMTV with shape `(batch × heads, tokens, 256)`.
//!
//! GPT-J 6B has 16 heads and hidden size 4096; the paper's 30B configuration
//! has 28 heads and hidden size 7168.

use super::ops::{Workload, WorkloadKind};

/// GPT-J model variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GptJModel {
    /// GPT-J 6B: 16 attention heads, hidden dimension 4096.
    B6,
    /// GPT-J 30B (paper configuration): 28 heads, hidden dimension 7168.
    B30,
}

impl GptJModel {
    /// Number of attention heads.
    pub fn heads(self) -> i64 {
        match self {
            GptJModel::B6 => 16,
            GptJModel::B30 => 28,
        }
    }

    /// Hidden dimension.
    pub fn hidden(self) -> i64 {
        match self {
            GptJModel::B6 => 4096,
            GptJModel::B30 => 7168,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            GptJModel::B6 => "GPT-J 6B",
            GptJModel::B30 => "GPT-J 30B",
        }
    }
}

/// One named MTV shape of the fully-connected part of a transformer block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FcLayer {
    /// Layer name.
    pub name: &'static str,
    /// Output rows (M).
    pub m: i64,
    /// Reduction length (K).
    pub k: i64,
}

/// The four MTV shapes of one transformer block (Fig. 10(b)/(d) columns).
pub fn fc_layers(model: GptJModel) -> Vec<FcLayer> {
    let h = model.hidden();
    vec![
        FcLayer {
            name: "qkv_gen",
            m: h,
            k: h,
        },
        FcLayer {
            name: "qkv_proj",
            m: 3 * h,
            k: h,
        },
        FcLayer {
            name: "fc",
            m: 4 * h,
            k: h,
        },
        FcLayer {
            name: "fc_proj",
            m: h,
            k: 4 * h,
        },
    ]
}

/// The MTV workload of one FC layer.
pub fn fc_workload(layer: &FcLayer) -> Workload {
    Workload::new(WorkloadKind::Mtv, vec![layer.m, layer.k])
}

/// The MMTV workload of the multi-head attention score computation for a
/// given batch size and token count: shape
/// `(batch × heads, tokens, 256)`.
pub fn mha_workload(model: GptJModel, batch: i64, tokens: i64) -> Workload {
    Workload::new(WorkloadKind::Mmtv, vec![batch * model.heads(), tokens, 256])
}

/// Per-head dimension (`hidden / heads`); 256 for both paper models.
pub fn head_dim(model: GptJModel) -> i64 {
    model.hidden() / model.heads()
}

/// The **fused attention block** of one decode step as a single
/// [`WorkloadKind::Attn`] workload: per (batch × head) lane, the query
/// attends over `tokens` cached keys and aggregates the values —
/// `O(b,d) = Σ_j Σ_e Q(b,e) K(b,j,e) V(b,j,d)` with shape
/// `(batch × heads, tokens, head_dim)`.  This is the whole MHA inner
/// block the [`mha_workload`] MMTV only covers the score half of.
pub fn attention_block_workload(model: GptJModel, batch: i64, tokens: i64) -> Workload {
    Workload::new(
        WorkloadKind::Attn,
        vec![batch * model.heads(), tokens, head_dim(model)],
    )
}

/// The prefill-phase attention score computation as a batched GEMM
/// (`Q Kᵀ` per head over a whole token window): shape
/// `(batch × heads, tokens, tokens, head_dim)`.
pub fn prefill_scores_workload(model: GptJModel, batch: i64, tokens: i64) -> Workload {
    Workload::new(
        WorkloadKind::Bgemm,
        vec![batch * model.heads(), tokens, tokens, head_dim(model)],
    )
}

/// The int8-quantized form of one FC layer (weight-quantized inference):
/// the same `M × K` matrix-vector product with 1-byte operands.
pub fn quantized_fc_workload(layer: &FcLayer) -> Workload {
    Workload::new(WorkloadKind::Qgemv, vec![layer.m, layer.k])
}

/// Batch sizes evaluated in Fig. 10.
pub const BATCH_SIZES: [i64; 3] = [1, 4, 16];

/// Token counts evaluated in Fig. 10.
pub const TOKEN_COUNTS: [i64; 4] = [64, 128, 256, 512];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_parameters() {
        assert_eq!(GptJModel::B6.heads(), 16);
        assert_eq!(GptJModel::B6.hidden(), 4096);
        assert_eq!(GptJModel::B30.heads(), 28);
        assert_eq!(GptJModel::B30.label(), "GPT-J 30B");
    }

    #[test]
    fn fc_shapes_match_fig10() {
        let layers = fc_layers(GptJModel::B6);
        let shapes: Vec<(i64, i64)> = layers.iter().map(|l| (l.m, l.k)).collect();
        assert!(shapes.contains(&(4096, 4096)));
        assert!(shapes.contains(&(12288, 4096)));
        assert!(shapes.contains(&(16384, 4096)));
        assert!(shapes.contains(&(4096, 16384)));
        let layers30 = fc_layers(GptJModel::B30);
        assert!(layers30.iter().any(|l| l.m == 28672 && l.k == 7168));
    }

    #[test]
    fn mha_shape_scales_with_batch_and_tokens() {
        let w = mha_workload(GptJModel::B6, 4, 128);
        assert_eq!(w.shape, vec![64, 128, 256]);
        let w = mha_workload(GptJModel::B30, 16, 512);
        assert_eq!(w.shape, vec![448, 512, 256]);
        assert_eq!(w.kind, WorkloadKind::Mmtv);
    }

    #[test]
    fn attention_block_and_prefill_shapes() {
        assert_eq!(head_dim(GptJModel::B6), 256);
        assert_eq!(head_dim(GptJModel::B30), 256);
        let w = attention_block_workload(GptJModel::B6, 4, 128);
        assert_eq!(w.kind, WorkloadKind::Attn);
        assert_eq!(w.shape, vec![64, 128, 256]);
        assert!(w.try_compute_def().is_some());
        let w = prefill_scores_workload(GptJModel::B6, 1, 64);
        assert_eq!(w.kind, WorkloadKind::Bgemm);
        assert_eq!(w.shape, vec![16, 64, 64, 256]);
        assert!(w.try_compute_def().is_some());
        let q = quantized_fc_workload(&fc_layers(GptJModel::B6)[0]);
        assert_eq!(q.kind, WorkloadKind::Qgemv);
        assert_eq!(q.shape, vec![4096, 4096]);
    }

    #[test]
    fn fc_workload_is_mtv() {
        let layer = &fc_layers(GptJModel::B6)[0];
        let w = fc_workload(layer);
        assert_eq!(w.kind, WorkloadKind::Mtv);
        assert_eq!(w.shape, vec![4096, 4096]);
    }
}
