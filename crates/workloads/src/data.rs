//! Deterministic input generation and result comparison helpers.

use atim_tir::compute::ComputeDef;

/// Generates deterministic pseudo-random inputs for a computation.
///
/// Float tensors get small multiples of 0.25 so that reductions over
/// millions of elements stay well inside `f32` precision and comparisons can
/// use tight tolerances.  Integer-typed tensors (e.g. the i8 operands of
/// `qgemv`) get whole numbers in `[-8, 7]` — exactly representable in both
/// the integer evaluation path and the f32 reference, so the two agree
/// bit-for-bit instead of diverging on fractional values an int8 buffer
/// cannot hold.
pub fn generate_inputs(def: &ComputeDef, seed: u64) -> Vec<Vec<f32>> {
    (0..def.inputs.len())
        .map(|t| {
            let n = def.input_len(t);
            let scale = if def.inputs[t].dtype.is_float() {
                0.25
            } else {
                1.0
            };
            let mut state = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(t as u64 + 1);
            (0..n)
                .map(|_| {
                    // xorshift64*
                    state ^= state >> 12;
                    state ^= state << 25;
                    state ^= state >> 27;
                    let v = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
                    ((v >> 60) as i64 - 8) as f32 * scale
                })
                .collect()
        })
        .collect()
}

/// Maximum absolute difference between two result vectors.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "result length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

/// Relative tolerance check suitable for accumulated `f32` reductions.
pub fn results_match(a: &[f32], b: &[f32], reduce_len: usize) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let tol = 1e-4f32 * (reduce_len.max(1) as f32).sqrt() + 1e-3;
    a.iter().zip(b).all(|(x, y)| {
        let scale = x.abs().max(y.abs()).max(1.0);
        (x - y).abs() <= tol * scale
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_are_deterministic_and_shaped() {
        let def = ComputeDef::mtv("mtv", 8, 16);
        let a = generate_inputs(&def, 42);
        let b = generate_inputs(&def, 42);
        let c = generate_inputs(&def, 43);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].len(), 128);
        assert_eq!(a[1].len(), 16);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn values_are_bounded() {
        let def = ComputeDef::va("va", 1000);
        let ins = generate_inputs(&def, 7);
        assert!(ins[0].iter().all(|v| v.abs() <= 2.0));
    }

    #[test]
    fn diff_helpers() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 2.0]), 0.5);
        assert!(results_match(&[1.0, 2.0], &[1.0001, 2.0], 4));
        assert!(!results_match(&[1.0], &[2.0], 4));
        assert!(!results_match(&[1.0], &[1.0, 2.0], 4));
    }
}
