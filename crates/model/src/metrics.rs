//! Ranking metrics for cost estimators: what the search actually needs from
//! a model is not calibrated latencies but the right *order* among the
//! candidates of one workload/shape, so quality is measured per group.

use atim_autotune::CostEstimator;

use crate::dataset::Dataset;

/// Held-out ranking quality of one estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankingMetrics {
    /// Fraction of comparable within-group pairs ordered correctly
    /// (prediction ties earn half credit); `0.5` is chance.
    pub pairwise_accuracy: f64,
    /// Mean per-group overlap between the predicted and the true top-`k`.
    pub recall_at_k: f64,
    /// The `k` used for [`RankingMetrics::recall_at_k`].
    pub k: usize,
    /// Comparable pairs scored.
    pub pairs: usize,
    /// Groups contributing to the recall average.
    pub groups: usize,
}

/// Scores within-group pairwise ordering accuracy.
///
/// Pairs with equal latency are incomparable and skipped; pairs the model
/// scores equal earn half credit (a coin flip). Returns `0.5` (chance) when
/// no pair is comparable.
pub fn pairwise_accuracy(scores: &[f64], latencies: &[f64], group_of: &[usize]) -> f64 {
    let mut credit = 0.0;
    let mut total = 0usize;
    for i in 0..scores.len() {
        for j in (i + 1)..scores.len() {
            if group_of[i] != group_of[j] || latencies[i] == latencies[j] {
                continue;
            }
            total += 1;
            if scores[i] == scores[j] {
                credit += 0.5;
            } else if (scores[i] < scores[j]) == (latencies[i] < latencies[j]) {
                credit += 1.0;
            }
        }
    }
    if total == 0 {
        return 0.5;
    }
    credit / total as f64
}

/// Mean per-group recall@k: how much of each group's true fastest `k` the
/// model's predicted top-`k` recovers. Groups with fewer than two samples
/// are skipped; returns `0.0` when no group qualifies.
pub fn recall_at_k(scores: &[f64], latencies: &[f64], group_of: &[usize], k: usize) -> f64 {
    let num_groups = group_of.iter().copied().max().map_or(0, |g| g + 1);
    let mut sum = 0.0;
    let mut counted = 0usize;
    for g in 0..num_groups {
        let members: Vec<usize> = (0..scores.len()).filter(|&i| group_of[i] == g).collect();
        if members.len() < 2 {
            continue;
        }
        let k_eff = k.min(members.len());
        let top = |key: &dyn Fn(usize) -> f64| -> Vec<usize> {
            let mut order = members.clone();
            // Index tie-break keeps the selection deterministic.
            order.sort_by(|&a, &b| {
                key(a)
                    .partial_cmp(&key(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            order.truncate(k_eff);
            order
        };
        let truth = top(&|i| latencies[i]);
        let predicted = top(&|i| scores[i]);
        let hits = predicted.iter().filter(|i| truth.contains(i)).count();
        sum += hits as f64 / k_eff as f64;
        counted += 1;
    }
    if counted == 0 {
        return 0.0;
    }
    sum / counted as f64
}

/// Evaluates an estimator's predictions over a dataset.
pub fn evaluate(model: &dyn CostEstimator, data: &Dataset, k: usize) -> RankingMetrics {
    let scores: Vec<f64> = data.features.iter().map(|x| model.predict(x)).collect();
    evaluate_scores(&scores, data, k)
}

/// As [`evaluate`], over precomputed scores (lower = predicted faster).
pub fn evaluate_scores(scores: &[f64], data: &Dataset, k: usize) -> RankingMetrics {
    let mut pairs = 0usize;
    for i in 0..data.len() {
        for j in (i + 1)..data.len() {
            if data.group_of[i] == data.group_of[j] && data.latencies[i] != data.latencies[j] {
                pairs += 1;
            }
        }
    }
    let groups = {
        let mut sizes = vec![0usize; data.groups.len()];
        for &g in &data.group_of {
            sizes[g] += 1;
        }
        sizes.iter().filter(|&&n| n >= 2).count()
    };
    RankingMetrics {
        pairwise_accuracy: pairwise_accuracy(scores, &data.latencies, &data.group_of),
        recall_at_k: recall_at_k(scores, &data.latencies, &data.group_of, k),
        k,
        pairs,
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_accuracy_scores_order_ties_and_chance() {
        let lat = [1.0, 2.0, 3.0, 4.0];
        let groups = [0, 0, 0, 0];
        assert_eq!(pairwise_accuracy(&[1.0, 2.0, 3.0, 4.0], &lat, &groups), 1.0);
        assert_eq!(pairwise_accuracy(&[4.0, 3.0, 2.0, 1.0], &lat, &groups), 0.0);
        // All predictions tied: every pair earns half credit.
        assert_eq!(pairwise_accuracy(&[7.0; 4], &lat, &groups), 0.5);
        // No comparable pair at all: chance.
        assert_eq!(pairwise_accuracy(&[1.0, 2.0], &[5.0, 5.0], &[0, 0]), 0.5);
        // Cross-group pairs are never compared.
        assert_eq!(
            pairwise_accuracy(&[1.0, 9.0], &[1.0, 2.0], &[0, 1]),
            0.5,
            "only cross-group pairs exist, so none are comparable"
        );
    }

    #[test]
    fn recall_at_k_measures_top_set_overlap() {
        let lat = [1.0, 2.0, 3.0, 4.0];
        let groups = [0; 4];
        // Perfect ordering: full recall.
        assert_eq!(recall_at_k(&[1.0, 2.0, 3.0, 4.0], &lat, &groups, 2), 1.0);
        // Reversed: predicted top-2 misses the true top-2 entirely.
        assert_eq!(recall_at_k(&[4.0, 3.0, 2.0, 1.0], &lat, &groups, 2), 0.0);
        // Half overlap.
        assert_eq!(recall_at_k(&[1.0, 4.0, 2.0, 3.0], &lat, &groups, 2), 0.5);
        // k larger than the group degenerates to full overlap.
        assert_eq!(recall_at_k(&[9.0, 8.0, 7.0, 6.0], &lat, &groups, 10), 1.0);
    }

    #[test]
    fn recall_averages_over_groups() {
        let lat = [1.0, 2.0, 1.0, 2.0];
        let groups = [0, 0, 1, 1];
        // Group 0 ranked correctly, group 1 reversed, k=1.
        let r = recall_at_k(&[1.0, 2.0, 5.0, 4.0], &lat, &groups, 1);
        assert_eq!(r, 0.5);
    }
}
