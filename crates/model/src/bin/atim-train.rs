//! `atim-train` — offline trainer for the gradient-boosted cost model.
//!
//! Ingests a directory of tuning logs (the TuneLog corpus an `atim-bench`
//! sweep leaves behind), holds out every N-th workload/shape group, trains
//! a GBDT on the rest, and reports held-out ranking quality against the
//! ridge baseline trained on the same split. Emits the model file (loadable
//! by `SessionBuilder::pretrained_cost_model_file` or `GbdtModel::load`)
//! and a JSON metrics report.
//!
//! ```text
//! atim-train --corpus runs/tune_logs --out model.json --metrics metrics.json
//! ```
//!
//! Exits nonzero on corpus/training failure, or when `--min-accuracy` is
//! given and the held-out GBDT pairwise accuracy lands below it (the CI
//! regression gate).

use std::process::ExitCode;

use atim_autotune::json::{encode_f64, Json};
use atim_autotune::{CostEstimator, CostModel};
use atim_model::{evaluate, Dataset, GbdtModel, GbdtParams, Objective, RankingMetrics};
use atim_sim::UpmemConfig;

struct Args {
    corpus: String,
    out: String,
    metrics: String,
    holdout_every: usize,
    rounds: usize,
    depth: usize,
    learning_rate: f64,
    objective: Objective,
    k: usize,
    min_accuracy: Option<f64>,
    hw: UpmemConfig,
}

const USAGE: &str = "usage: atim-train --corpus DIR [options]

options:
  --corpus DIR          directory of tuning logs named {kind}_{shape}_t{trials}.json (required)
  --out PATH            model file to write (default atim_model.json)
  --metrics PATH        metrics JSON to write (default atim_train_metrics.json)
  --holdout N           hold out every N-th workload/shape group (default 4; 0 disables)
  --rounds N            boosting rounds (default 200)
  --depth N             maximum tree depth (default 3)
  --learning-rate F     shrinkage (default 0.1)
  --objective NAME      squared-log | pairwise-rank (default squared-log)
  --k N                 k for recall@k (default 8)
  --min-accuracy F      exit nonzero if held-out GBDT pairwise accuracy < F
  --hw NAME             machine the logs were tuned on: default | small (default: default)";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        corpus: String::new(),
        out: "atim_model.json".into(),
        metrics: "atim_train_metrics.json".into(),
        holdout_every: 4,
        rounds: 200,
        depth: 3,
        learning_rate: 0.1,
        objective: Objective::SquaredLog,
        k: 8,
        min_accuracy: None,
        hw: UpmemConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--corpus" => args.corpus = value("--corpus")?,
            "--out" => args.out = value("--out")?,
            "--metrics" => args.metrics = value("--metrics")?,
            "--holdout" => {
                args.holdout_every = value("--holdout")?
                    .parse()
                    .map_err(|e| format!("--holdout: {e}"))?;
            }
            "--rounds" => {
                args.rounds = value("--rounds")?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?;
            }
            "--depth" => {
                args.depth = value("--depth")?
                    .parse()
                    .map_err(|e| format!("--depth: {e}"))?;
            }
            "--learning-rate" => {
                args.learning_rate = value("--learning-rate")?
                    .parse()
                    .map_err(|e| format!("--learning-rate: {e}"))?;
            }
            "--objective" => {
                let raw = value("--objective")?;
                args.objective = Objective::parse(&raw).ok_or_else(|| {
                    format!("unknown objective {raw:?} (squared-log | pairwise-rank)")
                })?;
            }
            "--k" => args.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--min-accuracy" => {
                args.min_accuracy = Some(
                    value("--min-accuracy")?
                        .parse()
                        .map_err(|e| format!("--min-accuracy: {e}"))?,
                );
            }
            "--hw" => {
                args.hw = match value("--hw")?.as_str() {
                    "default" => UpmemConfig::default(),
                    "small" => UpmemConfig::small(),
                    other => return Err(format!("unknown --hw {other:?} (default | small)")),
                };
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if args.corpus.is_empty() {
        return Err(format!("--corpus is required\n{USAGE}"));
    }
    Ok(args)
}

fn metrics_json(m: &RankingMetrics) -> Json {
    Json::Obj(vec![
        ("pairwise_accuracy".into(), encode_f64(m.pairwise_accuracy)),
        (format!("recall_at_{}", m.k), encode_f64(m.recall_at_k)),
        ("pairs".into(), Json::Int(m.pairs as i64)),
        ("groups".into(), Json::Int(m.groups as i64)),
    ])
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let (data, summary) = match Dataset::load_dir(&args.corpus, &args.hw) {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("atim-train: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "corpus: {} file(s), {} record(s), {} group(s), {} skipped",
        summary.files_loaded,
        summary.records,
        data.groups.len(),
        summary.skipped.len()
    );
    for skip in &summary.skipped {
        println!("  skipped {}: {}", skip.path.display(), skip.reason);
    }

    let (train, holdout) = data.split_holdout(args.holdout_every);
    let eval_split = if holdout.is_empty() { &train } else { &holdout };
    println!(
        "split: {} training sample(s) in {} group(s), {} held-out sample(s) in {} group(s)",
        train.len(),
        train.groups.len(),
        holdout.len(),
        holdout.groups.len()
    );

    let mut model = GbdtModel::new(GbdtParams {
        max_depth: args.depth,
        learning_rate: args.learning_rate,
        objective: args.objective,
        max_trees: args.rounds,
        ..GbdtParams::default()
    });
    model.boost(&train.samples(), Some(&train.group_of), args.rounds);
    if !model.is_trained() {
        eprintln!(
            "atim-train: corpus too small to train ({} sample(s))",
            train.len()
        );
        return ExitCode::FAILURE;
    }

    let mut ridge = CostModel::new();
    CostEstimator::fit(&mut ridge, &train.samples());

    let gbdt_metrics = evaluate(&model, eval_split, args.k);
    let ridge_metrics = evaluate(&ridge, eval_split, args.k);
    let split_name = if holdout.is_empty() {
        "train"
    } else {
        "holdout"
    };
    println!(
        "gbdt  ({split_name}): pairwise accuracy {:.4}, recall@{} {:.4}  [{} trees]",
        gbdt_metrics.pairwise_accuracy,
        args.k,
        gbdt_metrics.recall_at_k,
        model.num_trees()
    );
    println!(
        "ridge ({split_name}): pairwise accuracy {:.4}, recall@{} {:.4}",
        ridge_metrics.pairwise_accuracy, args.k, ridge_metrics.recall_at_k
    );

    if let Err(e) = model.save(&args.out) {
        eprintln!("atim-train: writing {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("model -> {}", args.out);

    let report = Json::Obj(vec![
        ("version".into(), Json::Int(1)),
        (
            "corpus".into(),
            Json::Obj(vec![
                ("dir".into(), Json::Str(args.corpus.clone())),
                (
                    "files_loaded".into(),
                    Json::Int(summary.files_loaded as i64),
                ),
                (
                    "files_skipped".into(),
                    Json::Int(summary.skipped.len() as i64),
                ),
                ("records".into(), Json::Int(summary.records as i64)),
                ("groups".into(), Json::Int(data.groups.len() as i64)),
                (
                    "skipped".into(),
                    Json::Arr(
                        summary
                            .skipped
                            .iter()
                            .map(|s| {
                                Json::Obj(vec![
                                    ("path".into(), Json::Str(s.path.display().to_string())),
                                    ("reason".into(), Json::Str(s.reason.clone())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "split".into(),
            Json::Obj(vec![
                ("holdout_every".into(), Json::Int(args.holdout_every as i64)),
                ("train_samples".into(), Json::Int(train.len() as i64)),
                ("holdout_samples".into(), Json::Int(holdout.len() as i64)),
                ("evaluated_on".into(), Json::Str(split_name.into())),
            ]),
        ),
        (
            "model".into(),
            Json::Obj(vec![
                ("path".into(), Json::Str(args.out.clone())),
                ("objective".into(), Json::Str(args.objective.name().into())),
                ("trees".into(), Json::Int(model.num_trees() as i64)),
            ]),
        ),
        ("gbdt".into(), metrics_json(&gbdt_metrics)),
        ("ridge".into(), metrics_json(&ridge_metrics)),
    ]);
    if let Err(e) = std::fs::write(&args.metrics, report.to_string() + "\n") {
        eprintln!("atim-train: writing {}: {e}", args.metrics);
        return ExitCode::FAILURE;
    }
    println!("metrics -> {}", args.metrics);

    if let Some(floor) = args.min_accuracy {
        if gbdt_metrics.pairwise_accuracy < floor {
            eprintln!(
                "atim-train: held-out pairwise accuracy {:.4} is below the --min-accuracy floor {floor}",
                gbdt_metrics.pairwise_accuracy
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
