//! # atim-model — a learned cost model over the TuneLog corpus
//!
//! The gradient-boosted companion to `atim-autotune`'s resident ridge
//! regression: an in-tree, dependency-free GBDT regressor
//! ([`GbdtModel`]) that plugs into the autotuner's
//! [`atim_autotune::CostEstimator`] seam (`ATIM_COST_MODEL=gbdt`), plus the
//! offline side of the story:
//!
//! * [`dataset`] — ingest a directory of [`atim_autotune::log::TuneLog`]s
//!   (v1 and v2) across workloads and shapes into grouped
//!   `(features, latency)` samples, tolerating individually corrupt files.
//! * [`gbdt`] — the histogram-based boosted-tree learner: squared-error on
//!   log-latency or pairwise ranking, deterministic retrains, online
//!   per-round updates during search, versioned JSON persistence.
//! * [`metrics`] — grouped ranking metrics (pairwise accuracy, recall@k)
//!   for held-out evaluation against the ridge baseline.
//!
//! The `atim-train` binary trains a global model on a corpus and emits the
//! model file plus a metrics report; `atim-core`'s `SessionBuilder` can
//! warm-start any session from such a pretrained model so unseen shapes
//! start from a transferred ranking instead of a cold estimator (the
//! features are dimensionless log-ratios, so models transfer across
//! shapes).
//!
//! # Example
//!
//! ```
//! use atim_autotune::{CostEstimator, NUM_FEATURES};
//! use atim_model::{GbdtModel, GbdtParams};
//!
//! let samples: Vec<([f64; NUM_FEATURES], f64)> = (0..32)
//!     .map(|i| {
//!         let mut x = [0.0; NUM_FEATURES];
//!         x[0] = (i % 8) as f64;
//!         (x, 1e-3 * (1.0 + x[0] * x[0]))
//!     })
//!     .collect();
//! let mut model = GbdtModel::new(GbdtParams::default());
//! model.fit(&samples);
//! assert!(model.is_trained());
//!
//! // Persisted models reload bit-identically.
//! let reloaded = GbdtModel::from_json_str(&model.to_json_string()).unwrap();
//! assert_eq!(reloaded.predict(&samples[0].0), model.predict(&samples[0].0));
//! ```

pub mod dataset;
pub mod gbdt;
pub mod metrics;

pub use dataset::{
    workload_from_filename, CorpusGroup, CorpusSummary, Dataset, DatasetError, SkippedFile,
};
pub use gbdt::{GbdtModel, GbdtParams, ModelError, Objective, MIN_MODEL_VERSION, MODEL_VERSION};
pub use metrics::{evaluate, evaluate_scores, pairwise_accuracy, recall_at_k, RankingMetrics};
