//! The TuneLog training corpus: a directory of tuning logs (v1 and v2)
//! across workloads and shapes, flattened into `(features, latency, group)`
//! samples for offline training and held-out ranking evaluation.
//!
//! Log files do not record the tensor shape, only the workload name; the
//! corpus loader recovers the shape from the `atim-bench` filename
//! convention `{kind}_{d1}x{d2}x…_t{trials}.json` (see
//! `atim_bench::tune_log_path`). Files that do not match the convention,
//! fail to parse, or disagree with their filename are **skipped and
//! reported** in the [`CorpusSummary`], never aborting the load — a single
//! corrupt log must not take down a corpus-wide training run.

use std::fmt;
use std::path::{Path, PathBuf};

use atim_autotune::log::TuneLog;
use atim_autotune::{featurize, NUM_FEATURES};
use atim_sim::UpmemConfig;
use atim_workloads::{Workload, WorkloadKind};

/// One sample group (= one source log file = one workload/shape search).
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusGroup {
    /// Source log file.
    pub path: PathBuf,
    /// Workload kind name (e.g. `"mtv"`).
    pub workload: String,
    /// Tensor shape recovered from the filename.
    pub shape: Vec<i64>,
    /// Number of samples contributed.
    pub records: usize,
}

/// A skipped corpus file and why it was skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedFile {
    /// The offending file.
    pub path: PathBuf,
    /// Human-readable reason.
    pub reason: String,
}

/// What a [`Dataset::load_dir`] call ingested and what it had to skip.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorpusSummary {
    /// Log files successfully ingested.
    pub files_loaded: usize,
    /// Total training records across loaded files.
    pub records: usize,
    /// Files skipped (corrupt, unrecognized, mismatched), with reasons.
    pub skipped: Vec<SkippedFile>,
}

/// A directory-level failure loading a corpus (individual bad files are
/// tolerated and land in [`CorpusSummary::skipped`] instead).
#[derive(Debug)]
pub enum DatasetError {
    /// The corpus directory itself could not be read.
    Io(PathBuf, std::io::Error),
    /// The corpus directory contained no loadable log file.
    Empty(PathBuf),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Io(path, e) => {
                write!(f, "cannot read corpus directory {}: {e}", path.display())
            }
            DatasetError::Empty(path) => {
                write!(
                    f,
                    "corpus directory {} holds no loadable tuning log",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// A flattened training corpus: parallel feature/latency/group arrays.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    /// Trace feature vectors (see [`atim_autotune::featurize`]).
    pub features: Vec<[f64; NUM_FEATURES]>,
    /// Measured latencies in seconds, parallel to `features`.
    pub latencies: Vec<f64>,
    /// Group id per sample (index into [`Dataset::groups`]), parallel to
    /// `features`. Ranking metrics only compare within a group.
    pub group_of: Vec<usize>,
    /// Group metadata in id order.
    pub groups: Vec<CorpusGroup>,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the corpus holds no samples.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// The `(features, latency)` pairs the [`atim_autotune::CostEstimator`]
    /// seam trains on.
    pub fn samples(&self) -> Vec<([f64; NUM_FEATURES], f64)> {
        self.features
            .iter()
            .zip(&self.latencies)
            .map(|(x, &y)| (*x, y))
            .collect()
    }

    /// Loads every `.json` / `.jsonl` tuning log under `dir` (sorted by
    /// filename, so sample and group order is deterministic), featurizing
    /// each history record against `hw`.
    ///
    /// Individually corrupt or unrecognized files are tolerated: they are
    /// skipped and reported in the returned [`CorpusSummary`].
    ///
    /// # Errors
    /// [`DatasetError::Io`] when the directory cannot be read,
    /// [`DatasetError::Empty`] when nothing in it loads.
    pub fn load_dir(
        dir: impl AsRef<Path>,
        hw: &UpmemConfig,
    ) -> Result<(Dataset, CorpusSummary), DatasetError> {
        let dir = dir.as_ref();
        let entries = std::fs::read_dir(dir).map_err(|e| DatasetError::Io(dir.to_path_buf(), e))?;
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                matches!(
                    p.extension().and_then(|e| e.to_str()),
                    Some("json") | Some("jsonl")
                )
            })
            .collect();
        paths.sort();

        let mut data = Dataset::default();
        let mut summary = CorpusSummary::default();
        for path in paths {
            match ingest_file(&path, hw, &mut data) {
                Ok(records) => {
                    summary.files_loaded += 1;
                    summary.records += records;
                }
                Err(reason) => summary.skipped.push(SkippedFile {
                    path: path.clone(),
                    reason,
                }),
            }
        }
        if summary.files_loaded == 0 {
            return Err(DatasetError::Empty(dir.to_path_buf()));
        }
        Ok((data, summary))
    }

    /// Deterministic held-out split by **group**: every `every`-th group
    /// (in load order) becomes hold-out, the rest train. Splitting whole
    /// groups keeps evaluation honest about cross-shape transfer — a
    /// held-out search is entirely unseen at train time.
    ///
    /// `every < 2` puts everything in the training half.
    pub fn split_holdout(&self, every: usize) -> (Dataset, Dataset) {
        let held = |g: usize| every >= 2 && (g + 1) % every == 0;
        let mut train = Dataset::default();
        let mut holdout = Dataset::default();
        let mut remap: Vec<Option<usize>> = vec![None; self.groups.len()];
        for i in 0..self.len() {
            let g = self.group_of[i];
            let side = if held(g) { &mut holdout } else { &mut train };
            let new_g = *remap[g].get_or_insert_with(|| {
                side.groups.push(self.groups[g].clone());
                side.groups.len() - 1
            });
            side.features.push(self.features[i]);
            side.latencies.push(self.latencies[i]);
            side.group_of.push(new_g);
        }
        (train, holdout)
    }
}

/// Parses the bench filename convention `{kind}_{d1}x{d2}x…_t{trials}`.
///
/// The stem is anchored from the **right** — the last token is the trial
/// count, the one before it the shape, and everything leading is the kind
/// name — so every [`WorkloadKind`] ingests under the convention (batched
/// GEMM, attention and quantized kinds included), even if a future kind
/// name itself contains `_`.
///
/// Generator-comparison sweeps suffix the stem with a non-default
/// space-generator id (`mtv_64x64_t24_tiled`); the suffix is stripped
/// before parsing, so those logs train the corpus too.
///
/// Returns the workload on success; `None` when the stem does not match.
pub fn workload_from_filename(path: &Path) -> Option<Workload> {
    let stem = path.file_stem()?.to_str()?;
    let stem = atim_autotune::RESIDENT_GENERATOR_IDS
        .iter()
        .find_map(|id| stem.strip_suffix(&format!("_{id}")))
        .unwrap_or(stem);
    let (rest, trials) = stem.rsplit_once('_')?;
    let (kind, shape) = rest.rsplit_once('_')?;
    let kind = WorkloadKind::parse(kind)?;
    let shape: Vec<i64> = shape
        .split('x')
        .map(|d| d.parse::<i64>().ok())
        .collect::<Option<_>>()?;
    let trials = trials.strip_prefix('t')?;
    if trials.is_empty() || trials.parse::<u64>().is_err() {
        return None;
    }
    let workload = Workload::new(kind, shape);
    workload.try_compute_def()?;
    Some(workload)
}

fn ingest_file(path: &Path, hw: &UpmemConfig, data: &mut Dataset) -> Result<usize, String> {
    let workload = workload_from_filename(path).ok_or_else(|| {
        "filename does not match the {kind}_{shape}_t{trials} corpus convention".to_string()
    })?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let log = TuneLog::from_json_str(&text).map_err(|e| format!("corrupt tuning log: {e}"))?;
    let def = workload.compute_def();
    if log.workload != def.name {
        return Err(format!(
            "log records workload {:?} but the filename says {:?}",
            log.workload, def.name
        ));
    }
    let group = data.groups.len();
    let mut records = 0;
    for rec in &log.result.history {
        if !rec.latency_s.is_finite() || rec.latency_s <= 0.0 {
            continue;
        }
        data.features.push(featurize(&rec.trace, &def, hw));
        data.latencies.push(rec.latency_s);
        data.group_of.push(group);
        records += 1;
    }
    data.groups.push(CorpusGroup {
        path: path.to_path_buf(),
        workload: def.name.clone(),
        shape: workload.shape.clone(),
        records,
    });
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filename_convention_round_trips() {
        let w = workload_from_filename(Path::new("corpus/mtv_128x256_t24.json")).unwrap();
        assert_eq!(w.kind, WorkloadKind::Mtv);
        assert_eq!(w.shape, vec![128, 256]);
        let w = workload_from_filename(Path::new("mmtv_8x64x64_t24.json")).unwrap();
        assert_eq!(w.shape, vec![8, 64, 64]);
        let w = workload_from_filename(Path::new("red_65536_t48.jsonl")).unwrap();
        assert_eq!(w.shape, vec![65536]);
    }

    /// The sketch-space workload kinds (batched GEMM, the attention block,
    /// the int8 GEMV) ingest under the same convention instead of landing
    /// in [`CorpusSummary::skipped`].
    #[test]
    fn new_workload_kinds_parse_from_filenames() {
        let w = workload_from_filename(Path::new("bgemm_8x64x64x32_t24.json")).unwrap();
        assert_eq!(w.kind, WorkloadKind::Bgemm);
        assert_eq!(w.shape, vec![8, 64, 64, 32]);
        let w = workload_from_filename(Path::new("attn_16x256x64_t24.json")).unwrap();
        assert_eq!(w.kind, WorkloadKind::Attn);
        assert_eq!(w.shape, vec![16, 256, 64]);
        let w = workload_from_filename(Path::new("qgemv_1024x1024_t48.jsonl")).unwrap();
        assert_eq!(w.kind, WorkloadKind::Qgemv);
        assert_eq!(w.shape, vec![1024, 1024]);
        // Wrong ranks for the new kinds are still rejected.
        assert!(workload_from_filename(Path::new("bgemm_64x64_t24.json")).is_none());
        assert!(workload_from_filename(Path::new("attn_16x256_t24.json")).is_none());
    }

    /// Logs from non-default generator sweeps carry a generator-id suffix;
    /// the workload coordinates still parse (the corpus trains on them).
    #[test]
    fn generator_suffixed_filenames_parse() {
        let w = workload_from_filename(Path::new("mtv_128x256_t24_tiled.json")).unwrap();
        assert_eq!((w.kind, w.shape), (WorkloadKind::Mtv, vec![128, 256]));
        let w = workload_from_filename(Path::new("bgemm_8x64x64x32_t24_hw-native.json")).unwrap();
        assert_eq!(w.kind, WorkloadKind::Bgemm);
        // An unknown trailing token is still rejected.
        assert!(workload_from_filename(Path::new("mtv_128x256_t24_frob.json")).is_none());
    }

    #[test]
    fn bad_filenames_are_rejected() {
        for name in [
            "notes.json",
            "mtv_128x256.json",       // missing trials token
            "mtv_128x256_t24_x.json", // trailing token
            "frob_128x256_t24.json",  // unknown kind
            "mtv_128_t24.json",       // wrong rank
            "mtv_128x-4_t24.json",    // non-positive extent
            "mtv_axb_t24.json",       // non-numeric shape
        ] {
            assert!(
                workload_from_filename(Path::new(name)).is_none(),
                "{name} must not parse"
            );
        }
    }

    #[test]
    fn holdout_split_is_by_whole_group() {
        let mut data = Dataset::default();
        for g in 0..5 {
            data.groups.push(CorpusGroup {
                path: PathBuf::from(format!("g{g}.json")),
                workload: "mtv".into(),
                shape: vec![64, 64],
                records: 3,
            });
            for i in 0..3 {
                data.features.push([g as f64 + i as f64; NUM_FEATURES]);
                data.latencies.push(1.0);
                data.group_of.push(g);
            }
        }
        let (train, holdout) = data.split_holdout(2);
        // Groups 1 and 3 (0-indexed) are held out.
        assert_eq!(train.groups.len(), 3);
        assert_eq!(holdout.groups.len(), 2);
        assert_eq!(train.len(), 9);
        assert_eq!(holdout.len(), 6);
        assert_eq!(holdout.groups[0].path, PathBuf::from("g1.json"));
        assert_eq!(holdout.groups[1].path, PathBuf::from("g3.json"));
        // Group ids are re-densified on both sides.
        assert!(train.group_of.iter().all(|&g| g < train.groups.len()));
        assert!(holdout.group_of.iter().all(|&g| g < holdout.groups.len()));

        let (all, none) = data.split_holdout(0);
        assert_eq!(all.len(), data.len());
        assert!(none.is_empty());
    }
}
