//! A histogram-based gradient-boosted decision-tree regressor over the
//! autotuner's trace feature vectors.
//!
//! The learner is the XGBoost recipe in miniature: each boosting round fits
//! one regression tree to the gradient/hessian of the objective at the
//! current ensemble prediction, greedy splits are found over per-feature
//! histograms (quantile bin edges recomputed per fit), leaf values are the
//! regularized Newton step `-G / (H + lambda)` scaled by the learning rate,
//! and rounds accumulate until [`GbdtParams::max_trees`].
//!
//! Two objectives are supported:
//!
//! * [`Objective::SquaredLog`] — squared error on `ln(latency)`, the default;
//!   raw ensemble output is a log-latency and [`GbdtModel::predict`] returns
//!   `exp(raw)` so predictions are latency-like (same convention as the ridge
//!   [`atim_autotune::CostModel`]).
//! * [`Objective::PairwiseRank`] — RankNet-style pairwise logistic loss over
//!   within-group latency orderings; raw output is an arbitrary monotone
//!   score (lower = faster).
//!
//! Training is bit-deterministic: candidate splits are enumerated in fixed
//! (feature, bin) order, ties keep the first candidate, and no randomness is
//! consumed. Refitting from scratch on the same samples reproduces the same
//! model bit for bit.

use std::fmt;
use std::path::Path;

use atim_autotune::json::{encode_f64, Json, JsonError};
use atim_autotune::{CostEstimator, NUM_FEATURES};

/// Current model-file format version (see [`GbdtModel::to_json_string`]).
pub const MODEL_VERSION: i64 = 1;

/// Oldest model-file version [`GbdtModel::from_json_str`] still decodes.
pub const MIN_MODEL_VERSION: i64 = 1;

/// Training objective for the boosted ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Squared error on `ln(latency)` (regression; the default).
    #[default]
    SquaredLog,
    /// Pairwise logistic ranking loss within sample groups.
    PairwiseRank,
}

impl Objective {
    /// Stable lowercase name, used in model files and on the CLI.
    pub fn name(self) -> &'static str {
        match self {
            Objective::SquaredLog => "squared-log",
            Objective::PairwiseRank => "pairwise-rank",
        }
    }

    /// Parses a name produced by [`Objective::name`].
    pub fn parse(raw: &str) -> Option<Objective> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "squared-log" | "squared" => Some(Objective::SquaredLog),
            "pairwise-rank" | "pairwise" => Some(Objective::PairwiseRank),
            _ => None,
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Hyperparameters of a [`GbdtModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct GbdtParams {
    /// Boosting rounds appended per [`CostEstimator::fit`] call (the online
    /// per-round update during search).
    pub trees_per_fit: usize,
    /// Hard cap on the ensemble size; further fits are no-ops once reached.
    pub max_trees: usize,
    /// Maximum tree depth (root is depth 0).
    pub max_depth: usize,
    /// Shrinkage applied to every leaf value.
    pub learning_rate: f64,
    /// Minimum samples on each side of a split.
    pub min_samples_leaf: usize,
    /// L2 regularization on leaf values (`lambda` in the XGBoost gain).
    pub lambda: f64,
    /// Maximum histogram bins per feature.
    pub max_bins: usize,
    /// Minimum samples before the model trains at all (mirrors the ridge
    /// model's warm-up threshold).
    pub min_fit_samples: usize,
    /// Training objective.
    pub objective: Objective,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            trees_per_fit: 4,
            max_trees: 512,
            // Shallow trees with gentle shrinkage transfer best across
            // shapes on TuneLog-sized corpora (hundreds of samples).
            max_depth: 3,
            learning_rate: 0.1,
            min_samples_leaf: 2,
            lambda: 1.0,
            max_bins: 64,
            min_fit_samples: 4,
            objective: Objective::SquaredLog,
        }
    }
}

/// One node of a regression tree, stored in a flat array.
#[derive(Debug, Clone, PartialEq)]
struct Node {
    /// Split feature index (internal nodes only).
    feature: usize,
    /// Split threshold: samples with `x[feature] <= threshold` go left.
    threshold: f64,
    /// Index of the left child (internal nodes only).
    left: usize,
    /// Index of the right child (internal nodes only).
    right: usize,
    /// Leaf value, learning rate already applied (leaves only).
    value: f64,
    /// Whether this node is a leaf.
    leaf: bool,
}

/// One boosted regression tree.
#[derive(Debug, Clone, PartialEq)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn predict(&self, x: &[f64; NUM_FEATURES]) -> f64 {
        let mut at = 0;
        loop {
            let node = &self.nodes[at];
            if node.leaf {
                return node.value;
            }
            at = if x[node.feature] <= node.threshold {
                node.left
            } else {
                node.right
            };
        }
    }
}

/// Errors from persisting or loading a model file.
#[derive(Debug)]
pub enum ModelError {
    /// Filesystem failure reading or writing the model file.
    Io(std::io::Error),
    /// The file is not a valid model document.
    Parse(JsonError),
    /// The file's declared version is outside the supported range.
    UnsupportedVersion(i64),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Io(e) => write!(f, "model file I/O error: {e}"),
            ModelError::Parse(e) => write!(f, "model file parse error: {e}"),
            ModelError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "model file version {v} is not supported (expected {MIN_MODEL_VERSION}..={MODEL_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

impl From<JsonError> for ModelError {
    fn from(e: JsonError) -> Self {
        ModelError::Parse(e)
    }
}

/// A gradient-boosted ensemble implementing the autotuner's
/// [`CostEstimator`] seam.
///
/// Untrained (fewer than [`GbdtParams::min_fit_samples`] samples seen) the
/// model predicts the constant `1.0`, exactly like the untrained ridge
/// model, so the session's deterministic identity tie-break governs early
/// rounds regardless of estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct GbdtModel {
    params: GbdtParams,
    base_score: f64,
    trees: Vec<Tree>,
    trained: bool,
}

impl Default for GbdtModel {
    fn default() -> Self {
        GbdtModel::new(GbdtParams::default())
    }
}

impl GbdtModel {
    /// An untrained model with the given hyperparameters.
    pub fn new(params: GbdtParams) -> Self {
        GbdtModel {
            params,
            base_score: 0.0,
            trees: Vec::new(),
            trained: false,
        }
    }

    /// The model's hyperparameters.
    pub fn params(&self) -> &GbdtParams {
        &self.params
    }

    /// Number of trees in the ensemble.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Raw ensemble output (a log-latency under [`Objective::SquaredLog`],
    /// an arbitrary monotone score under [`Objective::PairwiseRank`]).
    pub fn predict_raw(&self, x: &[f64; NUM_FEATURES]) -> f64 {
        let mut score = self.base_score;
        for tree in &self.trees {
            score += tree.predict(x);
        }
        score
    }

    /// Appends `rounds` boosted trees fit on `samples`
    /// (`(features, latency_s)` pairs), with optional per-sample group ids
    /// for the pairwise objective (`None` treats all samples as one group).
    ///
    /// Does nothing until [`GbdtParams::min_fit_samples`] samples are
    /// available, and stops growing at [`GbdtParams::max_trees`].
    pub fn boost(
        &mut self,
        samples: &[([f64; NUM_FEATURES], f64)],
        groups: Option<&[usize]>,
        rounds: usize,
    ) {
        if samples.len() < self.params.min_fit_samples.max(2) {
            return;
        }
        let targets: Vec<f64> = samples.iter().map(|(_, y)| y.max(1e-12).ln()).collect();
        if !self.trained {
            // Freeze the base score at first fit so later online updates
            // only refine it through trees (keeps persisted ensembles
            // composable with further boosting).
            self.base_score = match self.params.objective {
                Objective::SquaredLog => targets.iter().sum::<f64>() / targets.len() as f64,
                Objective::PairwiseRank => 0.0,
            };
            self.trained = true;
        }

        // Current ensemble output per sample.
        let mut scores: Vec<f64> = samples.iter().map(|(x, _)| self.predict_raw(x)).collect();

        // Per-feature histogram bin edges and per-sample bin indices,
        // computed once per boost call.
        let bins = Bins::build(samples, self.params.max_bins);

        let mut grad = vec![0.0; samples.len()];
        let mut hess = vec![0.0; samples.len()];
        for _ in 0..rounds {
            if self.trees.len() >= self.params.max_trees {
                break;
            }
            self.gradients(&scores, &targets, groups, &mut grad, &mut hess);
            let tree = grow_tree(&self.params, &bins, samples, &grad, &hess);
            for (i, (x, _)) in samples.iter().enumerate() {
                scores[i] += tree.predict(x);
            }
            self.trees.push(tree);
        }
    }

    fn gradients(
        &self,
        scores: &[f64],
        targets: &[f64],
        groups: Option<&[usize]>,
        grad: &mut [f64],
        hess: &mut [f64],
    ) {
        match self.params.objective {
            Objective::SquaredLog => {
                for i in 0..scores.len() {
                    grad[i] = scores[i] - targets[i];
                    hess[i] = 1.0;
                }
            }
            Objective::PairwiseRank => {
                grad.fill(0.0);
                hess.fill(0.0);
                let group_of = |i: usize| groups.map_or(0, |g| g[i]);
                for i in 0..scores.len() {
                    for j in (i + 1)..scores.len() {
                        if group_of(i) != group_of(j) || targets[i] == targets[j] {
                            continue;
                        }
                        // `lo` is the faster (better) sample: its score
                        // should end up below `hi`'s.
                        let (lo, hi) = if targets[i] < targets[j] {
                            (i, j)
                        } else {
                            (j, i)
                        };
                        let rho = sigmoid(scores[lo] - scores[hi]);
                        grad[lo] += rho;
                        grad[hi] -= rho;
                        let h = (rho * (1.0 - rho)).max(1e-9);
                        hess[lo] += h;
                        hess[hi] += h;
                    }
                }
            }
        }
    }

    /// Encodes the model as a versioned single-line JSON document.
    pub fn to_json_string(&self) -> String {
        let nodes_json = |tree: &Tree| {
            Json::Arr(
                tree.nodes
                    .iter()
                    .map(|n| {
                        Json::Arr(vec![
                            Json::Int(n.feature as i64),
                            encode_f64(n.threshold),
                            Json::Int(n.left as i64),
                            Json::Int(n.right as i64),
                            encode_f64(n.value),
                            Json::Bool(n.leaf),
                        ])
                    })
                    .collect(),
            )
        };
        Json::Obj(vec![
            ("version".into(), Json::Int(MODEL_VERSION)),
            ("num_features".into(), Json::Int(NUM_FEATURES as i64)),
            (
                "params".into(),
                Json::Obj(vec![
                    (
                        "trees_per_fit".into(),
                        Json::Int(self.params.trees_per_fit as i64),
                    ),
                    ("max_trees".into(), Json::Int(self.params.max_trees as i64)),
                    ("max_depth".into(), Json::Int(self.params.max_depth as i64)),
                    (
                        "learning_rate".into(),
                        encode_f64(self.params.learning_rate),
                    ),
                    (
                        "min_samples_leaf".into(),
                        Json::Int(self.params.min_samples_leaf as i64),
                    ),
                    ("lambda".into(), encode_f64(self.params.lambda)),
                    ("max_bins".into(), Json::Int(self.params.max_bins as i64)),
                    (
                        "min_fit_samples".into(),
                        Json::Int(self.params.min_fit_samples as i64),
                    ),
                    (
                        "objective".into(),
                        Json::Str(self.params.objective.name().into()),
                    ),
                ]),
            ),
            ("base_score".into(), encode_f64(self.base_score)),
            ("trained".into(), Json::Bool(self.trained)),
            (
                "trees".into(),
                Json::Arr(self.trees.iter().map(nodes_json).collect()),
            ),
        ])
        .to_string()
    }

    /// Decodes a model from [`GbdtModel::to_json_string`] output.
    ///
    /// # Errors
    /// [`ModelError::Parse`] on malformed documents,
    /// [`ModelError::UnsupportedVersion`] outside
    /// [`MIN_MODEL_VERSION`]..=[`MODEL_VERSION`].
    pub fn from_json_str(text: &str) -> Result<Self, ModelError> {
        let doc = Json::parse(text)?;
        let version = doc.get("version")?.as_i64()?;
        if !(MIN_MODEL_VERSION..=MODEL_VERSION).contains(&version) {
            return Err(ModelError::UnsupportedVersion(version));
        }
        let nf = doc.get("num_features")?.as_usize()?;
        if nf != NUM_FEATURES {
            return Err(ModelError::Parse(JsonError::new(format!(
                "model was trained on {nf} features, this build uses {NUM_FEATURES}"
            ))));
        }
        let p = doc.get("params")?;
        let objective_name = p.get("objective")?.as_str()?;
        let objective = Objective::parse(objective_name).ok_or_else(|| {
            ModelError::Parse(JsonError::new(format!(
                "unknown objective {objective_name:?}"
            )))
        })?;
        let params = GbdtParams {
            trees_per_fit: p.get("trees_per_fit")?.as_usize()?,
            max_trees: p.get("max_trees")?.as_usize()?,
            max_depth: p.get("max_depth")?.as_usize()?,
            learning_rate: p.get("learning_rate")?.as_f64()?,
            min_samples_leaf: p.get("min_samples_leaf")?.as_usize()?,
            lambda: p.get("lambda")?.as_f64()?,
            max_bins: p.get("max_bins")?.as_usize()?,
            min_fit_samples: p.get("min_fit_samples")?.as_usize()?,
            objective,
        };
        let mut trees = Vec::new();
        for tree_json in doc.get("trees")?.as_arr()? {
            let mut nodes = Vec::new();
            for node_json in tree_json.as_arr()? {
                let f = node_json.as_arr()?;
                if f.len() != 6 {
                    return Err(ModelError::Parse(JsonError::new(
                        "tree node must have 6 fields",
                    )));
                }
                nodes.push(Node {
                    feature: f[0].as_usize()?,
                    threshold: f[1].as_f64()?,
                    left: f[2].as_usize()?,
                    right: f[3].as_usize()?,
                    value: f[4].as_f64()?,
                    leaf: f[5].as_bool()?,
                });
            }
            // Reject trees whose child indices point outside the node
            // array; Tree::predict would panic on them.
            let len = nodes.len();
            if nodes.is_empty()
                || nodes.iter().any(|n| {
                    !n.leaf && (n.left >= len || n.right >= len || n.feature >= NUM_FEATURES)
                })
            {
                return Err(ModelError::Parse(JsonError::new(
                    "tree has out-of-range child or feature indices",
                )));
            }
            trees.push(Tree { nodes });
        }
        Ok(GbdtModel {
            params,
            base_score: doc.get("base_score")?.as_f64()?,
            trained: doc.get("trained")?.as_bool()?,
            trees,
        })
    }

    /// Saves the model to a file.
    ///
    /// # Errors
    /// [`ModelError::Io`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ModelError> {
        std::fs::write(path, self.to_json_string() + "\n").map_err(ModelError::Io)
    }

    /// Loads a model saved by [`GbdtModel::save`].
    ///
    /// # Errors
    /// [`ModelError::Io`] on filesystem failure, otherwise as
    /// [`GbdtModel::from_json_str`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ModelError> {
        let text = std::fs::read_to_string(path).map_err(ModelError::Io)?;
        GbdtModel::from_json_str(&text)
    }
}

impl CostEstimator for GbdtModel {
    fn name(&self) -> &'static str {
        "gbdt"
    }

    fn is_trained(&self) -> bool {
        self.trained
    }

    fn fit(&mut self, samples: &[([f64; NUM_FEATURES], f64)]) {
        let rounds = self.params.trees_per_fit;
        self.boost(samples, None, rounds);
    }

    fn predict(&self, features: &[f64; NUM_FEATURES]) -> f64 {
        if !self.trained {
            return 1.0;
        }
        self.predict_raw(features).clamp(-50.0, 50.0).exp()
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Per-feature histogram binning shared by every tree grown in one boost
/// call: quantile bin edges plus the per-sample bin index matrix.
struct Bins {
    /// `edges[f]` — ascending split thresholds for feature `f`.
    edges: Vec<Vec<f64>>,
    /// `index[i][f]` — bin of sample `i` on feature `f` (edges crossed).
    index: Vec<[u16; NUM_FEATURES]>,
}

impl Bins {
    fn build(samples: &[([f64; NUM_FEATURES], f64)], max_bins: usize) -> Bins {
        let max_bins = max_bins.max(2);
        let mut edges = Vec::with_capacity(NUM_FEATURES);
        for f in 0..NUM_FEATURES {
            let mut values: Vec<f64> = samples.iter().map(|(x, _)| x[f]).collect();
            values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            values.dedup();
            // Candidate thresholds are midpoints between distinct adjacent
            // values, thinned to at most `max_bins - 1` at even quantile
            // strides.
            let gaps = values.len().saturating_sub(1);
            let keep = gaps.min(max_bins - 1);
            let mut feature_edges = Vec::with_capacity(keep);
            for k in 0..keep {
                // Even stride over the gap list; deterministic integer math.
                let g = k * gaps / keep + gaps / (2 * keep);
                feature_edges.push((values[g] + values[g + 1]) / 2.0);
            }
            feature_edges.dedup();
            edges.push(feature_edges);
        }
        let index = samples
            .iter()
            .map(|(x, _)| {
                let mut row = [0u16; NUM_FEATURES];
                for f in 0..NUM_FEATURES {
                    row[f] = edges[f].iter().filter(|e| x[f] > **e).count() as u16;
                }
                row
            })
            .collect();
        Bins { edges, index }
    }
}

/// Grows one tree on the given gradients via greedy histogram splits.
fn grow_tree(
    params: &GbdtParams,
    bins: &Bins,
    samples: &[([f64; NUM_FEATURES], f64)],
    grad: &[f64],
    hess: &[f64],
) -> Tree {
    let mut nodes = Vec::new();
    let all: Vec<usize> = (0..samples.len()).collect();
    build_node(params, bins, grad, hess, &all, 0, &mut nodes);
    Tree { nodes }
}

fn leaf_value(params: &GbdtParams, g: f64, h: f64) -> f64 {
    -g / (h + params.lambda) * params.learning_rate
}

fn build_node(
    params: &GbdtParams,
    bins: &Bins,
    grad: &[f64],
    hess: &[f64],
    members: &[usize],
    depth: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    let g: f64 = members.iter().map(|&i| grad[i]).sum();
    let h: f64 = members.iter().map(|&i| hess[i]).sum();
    let at = nodes.len();
    nodes.push(Node {
        feature: 0,
        threshold: 0.0,
        left: 0,
        right: 0,
        value: leaf_value(params, g, h),
        leaf: true,
    });
    if depth >= params.max_depth || members.len() < 2 * params.min_samples_leaf {
        return at;
    }

    // Best split: strictly greater gain wins, so the first (feature, bin)
    // candidate in enumeration order breaks ties deterministically.
    let parent_score = g * g / (h + params.lambda);
    let mut best: Option<(f64, usize, usize)> = None; // (gain, feature, bin)
    for f in 0..NUM_FEATURES {
        let nbins = bins.edges[f].len() + 1;
        if nbins < 2 {
            continue;
        }
        let mut hist = vec![(0.0f64, 0.0f64, 0usize); nbins];
        for &i in members {
            let b = bins.index[i][f] as usize;
            hist[b].0 += grad[i];
            hist[b].1 += hess[i];
            hist[b].2 += 1;
        }
        let (mut gl, mut hl, mut nl) = (0.0, 0.0, 0usize);
        for (b, &(bg, bh, bn)) in hist.iter().enumerate().take(nbins - 1) {
            gl += bg;
            hl += bh;
            nl += bn;
            let nr = members.len() - nl;
            if nl < params.min_samples_leaf || nr < params.min_samples_leaf {
                continue;
            }
            let gr = g - gl;
            let hr = h - hl;
            let gain =
                gl * gl / (hl + params.lambda) + gr * gr / (hr + params.lambda) - parent_score;
            let improves = match best {
                Some((best_gain, _, _)) => gain > best_gain,
                None => true,
            };
            if gain > 1e-12 && improves {
                best = Some((gain, f, b));
            }
        }
    }
    let Some((_, feature, bin)) = best else {
        return at;
    };

    let threshold = bins.edges[feature][bin];
    let (left_members, right_members): (Vec<usize>, Vec<usize>) = members
        .iter()
        .partition(|&&i| (bins.index[i][feature] as usize) <= bin);
    let left = build_node(params, bins, grad, hess, &left_members, depth + 1, nodes);
    let right = build_node(params, bins, grad, hess, &right_members, depth + 1, nodes);
    nodes[at].feature = feature;
    nodes[at].threshold = threshold;
    nodes[at].left = left;
    nodes[at].right = right;
    nodes[at].leaf = false;
    at
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_samples(n: usize) -> Vec<([f64; NUM_FEATURES], f64)> {
        // Latency depends nonlinearly on two features; the rest are inert.
        (0..n)
            .map(|i| {
                let mut x = [0.0; NUM_FEATURES];
                x[0] = (i % 7) as f64;
                x[1] = (i % 3) as f64;
                x[2] = (i / 5) as f64;
                let y = (1.0 + x[0] * x[0] + if x[1] > 1.0 { 10.0 } else { 0.0 }) * 1e-4;
                (x, y)
            })
            .collect()
    }

    #[test]
    fn untrained_model_predicts_the_constant_one() {
        let model = GbdtModel::default();
        assert!(!model.is_trained());
        assert_eq!(model.predict(&[0.5; NUM_FEATURES]), 1.0);
    }

    #[test]
    fn too_few_samples_keep_the_model_untrained() {
        let mut model = GbdtModel::default();
        model.fit(&toy_samples(3));
        assert!(!model.is_trained());
        assert_eq!(model.num_trees(), 0);
    }

    #[test]
    fn boosting_reduces_training_error() {
        let samples = toy_samples(64);
        let mut model = GbdtModel::default();
        let err = |m: &GbdtModel| -> f64 {
            samples
                .iter()
                .map(|(x, y)| (m.predict_raw(x) - y.ln()).powi(2))
                .sum::<f64>()
        };
        model.boost(&samples, None, 1);
        let after_one = err(&model);
        model.boost(&samples, None, 40);
        let after_many = err(&model);
        assert!(
            after_many < after_one * 0.1,
            "boosting must fit the toy function: {after_one} -> {after_many}"
        );
    }

    #[test]
    fn predictions_recover_latency_scale() {
        let samples = toy_samples(64);
        let mut model = GbdtModel::default();
        model.boost(&samples, None, 60);
        for (x, y) in samples.iter().take(8) {
            let p = model.predict(x);
            assert!(
                (p / y).ln().abs() < 0.7,
                "predicted {p}, measured {y}: off by more than 2x"
            );
        }
    }

    #[test]
    fn online_fits_append_trees_and_respect_the_cap() {
        let mut model = GbdtModel::new(GbdtParams {
            trees_per_fit: 4,
            max_trees: 10,
            ..GbdtParams::default()
        });
        let samples = toy_samples(32);
        model.fit(&samples);
        assert_eq!(model.num_trees(), 4);
        let base = model.base_score;
        model.fit(&samples);
        assert_eq!(model.num_trees(), 8);
        assert_eq!(model.base_score.to_bits(), base.to_bits(), "base frozen");
        model.fit(&samples);
        model.fit(&samples);
        assert_eq!(model.num_trees(), 10, "capped at max_trees");
    }

    #[test]
    fn retraining_is_bit_deterministic() {
        let samples = toy_samples(48);
        let mut a = GbdtModel::default();
        let mut b = GbdtModel::default();
        a.boost(&samples, None, 25);
        b.boost(&samples, None, 25);
        assert_eq!(a.to_json_string(), b.to_json_string());
        for (x, _) in &samples {
            assert_eq!(a.predict(x).to_bits(), b.predict(x).to_bits());
        }
    }

    #[test]
    fn pairwise_objective_learns_the_within_group_order() {
        let samples = toy_samples(60);
        let groups: Vec<usize> = (0..60).map(|i| i / 15).collect();
        let mut model = GbdtModel::new(GbdtParams {
            objective: Objective::PairwiseRank,
            ..GbdtParams::default()
        });
        model.boost(&samples, Some(&groups), 60);
        // Within each group, faster samples must mostly rank below slower
        // ones under the raw score.
        let (mut correct, mut total) = (0, 0);
        for i in 0..samples.len() {
            for j in (i + 1)..samples.len() {
                if groups[i] != groups[j] || samples[i].1 == samples[j].1 {
                    continue;
                }
                total += 1;
                let score_order =
                    model.predict_raw(&samples[i].0) < model.predict_raw(&samples[j].0);
                if score_order == (samples[i].1 < samples[j].1) {
                    correct += 1;
                }
            }
        }
        assert!(
            correct as f64 >= 0.9 * total as f64,
            "pairwise objective orders the groups: {correct}/{total}"
        );
    }

    #[test]
    fn save_load_round_trips_bit_exactly() {
        let samples = toy_samples(40);
        let mut model = GbdtModel::default();
        model.boost(&samples, None, 15);
        let text = model.to_json_string();
        let back = GbdtModel::from_json_str(&text).expect("round trip");
        assert_eq!(back, model);
        for (x, _) in &samples {
            assert_eq!(model.predict(x).to_bits(), back.predict(x).to_bits());
        }
    }

    #[test]
    fn corrupt_model_files_are_rejected_loudly() {
        assert!(matches!(
            GbdtModel::from_json_str("not json"),
            Err(ModelError::Parse(_))
        ));
        assert!(matches!(
            GbdtModel::from_json_str(r#"{"version":99}"#),
            Err(ModelError::UnsupportedVersion(99))
        ));
        // Out-of-range child indices must not decode into a panicking tree.
        let evil = r#"{"version":1,"num_features":10,"params":{"trees_per_fit":4,"max_trees":512,"max_depth":4,"learning_rate":0.15,"min_samples_leaf":2,"lambda":1.0,"max_bins":64,"min_fit_samples":4,"objective":"squared-log"},"base_score":0.0,"trained":true,"trees":[[[0,0.5,7,8,0.0,false]]]}"#;
        assert!(matches!(
            GbdtModel::from_json_str(evil),
            Err(ModelError::Parse(_))
        ));
    }
}
