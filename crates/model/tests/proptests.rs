//! Property tests of the gradient-boosted cost model: training is a pure
//! function of its inputs (bit-identical retrains), and JSON persistence is
//! the identity on both the model and its predictions.

use atim_autotune::{CostEstimator, NUM_FEATURES};
use atim_model::{GbdtModel, GbdtParams, Objective};
use proptest::prelude::*;

/// Derives a deterministic sample set from raw case inputs: feature values
/// and latencies spread over several orders of magnitude, with repeated
/// feature levels so histogram bins actually aggregate.
fn samples_from(seed: u64, n: usize) -> Vec<([f64; NUM_FEATURES], f64)> {
    let mut state = seed | 1;
    let mut next = move || {
        // SplitMix64 step: deterministic, dependency-free.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|_| {
            let mut x = [0.0; NUM_FEATURES];
            for slot in x.iter_mut() {
                *slot = (next() % 17) as f64 * 0.25 - 2.0;
            }
            let y = (1.0 + (x[0] + 2.0).powi(2) + (x[3] * x[5]).abs())
                * 10f64.powi((next() % 7) as i32 - 9);
            (x, y)
        })
        .collect()
}

fn params_from(depth: usize, lr: f64, bins: usize, objective: Objective) -> GbdtParams {
    GbdtParams {
        max_depth: depth,
        learning_rate: lr,
        max_bins: bins,
        objective,
        ..GbdtParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same samples, same params, same round count ⇒ the retrained model
    /// is bit-identical (serialized form and every prediction).
    #[test]
    fn retraining_is_bit_identical(
        seed in 0u64..u64::MAX,
        n in 8usize..80,
        depth in 1usize..5,
        lr in 0.02f64..0.5,
        bins in 2usize..48,
        rounds in 1usize..30,
        pairwise in 0u8..2,
    ) {
        let objective = if pairwise == 1 { Objective::PairwiseRank } else { Objective::SquaredLog };
        let samples = samples_from(seed, n);
        let groups: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let mut a = GbdtModel::new(params_from(depth, lr, bins, objective));
        let mut b = GbdtModel::new(params_from(depth, lr, bins, objective));
        a.boost(&samples, Some(&groups), rounds);
        b.boost(&samples, Some(&groups), rounds);
        prop_assert_eq!(a.to_json_string(), b.to_json_string());
        for (x, _) in &samples {
            prop_assert_eq!(a.predict(x).to_bits(), b.predict(x).to_bits());
        }
    }

    /// Save → load → predict is bit-exact for every trained model.
    #[test]
    fn persistence_round_trip_preserves_predictions(
        seed in 0u64..u64::MAX,
        n in 4usize..60,
        depth in 1usize..5,
        lr in 0.02f64..0.5,
        bins in 2usize..48,
        rounds in 1usize..25,
    ) {
        let samples = samples_from(seed, n);
        let mut model = GbdtModel::new(params_from(depth, lr, bins, Objective::SquaredLog));
        model.boost(&samples, None, rounds);
        let text = model.to_json_string();
        let back = GbdtModel::from_json_str(&text).expect("round trip decodes");
        prop_assert_eq!(back.to_json_string(), text);
        prop_assert_eq!(back.num_trees(), model.num_trees());
        prop_assert_eq!(back.is_trained(), model.is_trained());
        // Predictions must survive bit-for-bit, including on points the
        // model never saw.
        for probe in samples_from(seed ^ 0xDEAD_BEEF, 16) {
            prop_assert_eq!(
                model.predict(&probe.0).to_bits(),
                back.predict(&probe.0).to_bits()
            );
        }
    }

    /// Online incremental fits (the search path) are themselves
    /// deterministic: two sessions feeding the same growing sample stream
    /// hold identical models after every round.
    #[test]
    fn incremental_fits_are_deterministic(
        seed in 0u64..u64::MAX,
        n in 12usize..48,
        chunks in 2usize..6,
    ) {
        let samples = samples_from(seed, n);
        let mut a = GbdtModel::default();
        let mut b = GbdtModel::default();
        for c in 1..=chunks {
            let upto = n * c / chunks;
            a.fit(&samples[..upto]);
            b.fit(&samples[..upto]);
            prop_assert_eq!(a.to_json_string(), b.to_json_string());
        }
    }
}
