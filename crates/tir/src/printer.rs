//! Human-readable pretty printer for TIR programs.
//!
//! The output intentionally resembles the simplified TIR listings in the
//! paper's Fig. 2 and Fig. 8, which makes golden tests on generated programs
//! readable.

use std::fmt::Write;

use crate::expr::{BinOp, CmpOp, Expr};
use crate::stmt::{ForKind, Stmt, TransferDir};

/// Renders an expression as a compact string.
pub fn print_expr(expr: &Expr) -> String {
    let mut s = String::new();
    write_expr(&mut s, expr);
    s
}

/// Renders a statement tree as an indented multi-line listing.
pub fn print_stmt(stmt: &Stmt) -> String {
    let mut s = String::new();
    write_stmt(&mut s, stmt, 0);
    s
}

fn write_expr(out: &mut String, expr: &Expr) {
    match expr {
        Expr::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Float(v) => {
            let _ = write!(out, "{v:?}");
        }
        Expr::Var(v) => {
            let _ = write!(out, "{}", v.name);
        }
        Expr::Binary(op, a, b) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::FloorDiv => "//",
                BinOp::FloorMod => "%",
                BinOp::Min => return write_call(out, "min", &[a, b]),
                BinOp::Max => return write_call(out, "max", &[a, b]),
            };
            out.push('(');
            write_expr(out, a);
            let _ = write!(out, " {sym} ");
            write_expr(out, b);
            out.push(')');
        }
        Expr::Cmp(op, a, b) => {
            let sym = match op {
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
                CmpOp::Eq => "==",
                CmpOp::Ne => "!=",
            };
            out.push('(');
            write_expr(out, a);
            let _ = write!(out, " {sym} ");
            write_expr(out, b);
            out.push(')');
        }
        Expr::And(a, b) => {
            out.push('(');
            write_expr(out, a);
            out.push_str(" and ");
            write_expr(out, b);
            out.push(')');
        }
        Expr::Or(a, b) => {
            out.push('(');
            write_expr(out, a);
            out.push_str(" or ");
            write_expr(out, b);
            out.push(')');
        }
        Expr::Not(a) => {
            out.push_str("not ");
            write_expr(out, a);
        }
        Expr::Select(c, a, b) => {
            out.push_str("select(");
            write_expr(out, c);
            out.push_str(", ");
            write_expr(out, a);
            out.push_str(", ");
            write_expr(out, b);
            out.push(')');
        }
        Expr::Load { buf, index } => {
            let _ = write!(out, "{}[", buf.name);
            write_expr(out, index);
            out.push(']');
        }
        Expr::Cast(dt, a) => {
            let _ = write!(out, "{dt}(");
            write_expr(out, a);
            out.push(')');
        }
    }
}

fn write_call(out: &mut String, name: &str, args: &[&Expr]) {
    let _ = write!(out, "{name}(");
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_expr(out, a);
    }
    out.push(')');
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    match stmt {
        Stmt::For {
            var,
            extent,
            kind,
            body,
        } => {
            indent(out, level);
            let ann = match kind {
                ForKind::Serial => "",
                ForKind::Unrolled => " [unroll]",
                ForKind::DpuX => " [bind=blockIdx.x]",
                ForKind::DpuY => " [bind=blockIdx.y]",
                ForKind::Tasklet => " [bind=threadIdx.x]",
                ForKind::HostParallel => " [parallel]",
            };
            let _ = writeln!(
                out,
                "for {} in range({}){ann}:",
                var.name,
                print_expr(extent)
            );
            write_stmt(out, body, level + 1);
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            indent(out, level);
            let _ = writeln!(out, "if {}:", print_expr(cond));
            write_stmt(out, then_branch, level + 1);
            if let Some(e) = else_branch {
                indent(out, level);
                out.push_str("else:\n");
                write_stmt(out, e, level + 1);
            }
        }
        Stmt::Store { buf, index, value } => {
            indent(out, level);
            let _ = writeln!(
                out,
                "{}[{}] = {}",
                buf.name,
                print_expr(index),
                print_expr(value)
            );
        }
        Stmt::Seq(stmts) => {
            for s in stmts {
                write_stmt(out, s, level);
            }
        }
        Stmt::Alloc { buf, body } => {
            indent(out, level);
            let shape: Vec<String> = buf.shape.iter().map(|d| d.to_string()).collect();
            let _ = writeln!(
                out,
                "alloc {}: {}[{}] @ {}",
                buf.name,
                buf.dtype,
                shape.join(", "),
                buf.scope
            );
            write_stmt(out, body, level);
        }
        Stmt::Dma {
            dst,
            dst_off,
            src,
            src_off,
            elems,
        } => {
            indent(out, level);
            let _ = writeln!(
                out,
                "dma {}[{}] <- {}[{}], elems={}",
                dst.name,
                print_expr(dst_off),
                src.name,
                print_expr(src_off),
                print_expr(elems)
            );
        }
        Stmt::HostTransfer {
            dir,
            dpu,
            global,
            global_off,
            mram,
            mram_off,
            elems,
            parallel,
        } => {
            indent(out, level);
            let name = match (dir, parallel) {
                (TransferDir::H2D, false) => "h2d",
                (TransferDir::H2D, true) => "parallel_h2d",
                (TransferDir::D2H, false) => "d2h",
                (TransferDir::D2H, true) => "parallel_d2h",
            };
            let _ = writeln!(
                out,
                "{name}(dpu={}, {}[{}], {}[{}], elems={})",
                print_expr(dpu),
                mram.name,
                print_expr(mram_off),
                global.name,
                print_expr(global_off),
                print_expr(elems)
            );
        }
        Stmt::Barrier => {
            indent(out, level);
            out.push_str("barrier()\n");
        }
        Stmt::Evaluate(e) => {
            indent(out, level);
            let _ = writeln!(out, "eval {}", print_expr(e));
        }
        Stmt::Nop => {
            indent(out, level);
            out.push_str("pass\n");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{Buffer, MemScope, Var};
    use crate::dtype::DType;

    #[test]
    fn prints_loop_nest() {
        let i = Var::new("i");
        let a = Buffer::new("A", DType::F32, vec![16], MemScope::Wram);
        let s = Stmt::for_kind(
            i.clone(),
            16i64,
            ForKind::Tasklet,
            Stmt::if_then(
                Expr::var(&i).lt(Expr::int(10)),
                Stmt::store(&a, Expr::var(&i), Expr::float(1.0)),
            ),
        );
        let text = print_stmt(&s);
        assert!(text.contains("for i in range(16) [bind=threadIdx.x]:"));
        assert!(text.contains("if (i < 10):"));
        assert!(text.contains("A[i] = 1.0"));
    }

    #[test]
    fn prints_min_and_mod() {
        let i = Var::new("i");
        let e = Expr::var(&i).min(Expr::int(4)).floormod(Expr::int(3));
        assert_eq!(print_expr(&e), "(min(i, 4) % 3)");
    }

    #[test]
    fn prints_dma_and_transfer() {
        let w = Buffer::new("AL", DType::F32, vec![64], MemScope::Wram);
        let m = Buffer::new("Am", DType::F32, vec![1024], MemScope::Mram);
        let g = Buffer::new("A", DType::F32, vec![4096], MemScope::Global);
        let dma = Stmt::Dma {
            dst: w.clone(),
            dst_off: Expr::int(0),
            src: m.clone(),
            src_off: Expr::int(64),
            elems: Expr::int(64),
        };
        assert!(print_stmt(&dma).contains("dma AL[0] <- Am[64], elems=64"));
        let xfer = Stmt::HostTransfer {
            dir: TransferDir::H2D,
            dpu: Expr::int(3),
            global: g,
            global_off: Expr::int(128),
            mram: m,
            mram_off: Expr::int(0),
            elems: Expr::int(64),
            parallel: true,
        };
        assert!(print_stmt(&xfer).starts_with("parallel_h2d(dpu=3"));
    }
}
