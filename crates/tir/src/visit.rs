//! Generic statement/expression traversal and rewriting helpers.
//!
//! The PIM-aware passes in `atim-passes` are written as [`StmtMutator`]s and
//! analyses as read-only walks via [`walk_stmt`].

use crate::expr::Expr;
use crate::stmt::Stmt;

/// Visits every statement in a tree (pre-order), calling `f` on each.
pub fn walk_stmt(stmt: &Stmt, f: &mut impl FnMut(&Stmt)) {
    f(stmt);
    match stmt {
        Stmt::For { body, .. } | Stmt::Alloc { body, .. } => walk_stmt(body, f),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            walk_stmt(then_branch, f);
            if let Some(e) = else_branch {
                walk_stmt(e, f);
            }
        }
        Stmt::Seq(stmts) => {
            for s in stmts {
                walk_stmt(s, f);
            }
        }
        Stmt::Store { .. }
        | Stmt::Dma { .. }
        | Stmt::HostTransfer { .. }
        | Stmt::Barrier
        | Stmt::Evaluate(_)
        | Stmt::Nop => {}
    }
}

/// Visits every expression appearing in a statement tree.
pub fn walk_exprs(stmt: &Stmt, f: &mut impl FnMut(&Expr)) {
    walk_stmt(stmt, &mut |s| match s {
        Stmt::For { extent, .. } => f(extent),
        Stmt::If { cond, .. } => f(cond),
        Stmt::Store { index, value, .. } => {
            f(index);
            f(value);
        }
        Stmt::Dma {
            dst_off,
            src_off,
            elems,
            ..
        } => {
            f(dst_off);
            f(src_off);
            f(elems);
        }
        Stmt::HostTransfer {
            dpu,
            global_off,
            mram_off,
            elems,
            ..
        } => {
            f(dpu);
            f(global_off);
            f(mram_off);
            f(elems);
        }
        Stmt::Evaluate(e) => f(e),
        Stmt::Seq(_) | Stmt::Alloc { .. } | Stmt::Barrier | Stmt::Nop => {}
    });
}

/// A statement rewriter.  Implementors override [`StmtMutator::mutate_stmt`]
/// and call [`mutate_children`] for the default recursive behaviour.
pub trait StmtMutator {
    /// Rewrites a single statement.  The default implementation recurses.
    fn mutate_stmt(&mut self, stmt: Stmt) -> Stmt {
        mutate_children(self, stmt)
    }

    /// Rewrites an expression.  The default implementation returns it
    /// unchanged; passes that rewrite expressions override this.
    fn mutate_expr(&mut self, expr: Expr) -> Expr {
        expr
    }
}

/// Applies `m` to the children of `stmt`, rebuilding the node.
pub fn mutate_children<M: StmtMutator + ?Sized>(m: &mut M, stmt: Stmt) -> Stmt {
    match stmt {
        Stmt::For {
            var,
            extent,
            kind,
            body,
        } => Stmt::For {
            var,
            extent: m.mutate_expr(extent),
            kind,
            body: Box::new(m.mutate_stmt(*body)),
        },
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => Stmt::If {
            cond: m.mutate_expr(cond),
            then_branch: Box::new(m.mutate_stmt(*then_branch)),
            else_branch: else_branch.map(|e| Box::new(m.mutate_stmt(*e))),
        },
        Stmt::Store { buf, index, value } => Stmt::Store {
            buf,
            index: m.mutate_expr(index),
            value: m.mutate_expr(value),
        },
        Stmt::Seq(stmts) => Stmt::seq(stmts.into_iter().map(|s| m.mutate_stmt(s)).collect()),
        Stmt::Alloc { buf, body } => Stmt::Alloc {
            buf,
            body: Box::new(m.mutate_stmt(*body)),
        },
        Stmt::Dma {
            dst,
            dst_off,
            src,
            src_off,
            elems,
        } => Stmt::Dma {
            dst,
            dst_off: m.mutate_expr(dst_off),
            src,
            src_off: m.mutate_expr(src_off),
            elems: m.mutate_expr(elems),
        },
        Stmt::HostTransfer {
            dir,
            dpu,
            global,
            global_off,
            mram,
            mram_off,
            elems,
            parallel,
        } => Stmt::HostTransfer {
            dir,
            dpu: m.mutate_expr(dpu),
            global,
            global_off: m.mutate_expr(global_off),
            mram,
            mram_off: m.mutate_expr(mram_off),
            elems: m.mutate_expr(elems),
            parallel,
        },
        Stmt::Evaluate(e) => Stmt::Evaluate(m.mutate_expr(e)),
        s @ (Stmt::Barrier | Stmt::Nop) => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{Buffer, MemScope, Var};
    use crate::dtype::DType;

    #[test]
    fn walk_counts_everything() {
        let i = Var::new("i");
        let a = Buffer::new("A", DType::F32, vec![4], MemScope::Wram);
        let body = Stmt::store(&a, Expr::var(&i), Expr::float(0.0));
        let s = Stmt::for_serial(i, 4i64, Stmt::if_then(Expr::int(1), body));
        let mut n = 0;
        walk_stmt(&s, &mut |_| n += 1);
        assert_eq!(n, 3); // for, if, store

        let mut exprs = 0;
        walk_exprs(&s, &mut |_| exprs += 1);
        assert_eq!(exprs, 4); // extent, cond, index, value
    }

    struct StoreZeroer;
    impl StmtMutator for StoreZeroer {
        fn mutate_stmt(&mut self, stmt: Stmt) -> Stmt {
            match stmt {
                Stmt::Store { buf, index, .. } => Stmt::Store {
                    buf,
                    index,
                    value: Expr::float(0.0),
                },
                other => mutate_children(self, other),
            }
        }
    }

    #[test]
    fn mutator_rewrites_recursively() {
        let i = Var::new("i");
        let a = Buffer::new("A", DType::F32, vec![4], MemScope::Wram);
        let s = Stmt::for_serial(
            i.clone(),
            4i64,
            Stmt::store(&a, Expr::var(&i), Expr::float(7.0)),
        );
        let out = StoreZeroer.mutate_stmt(s);
        let mut found = false;
        walk_stmt(&out, &mut |s| {
            if let Stmt::Store { value, .. } = s {
                assert_eq!(*value, Expr::float(0.0));
                found = true;
            }
        });
        assert!(found);
    }
}
