//! Pre-lowered execution of TIR programs.
//!
//! The tree-walking [`Interpreter`](super::Interpreter) re-matches on every
//! [`Stmt`]/[`Expr`] node and re-hashes every [`Var`] id on every loop
//! iteration.  That cost is invisible for one-shot functional runs but
//! dominates autotuning: one measurement interprets the same kernel body for
//! several simulated DPUs, and a tuning session performs hundreds of
//! measurements.
//!
//! [`CompiledProgram::compile`] walks the statement tree **once**, resolving
//! every variable to a dense slot index and flattening all control flow into
//! a linear instruction buffer with explicit jumps.  Executing the buffer is
//! a tight `match` loop over contiguous memory: no recursion, no hashing, no
//! re-simplification.  The program is immutable and `Send + Sync`, so one
//! compiled kernel is shared by every simulated DPU — and by every
//! measurement worker thread in the batch-parallel autotuner.
//!
//! Semantics (including the exact [`Tracer`] event sequence and the
//! [`ExecMode`] contract) are identical to the tree interpreter; the
//! equivalence tests at the bottom of this file and the property tests in
//! `tests/proptests.rs` pin that.

use std::collections::HashMap;
use std::sync::Arc;

use crate::buffer::{Buffer, Var};
use crate::error::{Result, TirError};
use crate::expr::{BinOp, CmpOp, Expr};
use crate::stmt::{Stmt, TransferDir};

use super::{eval_binary, eval_cmp, BulkEvents, ExecMode, MemoryStore, Tracer, Value};

/// One flat instruction.  Expressions are compiled to stack operations,
/// statements to instructions with explicit jump targets.
///
/// The variants below the `Barrier` marker are never produced by
/// [`CompiledProgram::compile`]; they are introduced by the bytecode
/// optimizer ([`CompiledProgram::optimize`]) and carry the tracer-event
/// counts of the code they replaced, so an optimized program reports the
/// exact same event totals as the original.
#[derive(Debug, Clone)]
pub(crate) enum Inst {
    /// Push an integer constant.
    PushInt(i64),
    /// Push a float constant.
    PushFloat(f32),
    /// Push the value of a variable slot (error if unbound).
    PushVar(u32),
    /// Pop two values, apply a binary operator, push the result.
    Binary(BinOp),
    /// Pop two values, compare, push the boolean as an integer.
    Cmp(CmpOp),
    /// Pop one value, push its logical negation.
    Not,
    /// Pop one value, cast it.
    Cast { to_float: bool },
    /// Short-circuit `&&`: pop the lhs; if false push `0` and jump to `end`.
    AndShortCircuit { end: usize },
    /// Short-circuit `||`: pop the lhs; if true push `1` and jump to `end`.
    OrShortCircuit { end: usize },
    /// Pop a value, push `1` if it is true else `0` (rhs of `&&`/`||`).
    BoolCast,
    /// `Select`: pop the condition; fall through into the then-code or jump
    /// to the else-code.
    SelectBranch { else_pc: usize },
    /// Unconditional jump.
    Jump(usize),
    /// Pop the (already evaluated) index, load from the buffer.
    Load { buf: Arc<Buffer> },
    /// Pop value then index, store to the buffer.
    Store { buf: Arc<Buffer> },
    /// Pop and discard a value (`Stmt::Evaluate`).
    Pop,
    /// Loop header: pop the extent; save the slot, enter the loop or jump
    /// past it when the extent is not positive.  `summary` indexes
    /// [`CompiledProgram::summaries`] when the optimizer proved the body
    /// collapsible in [`ExecMode::TimingOnly`].
    LoopEnter {
        slot: u32,
        end: usize,
        summary: Option<u32>,
    },
    /// Loop back-edge: advance the induction variable or exit the loop.
    LoopBack { body: usize },
    /// `If`: pop the condition, trace the branch, jump on false.
    Branch { else_pc: usize },
    /// Scoped allocation (no-op unless functional and unallocated).
    Alloc { buf: Arc<Buffer> },
    /// Pop elems, src_off, dst_off; trace and perform the DMA.
    Dma { dst: Arc<Buffer>, src: Arc<Buffer> },
    /// Pop elems, mram_off, global_off, dpu; trace and perform the transfer.
    HostTransfer {
        dir: TransferDir,
        global: Arc<Buffer>,
        mram: Arc<Buffer>,
        parallel: bool,
    },
    /// Tasklet barrier.
    Barrier,

    // --- optimizer-introduced instructions --------------------------------
    /// Push a pre-folded constant; `alu` is the number of scalar operations
    /// the folded expression would have traced.
    PushConst { value: Value, alu: u32 },
    /// Push `var * scale + offset` — a strength-reduced affine index chain.
    AffineVar {
        slot: u32,
        scale: i64,
        offset: i64,
        alu: u32,
    },
    /// Push `a * a_scale + b * b_scale + offset` (two-variable affine form,
    /// the `i * K + j` shape of most lowered buffer indices).
    AffineSum {
        a: u32,
        a_scale: i64,
        b: u32,
        b_scale: i64,
        offset: i64,
        alu: u32,
    },
    /// Trace `n` ALU operations with no stack effect (the residue of an
    /// eliminated evaluate-and-discard sequence).
    AluOps { n: u32 },
    /// Evaluate the hoisted loop-invariant expression
    /// [`CompiledProgram::hoisted`]`[idx]` into its cache slot, untraced.
    /// Runs once per loop entry, between the loop header and the body.
    EvalHoisted { idx: u32 },
    /// Push the cached value of hoisted expression `idx`, tracing the `alu`
    /// operations the in-loop computation would have performed.
    PushHoisted { idx: u32, alu: u32 },
}

/// The instruction range of a loop body the optimizer proved summarizable:
/// straight-line, innermost, and with all DMA sizes affine in the induction
/// variable (see `opt`).  In [`ExecMode::TimingOnly`], the runner executes
/// iterations `0`, `1` and `n-1` into a scratch recorder, verifies the event
/// deltas are linear, and applies the remaining iterations as one
/// [`BulkEvents`] batch.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LoopSummary {
    /// First instruction of the loop body.
    pub(crate) body_start: u32,
    /// One past the last body instruction (the `LoopBack`'s pc).
    pub(crate) body_end: u32,
}

/// A loop-invariant expression hoisted out of a loop body: a self-contained
/// pure instruction sequence evaluated once per loop entry (untraced) whose
/// result the body reads through [`Inst::PushHoisted`].
#[derive(Debug, Clone)]
pub(crate) struct HoistedExpr {
    pub(crate) insts: Vec<Inst>,
}

/// An active loop on the runner's loop stack.
#[derive(Debug, Clone, Copy)]
struct LoopFrame {
    slot: u32,
    extent: i64,
    iter: i64,
    prev: Option<i64>,
}

/// A [`Stmt`] tree compiled to a flat instruction buffer with dense variable
/// slots.
///
/// Compile once, run many times — across DPU contexts, bindings and
/// execution modes.  The program is immutable and `Send + Sync`.
///
/// ```
/// use atim_tir::eval::{CompiledProgram, CompiledRunner, CountingTracer, ExecMode, MemoryStore};
/// use atim_tir::{Buffer, DType, Expr, MemScope, Stmt, Var};
///
/// let a = Buffer::new("A", DType::F32, vec![8], MemScope::Global);
/// let i = Var::new("i");
/// let prog = Stmt::for_serial(i.clone(), 8i64, Stmt::store(&a, Expr::var(&i), Expr::float(1.0)));
/// let compiled = CompiledProgram::compile(&prog);
///
/// let mut store = MemoryStore::new();
/// store.alloc(&a, 0);
/// let mut tracer = CountingTracer::default();
/// CompiledRunner::new(&compiled)
///     .run(&mut store, &mut tracer, ExecMode::Functional)
///     .unwrap();
/// assert_eq!(tracer.stores, 8);
/// assert_eq!(store.read_all(&a, 0).unwrap(), &[1.0f32; 8]);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    pub(crate) insts: Vec<Inst>,
    /// Var id → dense slot.
    pub(crate) slots: HashMap<u32, u32>,
    /// Slot → variable name (for error messages).
    pub(crate) names: Vec<Arc<str>>,
    /// Summarizable loop bodies (filled by the optimizer).
    pub(crate) summaries: Vec<LoopSummary>,
    /// Hoisted loop-invariant expressions (filled by the optimizer).
    pub(crate) hoisted: Vec<HoistedExpr>,
}

impl CompiledProgram {
    /// Compiles a statement tree into a flat program.
    pub fn compile(stmt: &Stmt) -> CompiledProgram {
        let mut c = Compiler {
            insts: Vec::new(),
            slots: HashMap::new(),
            names: Vec::new(),
        };
        c.stmt(stmt);
        CompiledProgram {
            insts: c.insts,
            slots: c.slots,
            names: c.names,
            summaries: Vec::new(),
            hoisted: Vec::new(),
        }
    }

    /// Number of summarizable loops the optimizer marked (diagnostics).
    pub fn summarized_loops(&self) -> usize {
        self.summaries.len()
    }

    /// Number of flat instructions (for diagnostics and tests).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    fn slot_of(&self, var: &Var) -> Option<u32> {
        self.slots.get(&var.id).copied()
    }
}

struct Compiler {
    insts: Vec<Inst>,
    slots: HashMap<u32, u32>,
    names: Vec<Arc<str>>,
}

impl Compiler {
    fn slot(&mut self, var: &Var) -> u32 {
        if let Some(&s) = self.slots.get(&var.id) {
            return s;
        }
        let s = self.names.len() as u32;
        self.slots.insert(var.id, s);
        self.names.push(Arc::clone(&var.name));
        s
    }

    /// Emits a placeholder jump target, to be patched once known.
    fn emit(&mut self, inst: Inst) -> usize {
        self.insts.push(inst);
        self.insts.len() - 1
    }

    fn here(&self) -> usize {
        self.insts.len()
    }

    fn patch(&mut self, at: usize, target: usize) {
        match &mut self.insts[at] {
            Inst::AndShortCircuit { end }
            | Inst::OrShortCircuit { end }
            | Inst::LoopEnter { end, .. } => *end = target,
            Inst::SelectBranch { else_pc } | Inst::Branch { else_pc } => *else_pc = target,
            Inst::Jump(t) => *t = target,
            other => unreachable!("patching non-jump instruction {other:?}"),
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Int(v) => {
                self.emit(Inst::PushInt(*v));
            }
            Expr::Float(v) => {
                self.emit(Inst::PushFloat(*v));
            }
            Expr::Var(v) => {
                let slot = self.slot(v);
                self.emit(Inst::PushVar(slot));
            }
            Expr::Binary(op, a, b) => {
                self.expr(a);
                self.expr(b);
                self.emit(Inst::Binary(*op));
            }
            Expr::Cmp(op, a, b) => {
                self.expr(a);
                self.expr(b);
                self.emit(Inst::Cmp(*op));
            }
            Expr::And(a, b) => {
                self.expr(a);
                let sc = self.emit(Inst::AndShortCircuit { end: 0 });
                self.expr(b);
                self.emit(Inst::BoolCast);
                let end = self.here();
                self.patch(sc, end);
            }
            Expr::Or(a, b) => {
                self.expr(a);
                let sc = self.emit(Inst::OrShortCircuit { end: 0 });
                self.expr(b);
                self.emit(Inst::BoolCast);
                let end = self.here();
                self.patch(sc, end);
            }
            Expr::Not(a) => {
                self.expr(a);
                self.emit(Inst::Not);
            }
            Expr::Select(c, a, b) => {
                self.expr(c);
                let sel = self.emit(Inst::SelectBranch { else_pc: 0 });
                self.expr(a);
                let skip = self.emit(Inst::Jump(0));
                let else_pc = self.here();
                self.patch(sel, else_pc);
                self.expr(b);
                let end = self.here();
                self.patch(skip, end);
            }
            Expr::Load { buf, index } => {
                self.expr(index);
                self.emit(Inst::Load {
                    buf: Arc::clone(buf),
                });
            }
            Expr::Cast(dt, a) => {
                self.expr(a);
                self.emit(Inst::Cast {
                    to_float: dt.is_float(),
                });
            }
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Seq(stmts) => {
                for s in stmts {
                    self.stmt(s);
                }
            }
            Stmt::Nop => {}
            Stmt::For {
                var,
                extent,
                kind: _, // parallel loop kinds execute sequentially, like the interpreter
                body,
            } => {
                self.expr(extent);
                let slot = self.slot(var);
                let enter = self.emit(Inst::LoopEnter {
                    slot,
                    end: 0,
                    summary: None,
                });
                let body_pc = self.here();
                self.stmt(body);
                self.emit(Inst::LoopBack { body: body_pc });
                let end = self.here();
                self.patch(enter, end);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expr(cond);
                let br = self.emit(Inst::Branch { else_pc: 0 });
                self.stmt(then_branch);
                match else_branch {
                    Some(e) => {
                        let skip = self.emit(Inst::Jump(0));
                        let else_pc = self.here();
                        self.patch(br, else_pc);
                        self.stmt(e);
                        let end = self.here();
                        self.patch(skip, end);
                    }
                    None => {
                        let end = self.here();
                        self.patch(br, end);
                    }
                }
            }
            Stmt::Store { buf, index, value } => {
                self.expr(index);
                self.expr(value);
                self.emit(Inst::Store {
                    buf: Arc::clone(buf),
                });
            }
            Stmt::Alloc { buf, body } => {
                self.emit(Inst::Alloc {
                    buf: Arc::clone(buf),
                });
                self.stmt(body);
            }
            Stmt::Dma {
                dst,
                dst_off,
                src,
                src_off,
                elems,
            } => {
                self.expr(dst_off);
                self.expr(src_off);
                self.expr(elems);
                self.emit(Inst::Dma {
                    dst: Arc::clone(dst),
                    src: Arc::clone(src),
                });
            }
            Stmt::HostTransfer {
                dir,
                dpu,
                global,
                global_off,
                mram,
                mram_off,
                elems,
                parallel,
            } => {
                self.expr(dpu);
                self.expr(global_off);
                self.expr(mram_off);
                self.expr(elems);
                self.emit(Inst::HostTransfer {
                    dir: *dir,
                    global: Arc::clone(global),
                    mram: Arc::clone(mram),
                    parallel: *parallel,
                });
            }
            Stmt::Barrier => {
                self.emit(Inst::Barrier);
            }
            Stmt::Evaluate(e) => {
                self.expr(e);
                self.emit(Inst::Pop);
            }
        }
    }
}

/// Executes a [`CompiledProgram`] against a [`MemoryStore`].
///
/// Mirrors the [`Interpreter`](super::Interpreter) session API: select a DPU
/// context with [`CompiledRunner::set_dpu`], bind free variables (grid
/// coordinates) with [`CompiledRunner::bind`], then [`CompiledRunner::run`].
/// The runner owns the mutable execution state (variable slots, value stack,
/// loop stack), so many runners can share one program — including from
/// different threads.
pub struct CompiledRunner<'p> {
    prog: &'p CompiledProgram,
    vars: Vec<Option<i64>>,
    stack: Vec<Value>,
    loops: Vec<LoopFrame>,
    dpu: i64,
    /// Cached values of hoisted loop-invariant expressions.
    hoisted_vals: Vec<Option<Value>>,
}

/// Minimum extent at which a summarizable loop is worth probing: the probe
/// executes three iterations plus recording overhead, so short loops (the
/// 2–8-iteration tile loops every kernel also contains) run faster straight.
const SUMMARIZE_MIN_EXTENT: i64 = 16;

/// Scratch recorder for one probe iteration of a summarizable loop body.
/// Event *counts* are fixed by the branch-free instruction sequence (nested
/// loops with invariant extents included); only DMA byte totals can vary
/// across iterations.  Loads/stores are run-length encoded so deeply nested
/// bodies stay compact; nested summarized loops land as one aggregated DMA
/// "site" via the [`Tracer::bulk`] override (sums of convex per-request
/// byte functions are convex, so the three-point check stays sound).
#[derive(Debug, Clone, Default, PartialEq)]
struct ProbeEvents {
    alu: u64,
    /// `(scope, bytes, count)` runs in event order.
    loads: Vec<(crate::buffer::MemScope, usize, u64)>,
    stores: Vec<(crate::buffer::MemScope, usize, u64)>,
    /// Guard branches evaluated (this body's own plus, via `bulk`, those of
    /// nested summarized loops).
    branches: u64,
    /// The *direction sequence* of this body's own guard branches, RLE
    /// encoded.  Compared verbatim across the three probes: every guard is
    /// statically monotone, and a monotone boolean that takes the same
    /// direction at iterations 0, 1 and n-1 is constant over the whole
    /// range — so equal sequences pin every guard (even several per body,
    /// including opposite-direction pairs that would alias in the anonymous
    /// event counts) and the extrapolation stays exact.  Nested summarized
    /// loops validate their own guards in their own probes.
    branch_dirs: Vec<(bool, u64)>,
    /// `(requests, total bytes)` per DMA site in event order.
    dma: Vec<(u64, u64)>,
    loop_enters: u64,
    loop_iters: u64,
    barriers: u64,
    /// Set when an event the summarizer cannot model fires (defensive: the
    /// static analysis should make this impossible).
    unsupported: bool,
}

fn push_rle(
    groups: &mut Vec<(crate::buffer::MemScope, usize, u64)>,
    scope: crate::buffer::MemScope,
    bytes: usize,
    count: u64,
) {
    match groups.last_mut() {
        Some(last) if last.0 == scope && last.1 == bytes => last.2 += count,
        _ => groups.push((scope, bytes, count)),
    }
}

impl Tracer for ProbeEvents {
    fn alu(&mut self, n: usize) {
        self.alu += n as u64;
    }
    fn load(&mut self, scope: crate::buffer::MemScope, bytes: usize) {
        push_rle(&mut self.loads, scope, bytes, 1);
    }
    fn store(&mut self, scope: crate::buffer::MemScope, bytes: usize) {
        push_rle(&mut self.stores, scope, bytes, 1);
    }
    fn branch(&mut self, taken: bool) {
        self.branches += 1;
        match self.branch_dirs.last_mut() {
            Some(last) if last.0 == taken => last.1 += 1,
            _ => self.branch_dirs.push((taken, 1)),
        }
    }
    fn loop_enter(&mut self) {
        self.loop_enters += 1;
    }
    fn loop_iter(&mut self) {
        self.loop_iters += 1;
    }
    fn dma(&mut self, bytes: usize) {
        self.dma.push((1, bytes as u64));
    }
    fn host_transfer(&mut self, _dir: TransferDir, _dpu: i64, _bytes: usize, _parallel: bool) {
        self.unsupported = true;
    }
    fn barrier(&mut self) {
        self.barriers += 1;
    }
    fn bulk(&mut self, events: &BulkEvents) {
        // A nested summarized loop reports here: totals are exact, and its
        // DMA traffic becomes one aggregated site.
        self.alu += events.alu;
        for &(scope, bytes, count) in &events.loads {
            push_rle(&mut self.loads, scope, bytes, count);
        }
        for &(scope, bytes, count) in &events.stores {
            push_rle(&mut self.stores, scope, bytes, count);
        }
        self.branches += events.branches;
        self.loop_enters += events.loop_enters;
        self.loop_iters += events.loop_iters;
        if events.dma_requests > 0 {
            self.dma.push((events.dma_requests, events.dma_bytes));
        }
        self.barriers += events.barriers;
    }
}

impl ProbeEvents {
    /// The iteration-invariant part of the recording (everything but the
    /// DMA byte totals).
    fn shape_matches(&self, other: &ProbeEvents) -> bool {
        !self.unsupported
            && !other.unsupported
            && self.alu == other.alu
            && self.loads == other.loads
            && self.stores == other.stores
            && self.branches == other.branches
            && self.branch_dirs == other.branch_dirs
            && self.loop_enters == other.loop_enters
            && self.loop_iters == other.loop_iters
            && self.barriers == other.barriers
            && self.dma.len() == other.dma.len()
            && self.dma.iter().zip(&other.dma).all(|(a, b)| a.0 == b.0)
    }
}

impl<'p> CompiledRunner<'p> {
    /// Creates a runner with no bindings, targeting DPU context 0.
    pub fn new(prog: &'p CompiledProgram) -> Self {
        CompiledRunner {
            prog,
            vars: vec![None; prog.names.len()],
            stack: Vec::with_capacity(16),
            loops: Vec::with_capacity(8),
            dpu: 0,
            hoisted_vals: vec![None; prog.hoisted.len()],
        }
    }

    /// Selects the DPU context used to resolve MRAM/WRAM buffer instances.
    pub fn set_dpu(&mut self, dpu: i64) {
        self.dpu = dpu;
    }

    /// Binds a free variable (e.g. DPU grid coordinates) before running.
    /// Variables the program never references are ignored.
    pub fn bind(&mut self, var: &Var, value: i64) {
        if let Some(slot) = self.prog.slot_of(var) {
            self.vars[slot as usize] = Some(value);
        }
    }

    fn pop(&mut self) -> Value {
        self.stack.pop().expect("compiled program stack underflow")
    }

    /// Runs the program to completion.
    ///
    /// # Errors
    /// Returns an error on out-of-bounds accesses, unbound variables or
    /// unallocated buffers — the same conditions as the tree interpreter.
    pub fn run<T: Tracer + ?Sized>(
        &mut self,
        store: &mut MemoryStore,
        tracer: &mut T,
        mode: ExecMode,
    ) -> Result<()> {
        self.stack.clear();
        self.loops.clear();
        self.hoisted_vals.fill(None);
        self.exec(store, tracer, mode, 0, self.prog.insts.len())
    }

    /// Executes the instruction range `[start, end)`.
    fn exec<T: Tracer + ?Sized>(
        &mut self,
        store: &mut MemoryStore,
        tracer: &mut T,
        mode: ExecMode,
        start: usize,
        end: usize,
    ) -> Result<()> {
        let prog = self.prog;
        let insts = &prog.insts;
        let mut pc = start;
        while pc < end {
            match &insts[pc] {
                Inst::PushInt(v) => self.stack.push(Value::Int(*v)),
                Inst::PushFloat(v) => self.stack.push(Value::Float(*v)),
                Inst::PushVar(slot) => match self.vars[*slot as usize] {
                    Some(v) => self.stack.push(Value::Int(v)),
                    None => {
                        return Err(TirError::UnboundVar(
                            self.prog.names[*slot as usize].to_string(),
                        ))
                    }
                },
                Inst::Binary(op) => {
                    let y = self.pop();
                    let x = self.pop();
                    tracer.alu(1);
                    self.stack.push(eval_binary(*op, x, y));
                }
                Inst::Cmp(op) => {
                    let y = self.pop();
                    let x = self.pop();
                    tracer.alu(1);
                    self.stack.push(Value::Int(eval_cmp(*op, x, y) as i64));
                }
                Inst::Not => {
                    let x = self.pop();
                    tracer.alu(1);
                    self.stack.push(Value::Int(!x.is_true() as i64));
                }
                Inst::Cast { to_float } => {
                    let x = self.pop();
                    tracer.alu(1);
                    self.stack.push(if *to_float {
                        Value::Float(x.as_float())
                    } else {
                        Value::Int(x.as_int())
                    });
                }
                Inst::AndShortCircuit { end } => {
                    let x = self.pop();
                    tracer.alu(1);
                    if !x.is_true() {
                        self.stack.push(Value::Int(0));
                        pc = *end;
                        continue;
                    }
                }
                Inst::OrShortCircuit { end } => {
                    let x = self.pop();
                    tracer.alu(1);
                    if x.is_true() {
                        self.stack.push(Value::Int(1));
                        pc = *end;
                        continue;
                    }
                }
                Inst::BoolCast => {
                    let x = self.pop();
                    self.stack.push(Value::Int(x.is_true() as i64));
                }
                Inst::SelectBranch { else_pc } => {
                    let c = self.pop();
                    tracer.alu(1);
                    if !c.is_true() {
                        pc = *else_pc;
                        continue;
                    }
                }
                Inst::Jump(target) => {
                    pc = *target;
                    continue;
                }
                Inst::Load { buf } => {
                    let idx = self.pop().as_int();
                    tracer.load(buf.scope, buf.dtype.bytes());
                    let v = if mode == ExecMode::Functional {
                        let raw = store.read_elem(buf, self.dpu, idx)?;
                        if buf.dtype.is_float() {
                            Value::Float(raw)
                        } else {
                            Value::Int(raw as i64)
                        }
                    } else {
                        Value::Float(0.0)
                    };
                    self.stack.push(v);
                }
                Inst::Store { buf } => {
                    let v = self.pop().as_float();
                    let idx = self.pop().as_int();
                    tracer.store(buf.scope, buf.dtype.bytes());
                    if mode == ExecMode::Functional {
                        store.write_elem(buf, self.dpu, idx, v)?;
                    }
                }
                Inst::Pop => {
                    self.pop();
                }
                Inst::LoopEnter {
                    slot,
                    end: loop_end,
                    summary,
                } => {
                    let n = self.pop().as_int();
                    tracer.loop_enter();
                    if n <= 0 {
                        pc = *loop_end;
                        continue;
                    }
                    if mode == ExecMode::TimingOnly && n >= SUMMARIZE_MIN_EXTENT {
                        if let Some(si) = summary {
                            let info = prog.summaries[*si as usize];
                            let prev = self.vars[*slot as usize];
                            let probed = self.probe_summary(store, *slot, n, info);
                            self.vars[*slot as usize] = prev;
                            if let Some(bulk) = probed? {
                                tracer.bulk(&bulk);
                                pc = *loop_end;
                                continue;
                            }
                        }
                    }
                    let prev = self.vars[*slot as usize];
                    self.loops.push(LoopFrame {
                        slot: *slot,
                        extent: n,
                        iter: 0,
                        prev,
                    });
                    tracer.loop_iter();
                    self.vars[*slot as usize] = Some(0);
                }
                Inst::LoopBack { body } => {
                    let frame = self.loops.last_mut().expect("loop stack underflow");
                    frame.iter += 1;
                    if frame.iter < frame.extent {
                        tracer.loop_iter();
                        self.vars[frame.slot as usize] = Some(frame.iter);
                        pc = *body;
                        continue;
                    }
                    let frame = self.loops.pop().expect("loop stack underflow");
                    self.vars[frame.slot as usize] = frame.prev;
                }
                Inst::Branch { else_pc } => {
                    let c = self.pop().is_true();
                    tracer.branch(c);
                    if !c {
                        pc = *else_pc;
                        continue;
                    }
                }
                Inst::Alloc { buf } => {
                    if mode == ExecMode::Functional && !store.contains(buf, self.dpu) {
                        store.alloc(buf, self.dpu);
                    }
                }
                Inst::Dma { dst, src } => {
                    let n = self.pop().as_int();
                    let s_off = self.pop().as_int();
                    let d_off = self.pop().as_int();
                    let bytes = (n.max(0) as usize) * dst.dtype.bytes();
                    tracer.dma(bytes);
                    if mode == ExecMode::Functional {
                        store.copy(dst, self.dpu, d_off, src, self.dpu, s_off, n)?;
                    }
                }
                Inst::HostTransfer {
                    dir,
                    global,
                    mram,
                    parallel,
                } => {
                    let n = self.pop().as_int();
                    let m_off = self.pop().as_int();
                    let g_off = self.pop().as_int();
                    let dpu_idx = self.pop().as_int();
                    let bytes = (n.max(0) as usize) * global.dtype.bytes();
                    tracer.host_transfer(*dir, dpu_idx, bytes, *parallel);
                    if mode == ExecMode::Functional {
                        match dir {
                            TransferDir::H2D => {
                                if !store.contains(mram, dpu_idx) {
                                    store.alloc(mram, dpu_idx);
                                }
                                store.copy(mram, dpu_idx, m_off, global, 0, g_off, n)?;
                            }
                            TransferDir::D2H => {
                                store.copy(global, 0, g_off, mram, dpu_idx, m_off, n)?;
                            }
                        }
                    }
                }
                Inst::Barrier => tracer.barrier(),
                Inst::PushConst { value, alu } => {
                    if *alu > 0 {
                        tracer.alu(*alu as usize);
                    }
                    self.stack.push(*value);
                }
                Inst::AffineVar {
                    slot,
                    scale,
                    offset,
                    alu,
                } => match self.vars[*slot as usize] {
                    Some(v) => {
                        if *alu > 0 {
                            tracer.alu(*alu as usize);
                        }
                        self.stack.push(Value::Int(v * scale + offset));
                    }
                    None => {
                        return Err(TirError::UnboundVar(prog.names[*slot as usize].to_string()))
                    }
                },
                Inst::AffineSum {
                    a,
                    a_scale,
                    b,
                    b_scale,
                    offset,
                    alu,
                } => {
                    let va = self.vars[*a as usize]
                        .ok_or_else(|| TirError::UnboundVar(prog.names[*a as usize].to_string()))?;
                    let vb = self.vars[*b as usize]
                        .ok_or_else(|| TirError::UnboundVar(prog.names[*b as usize].to_string()))?;
                    if *alu > 0 {
                        tracer.alu(*alu as usize);
                    }
                    self.stack
                        .push(Value::Int(va * a_scale + vb * b_scale + offset));
                }
                Inst::AluOps { n } => tracer.alu(*n as usize),
                Inst::EvalHoisted { idx } => {
                    let value = self.eval_pure(&prog.hoisted[*idx as usize].insts)?;
                    self.hoisted_vals[*idx as usize] = Some(value);
                }
                Inst::PushHoisted { idx, alu } => {
                    if *alu > 0 {
                        tracer.alu(*alu as usize);
                    }
                    let value = self.hoisted_vals[*idx as usize]
                        .expect("EvalHoisted always precedes PushHoisted");
                    self.stack.push(value);
                }
            }
            pc += 1;
        }
        Ok(())
    }

    /// Evaluates a hoisted pure expression against the current variable
    /// bindings without touching the tracer or the main stack.
    fn eval_pure(&self, insts: &[Inst]) -> Result<Value> {
        let mut stack: Vec<Value> = Vec::with_capacity(8);
        for inst in insts {
            match inst {
                Inst::PushInt(v) => stack.push(Value::Int(*v)),
                Inst::PushFloat(v) => stack.push(Value::Float(*v)),
                Inst::PushConst { value, .. } => stack.push(*value),
                Inst::PushVar(slot) => match self.vars[*slot as usize] {
                    Some(v) => stack.push(Value::Int(v)),
                    None => {
                        return Err(TirError::UnboundVar(
                            self.prog.names[*slot as usize].to_string(),
                        ))
                    }
                },
                Inst::AffineVar {
                    slot,
                    scale,
                    offset,
                    ..
                } => match self.vars[*slot as usize] {
                    Some(v) => stack.push(Value::Int(v * scale + offset)),
                    None => {
                        return Err(TirError::UnboundVar(
                            self.prog.names[*slot as usize].to_string(),
                        ))
                    }
                },
                Inst::AffineSum {
                    a,
                    a_scale,
                    b,
                    b_scale,
                    offset,
                    ..
                } => {
                    let va = self.vars[*a as usize].ok_or_else(|| {
                        TirError::UnboundVar(self.prog.names[*a as usize].to_string())
                    })?;
                    let vb = self.vars[*b as usize].ok_or_else(|| {
                        TirError::UnboundVar(self.prog.names[*b as usize].to_string())
                    })?;
                    stack.push(Value::Int(va * a_scale + vb * b_scale + offset));
                }
                Inst::Binary(op) => {
                    let y = stack.pop().expect("hoisted expression stack underflow");
                    let x = stack.pop().expect("hoisted expression stack underflow");
                    stack.push(eval_binary(*op, x, y));
                }
                Inst::Cmp(op) => {
                    let y = stack.pop().expect("hoisted expression stack underflow");
                    let x = stack.pop().expect("hoisted expression stack underflow");
                    stack.push(Value::Int(eval_cmp(*op, x, y) as i64));
                }
                Inst::Not => {
                    let x = stack.pop().expect("hoisted expression stack underflow");
                    stack.push(Value::Int(!x.is_true() as i64));
                }
                Inst::Cast { to_float } => {
                    let x = stack.pop().expect("hoisted expression stack underflow");
                    stack.push(if *to_float {
                        Value::Float(x.as_float())
                    } else {
                        Value::Int(x.as_int())
                    });
                }
                Inst::BoolCast => {
                    let x = stack.pop().expect("hoisted expression stack underflow");
                    stack.push(Value::Int(x.is_true() as i64));
                }
                other => unreachable!("impure instruction {other:?} in hoisted expression"),
            }
        }
        Ok(stack.pop().expect("hoisted expression produced no value"))
    }

    /// Probes a summarizable loop body at iterations `0`, `1` and `n-1` and,
    /// when the DMA byte totals extrapolate linearly, returns the closed-form
    /// bulk events of all `n` iterations.  Returns `Ok(None)` when the loop
    /// must be executed normally.
    ///
    /// Sound because the body is branch-free (event counts can only vary
    /// through nested-loop extents, which the shape check compares), the DMA
    /// sizes were statically proven affine in the induction variable (so
    /// per-site bytes are convex in the iteration index and three collinear
    /// samples pin the whole line — sums over nested summarized loops stay
    /// convex), and timing-only execution has no side effects beyond the
    /// tracer.
    fn probe_summary(
        &mut self,
        store: &mut MemoryStore,
        slot: u32,
        n: i64,
        info: LoopSummary,
    ) -> Result<Option<BulkEvents>> {
        let (start, end) = (info.body_start as usize, info.body_end as usize);
        let mut probes: [ProbeEvents; 3] = Default::default();
        for (iter, probe) in [0, 1, n - 1].into_iter().zip(probes.iter_mut()) {
            self.vars[slot as usize] = Some(iter);
            self.exec(store, probe, ExecMode::TimingOnly, start, end)?;
        }
        let [p0, p1, p2] = probes;
        if !p0.shape_matches(&p1) || !p0.shape_matches(&p2) {
            return Ok(None);
        }
        // Verify the per-site DMA totals are collinear across the three
        // samples; compute the arithmetic-series sum over all n iterations.
        let mut dma_bytes: i128 = 0;
        let mut dma_requests_per_iter: u64 = 0;
        for ((&(requests, b0), &(_, b1)), &(_, blast)) in p0.dma.iter().zip(&p1.dma).zip(&p2.dma) {
            let delta = b1 as i128 - b0 as i128;
            if blast as i128 != b0 as i128 + (n as i128 - 1) * delta {
                return Ok(None);
            }
            dma_bytes += n as i128 * b0 as i128 + delta * (n as i128 * (n as i128 - 1) / 2);
            dma_requests_per_iter += requests;
        }
        let n = n as u64;
        let mut bulk = BulkEvents {
            alu: p0.alu * n,
            branches: p0.branches * n,
            loop_enters: p0.loop_enters * n,
            loop_iters: n + p0.loop_iters * n,
            dma_requests: dma_requests_per_iter * n,
            dma_bytes: u64::try_from(dma_bytes).expect("negative or huge DMA byte total"),
            barriers: p0.barriers * n,
            ..BulkEvents::default()
        };
        let group = |groups: &mut Vec<(crate::buffer::MemScope, usize, u64)>,
                     events: &[(crate::buffer::MemScope, usize, u64)]| {
            for &(scope, bytes, count) in events {
                match groups.iter_mut().find(|g| g.0 == scope && g.1 == bytes) {
                    Some(g) => g.2 += count * n,
                    None => groups.push((scope, bytes, count * n)),
                }
            }
        };
        group(&mut bulk.loads, &p0.loads);
        group(&mut bulk.stores, &p0.stores);
        Ok(Some(bulk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::MemScope;
    use crate::dtype::DType;
    use crate::eval::{CountingTracer, Interpreter};

    /// Runs a statement through the tree interpreter, the compiled program
    /// and the *optimized* compiled program with identical initial stores,
    /// and asserts the traced events and final memory agree exactly.
    fn assert_equivalent(stmt: &Stmt, setup: impl Fn(&mut MemoryStore), mode: ExecMode) {
        let check_bufs: Vec<Arc<Buffer>> = collect_buffers(stmt);

        let mut tree_store = MemoryStore::new();
        setup(&mut tree_store);
        let mut tree_tracer = CountingTracer::default();
        let mut interp = Interpreter::new(&mut tree_store, &mut tree_tracer, mode);
        interp.run(stmt).unwrap();

        let prog = CompiledProgram::compile(stmt);
        for (label, program) in [("compiled", prog.clone()), ("optimized", prog.optimize())] {
            let mut flat_store = MemoryStore::new();
            setup(&mut flat_store);
            let mut flat_tracer = CountingTracer::default();
            CompiledRunner::new(&program)
                .run(&mut flat_store, &mut flat_tracer, mode)
                .unwrap();

            assert_eq!(tree_tracer, flat_tracer, "{label} tracer events diverge");
            for buf in &check_bufs {
                for dpu in 0..4 {
                    assert_eq!(
                        tree_store.read_all(buf, dpu),
                        flat_store.read_all(buf, dpu),
                        "{label} contents of {} (dpu {dpu}) diverge",
                        buf.name
                    );
                }
            }
        }
    }

    fn collect_buffers(stmt: &Stmt) -> Vec<Arc<Buffer>> {
        let mut out: Vec<Arc<Buffer>> = Vec::new();
        let mut push = |b: &Arc<Buffer>| {
            if !out.iter().any(|x| x.id == b.id) {
                out.push(Arc::clone(b));
            }
        };
        fn walk_expr(e: &Expr, push: &mut dyn FnMut(&Arc<Buffer>)) {
            match e {
                Expr::Load { buf, index } => {
                    push(buf);
                    walk_expr(index, push);
                }
                Expr::Binary(_, a, b) | Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                    walk_expr(a, push);
                    walk_expr(b, push);
                }
                Expr::Not(a) | Expr::Cast(_, a) => walk_expr(a, push),
                Expr::Select(c, a, b) => {
                    walk_expr(c, push);
                    walk_expr(a, push);
                    walk_expr(b, push);
                }
                Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => {}
            }
        }
        fn walk(s: &Stmt, push: &mut dyn FnMut(&Arc<Buffer>)) {
            match s {
                Stmt::Seq(v) => v.iter().for_each(|s| walk(s, push)),
                Stmt::For { extent, body, .. } => {
                    walk_expr(extent, push);
                    walk(body, push);
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    walk_expr(cond, push);
                    walk(then_branch, push);
                    if let Some(e) = else_branch {
                        walk(e, push);
                    }
                }
                Stmt::Store { buf, index, value } => {
                    push(buf);
                    walk_expr(index, push);
                    walk_expr(value, push);
                }
                Stmt::Alloc { buf, body } => {
                    push(buf);
                    walk(body, push);
                }
                Stmt::Dma { dst, src, .. } => {
                    push(dst);
                    push(src);
                }
                Stmt::HostTransfer { global, mram, .. } => {
                    push(global);
                    push(mram);
                }
                Stmt::Barrier | Stmt::Evaluate(_) | Stmt::Nop => {}
            }
        }
        walk(stmt, &mut push);
        out
    }

    #[test]
    fn arithmetic_loops_and_guards_are_equivalent() {
        let a = Buffer::new("A", DType::F32, vec![16], MemScope::Global);
        let b = Buffer::new("B", DType::F32, vec![16], MemScope::Global);
        let i = Var::new("i");
        let j = Var::new("j");
        let body = Stmt::seq(vec![
            Stmt::if_then(
                Expr::var(&i)
                    .lt(Expr::int(3))
                    .and(Expr::var(&j).lt(Expr::int(4))),
                Stmt::store(
                    &b,
                    Expr::var(&i).mul(Expr::int(4)).add(Expr::var(&j)),
                    Expr::load(&a, Expr::var(&i).mul(Expr::int(4)).add(Expr::var(&j)))
                        .mul(Expr::float(2.0)),
                ),
            ),
            Stmt::if_then(
                Expr::var(&j)
                    .eq_expr(Expr::int(0))
                    .or(Expr::var(&i).eq_expr(Expr::int(0))),
                Stmt::store(&b, Expr::int(15), Expr::float(7.0)),
            ),
        ]);
        let inner = Stmt::for_serial(j, 4i64, body);
        let prog = Stmt::for_serial(i, 4i64, inner);
        let setup = |store: &mut MemoryStore| {
            let init: Vec<f32> = (0..16).map(|x| x as f32 - 8.0).collect();
            store.alloc_with(&a, 0, &init);
            store.alloc(&b, 0);
        };
        assert_equivalent(&prog, setup, ExecMode::Functional);
        assert_equivalent(&prog, setup, ExecMode::TimingOnly);
    }

    #[test]
    fn select_cast_not_and_floor_ops_are_equivalent() {
        let a = Buffer::new("A", DType::F32, vec![8], MemScope::Global);
        let i = Var::new("i");
        let value = Expr::Select(
            Box::new(Expr::Not(Box::new(Expr::var(&i).ge(Expr::int(4))))),
            Box::new(Expr::Cast(
                DType::F32,
                Box::new(Expr::var(&i).floordiv(Expr::int(3))),
            )),
            Box::new(Expr::var(&i).floormod(Expr::int(0)).min(Expr::int(9))),
        );
        let prog = Stmt::for_serial(i.clone(), 8i64, Stmt::store(&a, Expr::var(&i), value));
        let setup = |store: &mut MemoryStore| store.alloc(&a, 0);
        assert_equivalent(&prog, setup, ExecMode::Functional);
    }

    #[test]
    fn dma_and_host_transfers_are_equivalent() {
        let global = Buffer::new("G", DType::F32, vec![32], MemScope::Global);
        let mram = Buffer::new("M", DType::F32, vec![8], MemScope::Mram);
        let wram = Buffer::new("W", DType::F32, vec![4], MemScope::Wram);
        let d = Var::new("d");
        let prog = Stmt::seq(vec![
            Stmt::for_serial(
                d.clone(),
                4i64,
                Stmt::seq(vec![
                    Stmt::HostTransfer {
                        dir: TransferDir::H2D,
                        dpu: Expr::var(&d),
                        global: global.clone(),
                        global_off: Expr::var(&d).mul(Expr::int(8)),
                        mram: mram.clone(),
                        mram_off: Expr::int(0),
                        elems: Expr::int(8),
                        parallel: true,
                    },
                    Stmt::Barrier,
                ]),
            ),
            Stmt::Dma {
                dst: wram.clone(),
                dst_off: Expr::int(0),
                src: mram.clone(),
                src_off: Expr::int(2),
                elems: Expr::int(4),
            },
            Stmt::Evaluate(Expr::int(3).add(Expr::int(4))),
            Stmt::HostTransfer {
                dir: TransferDir::D2H,
                dpu: Expr::int(1),
                global: global.clone(),
                global_off: Expr::int(0),
                mram: mram.clone(),
                mram_off: Expr::int(0),
                elems: Expr::int(4),
                parallel: false,
            },
        ]);
        let setup = |store: &mut MemoryStore| {
            store.alloc_with(&global, 0, &(0..32).map(|x| x as f32).collect::<Vec<_>>());
            for dpu in 0..4 {
                store.alloc(&wram, dpu);
            }
        };
        assert_equivalent(&prog, setup, ExecMode::Functional);
        assert_equivalent(&prog, setup, ExecMode::TimingOnly);
    }

    #[test]
    fn alloc_and_zero_extent_loops_are_equivalent() {
        let w = Buffer::new("W", DType::F32, vec![4], MemScope::Wram);
        let i = Var::new("i");
        let prog = Stmt::Alloc {
            buf: w.clone(),
            body: Box::new(Stmt::for_serial(
                i.clone(),
                0i64,
                Stmt::store(&w, Expr::var(&i), Expr::float(1.0)),
            )),
        };
        assert_equivalent(&prog, |_| {}, ExecMode::Functional);
        assert_equivalent(&prog, |_| {}, ExecMode::TimingOnly);
    }

    #[test]
    fn bindings_and_dpu_context_work_like_the_interpreter() {
        let m = Buffer::new("M", DType::F32, vec![4], MemScope::Mram);
        let x = Var::new("x");
        let prog = Stmt::store(&m, Expr::var(&x), Expr::float(5.0));
        let compiled = CompiledProgram::compile(&prog);
        let mut store = MemoryStore::new();
        store.alloc(&m, 3);
        let mut tracer = CountingTracer::default();
        let mut runner = CompiledRunner::new(&compiled);
        runner.set_dpu(3);
        runner.bind(&x, 2);
        runner
            .run(&mut store, &mut tracer, ExecMode::Functional)
            .unwrap();
        assert_eq!(store.read_all(&m, 3).unwrap(), &[0.0, 0.0, 5.0, 0.0]);
        // Unbound variable errors match the interpreter's.
        let mut fresh = CompiledRunner::new(&compiled);
        let err = fresh
            .run(&mut store, &mut tracer, ExecMode::Functional)
            .unwrap_err();
        assert!(matches!(err, TirError::UnboundVar(name) if name == "x"));
    }

    #[test]
    fn out_of_bounds_errors_match() {
        let a = Buffer::new("A", DType::F32, vec![4], MemScope::Global);
        let prog = Stmt::store(&a, Expr::int(9), Expr::float(1.0));
        let compiled = CompiledProgram::compile(&prog);
        let mut store = MemoryStore::new();
        store.alloc(&a, 0);
        let mut tracer = CountingTracer::default();
        let err = CompiledRunner::new(&compiled)
            .run(&mut store, &mut tracer, ExecMode::Functional)
            .unwrap_err();
        assert!(matches!(err, TirError::OutOfBounds { .. }));
    }

    #[test]
    fn one_program_is_reusable_across_dpus_and_runs() {
        let m = Buffer::new("M", DType::F32, vec![2], MemScope::Mram);
        let i = Var::new("i");
        let prog = Stmt::for_serial(
            i.clone(),
            2i64,
            Stmt::store(&m, Expr::var(&i), Expr::float(1.0)),
        );
        let compiled = CompiledProgram::compile(&prog);
        let mut store = MemoryStore::new();
        let mut tracer = CountingTracer::default();
        let mut runner = CompiledRunner::new(&compiled);
        for dpu in 0..3 {
            store.alloc(&m, dpu);
            runner.set_dpu(dpu);
            runner
                .run(&mut store, &mut tracer, ExecMode::Functional)
                .unwrap();
        }
        for dpu in 0..3 {
            assert_eq!(store.read_all(&m, dpu).unwrap(), &[1.0, 1.0]);
        }
        assert_eq!(tracer.loop_iters, 6);
    }
}
