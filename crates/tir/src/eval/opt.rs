//! Event-count-preserving bytecode optimization of [`CompiledProgram`]s.
//!
//! Candidate measurement executes the same kernel bytecode millions of times
//! (every loop iteration of every simulated DPU of every measured candidate),
//! so every instruction dispatched per iteration is paid for over and over.
//! [`CompiledProgram::optimize`] rewrites the flat instruction buffer to
//! dispatch far fewer instructions while reporting **exactly the same
//! [`Tracer`](super::Tracer) event totals** — the cycle model in `atim-sim`
//! consumes only those totals, so an optimized program produces bit-identical
//! latencies:
//!
//! 1. **Constant folding** — `PushInt 3, PushInt 4, Binary Add` becomes one
//!    `PushConst { 7, alu: 1 }` carrying the folded-away ALU count.
//! 2. **Affine index fusion** — `PushVar i, PushInt 64, Mul, PushVar j, Add`
//!    becomes one `AffineSum` instruction: the `i * K + j` shape of most
//!    lowered buffer indices runs as a single dispatch.
//! 3. **Dead pop elimination** — evaluate-and-discard of a folded constant
//!    collapses to an `AluOps` count bump (or vanishes entirely).
//! 4. **Loop-invariant hoisting** — pure arithmetic over variables a loop
//!    never writes is evaluated once per loop *entry* (untraced) and re-read
//!    per iteration through `PushHoisted`, which bumps the ALU count the
//!    in-loop computation would have traced.
//! 5. **Loop summarization** — loop bodies whose DMA sizes are provably
//!    affine in the induction variable, and whose only control flow is
//!    well-nested inner loops plus *monotone* affine guards (`Lin < Inv`
//!    under Lt/Le/Gt/Ge — the boundary checks of misaligned shapes), are
//!    marked summarizable: in [`ExecMode::TimingOnly`](super::ExecMode), the
//!    runner probes three iterations and applies the rest as one
//!    closed-form [`BulkEvents`](super::BulkEvents) batch instead of
//!    iterating.  Three agreeing samples at iterations 0, 1 and n-1 pin a
//!    monotone guard constant over the whole range, so the batch stays
//!    exact; a guard that actually flips makes the probes disagree and the
//!    loop falls back to full execution.
//!
//! Divergence from the unoptimized program is limited to *error paths*: a
//! hoisted expression over an unbound variable raises its error at loop entry
//! rather than mid-first-iteration, so tracer state at the moment of the
//! error can differ.  Successful runs are pinned bit-identical (events and
//! memory) by the tests below and the property tests in `tests/proptests.rs`.

use crate::expr::BinOp;

use super::compiled::{CompiledProgram, HoistedExpr, Inst, LoopSummary};
use super::{eval_binary, eval_cmp, Value};

/// Counts of the rewrites the optimizer performed (diagnostics and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Constant expressions folded to a single push.
    pub folded: usize,
    /// Affine index chains fused into `AffineVar`/`AffineSum` instructions.
    pub fused: usize,
    /// Evaluate-and-discard sequences eliminated.
    pub pops_eliminated: usize,
    /// Loop-invariant expressions hoisted out of loop bodies.
    pub hoisted: usize,
    /// Innermost loops marked summarizable for timing-only execution.
    pub loops_summarized: usize,
}

const MAX_PEEPHOLE_PASSES: usize = 16;
const MAX_HOIST_PASSES: usize = 64;

impl CompiledProgram {
    /// Returns an optimized copy of the program; see the module docs for the
    /// rewrites applied and the event-equivalence contract.
    pub fn optimize(&self) -> CompiledProgram {
        self.optimize_with_stats().0
    }

    /// [`CompiledProgram::optimize`], also reporting what was rewritten.
    pub fn optimize_with_stats(&self) -> (CompiledProgram, OptStats) {
        let mut insts = self.insts.clone();
        let mut hoisted = self.hoisted.clone();
        let mut stats = OptStats::default();
        for _ in 0..MAX_PEEPHOLE_PASSES {
            if !peephole(&mut insts, &mut stats) {
                break;
            }
        }
        for _ in 0..MAX_HOIST_PASSES {
            if !hoist_one_loop(&mut insts, &mut hoisted, &mut stats) {
                break;
            }
        }
        let summaries = mark_summaries(&mut insts, &mut stats);
        (
            CompiledProgram {
                insts,
                slots: self.slots.clone(),
                names: self.names.clone(),
                summaries,
                hoisted,
            },
            stats,
        )
    }
}

/// Marks every pc (plus the one-past-the-end position) that some jump
/// instruction targets.
fn jump_targets(insts: &[Inst]) -> Vec<bool> {
    let mut targets = vec![false; insts.len() + 1];
    for inst in insts {
        match inst {
            Inst::AndShortCircuit { end }
            | Inst::OrShortCircuit { end }
            | Inst::LoopEnter { end, .. } => targets[*end] = true,
            Inst::SelectBranch { else_pc } | Inst::Branch { else_pc } => targets[*else_pc] = true,
            Inst::Jump(t) => targets[*t] = true,
            Inst::LoopBack { body } => targets[*body] = true,
            _ => {}
        }
    }
    targets
}

/// Rewrites every jump target through `map` (old pc → new pc).
fn remap_targets(insts: &mut [Inst], map: &[usize]) {
    for inst in insts {
        match inst {
            Inst::AndShortCircuit { end }
            | Inst::OrShortCircuit { end }
            | Inst::LoopEnter { end, .. } => *end = map[*end],
            Inst::SelectBranch { else_pc } | Inst::Branch { else_pc } => *else_pc = map[*else_pc],
            Inst::Jump(t) => *t = map[*t],
            Inst::LoopBack { body } => *body = map[*body],
            _ => {}
        }
    }
}

/// The constant value and folded-away ALU count of a push-style instruction.
fn as_const(inst: &Inst) -> Option<(Value, u32)> {
    match inst {
        Inst::PushInt(v) => Some((Value::Int(*v), 0)),
        Inst::PushFloat(v) => Some((Value::Float(*v), 0)),
        Inst::PushConst { value, alu } => Some((*value, *alu)),
        _ => None,
    }
}

/// A single- or two-variable affine operand recognized for fusion.
#[derive(Debug, Clone, Copy)]
enum AffOp {
    Var {
        slot: u32,
        scale: i64,
        offset: i64,
        alu: u32,
    },
    Sum {
        a: u32,
        a_scale: i64,
        b: u32,
        b_scale: i64,
        offset: i64,
        alu: u32,
    },
}

impl AffOp {
    fn alu(&self) -> u32 {
        match self {
            AffOp::Var { alu, .. } | AffOp::Sum { alu, .. } => *alu,
        }
    }

    fn to_inst(self) -> Inst {
        match self {
            AffOp::Var {
                slot,
                scale,
                offset,
                alu,
            } => Inst::AffineVar {
                slot,
                scale,
                offset,
                alu,
            },
            AffOp::Sum {
                a,
                a_scale,
                b,
                b_scale,
                offset,
                alu,
            } => Inst::AffineSum {
                a,
                a_scale,
                b,
                b_scale,
                offset,
                alu,
            },
        }
    }

    /// `self ⊕ c` (or `c ⊕ self` when `const_is_lhs`) as a new affine form;
    /// `None` when the constant arithmetic would overflow i64.
    fn with_const(self, c: i64, c_alu: u32, op: BinOp, const_is_lhs: bool) -> Option<AffOp> {
        let alu = self.alu() + c_alu + 1;
        let adjust = |scale: i64, offset: i64| -> Option<(i64, i64)> {
            match op {
                BinOp::Add => Some((scale, offset.checked_add(c)?)),
                BinOp::Sub if !const_is_lhs => Some((scale, offset.checked_sub(c)?)),
                BinOp::Sub => Some((scale.checked_neg()?, c.checked_sub(offset)?)),
                BinOp::Mul => Some((scale.checked_mul(c)?, offset.checked_mul(c)?)),
                _ => None,
            }
        };
        match self {
            AffOp::Var {
                slot,
                scale,
                offset,
                ..
            } => {
                let (scale, offset) = adjust(scale, offset)?;
                Some(AffOp::Var {
                    slot,
                    scale,
                    offset,
                    alu,
                })
            }
            AffOp::Sum {
                a,
                a_scale,
                b,
                b_scale,
                offset,
                ..
            } => {
                // `c - (a·x + b·y + o)` negates both scales; multiplication
                // scales both.  Reuse `adjust` for the (b_scale, offset)
                // pair and recompute a_scale with the same rule.
                let (b_scale, offset) = adjust(b_scale, offset)?;
                let a_scale = match op {
                    BinOp::Add => a_scale,
                    BinOp::Sub if !const_is_lhs => a_scale,
                    BinOp::Sub => a_scale.checked_neg()?,
                    BinOp::Mul => a_scale.checked_mul(c)?,
                    _ => return None,
                };
                Some(AffOp::Sum {
                    a,
                    a_scale,
                    b,
                    b_scale,
                    offset,
                    alu,
                })
            }
        }
    }
}

fn as_affine(inst: &Inst) -> Option<AffOp> {
    match inst {
        Inst::PushVar(slot) => Some(AffOp::Var {
            slot: *slot,
            scale: 1,
            offset: 0,
            alu: 0,
        }),
        Inst::AffineVar {
            slot,
            scale,
            offset,
            alu,
        } => Some(AffOp::Var {
            slot: *slot,
            scale: *scale,
            offset: *offset,
            alu: *alu,
        }),
        Inst::AffineSum {
            a,
            a_scale,
            b,
            b_scale,
            offset,
            alu,
        } => Some(AffOp::Sum {
            a: *a,
            a_scale: *a_scale,
            b: *b,
            b_scale: *b_scale,
            offset: *offset,
            alu: *alu,
        }),
        _ => None,
    }
}

/// Tries to replace `lhs, rhs, Binary(op)` by one instruction.  Returns the
/// replacement and whether it was a full constant fold.
fn fuse_binary(lhs: &Inst, rhs: &Inst, op: BinOp) -> Option<(Inst, bool)> {
    if let (Some((x, nx)), Some((y, ny))) = (as_const(lhs), as_const(rhs)) {
        return Some((
            Inst::PushConst {
                value: eval_binary(op, x, y),
                alu: nx + ny + 1,
            },
            true,
        ));
    }
    if !matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul) {
        return None;
    }
    if let (Some(a), Some((Value::Int(c), nc))) = (as_affine(lhs), as_const(rhs)) {
        return a.with_const(c, nc, op, false).map(|f| (f.to_inst(), false));
    }
    if let (Some((Value::Int(c), nc)), Some(a)) = (as_const(lhs), as_affine(rhs)) {
        return a.with_const(c, nc, op, true).map(|f| (f.to_inst(), false));
    }
    if matches!(op, BinOp::Add | BinOp::Sub) {
        if let (
            Some(AffOp::Var {
                slot: a,
                scale: a_scale,
                offset: oa,
                alu: na,
            }),
            Some(AffOp::Var {
                slot: b,
                scale: b_scale,
                offset: ob,
                alu: nb,
            }),
        ) = (as_affine(lhs), as_affine(rhs))
        {
            let (b_scale, ob) = if op == BinOp::Sub {
                (b_scale.checked_neg()?, ob.checked_neg()?)
            } else {
                (b_scale, ob)
            };
            return Some((
                Inst::AffineSum {
                    a,
                    a_scale,
                    b,
                    b_scale,
                    offset: oa.checked_add(ob)?,
                    alu: na + nb + 1,
                },
                false,
            ));
        }
    }
    None
}

/// One local-rewrite pass over the whole buffer; returns whether anything
/// changed.  Jump targets are recomputed per pass and rewrites never delete
/// a targeted instruction, so control flow is preserved exactly.
fn peephole(insts: &mut Vec<Inst>, stats: &mut OptStats) -> bool {
    let targets = jump_targets(insts);
    let old_len = insts.len();
    let mut out: Vec<Inst> = Vec::with_capacity(old_len);
    let mut old_pc: Vec<usize> = Vec::with_capacity(old_len);
    let mut changed = false;
    for (pc, inst) in insts.iter().enumerate() {
        out.push(inst.clone());
        old_pc.push(pc);
        while reduce_tail(&mut out, &mut old_pc, &targets, stats) {
            changed = true;
        }
    }
    if !changed {
        return false;
    }
    let mut map = vec![usize::MAX; old_len + 1];
    for (new_idx, &p) in old_pc.iter().enumerate() {
        map[p] = new_idx;
    }
    map[old_len] = out.len();
    for p in (0..old_len).rev() {
        if map[p] == usize::MAX {
            map[p] = map[p + 1];
        }
    }
    remap_targets(&mut out, &map);
    *insts = out;
    true
}

/// Tries one rewrite at the tail of the output buffer.
fn reduce_tail(
    out: &mut Vec<Inst>,
    old_pc: &mut Vec<usize>,
    targets: &[bool],
    stats: &mut OptStats,
) -> bool {
    let n = out.len();
    // [lhs, rhs, Binary/Cmp] → fold or fuse.
    if n >= 3 && !targets[old_pc[n - 1]] && !targets[old_pc[n - 2]] {
        let replacement = match &out[n - 1] {
            Inst::Binary(op) => fuse_binary(&out[n - 3], &out[n - 2], *op),
            Inst::Cmp(op) => match (as_const(&out[n - 3]), as_const(&out[n - 2])) {
                (Some((x, nx)), Some((y, ny))) => Some((
                    Inst::PushConst {
                        value: Value::Int(eval_cmp(*op, x, y) as i64),
                        alu: nx + ny + 1,
                    },
                    true,
                )),
                _ => None,
            },
            _ => None,
        };
        if let Some((inst, is_fold)) = replacement {
            if is_fold {
                stats.folded += 1;
            } else {
                stats.fused += 1;
            }
            let first = old_pc[n - 3];
            out.truncate(n - 3);
            old_pc.truncate(n - 3);
            out.push(inst);
            old_pc.push(first);
            return true;
        }
    }
    // [const, unary] → fold; [const, Pop] → eliminate.
    if n >= 2 && !targets[old_pc[n - 1]] {
        if let Some((v, nv)) = as_const(&out[n - 2]) {
            let replacement = match &out[n - 1] {
                Inst::Not => Some(Some(Inst::PushConst {
                    value: Value::Int(!v.is_true() as i64),
                    alu: nv + 1,
                })),
                Inst::Cast { to_float } => Some(Some(Inst::PushConst {
                    value: if *to_float {
                        Value::Float(v.as_float())
                    } else {
                        Value::Int(v.as_int())
                    },
                    alu: nv + 1,
                })),
                Inst::BoolCast => Some(Some(Inst::PushConst {
                    value: Value::Int(v.is_true() as i64),
                    alu: nv,
                })),
                Inst::Pop if nv == 0 => Some(None),
                Inst::Pop => Some(Some(Inst::AluOps { n: nv })),
                _ => None,
            };
            if let Some(repl) = replacement {
                let is_pop = matches!(&out[n - 1], Inst::Pop);
                if is_pop {
                    stats.pops_eliminated += 1;
                } else {
                    stats.folded += 1;
                }
                let first = old_pc[n - 2];
                out.truncate(n - 2);
                old_pc.truncate(n - 2);
                if let Some(inst) = repl {
                    out.push(inst);
                    old_pc.push(first);
                }
                return true;
            }
        }
    }
    false
}

/// A `LoopEnter` / `LoopBack` pair; body is `enter+1 .. back`.
#[derive(Debug, Clone, Copy)]
struct LoopRegion {
    enter: usize,
    back: usize,
    slot: u32,
}

fn find_loops(insts: &[Inst]) -> Vec<LoopRegion> {
    let mut loops: Vec<LoopRegion> = insts
        .iter()
        .enumerate()
        .filter_map(|(pc, inst)| match inst {
            Inst::LoopEnter { slot, end, .. } => {
                debug_assert!(matches!(insts[*end - 1], Inst::LoopBack { .. }));
                Some(LoopRegion {
                    enter: pc,
                    back: *end - 1,
                    slot: *slot,
                })
            }
            _ => None,
        })
        .collect();
    // Innermost first: smaller bodies sort ahead.
    loops.sort_by_key(|r| r.back - r.enter);
    loops
}

/// Whether a loop body has summarizable *structure*: well-nested inner
/// loops, no jump from outside landing inside it, and no control flow the
/// probe cannot model.  (Inner loops are fine — their event counts per
/// outer iteration are compared by the runtime probe.  Plain `Branch`
/// guards are admitted here and then vetted by [`dma_sizes_affine`]: only
/// *monotone* affine conditions survive, because a monotone boolean that
/// agrees at iterations 0, 1 and n-1 is constant over the whole range —
/// exactly what makes the three-point probe sound.  `Select` and
/// short-circuit constructs still disqualify: their value flows into
/// arithmetic the probe cannot see.)
fn summarizable_structure(insts: &[Inst], region: &LoopRegion) -> bool {
    let (start, end) = (region.enter + 1, region.back);
    for inst in &insts[start..end] {
        if matches!(
            inst,
            Inst::SelectBranch { .. }
                | Inst::AndShortCircuit { .. }
                | Inst::OrShortCircuit { .. }
                | Inst::Jump(_)
                | Inst::HostTransfer { .. }
                | Inst::EvalHoisted { .. }
        ) {
            return false;
        }
    }
    // Every jump whose target lies strictly inside the body must originate
    // inside the body (the well-nested inner loops); the defining back edge
    // targets `start`, which is fine.
    for (pc, inst) in insts.iter().enumerate() {
        let inside = pc >= start && pc < end;
        let target = match inst {
            Inst::AndShortCircuit { end: t }
            | Inst::OrShortCircuit { end: t }
            | Inst::LoopEnter { end: t, .. } => *t,
            Inst::SelectBranch { else_pc } | Inst::Branch { else_pc } => *else_pc,
            Inst::Jump(t) => *t,
            Inst::LoopBack { body } => *body,
            _ => continue,
        };
        if target > start && target < end && !inside {
            return false;
        }
        if inside && (target <= start || target > end) && pc != region.back {
            // An inner jump escaping the region would break range execution.
            return false;
        }
    }
    true
}

/// Abstract value for the DMA-size affinity analysis: invariant across
/// iterations, affine in the induction variable with invariant
/// coefficients, a *monotone boolean* of the induction variable (an
/// ordering comparison of affine operands — it flips direction at most
/// once over the iteration range), or none of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Aff {
    Inv,
    Lin,
    Mono,
    Other,
}

/// Verifies every `Dma` element count in the body is affine in the
/// induction variable (`max(0, ·)` of an affine value is convex, which is
/// what makes the runner's three-point probe sound), and every `Branch`
/// guard condition is invariant or *monotone* affine (`Lin < Inv` under
/// Lt/Le/Gt/Ge and their negations): a monotone boolean whose samples agree
/// at 0, 1 and n-1 is constant on [0, n-1], so matching probes pin the
/// whole range.  Eq/Ne comparisons on affine operands can flip twice and
/// are rejected.
fn dma_sizes_affine(insts: &[Inst], region: &LoopRegion) -> bool {
    use Aff::*;
    let iter_slot = region.slot;
    let mut stack: Vec<Aff> = Vec::new();
    for inst in &insts[region.enter + 1..region.back] {
        let pop = |stack: &mut Vec<Aff>| stack.pop().unwrap_or(Other);
        match inst {
            Inst::PushInt(_)
            | Inst::PushFloat(_)
            | Inst::PushConst { .. }
            | Inst::PushHoisted { .. } => stack.push(Inv),
            Inst::PushVar(s) => stack.push(if *s == iter_slot { Lin } else { Inv }),
            Inst::AffineVar { slot, .. } => stack.push(if *slot == iter_slot { Lin } else { Inv }),
            Inst::AffineSum { a, b, .. } => stack.push(if *a == iter_slot || *b == iter_slot {
                Lin
            } else {
                Inv
            }),
            Inst::Binary(op) => {
                let y = pop(&mut stack);
                let x = pop(&mut stack);
                stack.push(match op {
                    BinOp::Add | BinOp::Sub => match (x, y) {
                        (Other, _) | (_, Other) | (Mono, _) | (_, Mono) => Other,
                        (Inv, Inv) => Inv,
                        _ => Lin,
                    },
                    BinOp::Mul => match (x, y) {
                        (Other, _) | (_, Other) | (Mono, _) | (_, Mono) | (Lin, Lin) => Other,
                        (Inv, Inv) => Inv,
                        _ => Lin,
                    },
                    _ => {
                        if x == Inv && y == Inv {
                            Inv
                        } else {
                            Other
                        }
                    }
                });
            }
            Inst::Cmp(op) => {
                let y = pop(&mut stack);
                let x = pop(&mut stack);
                use crate::expr::CmpOp;
                stack.push(match (x, y) {
                    (Inv, Inv) => Inv,
                    // An ordering comparison of affine operands is monotone
                    // in the induction variable (the difference is affine,
                    // so its sign changes at most once).  Eq/Ne can flip
                    // twice — not monotone.
                    (Inv | Lin, Inv | Lin)
                        if matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge) =>
                    {
                        Mono
                    }
                    _ => Other,
                });
            }
            Inst::Not => {
                // The negation of a monotone boolean is monotone (it flips
                // at the same single point).
                let x = pop(&mut stack);
                stack.push(match x {
                    Inv => Inv,
                    Mono => Mono,
                    _ => Other,
                });
            }
            Inst::Cast { .. } | Inst::BoolCast => {
                let x = pop(&mut stack);
                stack.push(if x == Inv { Inv } else { Other });
            }
            Inst::Load { .. } => {
                // Timing-only loads push a constant 0.0, so the loaded value
                // is iteration-invariant regardless of the index.
                let _idx = pop(&mut stack);
                stack.push(Inv);
            }
            Inst::Store { .. } => {
                let _v = pop(&mut stack);
                let _idx = pop(&mut stack);
            }
            Inst::Pop => {
                let _ = pop(&mut stack);
            }
            Inst::Dma { .. } => {
                let elems = pop(&mut stack);
                let _src_off = pop(&mut stack);
                let _dst_off = pop(&mut stack);
                if elems == Other || elems == Mono {
                    return false;
                }
            }
            // A guard: admissible when its condition cannot flip direction
            // more than once across the iteration range.  The runtime probe
            // then verifies the direction actually agrees at 0, 1 and n-1,
            // which (by monotonicity) pins it constant.
            Inst::Branch { .. } => {
                let cond = pop(&mut stack);
                if cond != Inv && cond != Mono {
                    return false;
                }
            }
            // Nested loops: the extent must be invariant across outer
            // iterations (a varying extent would make event counts
            // non-constant, defeating the probe before it starts).  Values
            // of inner induction variables are `Inv` — for the j-th event of
            // an outer iteration they are the same every outer iteration.
            Inst::LoopEnter { .. } => {
                let extent = pop(&mut stack);
                if extent != Inv {
                    return false;
                }
            }
            Inst::LoopBack { .. } => {}
            Inst::AluOps { .. } | Inst::Alloc { .. } | Inst::Barrier => {}
            // Anything else contradicts `summarizable_structure`.
            _ => return false,
        }
    }
    true
}

/// Marks every summarizable loop, rewriting its `LoopEnter`; returns the
/// summary table.
fn mark_summaries(insts: &mut [Inst], stats: &mut OptStats) -> Vec<LoopSummary> {
    for inst in insts.iter_mut() {
        if let Inst::LoopEnter { summary, .. } = inst {
            *summary = None;
        }
    }
    let mut summaries = Vec::new();
    for region in find_loops(insts) {
        if summarizable_structure(insts, &region) && dma_sizes_affine(insts, &region) {
            let idx = summaries.len() as u32;
            summaries.push(LoopSummary {
                body_start: (region.enter + 1) as u32,
                body_end: region.back as u32,
            });
            if let Inst::LoopEnter { summary, .. } = &mut insts[region.enter] {
                *summary = Some(idx);
            }
            stats.loops_summarized += 1;
        }
    }
    summaries
}

/// An abstract stack value during hoist-candidate collection.
#[derive(Debug, Clone, Copy)]
struct AbsVal {
    /// pc of the first instruction producing this value.
    start: usize,
    /// `Some(traced ALU count)` when the value is pure, loop-invariant and
    /// unconditionally evaluated — i.e. hoistable.
    hoist: Option<u64>,
}

impl AbsVal {
    fn opaque(start: usize) -> Self {
        AbsVal { start, hoist: None }
    }
}

/// A hoist candidate: the instruction range `[start, end)` and the ALU count
/// it traces per evaluation.
type Candidate = (usize, usize, u64);

/// Hoists loop-invariant expressions out of one loop (the innermost one with
/// candidates); returns whether a rewrite happened.
fn hoist_one_loop(
    insts: &mut Vec<Inst>,
    hoisted: &mut Vec<HoistedExpr>,
    stats: &mut OptStats,
) -> bool {
    let targets = jump_targets(insts);
    for region in find_loops(insts) {
        // Fully summarizable loops execute only three probe iterations in
        // the hot (timing) path; leave their bodies untouched so the
        // summarizer can still match them.
        if summarizable_structure(insts, &region) && dma_sizes_affine(insts, &region) {
            continue;
        }
        let candidates = collect_candidates(insts, &region, &targets);
        if candidates.is_empty() {
            continue;
        }
        apply_hoists(insts, hoisted, &region, &candidates);
        stats.hoisted += candidates.len();
        return true;
    }
    false
}

/// Collects maximal pure, loop-invariant, unconditionally-evaluated
/// expression subtrees of at least three instructions inside a loop body.
fn collect_candidates(insts: &[Inst], region: &LoopRegion, targets: &[bool]) -> Vec<Candidate> {
    // Variables written inside the body (nested loop inductions) or by the
    // loop itself are not invariant.
    let mut written: Vec<u32> = vec![region.slot];
    for inst in &insts[region.enter + 1..region.back] {
        if let Inst::LoopEnter { slot, .. } = inst {
            written.push(*slot);
        }
    }

    let mut stack: Vec<AbsVal> = Vec::new();
    let mut candidates: Vec<Candidate> = Vec::new();
    // End of the current conditionally-executed (or nested-loop) region:
    // values produced before this pc must not be hoisted, since the
    // unoptimized program may never evaluate them.
    let mut open_until = 0usize;

    let harvest = |value: AbsVal, end: usize, candidates: &mut Vec<Candidate>| {
        if let Some(alu) = value.hoist {
            let len = end - value.start;
            if len >= 3 && alu >= 1 && (value.start + 1..end).all(|pc| !targets[pc]) {
                candidates.push((value.start, end, alu));
            }
        }
    };

    let mut pc = region.enter + 1;
    while pc < region.back {
        let in_open = pc < open_until;
        let guard = |hoist: Option<u64>| if in_open { None } else { hoist };
        match &insts[pc] {
            Inst::PushInt(_) | Inst::PushFloat(_) => stack.push(AbsVal {
                start: pc,
                hoist: guard(Some(0)),
            }),
            Inst::PushConst { alu, .. } => stack.push(AbsVal {
                start: pc,
                hoist: guard(Some(*alu as u64)),
            }),
            Inst::PushVar(s) => stack.push(AbsVal {
                start: pc,
                hoist: guard((!written.contains(s)).then_some(0)),
            }),
            Inst::AffineVar { slot, alu, .. } => stack.push(AbsVal {
                start: pc,
                hoist: guard((!written.contains(slot)).then_some(*alu as u64)),
            }),
            Inst::AffineSum { a, b, alu, .. } => stack.push(AbsVal {
                start: pc,
                hoist: guard((!written.contains(a) && !written.contains(b)).then_some(*alu as u64)),
            }),
            Inst::PushHoisted { .. } => stack.push(AbsVal::opaque(pc)),
            Inst::Binary(_) | Inst::Cmp(_) => {
                let y = stack.pop().unwrap_or(AbsVal::opaque(pc));
                let x = stack.pop().unwrap_or(AbsVal::opaque(pc));
                let combined = match (x.hoist, y.hoist) {
                    (Some(nx), Some(ny)) => guard(Some(nx + ny + 1)),
                    _ => None,
                };
                if combined.is_none() {
                    harvest(x, y.start, &mut candidates);
                    harvest(y, pc, &mut candidates);
                }
                stack.push(AbsVal {
                    start: x.start,
                    hoist: combined,
                });
            }
            Inst::Not | Inst::Cast { .. } | Inst::BoolCast => {
                let x = stack.pop().unwrap_or(AbsVal::opaque(pc));
                let alu_cost = if matches!(&insts[pc], Inst::BoolCast) {
                    0
                } else {
                    1
                };
                stack.push(AbsVal {
                    start: x.start,
                    hoist: guard(x.hoist.map(|n| n + alu_cost)),
                });
            }
            Inst::Load { .. } => {
                let idx = stack.pop().unwrap_or(AbsVal::opaque(pc));
                harvest(idx, pc, &mut candidates);
                stack.push(AbsVal::opaque(idx.start));
            }
            Inst::Store { .. } => {
                let v = stack.pop().unwrap_or(AbsVal::opaque(pc));
                let idx = stack.pop().unwrap_or(AbsVal::opaque(pc));
                harvest(idx, v.start, &mut candidates);
                harvest(v, pc, &mut candidates);
            }
            Inst::Pop => {
                let v = stack.pop().unwrap_or(AbsVal::opaque(pc));
                harvest(v, pc, &mut candidates);
            }
            Inst::Dma { .. } => {
                let elems = stack.pop().unwrap_or(AbsVal::opaque(pc));
                let s_off = stack.pop().unwrap_or(AbsVal::opaque(pc));
                let d_off = stack.pop().unwrap_or(AbsVal::opaque(pc));
                harvest(d_off, s_off.start, &mut candidates);
                harvest(s_off, elems.start, &mut candidates);
                harvest(elems, pc, &mut candidates);
            }
            Inst::HostTransfer { .. } => {
                let elems = stack.pop().unwrap_or(AbsVal::opaque(pc));
                let m_off = stack.pop().unwrap_or(AbsVal::opaque(pc));
                let g_off = stack.pop().unwrap_or(AbsVal::opaque(pc));
                let dpu = stack.pop().unwrap_or(AbsVal::opaque(pc));
                harvest(dpu, g_off.start, &mut candidates);
                harvest(g_off, m_off.start, &mut candidates);
                harvest(m_off, elems.start, &mut candidates);
                harvest(elems, pc, &mut candidates);
            }
            Inst::Branch { else_pc } => {
                let cond = stack.pop().unwrap_or(AbsVal::opaque(pc));
                harvest(cond, pc, &mut candidates);
                open_until = open_until.max(*else_pc);
            }
            Inst::AndShortCircuit { end } | Inst::OrShortCircuit { end } => {
                // Skip the whole short-circuit construct, like Select: pop
                // the lhs, push one opaque result whose region starts at the
                // lhs (so a preceding sibling's harvest range cannot swallow
                // the lhs-producing instructions).
                let lhs = stack.pop().unwrap_or(AbsVal::opaque(pc));
                harvest(lhs, pc, &mut candidates);
                stack.push(AbsVal::opaque(lhs.start));
                pc = *end;
                continue;
            }
            Inst::SelectBranch { else_pc } => {
                // Skip the whole select construct: simulate its net effect
                // (pop the condition, push an opaque result).
                let cond = stack.pop().unwrap_or(AbsVal::opaque(pc));
                harvest(cond, pc, &mut candidates);
                let construct_end = match &insts[*else_pc - 1] {
                    Inst::Jump(t) => *t,
                    _ => return Vec::new(), // unexpected shape: bail out
                };
                // The select's value region begins at its *condition*, not
                // at the branch instruction — a preceding sibling operand's
                // harvest range ends where this value starts, and must not
                // swallow the condition-producing instructions.
                stack.push(AbsVal::opaque(cond.start));
                pc = construct_end;
                continue;
            }
            Inst::Jump(t) => open_until = open_until.max(*t),
            Inst::LoopEnter { end, .. } => {
                let extent = stack.pop().unwrap_or(AbsVal::opaque(pc));
                harvest(extent, pc, &mut candidates);
                open_until = open_until.max(*end);
            }
            Inst::LoopBack { .. }
            | Inst::AluOps { .. }
            | Inst::Alloc { .. }
            | Inst::Barrier
            | Inst::EvalHoisted { .. } => {}
        }
        pc += 1;
    }
    candidates.sort_by_key(|c| c.0);
    candidates
}

/// Rewrites one loop: copies each candidate range into the hoisted-expression
/// table, replaces it in the body with `PushHoisted`, and inserts the
/// `EvalHoisted` block between the loop header and the body (the back edge is
/// re-targeted past it, so hoisted expressions evaluate once per entry).
fn apply_hoists(
    insts: &mut Vec<Inst>,
    hoisted: &mut Vec<HoistedExpr>,
    region: &LoopRegion,
    candidates: &[Candidate],
) {
    let base_idx = hoisted.len();
    for &(start, end, _) in candidates {
        hoisted.push(HoistedExpr {
            insts: insts[start..end].to_vec(),
        });
    }
    let old_len = insts.len();
    let mut out: Vec<Inst> = Vec::with_capacity(old_len + candidates.len());
    let mut map = vec![usize::MAX; old_len + 1];
    let mut next_candidate = 0usize;
    let mut pc = 0usize;
    while pc < old_len {
        if pc == region.enter + 1 {
            for k in 0..candidates.len() {
                out.push(Inst::EvalHoisted {
                    idx: (base_idx + k) as u32,
                });
            }
        }
        if next_candidate < candidates.len() && pc == candidates[next_candidate].0 {
            let (start, end, alu) = candidates[next_candidate];
            debug_assert_eq!(pc, start);
            map[pc] = out.len();
            out.push(Inst::PushHoisted {
                idx: (base_idx + next_candidate) as u32,
                alu: u32::try_from(alu).expect("hoisted ALU count fits u32"),
            });
            next_candidate += 1;
            pc = end;
            continue;
        }
        map[pc] = out.len();
        out.push(insts[pc].clone());
        pc += 1;
    }
    map[old_len] = out.len();
    for p in (0..old_len).rev() {
        if map[p] == usize::MAX {
            map[p] = map[p + 1];
        }
    }
    remap_targets(&mut out, &map);
    *insts = out;
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::buffer::{Buffer, MemScope, Var};
    use crate::dtype::DType;
    use crate::eval::{CompiledRunner, CountingTracer, ExecMode, Interpreter, MemoryStore};
    use crate::expr::Expr;
    use crate::stmt::Stmt;

    /// Runs `stmt` through the tree interpreter and the optimized program,
    /// asserting identical tracer counts (and, functionally, identical
    /// memory for `bufs`), then returns the optimizer stats.
    fn assert_optimized_equivalent(
        stmt: &Stmt,
        setup: impl Fn(&mut MemoryStore),
        bufs: &[&Arc<Buffer>],
    ) -> OptStats {
        let (optimized, stats) = CompiledProgram::compile(stmt).optimize_with_stats();
        for mode in [ExecMode::Functional, ExecMode::TimingOnly] {
            let mut tree_store = MemoryStore::new();
            setup(&mut tree_store);
            let mut tree_tracer = CountingTracer::default();
            Interpreter::new(&mut tree_store, &mut tree_tracer, mode)
                .run(stmt)
                .unwrap();

            let mut opt_store = MemoryStore::new();
            setup(&mut opt_store);
            let mut opt_tracer = CountingTracer::default();
            CompiledRunner::new(&optimized)
                .run(&mut opt_store, &mut opt_tracer, mode)
                .unwrap();

            assert_eq!(tree_tracer, opt_tracer, "tracer counts diverge in {mode:?}");
            if mode == ExecMode::Functional {
                for buf in bufs {
                    assert_eq!(
                        tree_store.read_all(buf, 0),
                        opt_store.read_all(buf, 0),
                        "memory diverges for {}",
                        buf.name
                    );
                }
            }
        }
        stats
    }

    #[test]
    fn constants_fold_and_discarded_results_are_eliminated() {
        let a = Buffer::new("A", DType::F32, vec![16], MemScope::Global);
        let i = Var::new("i");
        // Store at a folded-constant index; evaluate-and-discard a constant.
        let prog = Stmt::seq(vec![
            Stmt::for_serial(
                i.clone(),
                4i64,
                Stmt::store(
                    &a,
                    Expr::var(&i).add(Expr::int(3).mul(Expr::int(2))),
                    Expr::float(1.5),
                ),
            ),
            Stmt::Evaluate(Expr::int(3).add(Expr::int(4))),
        ]);
        let stats = assert_optimized_equivalent(&prog, |s| s.alloc(&a, 0), &[&a]);
        assert!(stats.folded >= 1, "{stats:?}");
        assert_eq!(stats.pops_eliminated, 1, "{stats:?}");
    }

    #[test]
    fn affine_index_chains_fuse_into_single_instructions() {
        let a = Buffer::new("A", DType::F32, vec![64], MemScope::Global);
        let b = Buffer::new("B", DType::F32, vec![64], MemScope::Global);
        let i = Var::new("i");
        let j = Var::new("j");
        // The canonical lowered index shape: i*8 + j, plus offset arithmetic.
        let idx = Expr::var(&i).mul(Expr::int(8)).add(Expr::var(&j));
        let body = Stmt::store(
            &b,
            idx.clone(),
            Expr::load(&a, idx.add(Expr::int(32)).sub(Expr::int(32))).mul(Expr::float(3.0)),
        );
        let prog = Stmt::for_serial(i, 8i64, Stmt::for_serial(j, 8i64, body));
        let stats = assert_optimized_equivalent(
            &prog,
            |s| {
                s.alloc_with(&a, 0, &(0..64).map(|x| x as f32).collect::<Vec<_>>());
                s.alloc(&b, 0);
            },
            &[&a, &b],
        );
        assert!(stats.fused >= 2, "{stats:?}");
        assert!(stats.loops_summarized >= 1, "{stats:?}");
    }

    #[test]
    fn invariant_expressions_hoist_out_of_guarded_loops() {
        let a = Buffer::new("A", DType::F32, vec![64], MemScope::Global);
        let i = Var::new("i");
        let j = Var::new("j");
        let n = Var::new("n");
        // The inner loop is guarded by an *equality* test — non-monotone,
        // so the loop is not summarizable (monotone ordering guards now
        // are) and the hoister still processes its body.  The guard bound
        // `n*4 + n*7 - n*3` is invariant in both loops, so it hoists.
        let bound = Expr::var(&n)
            .mul(Expr::int(4))
            .add(Expr::var(&n).mul(Expr::int(7)))
            .sub(Expr::var(&n).mul(Expr::int(3)));
        let body = Stmt::if_then(
            Expr::var(&i)
                .mul(Expr::int(8))
                .add(Expr::var(&j))
                .eq_expr(bound),
            Stmt::store(
                &a,
                Expr::var(&i).mul(Expr::int(8)).add(Expr::var(&j)),
                Expr::float(2.0),
            ),
        );
        let prog = Stmt::for_serial(i, 8i64, Stmt::for_serial(j, 8i64, body));

        let (optimized, stats) = CompiledProgram::compile(&prog).optimize_with_stats();
        assert!(stats.hoisted >= 1, "{stats:?}");

        for mode in [ExecMode::Functional, ExecMode::TimingOnly] {
            let mut tree_store = MemoryStore::new();
            tree_store.alloc(&a, 0);
            let mut tree_tracer = CountingTracer::default();
            let mut interp = Interpreter::new(&mut tree_store, &mut tree_tracer, mode);
            interp.bind(&n, 5);
            interp.run(&prog).unwrap();

            let mut opt_store = MemoryStore::new();
            opt_store.alloc(&a, 0);
            let mut opt_tracer = CountingTracer::default();
            let mut runner = CompiledRunner::new(&optimized);
            runner.bind(&n, 5);
            runner.run(&mut opt_store, &mut opt_tracer, mode).unwrap();

            assert_eq!(tree_tracer, opt_tracer, "tracer counts diverge in {mode:?}");
            assert_eq!(tree_store.read_all(&a, 0), opt_store.read_all(&a, 0));
        }
    }

    #[test]
    fn affine_dma_loops_are_summarized_with_exact_byte_totals() {
        let mram = Buffer::new("M", DType::F32, vec![1024], MemScope::Mram);
        let wram = Buffer::new("W", DType::F32, vec![1024], MemScope::Wram);
        let i = Var::new("i");
        // Per-iteration DMA size grows affinely: elems = i*2 + 4.
        let prog = Stmt::for_serial(
            i.clone(),
            16i64,
            Stmt::Dma {
                dst: wram.clone(),
                dst_off: Expr::int(0),
                src: mram.clone(),
                src_off: Expr::var(&i).mul(Expr::int(8)),
                elems: Expr::var(&i).mul(Expr::int(2)).add(Expr::int(4)),
            },
        );
        let stats = assert_optimized_equivalent(
            &prog,
            |s| {
                s.alloc(&mram, 0);
                s.alloc(&wram, 0);
            },
            &[],
        );
        assert_eq!(stats.loops_summarized, 1, "{stats:?}");
    }

    #[test]
    fn clamped_dma_sizes_fall_back_to_full_execution() {
        let mram = Buffer::new("M", DType::F32, vec![1024], MemScope::Mram);
        let wram = Buffer::new("W", DType::F32, vec![1024], MemScope::Wram);
        let i = Var::new("i");
        // elems = i - 2 clamps to zero for early iterations: statically
        // affine, but the byte totals are convex rather than linear — the
        // three-point probe must detect this and execute the loop normally.
        let prog = Stmt::for_serial(
            i.clone(),
            24i64,
            Stmt::Dma {
                dst: wram.clone(),
                dst_off: Expr::int(0),
                src: mram.clone(),
                src_off: Expr::int(0),
                elems: Expr::var(&i).sub(Expr::int(2)),
            },
        );
        let stats = assert_optimized_equivalent(
            &prog,
            |s| {
                s.alloc(&mram, 0);
                s.alloc(&wram, 0);
            },
            &[],
        );
        // The loop is *marked* summarizable (the static analysis cannot see
        // the clamp), but the runtime probe rejects it — counts still match,
        // which is what assert_optimized_equivalent verified above.
        assert_eq!(stats.loops_summarized, 1, "{stats:?}");
    }

    /// The fast-path follow-up from the roadmap: a boundary guard
    /// (`i*K + j < N`, i.e. a *monotone* affine condition) no longer
    /// disqualifies a loop from timing-only summarization.  The probe's
    /// three samples pin the guard constant, so event totals stay exact —
    /// `assert_optimized_equivalent` checks them against the tree
    /// interpreter in both modes.
    #[test]
    fn monotone_boundary_guards_are_summarized() {
        let a = Buffer::new("A", DType::F32, vec![2048], MemScope::Global);
        let i = Var::new("i");
        let j = Var::new("j");
        // The canonical misaligned-shape kernel: an inner loop of 32 whose
        // work is guarded by the flattened index against the true extent.
        // 61*32 = 1952 < 2048, so the guard is true throughout for most
        // outer iterations and false-tail only in the last — each inner
        // loop instance sees a monotone (here: constant or single-flip)
        // guard.
        let idx = Expr::var(&i).mul(Expr::int(32)).add(Expr::var(&j));
        let body = Stmt::if_then(
            idx.clone().lt(Expr::int(1999)),
            Stmt::store(&a, idx, Expr::float(1.0)),
        );
        let prog = Stmt::for_serial(i, 61i64, Stmt::for_serial(j, 32i64, body));
        let stats = assert_optimized_equivalent(&prog, |s| s.alloc(&a, 0), &[&a]);
        assert!(
            stats.loops_summarized >= 1,
            "boundary-guarded loops must be summarizable: {stats:?}"
        );
    }

    /// Inverted and invariant guards are monotone too; `Eq` guards are not.
    #[test]
    fn guard_monotonicity_is_classified_per_comparison() {
        let a = Buffer::new("A", DType::F32, vec![1024], MemScope::Global);
        let build = |cond: fn(Expr, Expr) -> Expr| {
            let i = Var::new("i");
            let body = Stmt::if_then(
                cond(Expr::var(&i).mul(Expr::int(2)), Expr::int(37)),
                Stmt::store(&a, Expr::var(&i), Expr::float(1.0)),
            );
            Stmt::for_serial(i, 24i64, body)
        };
        for (name, cond, summarizable) in [
            (
                "lt",
                (|l: Expr, r: Expr| l.lt(r)) as fn(Expr, Expr) -> Expr,
                true,
            ),
            ("le", |l: Expr, r: Expr| l.le(r), true),
            ("gt", |l: Expr, r: Expr| l.gt(r), true),
            ("ge", |l: Expr, r: Expr| l.ge(r), true),
            ("eq", |l: Expr, r: Expr| l.eq_expr(r), false),
        ] {
            let prog = build(cond);
            let stats = assert_optimized_equivalent(&prog, |s| s.alloc(&a, 0), &[&a]);
            assert_eq!(
                stats.loops_summarized >= 1,
                summarizable,
                "{name}: {stats:?}"
            );
        }
    }

    /// Two individually-monotone guards of *opposite* direction in one body
    /// (head/tail peeling) would alias in anonymous event counts: probes at
    /// 0, 1 and n-1 each see exactly one store, yet the middle iterations
    /// see none.  The probe's branch-direction sequence comparison must
    /// detect the flip and fall back to exact execution — the equivalence
    /// assertion fails loudly if bulk totals were ever extrapolated.
    #[test]
    fn opposite_direction_guard_pairs_cannot_alias_the_probe() {
        let a = Buffer::new("A", DType::F32, vec![64], MemScope::Global);
        let i = Var::new("i");
        let head = Stmt::if_then(
            Expr::var(&i).lt(Expr::int(16)),
            Stmt::store(&a, Expr::int(0), Expr::float(1.0)),
        );
        let tail = Stmt::if_then(
            Expr::var(&i).ge(Expr::int(20)),
            Stmt::store(&a, Expr::int(0), Expr::float(2.0)),
        );
        let prog = Stmt::for_serial(i, 32i64, Stmt::seq(vec![head, tail]));
        let stats = assert_optimized_equivalent(&prog, |s| s.alloc(&a, 0), &[&a]);
        // Statically both guards are monotone, so the loop is *marked*; the
        // runtime probe must reject it (directions disagree across probes),
        // which the equivalence assertion above proved.
        assert_eq!(stats.loops_summarized, 1, "{stats:?}");
    }

    /// The same-direction multi-guard pattern of real lowered kernels (one
    /// boundary check per cache read/compute/write-back) stays summarizable
    /// and exact.
    #[test]
    fn same_condition_guard_groups_still_summarize() {
        let a = Buffer::new("A", DType::F32, vec![64], MemScope::Global);
        let b = Buffer::new("B", DType::F32, vec![64], MemScope::Global);
        let i = Var::new("i");
        let guard =
            |body: Stmt| Stmt::if_then(Expr::var(&i).mul(Expr::int(2)).lt(Expr::int(1000)), body);
        let prog = Stmt::for_serial(
            i.clone(),
            24i64,
            Stmt::seq(vec![
                guard(Stmt::store(&a, Expr::var(&i), Expr::float(1.0))),
                guard(Stmt::store(&b, Expr::var(&i), Expr::float(2.0))),
                guard(Stmt::store(&a, Expr::var(&i), Expr::float(3.0))),
            ]),
        );
        let stats = assert_optimized_equivalent(
            &prog,
            |s| {
                s.alloc(&a, 0);
                s.alloc(&b, 0);
            },
            &[&a, &b],
        );
        assert_eq!(stats.loops_summarized, 1, "{stats:?}");
    }

    /// A guarded DMA: the guard is monotone and the transfer size affine, so
    /// the loop summarizes — and when the guard actually flips inside the
    /// range, the runtime probe detects the diverging event shape and falls
    /// back to full execution with identical totals.
    #[test]
    fn guarded_dma_loops_summarize_with_exact_totals() {
        let mram = Buffer::new("M", DType::F32, vec![4096], MemScope::Mram);
        let wram = Buffer::new("W", DType::F32, vec![64], MemScope::Wram);
        let i = Var::new("i");
        let body = Stmt::if_then(
            Expr::var(&i).mul(Expr::int(64)).lt(Expr::int(1000)),
            Stmt::Dma {
                dst: wram.clone(),
                dst_off: Expr::int(0),
                src: mram.clone(),
                src_off: Expr::var(&i).mul(Expr::int(64)),
                elems: Expr::int(64),
            },
        );
        let prog = Stmt::for_serial(i.clone(), 32i64, body);
        let stats = assert_optimized_equivalent(
            &prog,
            |s| {
                s.alloc(&mram, 0);
                s.alloc(&wram, 0);
            },
            &[],
        );
        // Statically summarizable; the probe rejects it at runtime (the
        // guard flips at i=16), which the equivalence assertion above
        // already proved costs no exactness.
        assert_eq!(stats.loops_summarized, 1, "{stats:?}");
    }

    #[test]
    fn min_max_dma_sizes_are_not_marked_summarizable() {
        let mram = Buffer::new("M", DType::F32, vec![1024], MemScope::Mram);
        let wram = Buffer::new("W", DType::F32, vec![64], MemScope::Wram);
        let i = Var::new("i");
        // The classic tail tile: elems = min(64, 1000 - i*64) is piecewise
        // linear, which the three-point probe could not soundly verify; the
        // static analysis must reject it outright.
        let prog = Stmt::for_serial(
            i.clone(),
            16i64,
            Stmt::Dma {
                dst: wram.clone(),
                dst_off: Expr::int(0),
                src: mram.clone(),
                src_off: Expr::var(&i).mul(Expr::int(64)),
                elems: Expr::int(64).min(Expr::int(1000).sub(Expr::var(&i).mul(Expr::int(64)))),
            },
        );
        let stats = assert_optimized_equivalent(
            &prog,
            |s| {
                s.alloc(&mram, 0);
                s.alloc(&wram, 0);
            },
            &[],
        );
        assert_eq!(stats.loops_summarized, 0, "{stats:?}");
    }

    /// Regression: a hoistable operand *preceding* a `Select` operand must
    /// not have its harvest region extended over the select's condition —
    /// that once produced a hoisted expression missing its own value and a
    /// stack underflow at runtime.
    #[test]
    fn hoisting_respects_select_sibling_operand_boundaries() {
        let a = Buffer::new("A", DType::F32, vec![64], MemScope::Global);
        let i = Var::new("i");
        let n = Var::new("n");
        let m = Var::new("m");
        // Invariant index `n*m + n` (hoistable, 3+ insts) followed by a
        // select whose condition depends on the loop variable.
        let idx = Expr::var(&n).mul(Expr::var(&m)).add(Expr::var(&n));
        let value = Expr::Select(
            Box::new(Expr::var(&i).lt(Expr::int(4))),
            Box::new(Expr::float(1.0)),
            Box::new(Expr::float(2.0)),
        );
        let prog = Stmt::for_serial(i, 8i64, Stmt::store(&a, idx, value));

        let optimized = CompiledProgram::compile(&prog).optimize();
        for mode in [ExecMode::Functional, ExecMode::TimingOnly] {
            let mut tree_store = MemoryStore::new();
            tree_store.alloc(&a, 0);
            let mut tree_tracer = CountingTracer::default();
            let mut interp = Interpreter::new(&mut tree_store, &mut tree_tracer, mode);
            interp.bind(&n, 3);
            interp.bind(&m, 2);
            interp.run(&prog).unwrap();

            let mut opt_store = MemoryStore::new();
            opt_store.alloc(&a, 0);
            let mut opt_tracer = CountingTracer::default();
            let mut runner = CompiledRunner::new(&optimized);
            runner.bind(&n, 3);
            runner.bind(&m, 2);
            runner.run(&mut opt_store, &mut opt_tracer, mode).unwrap();

            assert_eq!(tree_tracer, opt_tracer, "tracer counts diverge in {mode:?}");
            assert_eq!(tree_store.read_all(&a, 0), opt_store.read_all(&a, 0));
        }
    }

    /// Regression: the same boundary hazard through `&&`/`||` — the
    /// short-circuit construct's value region must start at its lhs.
    #[test]
    fn hoisting_respects_short_circuit_sibling_operand_boundaries() {
        let a = Buffer::new("A", DType::F32, vec![64], MemScope::Global);
        let i = Var::new("i");
        let n = Var::new("n");
        let m = Var::new("m");
        let idx = Expr::var(&n).mul(Expr::var(&m)).add(Expr::var(&n));
        // Store value = (i < 4 && i > 1) as an arithmetic operand.
        let value = Expr::Cast(
            DType::F32,
            Box::new(
                Expr::var(&i)
                    .lt(Expr::int(4))
                    .and(Expr::var(&i).gt(Expr::int(1))),
            ),
        );
        let prog = Stmt::for_serial(i, 8i64, Stmt::store(&a, idx, value));

        let optimized = CompiledProgram::compile(&prog).optimize();
        for mode in [ExecMode::Functional, ExecMode::TimingOnly] {
            let mut tree_store = MemoryStore::new();
            tree_store.alloc(&a, 0);
            let mut tree_tracer = CountingTracer::default();
            let mut interp = Interpreter::new(&mut tree_store, &mut tree_tracer, mode);
            interp.bind(&n, 3);
            interp.bind(&m, 2);
            interp.run(&prog).unwrap();

            let mut opt_store = MemoryStore::new();
            opt_store.alloc(&a, 0);
            let mut opt_tracer = CountingTracer::default();
            let mut runner = CompiledRunner::new(&optimized);
            runner.bind(&n, 3);
            runner.bind(&m, 2);
            runner.run(&mut opt_store, &mut opt_tracer, mode).unwrap();

            assert_eq!(tree_tracer, opt_tracer, "tracer counts diverge in {mode:?}");
            assert_eq!(tree_store.read_all(&a, 0), opt_store.read_all(&a, 0));
        }
    }

    #[test]
    fn optimized_programs_dispatch_fewer_instructions() {
        let a = Buffer::new("A", DType::F32, vec![64], MemScope::Global);
        let i = Var::new("i");
        let j = Var::new("j");
        let idx = Expr::var(&i).mul(Expr::int(8)).add(Expr::var(&j));
        let prog = Stmt::for_serial(
            i,
            8i64,
            Stmt::for_serial(j, 8i64, Stmt::store(&a, idx, Expr::float(1.0))),
        );
        let base = CompiledProgram::compile(&prog);
        let optimized = base.optimize();
        assert!(
            optimized.len() < base.len(),
            "optimized {} vs base {}",
            optimized.len(),
            base.len()
        );
        assert!(optimized.summarized_loops() >= 1);
    }
}
