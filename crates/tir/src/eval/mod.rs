//! Reference interpreter for loop-based TIR.
//!
//! The interpreter serves two purposes:
//!
//! 1. **Functional execution** — lowered host and kernel programs are run
//!    against real buffer contents, so integration tests can compare results
//!    with a straightforward reference implementation of each workload.
//! 2. **Instrumentation** — every step reports to a [`Tracer`].  The UPMEM
//!    simulator in `atim-sim` implements `Tracer` to derive instruction,
//!    branch, DMA and transfer counts from the very same execution, so the
//!    timing model always measures the program that actually ran.
//!
//! Buffers are instantiated per *DPU context*: `Global`/`HostLocal` buffers
//! have a single instance, while `Mram`/`Wram` buffers have one instance per
//! DPU (selected by [`Interpreter::set_dpu`]).
//!
//! For hot paths (autotuning measurements interpret the same kernel for every
//! simulated DPU), the [`compiled`] submodule pre-lowers a [`Stmt`] tree once
//! into a flat instruction buffer with dense variable slots; see
//! [`CompiledProgram`].

use std::collections::HashMap;

pub mod compiled;
pub mod opt;

pub use compiled::{CompiledProgram, CompiledRunner};
pub use opt::OptStats;

use crate::buffer::{Buffer, BufferId, MemScope, Var};
use crate::error::{Result, TirError};
use crate::expr::{BinOp, CmpOp, Expr};
use crate::stmt::{Stmt, TransferDir};
use std::sync::Arc;

/// A scalar runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer (indices, booleans).
    Int(i64),
    /// 32-bit float (tensor data).
    Float(f32),
}

impl Value {
    /// Interprets the value as an integer, truncating floats.
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Float(v) => v as i64,
        }
    }

    /// Interprets the value as a float.
    pub fn as_float(self) -> f32 {
        match self {
            Value::Int(v) => v as f32,
            Value::Float(v) => v,
        }
    }

    /// Whether the value is "true" (non-zero).
    pub fn is_true(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::Float(v) => v != 0.0,
        }
    }
}

/// A batch of execution events applied at once — the closed-form summary of
/// many loop iterations that the [`compiled`] fast path produces instead of
/// executing each iteration (see [`CompiledProgram::optimize`]).
///
/// Counts are exact; what a bulk application does *not* preserve is the
/// interleaving of events within the summarized region (all in-tree tracers
/// are pure counters, so they cannot observe the difference).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BulkEvents {
    /// Total scalar ALU operations.
    pub alu: u64,
    /// Scalar loads as `(scope, bytes per load, count)` groups.
    pub loads: Vec<(MemScope, usize, u64)>,
    /// Scalar stores as `(scope, bytes per store, count)` groups.
    pub stores: Vec<(MemScope, usize, u64)>,
    /// Conditional branches evaluated (the guard checks of summarized
    /// boundary-guarded loops; the taken direction is not preserved — all
    /// in-tree tracers are pure counters).
    pub branches: u64,
    /// Loop headers entered (nested loops inside a summarized body).
    pub loop_enters: u64,
    /// Loop iterations (back-edge bookkeeping events).
    pub loop_iters: u64,
    /// DMA requests.
    pub dma_requests: u64,
    /// Total bytes across all `dma_requests`.
    pub dma_bytes: u64,
    /// Tasklet barriers.
    pub barriers: u64,
}

/// Observer of interpreter execution events.
///
/// All methods have empty default implementations so tracers only override
/// what they care about.
pub trait Tracer {
    /// `n` scalar ALU operations executed (adds, muls, compares, casts, ...).
    fn alu(&mut self, n: usize) {
        let _ = n;
    }
    /// A scalar load of `bytes` bytes from a buffer in `scope`.
    fn load(&mut self, scope: MemScope, bytes: usize) {
        let _ = (scope, bytes);
    }
    /// A scalar store of `bytes` bytes to a buffer in `scope`.
    fn store(&mut self, scope: MemScope, bytes: usize) {
        let _ = (scope, bytes);
    }
    /// A conditional branch was evaluated (taken or not).
    fn branch(&mut self, taken: bool) {
        let _ = taken;
    }
    /// A loop was entered (header setup).
    fn loop_enter(&mut self) {}
    /// One loop iteration (back-edge bookkeeping).
    fn loop_iter(&mut self) {}
    /// A DPU-local DMA transfer between MRAM and WRAM of `bytes` bytes.
    fn dma(&mut self, bytes: usize) {
        let _ = bytes;
    }
    /// A host<->DPU transfer.
    fn host_transfer(&mut self, dir: TransferDir, dpu: i64, bytes: usize, parallel: bool) {
        let _ = (dir, dpu, bytes, parallel);
    }
    /// A tasklet barrier.
    fn barrier(&mut self) {}
    /// Many events applied at once (the summarized-loop fast path).
    ///
    /// The default replays the batch through the scalar methods, which is
    /// exact in totals (DMA bytes are spread across the requests) but costs
    /// one call per event — counting tracers should override this with
    /// O(1) arithmetic.
    fn bulk(&mut self, events: &BulkEvents) {
        if events.alu > 0 {
            self.alu(events.alu as usize);
        }
        for &(scope, bytes, count) in &events.loads {
            for _ in 0..count {
                self.load(scope, bytes);
            }
        }
        for &(scope, bytes, count) in &events.stores {
            for _ in 0..count {
                self.store(scope, bytes);
            }
        }
        for _ in 0..events.branches {
            // The per-branch direction is not recorded in a bulk batch.
            self.branch(false);
        }
        for _ in 0..events.loop_enters {
            self.loop_enter();
        }
        for _ in 0..events.loop_iters {
            self.loop_iter();
        }
        // Exact total, approximately even distribution per request.
        if let Some(per) = events.dma_bytes.checked_div(events.dma_requests) {
            let first = events.dma_bytes - per * (events.dma_requests - 1);
            self.dma(first as usize);
            for _ in 1..events.dma_requests {
                self.dma(per as usize);
            }
        }
        for _ in 0..events.barriers {
            self.barrier();
        }
    }
}

/// A tracer that ignores every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTrace;

impl Tracer for NoTrace {
    fn bulk(&mut self, _events: &BulkEvents) {}
}

/// A simple tracer that tallies event counts; handy for tests and static
/// reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingTracer {
    /// Number of scalar ALU operations.
    pub alu_ops: usize,
    /// Number of scalar loads.
    pub loads: usize,
    /// Number of scalar stores.
    pub stores: usize,
    /// Number of conditional branches evaluated.
    pub branches: usize,
    /// Number of loop iterations executed.
    pub loop_iters: usize,
    /// Number of DMA requests.
    pub dma_requests: usize,
    /// Total DMA bytes.
    pub dma_bytes: usize,
    /// Number of host<->DPU transfer calls.
    pub transfers: usize,
    /// Total host<->DPU bytes.
    pub transfer_bytes: usize,
    /// Number of barriers.
    pub barriers: usize,
}

impl Tracer for CountingTracer {
    fn alu(&mut self, n: usize) {
        self.alu_ops += n;
    }
    fn load(&mut self, _scope: MemScope, _bytes: usize) {
        self.loads += 1;
    }
    fn store(&mut self, _scope: MemScope, _bytes: usize) {
        self.stores += 1;
    }
    fn branch(&mut self, _taken: bool) {
        self.branches += 1;
    }
    fn loop_iter(&mut self) {
        self.loop_iters += 1;
    }
    fn dma(&mut self, bytes: usize) {
        self.dma_requests += 1;
        self.dma_bytes += bytes;
    }
    fn host_transfer(&mut self, _dir: TransferDir, _dpu: i64, bytes: usize, _parallel: bool) {
        self.transfers += 1;
        self.transfer_bytes += bytes;
    }
    fn barrier(&mut self) {
        self.barriers += 1;
    }
    fn bulk(&mut self, events: &BulkEvents) {
        self.alu_ops += events.alu as usize;
        for &(_, _, count) in &events.loads {
            self.loads += count as usize;
        }
        for &(_, _, count) in &events.stores {
            self.stores += count as usize;
        }
        self.branches += events.branches as usize;
        self.loop_iters += events.loop_iters as usize;
        self.dma_requests += events.dma_requests as usize;
        self.dma_bytes += events.dma_bytes as usize;
        self.barriers += events.barriers as usize;
    }
}

/// Key identifying one instance of a buffer (per DPU for MRAM/WRAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct InstanceKey {
    buf: BufferId,
    dpu: i64,
}

/// Backing storage for every buffer instance touched during interpretation.
///
/// Instances live in an arena of slabs indexed by a `(buffer, dpu)` key, so
/// two distinct instances can be borrowed mutably at the same time: the DMA
/// copy path moves data between them without a temporary allocation, falling
/// back to an overlap-safe `copy_within` only when source and destination are
/// the *same* instance.
#[derive(Debug, Default)]
pub struct MemoryStore {
    index: HashMap<InstanceKey, usize>,
    slabs: Vec<Vec<f32>>,
    meta: HashMap<BufferId, Arc<Buffer>>,
}

impl MemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(buf: &Arc<Buffer>, dpu: i64) -> InstanceKey {
        let dpu = match buf.scope {
            MemScope::Global | MemScope::HostLocal => 0,
            MemScope::Mram | MemScope::Wram => dpu,
        };
        InstanceKey { buf: buf.id, dpu }
    }

    fn insert(&mut self, buf: &Arc<Buffer>, dpu: i64, data: Vec<f32>) {
        self.meta.insert(buf.id, Arc::clone(buf));
        match self.index.entry(Self::key(buf, dpu)) {
            std::collections::hash_map::Entry::Occupied(e) => self.slabs[*e.get()] = data,
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.slabs.len());
                self.slabs.push(data);
            }
        }
    }

    fn slab_of(&self, buf: &Arc<Buffer>, dpu: i64) -> Option<usize> {
        self.index.get(&Self::key(buf, dpu)).copied()
    }

    /// Allocates (or re-initializes) an instance of `buf` for DPU context
    /// `dpu`, zero-filled.
    pub fn alloc(&mut self, buf: &Arc<Buffer>, dpu: i64) {
        self.insert(buf, dpu, vec![0.0; buf.len()]);
    }

    /// Allocates an instance and copies `init` into it.
    ///
    /// # Panics
    /// Panics if `init.len()` exceeds the buffer length.
    pub fn alloc_with(&mut self, buf: &Arc<Buffer>, dpu: i64, init: &[f32]) {
        assert!(init.len() <= buf.len(), "initializer larger than buffer");
        let mut v = vec![0.0; buf.len()];
        v[..init.len()].copy_from_slice(init);
        self.insert(buf, dpu, v);
    }

    /// Whether an instance exists.
    pub fn contains(&self, buf: &Arc<Buffer>, dpu: i64) -> bool {
        self.index.contains_key(&Self::key(buf, dpu))
    }

    /// Returns the contents of a buffer instance.
    pub fn read_all(&self, buf: &Arc<Buffer>, dpu: i64) -> Option<&[f32]> {
        self.slab_of(buf, dpu).map(|i| self.slabs[i].as_slice())
    }

    /// Mutable access to a buffer instance.
    pub fn write_all(&mut self, buf: &Arc<Buffer>, dpu: i64) -> Option<&mut Vec<f32>> {
        self.slab_of(buf, dpu).map(|i| &mut self.slabs[i])
    }

    fn read_elem(&self, buf: &Arc<Buffer>, dpu: i64, idx: i64) -> Result<f32> {
        let v = &self.slabs[self
            .slab_of(buf, dpu)
            .ok_or_else(|| TirError::UnknownBuffer(buf.name.clone()))?];
        if idx < 0 || idx as usize >= v.len() {
            return Err(TirError::OutOfBounds {
                buffer: buf.name.clone(),
                index: idx,
                len: v.len(),
            });
        }
        Ok(v[idx as usize])
    }

    fn write_elem(&mut self, buf: &Arc<Buffer>, dpu: i64, idx: i64, value: f32) -> Result<()> {
        let slab = self
            .slab_of(buf, dpu)
            .ok_or_else(|| TirError::UnknownBuffer(buf.name.clone()))?;
        let v = &mut self.slabs[slab];
        if idx < 0 || idx as usize >= v.len() {
            return Err(TirError::OutOfBounds {
                buffer: buf.name.clone(),
                index: idx,
                len: v.len(),
            });
        }
        v[idx as usize] = value;
        Ok(())
    }

    /// Copies `elems` elements between two buffer instances.
    ///
    /// Distinct instances are split-borrowed out of the arena and copied
    /// directly; a same-instance copy (e.g. shifting data within one MRAM
    /// bank) uses the overlap-safe `copy_within`.  Neither path allocates.
    #[allow(clippy::too_many_arguments)] // mirrors the (dst, src) DMA tuple
    fn copy(
        &mut self,
        dst: &Arc<Buffer>,
        dst_dpu: i64,
        dst_off: i64,
        src: &Arc<Buffer>,
        src_dpu: i64,
        src_off: i64,
        elems: i64,
    ) -> Result<()> {
        if elems <= 0 {
            return Ok(());
        }
        let src_slab = self
            .slab_of(src, src_dpu)
            .ok_or_else(|| TirError::UnknownBuffer(src.name.clone()))?;
        let dst_slab = self
            .slab_of(dst, dst_dpu)
            .ok_or_else(|| TirError::UnknownBuffer(dst.name.clone()))?;
        let (s0, s1) = (src_off, src_off + elems);
        if s0 < 0 || s1 as usize > self.slabs[src_slab].len() {
            return Err(TirError::OutOfBounds {
                buffer: src.name.clone(),
                index: s1 - 1,
                len: self.slabs[src_slab].len(),
            });
        }
        let (d0, d1) = (dst_off, dst_off + elems);
        if d0 < 0 || d1 as usize > self.slabs[dst_slab].len() {
            return Err(TirError::OutOfBounds {
                buffer: dst.name.clone(),
                index: d1 - 1,
                len: self.slabs[dst_slab].len(),
            });
        }
        let (s0, s1, d0) = (s0 as usize, s1 as usize, d0 as usize);
        if src_slab == dst_slab {
            self.slabs[src_slab].copy_within(s0..s1, d0);
        } else {
            // Split the arena so both slabs can be borrowed at once.
            let (lo, hi) = self.slabs.split_at_mut(src_slab.max(dst_slab));
            let (from, to) = if src_slab < dst_slab {
                (&lo[src_slab], &mut hi[0])
            } else {
                (&hi[0], &mut lo[dst_slab])
            };
            to[d0..d0 + (s1 - s0)].copy_from_slice(&from[s0..s1]);
        }
        Ok(())
    }
}

/// Execution mode of the interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Move real data: loads return actual buffer contents, stores/DMAs/
    /// transfers update them.  Used for correctness testing.
    #[default]
    Functional,
    /// Skip data movement but evaluate all control flow and trace every
    /// event.  Used by the simulator for large benchmark shapes.
    ///
    /// # Contract: affine guards only
    ///
    /// Index arithmetic over loop variables stays exact, so any branch whose
    /// condition is an *affine guard* (built from loop variables, constants
    /// and integer arithmetic — the only kind the lowering and the PIM-aware
    /// passes emit) takes the same direction as in [`ExecMode::Functional`],
    /// and instruction/DMA/transfer counts are identical between the modes.
    ///
    /// Branches whose condition inspects *tensor data* are outside this
    /// contract: [`Expr::Load`] returns `0.0` in this mode, so a
    /// data-dependent `If` evaluates its condition against zeros and may
    /// diverge from functional execution.  The branch event itself is still
    /// traced (branch *counts* match), but the direction taken — and
    /// therefore the event counts inside the guarded bodies — follow the
    /// all-zeros execution.  Programs produced by the schedule lowering never
    /// contain data-dependent control flow, which is what makes this mode
    /// safe for timing measurements.
    TimingOnly,
}

/// The TIR interpreter.
pub struct Interpreter<'a, T: Tracer> {
    store: &'a mut MemoryStore,
    tracer: &'a mut T,
    mode: ExecMode,
    dpu: i64,
    env: HashMap<u32, i64>,
}

impl<'a, T: Tracer> Interpreter<'a, T> {
    /// Creates an interpreter over `store`, reporting events to `tracer`.
    pub fn new(store: &'a mut MemoryStore, tracer: &'a mut T, mode: ExecMode) -> Self {
        Interpreter {
            store,
            tracer,
            mode,
            dpu: 0,
            env: HashMap::new(),
        }
    }

    /// Selects the DPU context used to resolve MRAM/WRAM buffer instances.
    pub fn set_dpu(&mut self, dpu: i64) {
        self.dpu = dpu;
    }

    /// Binds a free variable (e.g. DPU grid coordinates or the tasklet id)
    /// before running a kernel.
    pub fn bind(&mut self, var: &Var, value: i64) {
        self.env.insert(var.id, value);
    }

    /// Runs a statement tree.
    ///
    /// # Errors
    /// Returns an error on out-of-bounds accesses, unbound variables or
    /// unallocated buffers.
    pub fn run(&mut self, stmt: &Stmt) -> Result<()> {
        match stmt {
            Stmt::Seq(stmts) => {
                for s in stmts {
                    self.run(s)?;
                }
                Ok(())
            }
            Stmt::Nop => Ok(()),
            Stmt::For {
                var,
                extent,
                kind,
                body,
            } => {
                let n = self.eval(extent)?.as_int();
                self.tracer.loop_enter();
                // Tasklet / DPU / host-parallel loops are still executed
                // sequentially here; parallelism is accounted for by the
                // simulator's timing model, not the functional semantics.
                let _ = kind;
                let prev = self.env.get(&var.id).copied();
                for it in 0..n {
                    self.tracer.loop_iter();
                    self.env.insert(var.id, it);
                    self.run(body)?;
                }
                match prev {
                    Some(v) => {
                        self.env.insert(var.id, v);
                    }
                    None => {
                        self.env.remove(&var.id);
                    }
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.eval(cond)?.is_true();
                self.tracer.branch(c);
                if c {
                    self.run(then_branch)
                } else if let Some(e) = else_branch {
                    self.run(e)
                } else {
                    Ok(())
                }
            }
            Stmt::Store { buf, index, value } => {
                let idx = self.eval(index)?.as_int();
                let v = self.eval(value)?.as_float();
                self.tracer.store(buf.scope, buf.dtype.bytes());
                if self.mode == ExecMode::Functional {
                    self.store.write_elem(buf, self.dpu, idx, v)?;
                }
                Ok(())
            }
            Stmt::Alloc { buf, body } => {
                if self.mode == ExecMode::Functional && !self.store.contains(buf, self.dpu) {
                    self.store.alloc(buf, self.dpu);
                }
                self.run(body)
            }
            Stmt::Dma {
                dst,
                dst_off,
                src,
                src_off,
                elems,
            } => {
                let d_off = self.eval(dst_off)?.as_int();
                let s_off = self.eval(src_off)?.as_int();
                let n = self.eval(elems)?.as_int();
                let bytes = (n.max(0) as usize) * dst.dtype.bytes();
                self.tracer.dma(bytes);
                if self.mode == ExecMode::Functional {
                    self.store
                        .copy(dst, self.dpu, d_off, src, self.dpu, s_off, n)?;
                }
                Ok(())
            }
            Stmt::HostTransfer {
                dir,
                dpu,
                global,
                global_off,
                mram,
                mram_off,
                elems,
                parallel,
            } => {
                let dpu_idx = self.eval(dpu)?.as_int();
                let g_off = self.eval(global_off)?.as_int();
                let m_off = self.eval(mram_off)?.as_int();
                let n = self.eval(elems)?.as_int();
                let bytes = (n.max(0) as usize) * global.dtype.bytes();
                self.tracer.host_transfer(*dir, dpu_idx, bytes, *parallel);
                if self.mode == ExecMode::Functional {
                    match dir {
                        TransferDir::H2D => {
                            if !self.store.contains(mram, dpu_idx) {
                                self.store.alloc(mram, dpu_idx);
                            }
                            self.store.copy(mram, dpu_idx, m_off, global, 0, g_off, n)?;
                        }
                        TransferDir::D2H => {
                            self.store.copy(global, 0, g_off, mram, dpu_idx, m_off, n)?;
                        }
                    }
                }
                Ok(())
            }
            Stmt::Barrier => {
                self.tracer.barrier();
                Ok(())
            }
            Stmt::Evaluate(e) => {
                self.eval(e)?;
                Ok(())
            }
        }
    }

    /// Evaluates an expression in the current environment.
    ///
    /// # Errors
    /// Returns an error on unbound variables or out-of-bounds loads.
    pub fn eval(&mut self, expr: &Expr) -> Result<Value> {
        match expr {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Float(v) => Ok(Value::Float(*v)),
            Expr::Var(v) => self
                .env
                .get(&v.id)
                .map(|x| Value::Int(*x))
                .ok_or_else(|| TirError::UnboundVar(v.name.to_string())),
            Expr::Binary(op, a, b) => {
                let x = self.eval(a)?;
                let y = self.eval(b)?;
                self.tracer.alu(1);
                Ok(eval_binary(*op, x, y))
            }
            Expr::Cmp(op, a, b) => {
                let x = self.eval(a)?;
                let y = self.eval(b)?;
                self.tracer.alu(1);
                Ok(Value::Int(eval_cmp(*op, x, y) as i64))
            }
            Expr::And(a, b) => {
                let x = self.eval(a)?;
                self.tracer.alu(1);
                if !x.is_true() {
                    return Ok(Value::Int(0));
                }
                let y = self.eval(b)?;
                Ok(Value::Int(y.is_true() as i64))
            }
            Expr::Or(a, b) => {
                let x = self.eval(a)?;
                self.tracer.alu(1);
                if x.is_true() {
                    return Ok(Value::Int(1));
                }
                let y = self.eval(b)?;
                Ok(Value::Int(y.is_true() as i64))
            }
            Expr::Not(a) => {
                let x = self.eval(a)?;
                self.tracer.alu(1);
                Ok(Value::Int(!x.is_true() as i64))
            }
            Expr::Select(c, a, b) => {
                let cv = self.eval(c)?;
                self.tracer.alu(1);
                if cv.is_true() {
                    self.eval(a)
                } else {
                    self.eval(b)
                }
            }
            Expr::Load { buf, index } => {
                let idx = self.eval(index)?.as_int();
                self.tracer.load(buf.scope, buf.dtype.bytes());
                if self.mode == ExecMode::Functional {
                    let v = self.store.read_elem(buf, self.dpu, idx)?;
                    if buf.dtype.is_float() {
                        Ok(Value::Float(v))
                    } else {
                        Ok(Value::Int(v as i64))
                    }
                } else {
                    Ok(Value::Float(0.0))
                }
            }
            Expr::Cast(dt, a) => {
                let x = self.eval(a)?;
                self.tracer.alu(1);
                if dt.is_float() {
                    Ok(Value::Float(x.as_float()))
                } else {
                    Ok(Value::Int(x.as_int()))
                }
            }
        }
    }
}

fn eval_binary(op: BinOp, a: Value, b: Value) -> Value {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Value::Int(match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::FloorDiv => {
                if y == 0 {
                    0
                } else {
                    x.div_euclid(y)
                }
            }
            BinOp::FloorMod => {
                if y == 0 {
                    0
                } else {
                    x.rem_euclid(y)
                }
            }
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
        }),
        _ => {
            let x = a.as_float();
            let y = b.as_float();
            // Division by zero yields 0 like the integer path (TVM's
            // convention), so mixed int/float index arithmetic cannot
            // produce a NaN where the integer path produces a number.
            Value::Float(match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::FloorDiv => {
                    if y == 0.0 {
                        0.0
                    } else {
                        (x / y).floor()
                    }
                }
                BinOp::FloorMod => {
                    if y == 0.0 {
                        0.0
                    } else {
                        x - (x / y).floor() * y
                    }
                }
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
            })
        }
    }
}

fn eval_cmp(op: CmpOp, a: Value, b: Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => match op {
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
        },
        _ => {
            let x = a.as_float();
            let y = b.as_float();
            match op {
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
            }
        }
    }
}

/// Convenience function: allocate a buffer, run a statement with no free
/// variables and return the contents of `out`.
///
/// Primarily intended for unit tests of individual passes.
///
/// # Errors
/// Propagates interpreter errors.
pub fn run_simple(
    stmt: &Stmt,
    buffers: &[(&Arc<Buffer>, Vec<f32>)],
    out: &Arc<Buffer>,
) -> Result<Vec<f32>> {
    let mut store = MemoryStore::new();
    for (buf, init) in buffers {
        store.alloc_with(buf, 0, init);
    }
    if !store.contains(out, 0) {
        store.alloc(out, 0);
    }
    let mut tracer = NoTrace;
    let mut interp = Interpreter::new(&mut store, &mut tracer, ExecMode::Functional);
    interp.run(stmt)?;
    Ok(store
        .read_all(out, 0)
        .map(|s| s.to_vec())
        .unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DType;

    fn vec_add_program(n: i64) -> (Arc<Buffer>, Arc<Buffer>, Arc<Buffer>, Stmt) {
        let a = Buffer::new("A", DType::F32, vec![n], MemScope::Global);
        let b = Buffer::new("B", DType::F32, vec![n], MemScope::Global);
        let c = Buffer::new("C", DType::F32, vec![n], MemScope::Global);
        let i = Var::new("i");
        let body = Stmt::store(
            &c,
            Expr::var(&i),
            Expr::load(&a, Expr::var(&i)).add(Expr::load(&b, Expr::var(&i))),
        );
        (a, b, c.clone(), Stmt::for_serial(i, n, body))
    }

    #[test]
    fn vector_add_executes() {
        let (a, b, c, prog) = vec_add_program(8);
        let av: Vec<f32> = (0..8).map(|x| x as f32).collect();
        let bv: Vec<f32> = (0..8).map(|x| (x * 10) as f32).collect();
        let out = run_simple(&prog, &[(&a, av.clone()), (&b, bv.clone())], &c).unwrap();
        for i in 0..8 {
            assert_eq!(out[i], av[i] + bv[i]);
        }
    }

    #[test]
    fn counting_tracer_counts() {
        let (a, b, c, prog) = vec_add_program(8);
        let mut store = MemoryStore::new();
        store.alloc(&a, 0);
        store.alloc(&b, 0);
        store.alloc(&c, 0);
        let mut tracer = CountingTracer::default();
        let mut interp = Interpreter::new(&mut store, &mut tracer, ExecMode::Functional);
        interp.run(&prog).unwrap();
        assert_eq!(tracer.loop_iters, 8);
        assert_eq!(tracer.loads, 16);
        assert_eq!(tracer.stores, 8);
        assert_eq!(tracer.alu_ops, 8);
    }

    #[test]
    fn timing_only_mode_counts_without_data() {
        let (a, b, c, prog) = vec_add_program(4);
        let mut store = MemoryStore::new();
        // No allocations at all: timing mode must not touch data.
        let _ = (a, b, c);
        let mut tracer = CountingTracer::default();
        let mut interp = Interpreter::new(&mut store, &mut tracer, ExecMode::TimingOnly);
        interp.run(&prog).unwrap();
        assert_eq!(tracer.loop_iters, 4);
        assert_eq!(tracer.stores, 4);
    }

    #[test]
    fn float_division_by_zero_returns_zero_like_the_integer_path() {
        for (x, y) in [
            (Value::Float(3.5), Value::Float(0.0)),
            (Value::Float(3.5), Value::Int(0)),
        ] {
            assert_eq!(eval_binary(BinOp::FloorDiv, x, y), Value::Float(0.0));
            assert_eq!(eval_binary(BinOp::FloorMod, x, y), Value::Float(0.0));
        }
        assert_eq!(
            eval_binary(BinOp::FloorDiv, Value::Int(7), Value::Int(0)),
            Value::Int(0)
        );
        assert_eq!(
            eval_binary(BinOp::FloorDiv, Value::Float(7.0), Value::Float(2.0)),
            Value::Float(3.0)
        );
    }

    /// Pins the documented [`ExecMode::TimingOnly`] contract: counts are
    /// identical to functional mode for affine guards, and data-dependent
    /// guards follow the all-zeros execution (matching branch counts, but
    /// possibly different guarded-body counts).
    #[test]
    fn timing_only_counts_match_functional_only_for_affine_guards() {
        let a = Buffer::new("A", DType::F32, vec![8], MemScope::Global);
        let b = Buffer::new("B", DType::F32, vec![8], MemScope::Global);
        let init: Vec<f32> = vec![1.0; 8];

        let counts = |prog: &Stmt, mode: ExecMode| {
            let mut store = MemoryStore::new();
            store.alloc_with(&a, 0, &init);
            store.alloc(&b, 0);
            let mut tracer = CountingTracer::default();
            let mut interp = Interpreter::new(&mut store, &mut tracer, mode);
            interp.run(prog).unwrap();
            tracer
        };

        // Affine guard: condition over the loop variable only.
        let i = Var::new("i");
        let affine = Stmt::for_serial(
            i.clone(),
            8i64,
            Stmt::if_then(
                Expr::var(&i).lt(Expr::int(5)),
                Stmt::store(&b, Expr::var(&i), Expr::load(&a, Expr::var(&i))),
            ),
        );
        assert_eq!(
            counts(&affine, ExecMode::Functional),
            counts(&affine, ExecMode::TimingOnly),
            "affine guards must count identically in both modes"
        );

        // Data-dependent guard: condition loads tensor data.  In timing-only
        // mode the load yields 0.0, so `A[i] > 0` is never taken and the
        // guarded store is never counted.
        let j = Var::new("j");
        let data_dep = Stmt::for_serial(
            j.clone(),
            8i64,
            Stmt::if_then(
                Expr::load(&a, Expr::var(&j)).gt(Expr::float(0.0)),
                Stmt::store(&b, Expr::var(&j), Expr::float(1.0)),
            ),
        );
        let full = counts(&data_dep, ExecMode::Functional);
        let timing = counts(&data_dep, ExecMode::TimingOnly);
        // Branch *events* still match: the condition is evaluated either way.
        assert_eq!(full.branches, timing.branches);
        assert_eq!(full.loads, timing.loads);
        // But the direction diverges: functional mode takes the branch (A is
        // all ones) and performs 8 stores; timing-only mode sees zeros and
        // performs none.  This is the documented contract, not a bug.
        assert_eq!(full.stores, 8);
        assert_eq!(timing.stores, 0);
    }

    #[test]
    fn same_instance_overlapping_dma_copies_like_memmove() {
        let m = Buffer::new("M", DType::F32, vec![8], MemScope::Mram);
        let mut store = MemoryStore::new();
        store.alloc_with(&m, 0, &(0..8).map(|x| x as f32).collect::<Vec<_>>());
        // Overlapping same-buffer copy: [0..4] -> [2..6].
        store.copy(&m, 0, 2, &m, 0, 0, 4).unwrap();
        assert_eq!(
            store.read_all(&m, 0).unwrap(),
            &[0.0, 1.0, 0.0, 1.0, 2.0, 3.0, 6.0, 7.0]
        );
    }

    #[test]
    fn gt_helper_exists_for_guards() {
        // `gt` is used by the timing-contract test above; keep it covered.
        let e = Expr::int(3).gt(Expr::int(2));
        assert!(matches!(e, Expr::Cmp(CmpOp::Gt, _, _)));
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let a = Buffer::new("A", DType::F32, vec![4], MemScope::Global);
        let s = Stmt::store(&a, Expr::int(7), Expr::float(1.0));
        let err = run_simple(&s, &[], &a).unwrap_err();
        assert!(matches!(err, TirError::OutOfBounds { .. }));
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let a = Buffer::new("A", DType::F32, vec![4], MemScope::Global);
        let i = Var::new("i");
        let s = Stmt::store(&a, Expr::var(&i), Expr::float(1.0));
        let err = run_simple(&s, &[], &a).unwrap_err();
        assert!(matches!(err, TirError::UnboundVar(_)));
    }

    #[test]
    fn dma_copies_between_scopes() {
        let mram = Buffer::new("Am", DType::F32, vec![16], MemScope::Mram);
        let wram = Buffer::new("AL", DType::F32, vec![4], MemScope::Wram);
        let mut store = MemoryStore::new();
        store.alloc_with(&mram, 2, &(0..16).map(|x| x as f32).collect::<Vec<_>>());
        store.alloc(&wram, 2);
        let dma = Stmt::Dma {
            dst: wram.clone(),
            dst_off: Expr::int(0),
            src: mram.clone(),
            src_off: Expr::int(4),
            elems: Expr::int(4),
        };
        let mut tracer = CountingTracer::default();
        let mut interp = Interpreter::new(&mut store, &mut tracer, ExecMode::Functional);
        interp.set_dpu(2);
        interp.run(&dma).unwrap();
        assert_eq!(tracer.dma_requests, 1);
        assert_eq!(tracer.dma_bytes, 16);
        assert_eq!(store.read_all(&wram, 2).unwrap(), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn host_transfer_moves_tiles() {
        let global = Buffer::new("A", DType::F32, vec![8], MemScope::Global);
        let mram = Buffer::new("Am", DType::F32, vec![4], MemScope::Mram);
        let mut store = MemoryStore::new();
        store.alloc_with(&global, 0, &(0..8).map(|x| x as f32).collect::<Vec<_>>());
        let xfer = Stmt::HostTransfer {
            dir: TransferDir::H2D,
            dpu: Expr::int(1),
            global: global.clone(),
            global_off: Expr::int(4),
            mram: mram.clone(),
            mram_off: Expr::int(0),
            elems: Expr::int(4),
            parallel: false,
        };
        let mut tracer = CountingTracer::default();
        let mut interp = Interpreter::new(&mut store, &mut tracer, ExecMode::Functional);
        interp.run(&xfer).unwrap();
        assert_eq!(store.read_all(&mram, 1).unwrap(), &[4.0, 5.0, 6.0, 7.0]);
        // And back.
        let back = Stmt::HostTransfer {
            dir: TransferDir::D2H,
            dpu: Expr::int(1),
            global: global.clone(),
            global_off: Expr::int(0),
            mram: mram.clone(),
            mram_off: Expr::int(0),
            elems: Expr::int(4),
            parallel: true,
        };
        let mut tracer2 = CountingTracer::default();
        let mut interp = Interpreter::new(&mut store, &mut tracer2, ExecMode::Functional);
        interp.run(&back).unwrap();
        assert_eq!(
            &store.read_all(&global, 0).unwrap()[..4],
            &[4.0, 5.0, 6.0, 7.0]
        );
        assert_eq!(tracer2.transfer_bytes, 16);
    }

    #[test]
    fn guarded_store_respects_condition() {
        let a = Buffer::new("A", DType::F32, vec![8], MemScope::Global);
        let i = Var::new("i");
        let body = Stmt::if_then(
            Expr::var(&i).lt(Expr::int(5)),
            Stmt::store(&a, Expr::var(&i), Expr::float(1.0)),
        );
        let prog = Stmt::for_serial(i, 8i64, body);
        let out = run_simple(&prog, &[], &a).unwrap();
        assert_eq!(out, vec![1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
    }
}
