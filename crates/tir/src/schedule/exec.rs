//! Functional execution of a [`Lowered`] program.
//!
//! This is a hardware-agnostic reference executor: it runs the host transfer
//! programs, every DPU's kernel, and the host reduction in sequence using the
//! TIR interpreter, and returns the output tensor.  The UPMEM simulator in
//! `atim-sim` performs the same steps but attaches its timing model; keeping
//! this simple executor here lets the `atim-tir` test-suite validate lowering
//! correctness without depending on the simulator.

use crate::error::Result;
use crate::eval::{CompiledProgram, CompiledRunner, ExecMode, Interpreter, MemoryStore, NoTrace};

use super::lowered::Lowered;

/// Executes a lowered program functionally and returns the output tensor.
///
/// `inputs` must match the lengths declared by the compute definition.
///
/// # Errors
/// Propagates interpreter errors (out-of-bounds accesses indicate a lowering
/// bug and surface here).
///
/// # Panics
/// Panics if `inputs.len()` differs from the number of declared inputs.
pub fn execute_functional(lowered: &Lowered, inputs: &[Vec<f32>]) -> Result<Vec<f32>> {
    assert_eq!(
        inputs.len(),
        lowered.global_inputs.len(),
        "input count mismatch"
    );
    let mut store = MemoryStore::new();
    for (buf, data) in lowered.global_inputs.iter().zip(inputs) {
        store.alloc_with(buf, 0, data);
    }
    store.alloc(&lowered.global_output, 0);
    if let Some(p) = &lowered.partial_output {
        store.alloc(p, 0);
    }
    // Pre-allocate MRAM tiles for every DPU (zero-filled: this provides the
    // "local padding" guarantee the DMA-aware pass relies on).
    for (linear, _) in lowered.grid.enumerate() {
        for tile in &lowered.mram_inputs {
            store.alloc(&tile.buf, linear);
        }
        store.alloc(&lowered.mram_output.buf, linear);
    }

    let mut tracer = NoTrace;

    // Host-to-DPU transfers (constant tensors first, then per-launch data).
    {
        let mut interp = Interpreter::new(&mut store, &mut tracer, ExecMode::Functional);
        interp.run(&lowered.h2d_setup)?;
        interp.run(&lowered.h2d)?;
    }

    // Kernel execution, one DPU at a time.  The kernel body is pre-lowered
    // once and the flat program reused for every DPU context.
    let kernel = CompiledProgram::compile(&lowered.kernel.body);
    let mut runner = CompiledRunner::new(&kernel);
    for (linear, coords) in lowered.grid.enumerate() {
        runner.set_dpu(linear);
        for (dim, coord) in lowered.grid.dims.iter().zip(&coords) {
            runner.bind(&dim.var, *coord);
        }
        runner.run(&mut store, &mut tracer, ExecMode::Functional)?;
    }

    // DPU-to-host transfers.
    {
        let mut interp = Interpreter::new(&mut store, &mut tracer, ExecMode::Functional);
        interp.run(&lowered.d2h)?;
    }

    // Host final reduction.
    if let Some(reduce) = &lowered.host_reduce {
        let mut interp = Interpreter::new(&mut store, &mut tracer, ExecMode::Functional);
        interp.run(reduce)?;
    }

    Ok(store
        .read_all(&lowered.global_output, 0)
        .map(|s| s.to_vec())
        .unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::ComputeDef;
    use crate::schedule::{Attach, Binding, Schedule};

    fn test_inputs(def: &ComputeDef) -> Vec<Vec<f32>> {
        (0..def.inputs.len())
            .map(|t| {
                (0..def.input_len(t))
                    .map(|i| ((i * 7 + t * 13) % 11) as f32 - 3.0)
                    .collect()
            })
            .collect()
    }

    fn check(def: ComputeDef, sch: Schedule) {
        let inputs = test_inputs(&def);
        let expect = def.reference(&inputs);
        let lowered = sch.lower().unwrap();
        let got = execute_functional(&lowered, &inputs).unwrap();
        assert_eq!(got.len(), expect.len());
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert!(
                (g - e).abs() < 1e-3,
                "mismatch at {i}: got {g}, expected {e} ({})",
                lowered.def.name
            );
        }
    }

    #[test]
    fn va_default_schedule_matches_reference() {
        let def = ComputeDef::va("va", 37);
        let sch = Schedule::new(def.clone());
        check(def, sch);
    }

    #[test]
    fn va_distributed_misaligned_matches_reference() {
        let def = ComputeDef::va("va", 100);
        let mut sch = Schedule::new(def.clone());
        let i = sch.loop_refs()[0];
        let (i_dpu, i_in) = sch.split(i, 16).unwrap();
        sch.bind(i_dpu, Binding::DpuX).unwrap();
        let (i_t, i_c) = sch.split(i_in, 4).unwrap();
        sch.bind(i_t, Binding::Tasklet).unwrap();
        sch.cache_read(0, Attach::At(i_t)).unwrap();
        sch.cache_read(1, Attach::At(i_t)).unwrap();
        sch.cache_write(Attach::At(i_t)).unwrap();
        let _ = i_c;
        check(def, sch);
    }

    #[test]
    fn mtv_2d_tiling_with_rfactor_matches_reference() {
        let def = ComputeDef::mtv("mtv", 30, 50);
        let mut sch = Schedule::new(def.clone());
        let i = sch.loops_of_axis(0)[0];
        let k = sch.loops_of_axis(1)[0];
        let (i_dpu, i_in) = sch.split(i, 8).unwrap();
        let (k_dpu, k_in) = sch.split(k, 16).unwrap();
        sch.rfactor(k_dpu).unwrap();
        sch.bind(i_dpu, Binding::DpuX).unwrap();
        sch.bind(k_dpu, Binding::DpuY).unwrap();
        sch.reorder(&[i_dpu, k_dpu, i_in, k_in]).unwrap();
        sch.cache_read(0, Attach::At(i_in)).unwrap();
        sch.cache_read(1, Attach::At(i_in)).unwrap();
        sch.cache_write(Attach::At(i_in)).unwrap();
        sch.parallel_host(4);
        check(def, sch);
    }

    #[test]
    fn mtv_misaligned_both_axes_matches_reference() {
        // 7x40 with a 2x16 tile, as in the paper's Fig. 8 example.
        let def = ComputeDef::mtv("mtv", 7, 40);
        let mut sch = Schedule::new(def.clone());
        let i = sch.loops_of_axis(0)[0];
        let k = sch.loops_of_axis(1)[0];
        let (i_dpu, i_in) = sch.split(i, 4).unwrap();
        sch.bind(i_dpu, Binding::DpuX).unwrap();
        let (i_t, i_c) = sch.split(i_in, 2).unwrap();
        sch.bind(i_t, Binding::Tasklet).unwrap();
        let (k_o, k_i) = sch.split(k, 16).unwrap();
        sch.reorder(&[i_dpu, i_t, i_c, k_o, k_i]).unwrap();
        sch.cache_read(0, Attach::At(k_o)).unwrap();
        sch.cache_read(1, Attach::At(k_o)).unwrap();
        sch.cache_write(Attach::At(i_c)).unwrap();
        check(def, sch);
    }

    #[test]
    fn red_hierarchical_reduction_matches_reference() {
        let def = ComputeDef::red("red", 200);
        let mut sch = Schedule::new(def.clone());
        let i = sch.loops_of_axis(0)[0];
        let (i_dpu, i_in) = sch.split(i, 32).unwrap();
        sch.rfactor(i_dpu).unwrap();
        sch.bind(i_dpu, Binding::DpuX).unwrap();
        let (i_t, _) = sch.split(i_in, 8).unwrap();
        sch.bind(i_t, Binding::Tasklet).unwrap();
        sch.parallel_host(2);
        check(def, sch);
    }

    #[test]
    fn geva_matches_reference() {
        let def = ComputeDef::geva("geva", 45, 2.0, -1.5);
        let mut sch = Schedule::new(def.clone());
        let i = sch.loop_refs()[0];
        let (i_dpu, i_in) = sch.split(i, 8).unwrap();
        sch.bind(i_dpu, Binding::DpuX).unwrap();
        sch.cache_read(0, Attach::At(i_in)).unwrap();
        check(def, sch);
    }

    #[test]
    fn ttv_matches_reference() {
        let def = ComputeDef::ttv("ttv", 6, 10, 12);
        let mut sch = Schedule::new(def.clone());
        let i = sch.loops_of_axis(0)[0];
        let j = sch.loops_of_axis(1)[0];
        let (j_dpu, j_in) = sch.split(j, 4).unwrap();
        sch.bind(i, Binding::DpuX).unwrap();
        sch.bind(j_dpu, Binding::DpuY).unwrap();
        sch.reorder(&[i, j_dpu, j_in]).unwrap();
        check(def, sch);
    }

    #[test]
    fn mmtv_matches_reference() {
        let def = ComputeDef::mmtv("mmtv", 4, 9, 16);
        let mut sch = Schedule::new(def.clone());
        let i = sch.loops_of_axis(0)[0];
        let j = sch.loops_of_axis(1)[0];
        let k = sch.loops_of_axis(2)[0];
        let (j_dpu, j_in) = sch.split(j, 4).unwrap();
        sch.bind(i, Binding::DpuX).unwrap();
        sch.bind(j_dpu, Binding::DpuY).unwrap();
        sch.reorder(&[i, j_dpu, j_in, k]).unwrap();
        let (j_t, j_c) = sch.split(j_in, 2).unwrap();
        sch.bind(j_t, Binding::Tasklet).unwrap();
        sch.cache_read(1, Attach::At(j_c)).unwrap();
        sch.cache_write(Attach::At(j_c)).unwrap();
        check(def, sch);
    }

    #[test]
    fn gemv_single_dpu_matches_reference() {
        let def = ComputeDef::gemv("gemv", 24, 24, 1.5);
        let mut sch = Schedule::new(def.clone());
        let i = sch.loops_of_axis(0)[0];
        let (i_t, _) = sch.split(i, 8).unwrap();
        sch.bind(i_t, Binding::Tasklet).unwrap();
        check(def, sch);
    }
}
