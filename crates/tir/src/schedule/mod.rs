//! Schedules: the "how" of a computation.
//!
//! A [`Schedule`] starts from a [`ComputeDef`] with one loop per axis and is
//! transformed by the primitives the paper repurposes for UPMEM (Table 2):
//!
//! * [`Schedule::split`] / [`Schedule::reorder`] — loop tiling,
//! * [`Schedule::bind`] — DPU-grid binding (`blockIdx.*`), tasklet binding
//!   (`threadIdx.x`),
//! * [`Schedule::rfactor`] — hierarchical (partial-on-DPU, final-on-host)
//!   reduction,
//! * [`Schedule::cache_read`] / [`Schedule::cache_write`] with an
//!   [`Attach`] point — WRAM caching tiles and their locations,
//! * [`Schedule::unroll`] — innermost-loop unrolling,
//! * [`Schedule::parallel_host`] — host post-processing parallelism.
//!
//! [`Schedule::lower`] translates the scheduled computation into loop-based
//! TIR: a per-DPU kernel, host↔DPU transfer programs and (for `rfactor`) a
//! host final-reduction loop.  See the `lower` submodule for the lowering
//! rules.

mod exec;
mod lower;
mod lowered;

pub use exec::execute_functional;
pub use lowered::{GridDim, GridSpec, KernelProgram, Lowered, MramTile};

use crate::compute::{AxisKind, ComputeDef};
use crate::error::{Result, TirError};

/// Stable reference to a loop in a schedule (survives `reorder`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopRef(pub usize);

/// Binding of a loop to a hardware resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Binding {
    /// No binding: a plain sequential loop.
    #[default]
    None,
    /// DPU grid X dimension (`blockIdx.x`).
    DpuX,
    /// DPU grid Y dimension (`blockIdx.y`).
    DpuY,
    /// Tasklets within a DPU (`threadIdx.x`).
    Tasklet,
    /// Annotated for unrolling.
    Unroll,
}

/// One loop of the schedule's loop nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopInfo {
    /// Stable id ([`LoopRef`] refers to this).
    pub id: usize,
    /// The original axis this loop iterates a part of.
    pub axis: usize,
    /// Static extent.
    pub extent: i64,
    /// Contribution stride: the original axis index receives
    /// `loop_var * stride` from this loop.
    pub stride: i64,
    /// Hardware binding.
    pub binding: Binding,
    /// Loop name (used for TIR variable names).
    pub name: String,
}

/// Where a caching tile is attached (`compute_at` /
/// `reverse_compute_at` target).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attach {
    /// Outside every kernel loop: the whole per-DPU tile is cached once.
    Root,
    /// Inside the body of the given loop.
    At(LoopRef),
}

/// A `cache_read` directive: stage one input into WRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheRead {
    /// Index of the input tensor being cached.
    pub input: usize,
    /// Caching location.
    pub at: Attach,
}

/// A `cache_write` directive: accumulate the output in WRAM and write it back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheWrite {
    /// Caching location (write-back happens when this loop's body finishes).
    pub at: Attach,
}

/// A scheduled computation.
#[derive(Debug, Clone)]
pub struct Schedule {
    def: ComputeDef,
    loops: Vec<LoopInfo>,
    next_id: usize,
    cache_reads: Vec<CacheRead>,
    cache_write: Option<CacheWrite>,
    rfactor: bool,
    host_threads: usize,
    bulk_transfer: bool,
    parallel_transfer: bool,
}

impl Schedule {
    /// Creates the default schedule: one serial loop per axis, in definition
    /// order, no caching, no DPU distribution.
    pub fn new(def: ComputeDef) -> Self {
        let loops = def
            .axes
            .iter()
            .enumerate()
            .map(|(i, a)| LoopInfo {
                id: i,
                axis: i,
                extent: a.extent,
                stride: 1,
                binding: Binding::None,
                name: a.name.clone(),
            })
            .collect::<Vec<_>>();
        let next_id = loops.len();
        Schedule {
            def,
            loops,
            next_id,
            cache_reads: Vec::new(),
            cache_write: None,
            rfactor: false,
            host_threads: 1,
            bulk_transfer: true,
            parallel_transfer: true,
        }
    }

    /// The underlying computation definition.
    pub fn def(&self) -> &ComputeDef {
        &self.def
    }

    /// Current loops in execution order (outermost first).
    pub fn loops(&self) -> &[LoopInfo] {
        &self.loops
    }

    /// References to the current loops in execution order.
    pub fn loop_refs(&self) -> Vec<LoopRef> {
        self.loops.iter().map(|l| LoopRef(l.id)).collect()
    }

    /// Loops that iterate (parts of) the given axis, in execution order.
    pub fn loops_of_axis(&self, axis: usize) -> Vec<LoopRef> {
        self.loops
            .iter()
            .filter(|l| l.axis == axis)
            .map(|l| LoopRef(l.id))
            .collect()
    }

    /// Looks up a loop by reference.
    pub fn loop_info(&self, r: LoopRef) -> Result<&LoopInfo> {
        self.loops
            .iter()
            .find(|l| l.id == r.0)
            .ok_or_else(|| TirError::UnknownLoop(format!("loop#{}", r.0)))
    }

    fn loop_pos(&self, r: LoopRef) -> Result<usize> {
        self.loops
            .iter()
            .position(|l| l.id == r.0)
            .ok_or_else(|| TirError::UnknownLoop(format!("loop#{}", r.0)))
    }

    /// Whether `rfactor` has been applied.
    pub fn has_rfactor(&self) -> bool {
        self.rfactor
    }

    /// Host post-processing thread count.
    pub fn host_threads(&self) -> usize {
        self.host_threads
    }

    /// Whether host↔DPU transfers are generated chunk-wise (bulk) rather than
    /// element-wise (Fig. 7(b) vs (c)).
    pub fn bulk_transfer(&self) -> bool {
        self.bulk_transfer
    }

    /// Whether host↔DPU transfers use the rank-parallel push API
    /// (Fig. 7(d)).
    pub fn parallel_transfer(&self) -> bool {
        self.parallel_transfer
    }

    /// Cache-read directives.
    pub fn cache_reads(&self) -> &[CacheRead] {
        &self.cache_reads
    }

    /// Cache-write directive.
    pub fn cache_write_spec(&self) -> Option<&CacheWrite> {
        self.cache_write.as_ref()
    }

    // --- Primitives ---------------------------------------------------------

    /// Splits a loop into `(outer, inner)` where the inner loop has extent
    /// `factor` and the outer loop has extent `ceil(extent / factor)`.
    ///
    /// Mirrors `sch.split(loop, factors=[None, factor])` in TVM.  Misaligned
    /// splits (extent not divisible by `factor`) are allowed; the lowering
    /// inserts the boundary checks the PIM-aware passes later optimize.
    ///
    /// # Errors
    /// Fails if the loop does not exist or `factor < 1`.
    pub fn split(&mut self, r: LoopRef, factor: i64) -> Result<(LoopRef, LoopRef)> {
        if factor < 1 {
            return Err(TirError::InvalidSchedule(format!(
                "split factor must be >= 1, got {factor}"
            )));
        }
        let pos = self.loop_pos(r)?;
        let old = self.loops[pos].clone();
        let outer_extent = div_ceil(old.extent, factor);
        let outer = LoopInfo {
            id: self.next_id,
            axis: old.axis,
            extent: outer_extent,
            stride: old.stride * factor,
            binding: old.binding,
            name: format!("{}_o", old.name),
        };
        let inner = LoopInfo {
            id: self.next_id + 1,
            axis: old.axis,
            extent: factor,
            stride: old.stride,
            binding: Binding::None,
            name: format!("{}_i", old.name),
        };
        self.next_id += 2;
        let (outer_id, inner_id) = (outer.id, inner.id);
        self.loops.splice(pos..=pos, [outer, inner]);
        Ok((LoopRef(outer_id), LoopRef(inner_id)))
    }

    /// Reorders the listed loops into the given relative order.  Loops not
    /// listed keep their positions.
    ///
    /// # Errors
    /// Fails if any referenced loop does not exist or a loop is listed twice.
    pub fn reorder(&mut self, order: &[LoopRef]) -> Result<()> {
        let mut positions = Vec::with_capacity(order.len());
        for r in order {
            let p = self.loop_pos(*r)?;
            if positions.contains(&p) {
                return Err(TirError::InvalidSchedule(format!(
                    "loop#{} listed twice in reorder",
                    r.0
                )));
            }
            positions.push(p);
        }
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        let picked: Vec<LoopInfo> = order
            .iter()
            .map(|r| self.loop_info(*r).expect("checked above").clone())
            .collect();
        for (slot, li) in sorted.into_iter().zip(picked) {
            self.loops[slot] = li;
        }
        Ok(())
    }

    /// Binds a loop to a DPU grid dimension, the tasklet dimension, or marks
    /// it for unrolling.
    ///
    /// # Errors
    /// Fails if the loop does not exist, or a reduce-axis loop is bound to a
    /// DPU dimension without a preceding [`Schedule::rfactor`].
    pub fn bind(&mut self, r: LoopRef, binding: Binding) -> Result<()> {
        let pos = self.loop_pos(r)?;
        if matches!(binding, Binding::DpuX | Binding::DpuY)
            && self.def.axes[self.loops[pos].axis].kind == AxisKind::Reduce
            && !self.rfactor
        {
            return Err(TirError::InvalidSchedule(
                "binding a reduction loop to the DPU grid requires rfactor".into(),
            ));
        }
        self.loops[pos].binding = binding;
        Ok(())
    }

    /// Declares hierarchical reduction: the given reduce-axis loop may be
    /// distributed across DPUs, each DPU produces a partial result, and the
    /// host performs the final reduction.
    ///
    /// # Errors
    /// Fails if the loop does not iterate a reduction axis.
    pub fn rfactor(&mut self, r: LoopRef) -> Result<()> {
        let info = self.loop_info(r)?;
        if self.def.axes[info.axis].kind != AxisKind::Reduce {
            return Err(TirError::InvalidSchedule(
                "rfactor target must iterate a reduction axis".into(),
            ));
        }
        self.rfactor = true;
        Ok(())
    }

    /// Marks a loop for unrolling (sugar for `bind(r, Binding::Unroll)`).
    ///
    /// # Errors
    /// Fails if the loop does not exist.
    pub fn unroll(&mut self, r: LoopRef) -> Result<()> {
        self.bind(r, Binding::Unroll)
    }

    /// Stages input `input` into a WRAM tile loaded at `at`
    /// (`cache_read` + `compute_at`).
    ///
    /// # Errors
    /// Fails if the input index is out of range or a directive for the same
    /// input already exists.
    pub fn cache_read(&mut self, input: usize, at: Attach) -> Result<()> {
        if input >= self.def.inputs.len() {
            return Err(TirError::InvalidSchedule(format!(
                "cache_read input {input} out of range"
            )));
        }
        if self.cache_reads.iter().any(|c| c.input == input) {
            return Err(TirError::InvalidSchedule(format!(
                "cache_read already declared for input {input}"
            )));
        }
        if let Attach::At(r) = at {
            self.loop_pos(r)?;
        }
        self.cache_reads.push(CacheRead { input, at });
        Ok(())
    }

    /// Accumulates the output in a WRAM tile written back at `at`
    /// (`cache_write` + `reverse_compute_at`).
    ///
    /// # Errors
    /// Fails if a cache-write directive already exists.
    pub fn cache_write(&mut self, at: Attach) -> Result<()> {
        if self.cache_write.is_some() {
            return Err(TirError::InvalidSchedule(
                "cache_write already declared".into(),
            ));
        }
        if let Attach::At(r) = at {
            self.loop_pos(r)?;
        }
        self.cache_write = Some(CacheWrite { at });
        Ok(())
    }

    /// Sets the number of host CPU threads used for post-processing (the
    /// `split` + `parallel` primitives of Table 2's post-processing row).
    pub fn parallel_host(&mut self, threads: usize) {
        self.host_threads = threads.max(1);
    }

    /// Selects element-wise (`false`) or chunk-wise (`true`) host transfer
    /// code generation (Fig. 7(b) vs (c)).
    pub fn set_bulk_transfer(&mut self, bulk: bool) {
        self.bulk_transfer = bulk;
    }

    /// Selects rank-parallel host transfers (Fig. 7(d)).
    pub fn set_parallel_transfer(&mut self, parallel: bool) {
        self.parallel_transfer = parallel;
    }

    /// Lowers the schedule to loop-based TIR.
    ///
    /// # Errors
    /// Fails if the schedule violates the structural assumptions documented
    /// on `lower::lower_schedule`.
    pub fn lower(&self) -> Result<Lowered> {
        lower::lower_schedule(self)
    }
}

/// Ceiling division for positive extents.
pub(crate) fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    (a + b - 1) / b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::ComputeDef;

    #[test]
    fn split_creates_outer_inner() {
        let mut sch = Schedule::new(ComputeDef::va("va", 100));
        let loops = sch.loop_refs();
        let (o, i) = sch.split(loops[0], 16).unwrap();
        assert_eq!(sch.loop_info(o).unwrap().extent, 7); // ceil(100/16)
        assert_eq!(sch.loop_info(o).unwrap().stride, 16);
        assert_eq!(sch.loop_info(i).unwrap().extent, 16);
        assert_eq!(sch.loop_info(i).unwrap().stride, 1);
        assert_eq!(sch.loops().len(), 2);
    }

    #[test]
    fn split_rejects_bad_factor() {
        let mut sch = Schedule::new(ComputeDef::va("va", 100));
        let loops = sch.loop_refs();
        assert!(sch.split(loops[0], 0).is_err());
        assert!(sch.split(LoopRef(999), 4).is_err());
    }

    #[test]
    fn reorder_permutes() {
        let mut sch = Schedule::new(ComputeDef::mtv("mtv", 32, 64));
        let loops = sch.loop_refs();
        let (i_o, i_i) = sch.split(loops[0], 8).unwrap();
        let k = sch.loops_of_axis(1)[0];
        sch.reorder(&[i_o, k, i_i]).unwrap();
        let names: Vec<usize> = sch.loops().iter().map(|l| l.id).collect();
        assert_eq!(names, vec![i_o.0, k.0, i_i.0]);
    }

    #[test]
    fn reorder_rejects_duplicates() {
        let mut sch = Schedule::new(ComputeDef::mtv("mtv", 32, 64));
        let loops = sch.loop_refs();
        assert!(sch.reorder(&[loops[0], loops[0]]).is_err());
    }

    #[test]
    fn bind_reduce_axis_requires_rfactor() {
        let mut sch = Schedule::new(ComputeDef::mtv("mtv", 32, 64));
        let k = sch.loops_of_axis(1)[0];
        assert!(sch.bind(k, Binding::DpuY).is_err());
        sch.rfactor(k).unwrap();
        assert!(sch.bind(k, Binding::DpuY).is_ok());
        assert!(sch.has_rfactor());
    }

    #[test]
    fn rfactor_rejects_spatial_axis() {
        let mut sch = Schedule::new(ComputeDef::mtv("mtv", 32, 64));
        let i = sch.loops_of_axis(0)[0];
        assert!(sch.rfactor(i).is_err());
    }

    #[test]
    fn cache_directives_validate() {
        let mut sch = Schedule::new(ComputeDef::mtv("mtv", 32, 64));
        let k = sch.loops_of_axis(1)[0];
        sch.cache_read(0, Attach::At(k)).unwrap();
        assert!(sch.cache_read(0, Attach::Root).is_err(), "duplicate input");
        assert!(sch.cache_read(9, Attach::Root).is_err(), "bad input index");
        sch.cache_write(Attach::Root).unwrap();
        assert!(sch.cache_write(Attach::Root).is_err(), "duplicate");
    }

    #[test]
    fn host_threads_clamped() {
        let mut sch = Schedule::new(ComputeDef::va("va", 8));
        sch.parallel_host(0);
        assert_eq!(sch.host_threads(), 1);
        sch.parallel_host(16);
        assert_eq!(sch.host_threads(), 16);
    }

    #[test]
    fn div_ceil_works() {
        assert_eq!(div_ceil(100, 16), 7);
        assert_eq!(div_ceil(96, 16), 6);
        assert_eq!(div_ceil(1, 16), 1);
    }
}
