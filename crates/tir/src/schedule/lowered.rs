//! Output types of schedule lowering.

use std::sync::Arc;

use crate::buffer::{Buffer, Var};
use crate::compute::ComputeDef;
use crate::stmt::Stmt;

/// One dimension of the DPU grid (one DPU-bound loop).
#[derive(Debug, Clone)]
pub struct GridDim {
    /// The kernel-visible variable carrying this DPU coordinate.
    pub var: Var,
    /// Number of DPUs along this dimension.
    pub extent: i64,
    /// Id of the schedule loop this dimension came from.
    pub loop_id: usize,
    /// Whether the bound loop iterates a reduction axis (i.e. this dimension
    /// exists because of `rfactor`).
    pub reduce: bool,
}

/// The DPU grid: how many DPUs are used and which kernel variables carry the
/// per-DPU coordinates.
#[derive(Debug, Clone, Default)]
pub struct GridSpec {
    /// Grid dimensions in row-major (outermost-first) order.
    pub dims: Vec<GridDim>,
}

impl GridSpec {
    /// Total number of DPUs used by the schedule.
    pub fn num_dpus(&self) -> i64 {
        self.dims.iter().map(|d| d.extent).product::<i64>().max(1)
    }

    /// Number of DPUs along reduction dimensions (1 when `rfactor` is not
    /// used).
    pub fn reduce_dpus(&self) -> i64 {
        self.dims
            .iter()
            .filter(|d| d.reduce)
            .map(|d| d.extent)
            .product::<i64>()
            .max(1)
    }

    /// Number of DPUs along spatial dimensions.
    pub fn spatial_dpus(&self) -> i64 {
        self.num_dpus() / self.reduce_dpus()
    }

    /// Enumerates all DPU coordinates in row-major order, pairing each with
    /// its linear index.
    pub fn enumerate(&self) -> Vec<(i64, Vec<i64>)> {
        let mut out = Vec::with_capacity(self.num_dpus() as usize);
        let extents: Vec<i64> = self.dims.iter().map(|d| d.extent).collect();
        let n = self.num_dpus();
        for linear in 0..n {
            let mut rem = linear;
            let mut coords = vec![0i64; extents.len()];
            for (i, &e) in extents.iter().enumerate().rev() {
                coords[i] = rem % e;
                rem /= e;
            }
            out.push((linear, coords));
        }
        out
    }
}

/// A per-DPU MRAM tile of one global tensor.
#[derive(Debug, Clone)]
pub struct MramTile {
    /// The MRAM buffer (its shape is the padded tile shape).
    pub buf: Arc<Buffer>,
    /// Per-dimension tile extents (same as `buf.shape`).
    pub tile_shape: Vec<i64>,
}

/// The per-DPU kernel produced by lowering.
#[derive(Debug, Clone)]
pub struct KernelProgram {
    /// Kernel body.  Free variables: the grid coordinate variables in
    /// [`Lowered::grid`]; everything else is bound by the kernel's own loops.
    pub body: Stmt,
    /// Number of tasklets the kernel uses (extent of the tasklet-bound loop,
    /// or 1 if none).
    pub tasklets: i64,
    /// Estimated WRAM bytes required per DPU (caching tiles × tasklets when
    /// tiles are private to a tasklet).
    pub wram_bytes: usize,
}

/// A fully lowered schedule: everything the runtime needs to execute the
/// computation on the (simulated) UPMEM system.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The computation this program implements.
    pub def: ComputeDef,
    /// DPU grid.
    pub grid: GridSpec,
    /// Per-DPU kernel.
    pub kernel: KernelProgram,
    /// One-time host-to-DPU transfer program for constant tensors (weights),
    /// executed once before kernel launches (§5.4 of the paper).
    pub h2d_setup: Stmt,
    /// Per-launch host-to-DPU transfer program (no free variables).
    pub h2d: Stmt,
    /// DPU-to-host transfer program (no free variables).
    pub d2h: Stmt,
    /// Host final-reduction program (present when `rfactor` was applied).
    pub host_reduce: Option<Stmt>,
    /// Host threads used by the final reduction.
    pub host_threads: usize,
    /// Global input buffers, in the order of [`ComputeDef::inputs`].
    pub global_inputs: Vec<Arc<Buffer>>,
    /// Global output buffer.
    pub global_output: Arc<Buffer>,
    /// Per-DPU-partial-results buffer (present when `rfactor` was applied);
    /// shape `[reduce_dpus, output...]`.
    pub partial_output: Option<Arc<Buffer>>,
    /// MRAM tiles of each input, in input order.
    pub mram_inputs: Vec<MramTile>,
    /// MRAM tile of the output.
    pub mram_output: MramTile,
}

impl Lowered {
    /// Per-DPU MRAM footprint in bytes (input tiles + output tile).
    pub fn mram_bytes_per_dpu(&self) -> usize {
        self.mram_inputs
            .iter()
            .map(|t| t.buf.bytes())
            .sum::<usize>()
            + self.mram_output.buf.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_enumeration() {
        let grid = GridSpec {
            dims: vec![
                GridDim {
                    var: Var::new("bx"),
                    extent: 2,
                    loop_id: 0,
                    reduce: false,
                },
                GridDim {
                    var: Var::new("by"),
                    extent: 3,
                    loop_id: 1,
                    reduce: true,
                },
            ],
        };
        assert_eq!(grid.num_dpus(), 6);
        assert_eq!(grid.reduce_dpus(), 3);
        assert_eq!(grid.spatial_dpus(), 2);
        let all = grid.enumerate();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], (0, vec![0, 0]));
        assert_eq!(all[4], (4, vec![1, 1]));
        assert_eq!(all[5], (5, vec![1, 2]));
    }

    #[test]
    fn empty_grid_is_one_dpu() {
        let grid = GridSpec::default();
        assert_eq!(grid.num_dpus(), 1);
        assert_eq!(grid.enumerate(), vec![(0, vec![])]);
    }
}
