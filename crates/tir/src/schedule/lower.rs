//! Lowering of a [`Schedule`] to loop-based TIR.
//!
//! The lowering mirrors §5.2.2 of the paper:
//!
//! * loops bound to `blockIdx.*` become the **DPU grid**; their loop
//!   variables become free kernel parameters (the "DPU binding"),
//! * the remaining loops become the per-DPU **kernel** loop nest, with the
//!   tasklet-bound loop marked for intra-DPU parallelism,
//! * **address calculation**: every global tensor is tiled into a per-DPU
//!   MRAM buffer whose extent along each axis is the span covered by the
//!   kernel loops of that axis ("local padding"); WRAM caching tiles are
//!   indexed by inner-loop offsets only,
//! * **data transfer code generation**: host→DPU and DPU→host programs are
//!   derived from the same tiling, as loops of transfer intrinsics
//!   (element-wise or bulk, serial or rank-parallel — Fig. 7),
//! * **reduction code generation**: when `rfactor` distributes a reduction
//!   axis across DPUs, each DPU writes a partial result and a host
//!   final-reduction loop (optionally tiled across host threads) combines
//!   them,
//! * **boundary checks** are inserted wherever a tile may extend past its
//!   tensor's extent — exactly the checks the PIM-aware passes in
//!   `atim-passes` then eliminate, tighten or hoist.
//!
//! # Structural assumptions
//!
//! * DPU-bound loops must precede all other loops (the sketch generation
//!   rules always produce such schedules).
//! * DPU tiles must be contiguous per axis: the stride of a DPU-bound loop
//!   must be at least the span of the kernel loops of the same axis.
//! * If the output is cached (`cache_write`), all reduction loops must be
//!   nested inside the attach point.

use std::sync::Arc;

use crate::buffer::{row_major_strides, Buffer, MemScope, Var};
use crate::compute::AxisKind;
use crate::error::{Result, TirError};
use crate::expr::Expr;
use crate::simplify::{simplify_expr, simplify_stmt};
use crate::stmt::{ForKind, Stmt, TransferDir};

use super::lowered::{GridDim, GridSpec, KernelProgram, Lowered, MramTile};
use super::{div_ceil, Attach, Binding, LoopInfo, Schedule};

/// Lowers a schedule.  See the module docs for the rules.
pub(crate) fn lower_schedule(sch: &Schedule) -> Result<Lowered> {
    Lowerer::new(sch)?.run()
}

struct CacheReadInfo {
    input: usize,
    /// Kernel-loop position of the attach point; `None` means root (outside
    /// all kernel loops).
    attach_pos: Option<usize>,
    wbuf: Arc<Buffer>,
    foot_shape: Vec<i64>,
}

struct CacheWriteInfo {
    attach_pos: Option<usize>,
    wbuf: Arc<Buffer>,
    foot_shape: Vec<i64>,
}

struct Lowerer<'a> {
    sch: &'a Schedule,
    grid_loops: Vec<LoopInfo>,
    kernel_loops: Vec<LoopInfo>,
    grid_vars: Vec<Var>,
    kernel_vars: Vec<Var>,
    global_inputs: Vec<Arc<Buffer>>,
    global_output: Arc<Buffer>,
    mram_inputs: Vec<MramTile>,
    mram_output: MramTile,
}

impl<'a> Lowerer<'a> {
    fn new(sch: &'a Schedule) -> Result<Self> {
        let def = sch.def();
        // Partition loops into the DPU-grid prefix and the kernel suffix.
        let loops = sch.loops();
        let mut grid_loops = Vec::new();
        let mut kernel_loops = Vec::new();
        let mut seen_kernel = false;
        for l in loops {
            if matches!(l.binding, Binding::DpuX | Binding::DpuY) {
                if seen_kernel {
                    return Err(TirError::LoweringError(format!(
                        "DPU-bound loop {} appears after a kernel loop; DPU loops must be outermost",
                        l.name
                    )));
                }
                grid_loops.push(l.clone());
            } else {
                seen_kernel = true;
                kernel_loops.push(l.clone());
            }
        }
        // Reduction axes may only be DPU-bound under rfactor.
        for l in &grid_loops {
            if def.axes[l.axis].kind == AxisKind::Reduce && !sch.has_rfactor() {
                return Err(TirError::LoweringError(
                    "reduction loop bound to the DPU grid without rfactor".into(),
                ));
            }
        }

        let grid_vars: Vec<Var> = grid_loops.iter().map(|l| Var::new(&l.name)).collect();
        let kernel_vars: Vec<Var> = kernel_loops.iter().map(|l| Var::new(&l.name)).collect();

        // Global buffers.
        let global_inputs: Vec<Arc<Buffer>> = def
            .inputs
            .iter()
            .map(|t| Buffer::new(&t.name, t.dtype, def.tensor_shape(t), MemScope::Global))
            .collect();
        let global_output = Buffer::new(
            &def.output.name,
            def.output.dtype,
            def.tensor_shape(&def.output),
            MemScope::Global,
        );

        let me = Lowerer {
            sch,
            grid_loops,
            kernel_loops,
            grid_vars,
            kernel_vars,
            global_inputs,
            global_output,
            mram_inputs: Vec::new(),
            mram_output: MramTile {
                buf: Buffer::new("uninit", def.output.dtype, vec![1], MemScope::Mram),
                tile_shape: vec![1],
            },
        };
        Ok(me)
    }

    // --- Geometry helpers ---------------------------------------------------

    fn axis_extent(&self, axis: usize) -> i64 {
        self.sch.def().axes[axis].extent
    }

    /// Span of the given loops along `axis` (1 if none iterate it).
    fn span(loops: &[LoopInfo], axis: usize) -> i64 {
        let mut span = 0;
        let mut any = false;
        for l in loops.iter().filter(|l| l.axis == axis) {
            any = true;
            span += (l.extent - 1) * l.stride;
        }
        if any {
            span + 1
        } else {
            1
        }
    }

    /// Span covered within a single DPU (kernel loops only).
    fn kernel_span(&self, axis: usize) -> i64 {
        Self::span(&self.kernel_loops, axis)
    }

    /// Maximum reconstructed index + 1 over all loops of an axis.
    fn coverage(&self, axis: usize) -> i64 {
        let mut cov = 0i64;
        let mut any = false;
        for l in self
            .grid_loops
            .iter()
            .chain(self.kernel_loops.iter())
            .filter(|l| l.axis == axis)
        {
            any = true;
            cov += (l.extent - 1) * l.stride;
        }
        if any {
            cov + 1
        } else {
            self.axis_extent(axis)
        }
    }

    /// Whether tiles along the axis may run past the tensor extent, i.e.
    /// boundary checks are required.
    fn misaligned(&self, axis: usize) -> bool {
        self.coverage(axis) > self.axis_extent(axis)
    }

    /// Offset contributed by the DPU-grid loops of an axis (uses grid vars).
    fn dpu_offset(&self, axis: usize) -> Expr {
        let mut e = Expr::Int(0);
        for (l, v) in self.grid_loops.iter().zip(&self.grid_vars) {
            if l.axis == axis {
                e = e.add(Expr::var(v).mul(Expr::Int(l.stride)));
            }
        }
        simplify_expr(&e)
    }

    /// Offset contributed by kernel loops of an axis whose position satisfies
    /// `keep(pos)`.
    fn kernel_offset(&self, axis: usize, keep: impl Fn(usize) -> bool) -> Expr {
        let mut e = Expr::Int(0);
        for (pos, (l, v)) in self.kernel_loops.iter().zip(&self.kernel_vars).enumerate() {
            if l.axis == axis && keep(pos) {
                e = e.add(Expr::var(v).mul(Expr::Int(l.stride)));
            }
        }
        simplify_expr(&e)
    }

    fn local_off(&self, axis: usize) -> Expr {
        self.kernel_offset(axis, |_| true)
    }

    fn inner_off(&self, axis: usize, attach_pos: Option<usize>) -> Expr {
        let threshold = attach_pos.map(|p| p as i64).unwrap_or(-1);
        self.kernel_offset(axis, |pos| (pos as i64) > threshold)
    }

    fn outer_off(&self, axis: usize, attach_pos: Option<usize>) -> Expr {
        let threshold = attach_pos.map(|p| p as i64).unwrap_or(-1);
        self.kernel_offset(axis, |pos| (pos as i64) <= threshold)
    }

    /// Footprint span of kernel loops of `axis` strictly inside the attach
    /// point.
    fn inner_span(&self, axis: usize, attach_pos: Option<usize>) -> i64 {
        let threshold = attach_pos.map(|p| p as i64).unwrap_or(-1);
        let subset: Vec<LoopInfo> = self
            .kernel_loops
            .iter()
            .enumerate()
            .filter(|(pos, l)| (*pos as i64) > threshold && l.axis == axis)
            .map(|(_, l)| l.clone())
            .collect();
        Self::span(&subset, axis)
    }

    /// Linear DPU index expression (row-major over the grid dims).
    fn dpu_linear(&self) -> Expr {
        let mut e = Expr::Int(0);
        for (l, v) in self.grid_loops.iter().zip(&self.grid_vars) {
            e = e.mul(Expr::Int(l.extent)).add(Expr::var(v));
        }
        simplify_expr(&e)
    }

    fn attach_pos(&self, at: Attach) -> Result<Option<usize>> {
        match at {
            Attach::Root => Ok(None),
            Attach::At(r) => {
                let pos = self
                    .kernel_loops
                    .iter()
                    .position(|l| l.id == r.0)
                    .ok_or_else(|| {
                        TirError::LoweringError(format!(
                            "cache attach target loop#{} is not a kernel loop",
                            r.0
                        ))
                    })?;
                Ok(Some(pos))
            }
        }
    }

    // --- Main driver ---------------------------------------------------------

    fn run(mut self) -> Result<Lowered> {
        let def = self.sch.def().clone();

        // Tile-geometry validation.  Each DPU's MRAM tile along an axis is the
        // contiguous window `[dpu_offset, dpu_offset + kernel_span)`.  Windows
        // of adjacent DPUs may overlap (misaligned splits); that is harmless
        // because overlapping elements are recomputed with identical values
        // (spatial axes) or claimed by exactly one DPU via the ownership
        // guard (reduction axes).  What must NOT happen is a *hole* inside a
        // DPU's own window: the DPU-to-host copy transfers the whole window,
        // so uncomputed padding would overwrite other DPUs' results.  Holes
        // only arise from non-nested (interleaved) splits, which standard
        // sketches never produce; reject them here.
        for (a, ax) in def.axes.iter().enumerate() {
            let kernel_points: i64 = self
                .kernel_loops
                .iter()
                .filter(|l| l.axis == a)
                .map(|l| l.extent)
                .product();
            if kernel_points < self.kernel_span(a) {
                return Err(TirError::LoweringError(format!(
                    "kernel loops of axis {} leave holes in the per-DPU tile \
                     ({} iteration points for a span of {})",
                    ax.name,
                    kernel_points,
                    self.kernel_span(a)
                )));
            }
            let total_points: i64 = self
                .grid_loops
                .iter()
                .chain(self.kernel_loops.iter())
                .filter(|l| l.axis == a)
                .map(|l| l.extent)
                .product();
            if total_points < ax.extent {
                return Err(TirError::LoweringError(format!(
                    "loops of axis {} cover only {} of {} elements",
                    ax.name, total_points, ax.extent
                )));
            }
        }

        // MRAM tiles.
        self.mram_inputs = def
            .inputs
            .iter()
            .map(|t| {
                let shape: Vec<i64> = t.axes.iter().map(|&a| self.kernel_span(a)).collect();
                let shape = if shape.is_empty() { vec![1] } else { shape };
                MramTile {
                    buf: Buffer::new(
                        format!("{}_m", t.name),
                        t.dtype,
                        shape.clone(),
                        MemScope::Mram,
                    ),
                    tile_shape: shape,
                }
            })
            .collect();
        {
            let t = &def.output;
            let shape: Vec<i64> = t.axes.iter().map(|&a| self.kernel_span(a)).collect();
            let shape = if shape.is_empty() { vec![1] } else { shape };
            self.mram_output = MramTile {
                buf: Buffer::new(
                    format!("{}_m", t.name),
                    t.dtype,
                    shape.clone(),
                    MemScope::Mram,
                ),
                tile_shape: shape,
            };
        }

        // Grid spec.
        let grid = GridSpec {
            dims: self
                .grid_loops
                .iter()
                .zip(&self.grid_vars)
                .map(|(l, v)| GridDim {
                    var: v.clone(),
                    extent: l.extent,
                    loop_id: l.id,
                    reduce: def.axes[l.axis].kind == AxisKind::Reduce,
                })
                .collect(),
        };
        let effective_rfactor = grid.dims.iter().any(|d| d.reduce);

        // Partial-results buffer for hierarchical reduction.
        let partial_output = if effective_rfactor {
            let mut shape = vec![grid.reduce_dpus()];
            shape.extend(def.tensor_shape(&def.output));
            Some(Buffer::new(
                format!("{}_partial", def.output.name),
                def.output.dtype,
                shape,
                MemScope::Global,
            ))
        } else {
            None
        };

        let kernel = self.build_kernel()?;
        let (h2d_setup, h2d) = self.build_h2d()?;
        let d2h = self.build_d2h(&grid, partial_output.as_ref())?;
        let host_reduce = if effective_rfactor {
            Some(self.build_host_reduce(
                &grid,
                partial_output.as_ref().expect("rfactor implies partial"),
            ))
        } else {
            None
        };

        Ok(Lowered {
            def,
            grid,
            kernel,
            h2d_setup,
            h2d,
            d2h,
            host_reduce,
            host_threads: self.sch.host_threads(),
            global_inputs: self.global_inputs.clone(),
            global_output: self.global_output.clone(),
            partial_output,
            mram_inputs: self.mram_inputs.clone(),
            mram_output: self.mram_output.clone(),
        })
    }

    // --- Kernel construction --------------------------------------------------

    fn build_kernel(&self) -> Result<KernelProgram> {
        let def = self.sch.def();

        // Resolve cache directives.
        let mut reads = Vec::new();
        for cr in self.sch.cache_reads() {
            let attach_pos = self.attach_pos(cr.at)?;
            let decl = &def.inputs[cr.input];
            let foot_shape: Vec<i64> = decl
                .axes
                .iter()
                .map(|&a| self.inner_span(a, attach_pos))
                .collect();
            let foot_shape = if foot_shape.is_empty() {
                vec![1]
            } else {
                foot_shape
            };
            let wbuf = Buffer::new(
                format!("{}_w", decl.name),
                decl.dtype,
                foot_shape.clone(),
                MemScope::Wram,
            );
            reads.push(CacheReadInfo {
                input: cr.input,
                attach_pos,
                wbuf,
                foot_shape,
            });
        }
        let write = match self.sch.cache_write_spec() {
            Some(cw) => {
                let attach_pos = self.attach_pos(cw.at)?;
                // All reduction kernel loops must be nested inside the attach
                // point, otherwise re-initializing the accumulator would lose
                // partial sums.
                let threshold = attach_pos.map(|p| p as i64).unwrap_or(-1);
                for (pos, l) in self.kernel_loops.iter().enumerate() {
                    if def.axes[l.axis].kind == AxisKind::Reduce && (pos as i64) <= threshold {
                        return Err(TirError::LoweringError(format!(
                            "cache_write attach point must enclose all reduction loops (loop {} is outside)",
                            l.name
                        )));
                    }
                }
                let decl = &def.output;
                let foot_shape: Vec<i64> = decl
                    .axes
                    .iter()
                    .map(|&a| self.inner_span(a, attach_pos))
                    .collect();
                let foot_shape = if foot_shape.is_empty() {
                    vec![1]
                } else {
                    foot_shape
                };
                let wbuf = Buffer::new(
                    format!("{}_w", decl.name),
                    decl.dtype,
                    foot_shape.clone(),
                    MemScope::Wram,
                );
                Some(CacheWriteInfo {
                    attach_pos,
                    wbuf,
                    foot_shape,
                })
            }
            None => None,
        };

        let compute = self.compute_stmt(&reads, &write);
        let mut body = self.build_kernel_loops(0, &compute, &reads, &write);

        // Root-attached caching.
        let mut parts = Vec::new();
        for r in &reads {
            if r.attach_pos.is_none() {
                parts.push(self.cache_read_copy(r));
            }
        }
        if let Some(w) = &write {
            if w.attach_pos.is_none() && def.has_reduce() {
                parts.push(self.cache_write_init(w));
            }
        }
        parts.push(body);
        if let Some(w) = &write {
            if w.attach_pos.is_none() {
                parts.push(self.cache_write_back(w));
            }
        }
        body = Stmt::seq(parts);

        // Wrap WRAM allocations.
        for r in reads.iter().rev() {
            body = Stmt::Alloc {
                buf: Arc::clone(&r.wbuf),
                body: Box::new(body),
            };
        }
        if let Some(w) = &write {
            body = Stmt::Alloc {
                buf: Arc::clone(&w.wbuf),
                body: Box::new(body),
            };
        }

        let body = simplify_stmt(body);

        // Tasklet count and WRAM usage estimate.
        let tasklet_pos = self
            .kernel_loops
            .iter()
            .position(|l| l.binding == Binding::Tasklet);
        let tasklets: i64 = self
            .kernel_loops
            .iter()
            .filter(|l| l.binding == Binding::Tasklet)
            .map(|l| l.extent)
            .product::<i64>()
            .max(1);
        let multiplier = |attach_pos: Option<usize>| -> usize {
            match (attach_pos, tasklet_pos) {
                (Some(p), Some(tp)) if p >= tp => tasklets as usize,
                _ => 1,
            }
        };
        let mut wram_bytes = 0usize;
        for r in &reads {
            wram_bytes += r.wbuf.bytes() * multiplier(r.attach_pos);
        }
        if let Some(w) = &write {
            wram_bytes += w.wbuf.bytes() * multiplier(w.attach_pos);
        }

        Ok(KernelProgram {
            body,
            tasklets,
            wram_bytes,
        })
    }

    fn build_kernel_loops(
        &self,
        pos: usize,
        compute: &Stmt,
        reads: &[CacheReadInfo],
        write: &Option<CacheWriteInfo>,
    ) -> Stmt {
        if pos == self.kernel_loops.len() {
            return compute.clone();
        }
        let inner = self.build_kernel_loops(pos + 1, compute, reads, write);
        let mut parts = Vec::new();
        for r in reads {
            if r.attach_pos == Some(pos) {
                parts.push(self.cache_read_copy(r));
            }
        }
        if let Some(w) = write {
            if w.attach_pos == Some(pos) && self.sch.def().has_reduce() {
                parts.push(self.cache_write_init(w));
            }
        }
        parts.push(inner);
        if let Some(w) = write {
            if w.attach_pos == Some(pos) {
                parts.push(self.cache_write_back(w));
            }
        }
        let body = Stmt::seq(parts);
        let l = &self.kernel_loops[pos];
        let kind = match l.binding {
            Binding::Tasklet => ForKind::Tasklet,
            Binding::Unroll => ForKind::Unrolled,
            _ => ForKind::Serial,
        };
        Stmt::for_kind(self.kernel_vars[pos].clone(), l.extent, kind, body)
    }

    /// The innermost compute statement, guarded by boundary checks on every
    /// misaligned axis.
    fn compute_stmt(&self, reads: &[CacheReadInfo], write: &Option<CacheWriteInfo>) -> Stmt {
        let def = self.sch.def();
        let term = def.term.to_expr(&|input| {
            if let Some(r) = reads.iter().find(|r| r.input == input) {
                // WRAM load at inner offsets.
                let decl = &def.inputs[input];
                let strides = row_major_strides(&r.foot_shape);
                let mut idx = Expr::Int(0);
                for (d, &a) in decl.axes.iter().enumerate() {
                    idx = idx.add(self.inner_off(a, r.attach_pos).mul(Expr::Int(strides[d])));
                }
                Expr::load(&r.wbuf, simplify_expr(&idx))
            } else {
                // Direct MRAM-tile load at local offsets.
                let decl = &def.inputs[input];
                let tile = &self.mram_inputs[input];
                let strides = row_major_strides(&tile.tile_shape);
                let mut idx = Expr::Int(0);
                for (d, &a) in decl.axes.iter().enumerate() {
                    idx = idx.add(self.local_off(a).mul(Expr::Int(strides[d])));
                }
                Expr::load(&tile.buf, simplify_expr(&idx))
            }
        });

        let (target, target_idx) = match write {
            Some(w) => {
                let strides = row_major_strides(&w.foot_shape);
                let mut idx = Expr::Int(0);
                for (d, &a) in def.output.axes.iter().enumerate() {
                    idx = idx.add(self.inner_off(a, w.attach_pos).mul(Expr::Int(strides[d])));
                }
                (Arc::clone(&w.wbuf), simplify_expr(&idx))
            }
            None => {
                let strides = row_major_strides(&self.mram_output.tile_shape);
                let mut idx = Expr::Int(0);
                for (d, &a) in def.output.axes.iter().enumerate() {
                    idx = idx.add(self.local_off(a).mul(Expr::Int(strides[d])));
                }
                (Arc::clone(&self.mram_output.buf), simplify_expr(&idx))
            }
        };

        let value = if def.has_reduce() {
            Expr::load(&target, target_idx.clone()).add(term)
        } else {
            term
        };
        let stmt = Stmt::store(&target, target_idx, value);

        // Boundary guards over every misaligned axis.
        let mut guards = Vec::new();
        for (a, ax) in def.axes.iter().enumerate() {
            if self.misaligned(a) {
                let recon = self.dpu_offset(a).add(self.local_off(a));
                guards.push(simplify_expr(&recon).lt(Expr::Int(ax.extent)));
            }
            // Ownership (injectivity) guards for reduction axes: when a
            // misaligned split makes the loops nested inside some level span
            // further than that level's stride, the overrun elements would be
            // accumulated twice (once by the overrunning chunk and once by
            // the next chunk's owner).  Guard each level so every element is
            // claimed exactly once.  Spatial overlaps are idempotent
            // recomputation and need no such guard.
            if ax.kind == AxisKind::Reduce {
                // Every loop of this axis: (stride, extent, index expression).
                let mut levels: Vec<(i64, i64, Expr)> = Vec::new();
                for (l, v) in self.grid_loops.iter().zip(&self.grid_vars) {
                    if l.axis == a {
                        levels.push((l.stride, l.extent, Expr::var(v)));
                    }
                }
                for (l, v) in self.kernel_loops.iter().zip(&self.kernel_vars) {
                    if l.axis == a {
                        levels.push((l.stride, l.extent, Expr::var(v)));
                    }
                }
                levels.sort_by_key(|(stride, _, _)| std::cmp::Reverse(*stride));
                for (i, (stride, _, _)) in levels.iter().enumerate() {
                    let suffix: Vec<&(i64, i64, Expr)> = levels[i + 1..]
                        .iter()
                        .filter(|(s, _, _)| s < stride)
                        .collect();
                    if suffix.is_empty() {
                        continue;
                    }
                    let span: i64 = suffix.iter().map(|(s, e, _)| (e - 1) * s).sum::<i64>() + 1;
                    if span > *stride {
                        let mut off = Expr::Int(0);
                        for (s, _, v) in &suffix {
                            off = off.add(v.clone().mul(Expr::Int(*s)));
                        }
                        guards.push(simplify_expr(&off).lt(Expr::Int(*stride)));
                    }
                }
            }
        }
        wrap_guards(guards, stmt)
    }

    /// Element-wise MRAM→WRAM copy loops for a cache-read tile (the loops the
    /// DMA-aware boundary-check elimination pass later vectorizes).
    fn cache_read_copy(&self, r: &CacheReadInfo) -> Stmt {
        let def = self.sch.def();
        let decl = &def.inputs[r.input];
        let tile = &self.mram_inputs[r.input];
        let wstrides = row_major_strides(&r.foot_shape);
        let mstrides = row_major_strides(&tile.tile_shape);

        let copy_vars: Vec<Var> = (0..r.foot_shape.len().max(1))
            .map(|d| Var::new(format!("{}_c{}", decl.name.to_lowercase(), d)))
            .collect();

        let mut widx = Expr::Int(0);
        let mut midx = Expr::Int(0);
        let mut guards = Vec::new();
        for (d, &a) in decl.axes.iter().enumerate() {
            let rv = Expr::var(&copy_vars[d]);
            widx = widx.add(rv.clone().mul(Expr::Int(wstrides[d])));
            let outer = self.outer_off(a, r.attach_pos);
            midx = midx.add(outer.clone().add(rv.clone()).mul(Expr::Int(mstrides[d])));
            if self.misaligned(a) {
                let recon = self.dpu_offset(a).add(outer).add(rv);
                guards.push(simplify_expr(&recon).lt(Expr::Int(self.axis_extent(a))));
            }
        }
        let body = Stmt::store(
            &r.wbuf,
            simplify_expr(&widx),
            Expr::load(&tile.buf, simplify_expr(&midx)),
        );
        let body = wrap_guards(guards, body);
        wrap_copy_loops(&copy_vars, &r.foot_shape, body)
    }

    fn cache_write_init(&self, w: &CacheWriteInfo) -> Stmt {
        let copy_vars: Vec<Var> = (0..w.foot_shape.len().max(1))
            .map(|d| Var::new(format!("cw_init{d}")))
            .collect();
        let strides = row_major_strides(&w.foot_shape);
        let mut idx = Expr::Int(0);
        for (d, v) in copy_vars.iter().enumerate() {
            if d < strides.len() {
                idx = idx.add(Expr::var(v).mul(Expr::Int(strides[d])));
            }
        }
        let body = Stmt::store(&w.wbuf, simplify_expr(&idx), Expr::Float(0.0));
        wrap_copy_loops(&copy_vars, &w.foot_shape, body)
    }

    /// WRAM→MRAM write-back loops for the cached output.
    fn cache_write_back(&self, w: &CacheWriteInfo) -> Stmt {
        let def = self.sch.def();
        let decl = &def.output;
        let wstrides = row_major_strides(&w.foot_shape);
        let mstrides = row_major_strides(&self.mram_output.tile_shape);
        let copy_vars: Vec<Var> = (0..w.foot_shape.len().max(1))
            .map(|d| Var::new(format!("cw_wb{d}")))
            .collect();
        let mut widx = Expr::Int(0);
        let mut midx = Expr::Int(0);
        let mut guards = Vec::new();
        for (d, &a) in decl.axes.iter().enumerate() {
            let rv = Expr::var(&copy_vars[d]);
            widx = widx.add(rv.clone().mul(Expr::Int(wstrides[d])));
            let outer = self.outer_off(a, w.attach_pos);
            midx = midx.add(outer.clone().add(rv.clone()).mul(Expr::Int(mstrides[d])));
            if self.misaligned(a) {
                let recon = self.dpu_offset(a).add(outer).add(rv);
                guards.push(simplify_expr(&recon).lt(Expr::Int(self.axis_extent(a))));
            }
        }
        let body = Stmt::store(
            &self.mram_output.buf,
            simplify_expr(&midx),
            Expr::load(&w.wbuf, simplify_expr(&widx)),
        );
        let body = wrap_guards(guards, body);
        wrap_copy_loops(&copy_vars, &w.foot_shape, body)
    }

    // --- Host transfer programs -----------------------------------------------

    /// Builds the host-to-DPU transfer programs: `(setup, per_launch)`.
    /// Constant tensors (weights) go into the setup program, which the
    /// runtime executes once before kernel launches (§5.4); everything else
    /// is transferred on every launch.
    fn build_h2d(&self) -> Result<(Stmt, Stmt)> {
        let def = self.sch.def();
        let mut setup = Vec::new();
        let mut per_launch = Vec::new();
        for (t, decl) in def.inputs.iter().enumerate() {
            let tile = &self.mram_inputs[t];
            let stmt = self.transfer_for_tensor(
                TransferDir::H2D,
                &self.global_inputs[t],
                &def.tensor_shape(decl),
                &decl.axes,
                &tile.buf,
                &tile.tile_shape,
                None,
            );
            if decl.constant {
                setup.push(stmt);
            } else {
                per_launch.push(stmt);
            }
        }
        Ok((
            simplify_stmt(Stmt::seq(setup)),
            simplify_stmt(Stmt::seq(per_launch)),
        ))
    }

    fn build_d2h(&self, grid: &GridSpec, partial: Option<&Arc<Buffer>>) -> Result<Stmt> {
        let def = self.sch.def();
        let decl = &def.output;
        let stmt = match partial {
            None => self.transfer_for_tensor(
                TransferDir::D2H,
                &self.global_output,
                &def.tensor_shape(decl),
                &decl.axes,
                &self.mram_output.buf,
                &self.mram_output.tile_shape,
                None,
            ),
            Some(p) => {
                // Destination is P[r, spatial...]: offset the global index by
                // r_index * output_len.
                let out_len = def.output_len() as i64;
                let mut r_index = Expr::Int(0);
                for (dim, var) in grid.dims.iter().zip(&self.grid_vars) {
                    if dim.reduce {
                        r_index = r_index.mul(Expr::Int(dim.extent)).add(Expr::var(var));
                    }
                }
                let base = simplify_expr(&r_index.mul(Expr::Int(out_len)));
                self.transfer_for_tensor(
                    TransferDir::D2H,
                    p,
                    &def.tensor_shape(decl),
                    &decl.axes,
                    &self.mram_output.buf,
                    &self.mram_output.tile_shape,
                    Some(base),
                )
            }
        };
        Ok(simplify_stmt(stmt))
    }

    /// Generates the transfer loop nest for one tensor: loops over the DPU
    /// grid, then over the tile rows, with a transfer intrinsic for the
    /// innermost contiguous run (bulk) or per element.
    #[allow(clippy::too_many_arguments)]
    fn transfer_for_tensor(
        &self,
        dir: TransferDir,
        global: &Arc<Buffer>,
        global_shape: &[i64],
        axes: &[usize],
        mram: &Arc<Buffer>,
        tile_shape: &[i64],
        global_base: Option<Expr>,
    ) -> Stmt {
        let gstrides = row_major_strides(global_shape);
        let mstrides = row_major_strides(tile_shape);
        let parallel = self.sch.parallel_transfer();
        let bulk = self.sch.bulk_transfer();
        let ndim = axes.len();

        // Row loops over all dims except the last.
        let row_vars: Vec<Var> = (0..ndim.saturating_sub(1))
            .map(|d| Var::new(format!("{}_r{}", global.name.to_lowercase(), d)))
            .collect();

        let mut global_off = global_base.unwrap_or(Expr::Int(0));
        let mut mram_off = Expr::Int(0);
        let mut guards = Vec::new();
        for d in 0..ndim.saturating_sub(1) {
            let a = axes[d];
            let rv = Expr::var(&row_vars[d]);
            let origin = self.dpu_offset(a);
            global_off = global_off.add(origin.clone().add(rv.clone()).mul(Expr::Int(gstrides[d])));
            mram_off = mram_off.add(rv.clone().mul(Expr::Int(mstrides[d])));
            if self.misaligned(a) {
                guards.push(simplify_expr(&origin.add(rv)).lt(Expr::Int(self.axis_extent(a))));
            }
        }

        let inner: Stmt = if ndim == 0 {
            // Scalar tensor: a single one-element transfer.
            Stmt::HostTransfer {
                dir,
                dpu: self.dpu_linear(),
                global: Arc::clone(global),
                global_off: simplify_expr(&global_off),
                mram: Arc::clone(mram),
                mram_off: Expr::Int(0),
                elems: Expr::Int(1),
                parallel,
            }
        } else {
            let last = ndim - 1;
            let a = axes[last];
            let origin = self.dpu_offset(a);
            let chunk = tile_shape[last];
            let g_last = global_off
                .clone()
                .add(origin.clone().mul(Expr::Int(gstrides[last])));
            if bulk {
                let elems = if self.misaligned(a) {
                    Expr::Int(0)
                        .max(Expr::Int(chunk).min(Expr::Int(self.axis_extent(a)).sub(origin)))
                } else {
                    Expr::Int(chunk)
                };
                Stmt::HostTransfer {
                    dir,
                    dpu: self.dpu_linear(),
                    global: Arc::clone(global),
                    global_off: simplify_expr(&g_last),
                    mram: Arc::clone(mram),
                    mram_off: simplify_expr(&mram_off),
                    elems: simplify_expr(&elems),
                    parallel,
                }
            } else {
                // Element-wise transfers (Fig. 7(b)): one intrinsic per element.
                let ev = Var::new(format!("{}_e", global.name.to_lowercase()));
                let e_expr = Expr::var(&ev);
                let g_off = g_last.add(e_expr.clone().mul(Expr::Int(gstrides[last])));
                let m_off = mram_off
                    .clone()
                    .add(e_expr.clone().mul(Expr::Int(mstrides[last])));
                let xfer = Stmt::HostTransfer {
                    dir,
                    dpu: self.dpu_linear(),
                    global: Arc::clone(global),
                    global_off: simplify_expr(&g_off),
                    mram: Arc::clone(mram),
                    mram_off: simplify_expr(&m_off),
                    elems: Expr::Int(1),
                    parallel,
                };
                let body = if self.misaligned(a) {
                    Stmt::if_then(
                        simplify_expr(&origin.add(e_expr)).lt(Expr::Int(self.axis_extent(a))),
                        xfer,
                    )
                } else {
                    xfer
                };
                Stmt::for_serial(ev, chunk, body)
            }
        };

        let inner = wrap_guards(guards, inner);

        // Row loops.
        let mut body = inner;
        for d in (0..ndim.saturating_sub(1)).rev() {
            body = Stmt::for_serial(row_vars[d].clone(), tile_shape[d], body);
        }
        // Grid loops (outermost).
        for (l, v) in self.grid_loops.iter().zip(&self.grid_vars).rev() {
            body = Stmt::for_serial(v.clone(), l.extent, body);
        }
        body
    }

    // --- Host final reduction --------------------------------------------------

    fn build_host_reduce(&self, grid: &GridSpec, partial: &Arc<Buffer>) -> Stmt {
        let def = self.sch.def();
        let out_len = def.output_len() as i64;
        let r_total = grid.reduce_dpus();
        let threads = self.sch.host_threads().max(1) as i64;

        let rvar = Var::new("r");
        let accumulate = |idx: Expr| -> Stmt {
            let c_load = Expr::load(&self.global_output, idx.clone());
            let p_load = Expr::load(
                partial,
                Expr::var(&rvar).mul(Expr::Int(out_len)).add(idx.clone()),
            );
            Stmt::for_serial(
                rvar.clone(),
                r_total,
                Stmt::store(&self.global_output, idx, c_load.add(p_load)),
            )
        };

        let stmt = if threads <= 1 {
            let o = Var::new("o");
            Stmt::for_serial(o.clone(), out_len, accumulate(Expr::var(&o)))
        } else {
            let chunk = div_ceil(out_len, threads);
            let t = Var::new("t");
            let o = Var::new("o");
            let idx = Expr::var(&t).mul(Expr::Int(chunk)).add(Expr::var(&o));
            let mut body = accumulate(idx.clone());
            if chunk * threads > out_len {
                body = Stmt::if_then(idx.lt(Expr::Int(out_len)), body);
            }
            Stmt::for_kind(
                t,
                threads,
                ForKind::HostParallel,
                Stmt::for_serial(o, chunk, body),
            )
        };
        simplify_stmt(stmt)
    }
}

/// Wraps a statement in a conjunction of guards (no-op for an empty list).
fn wrap_guards(guards: Vec<Expr>, stmt: Stmt) -> Stmt {
    if guards.is_empty() {
        return stmt;
    }
    let cond = crate::affine::rebuild_conjunction(guards);
    Stmt::if_then(cond, stmt)
}

/// Wraps a body in copy loops (outermost dim first).
fn wrap_copy_loops(vars: &[Var], shape: &[i64], body: Stmt) -> Stmt {
    if shape.is_empty() {
        // Scalar footprint: bind the single helper var to 0.
        return body.substitute(&vars[0], &Expr::Int(0));
    }
    let mut out = body;
    for d in (0..shape.len()).rev() {
        out = Stmt::for_serial(vars[d].clone(), shape[d], out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::ComputeDef;
    use crate::schedule::{Attach, Binding, Schedule};
    use crate::stmt::StmtCounts;

    fn count(stmt: &Stmt) -> StmtCounts {
        stmt.count_nodes()
    }

    #[test]
    fn lower_va_aligned_has_no_boundary_checks() {
        let mut sch = Schedule::new(ComputeDef::va("va", 64));
        let i = sch.loop_refs()[0];
        let (i_dpu, i_in) = sch.split(i, 16).unwrap();
        sch.bind(i_dpu, Binding::DpuX).unwrap();
        let (i_t, _i_c) = sch.split(i_in, 4).unwrap();
        sch.bind(i_t, Binding::Tasklet).unwrap();
        let lowered = sch.lower().unwrap();
        assert_eq!(lowered.grid.num_dpus(), 4);
        assert_eq!(lowered.kernel.tasklets, 4);
        assert_eq!(count(&lowered.kernel.body).branches, 0);
        assert!(lowered.host_reduce.is_none());
        assert!(lowered.partial_output.is_none());
    }

    #[test]
    fn lower_va_misaligned_has_boundary_checks() {
        let mut sch = Schedule::new(ComputeDef::va("va", 100));
        let i = sch.loop_refs()[0];
        let (i_dpu, _) = sch.split(i, 16).unwrap();
        sch.bind(i_dpu, Binding::DpuX).unwrap();
        let lowered = sch.lower().unwrap();
        assert_eq!(lowered.grid.num_dpus(), 7);
        assert!(count(&lowered.kernel.body).branches >= 1);
    }

    #[test]
    fn lower_mtv_with_rfactor_produces_partial_and_host_reduce() {
        let mut sch = Schedule::new(ComputeDef::mtv("mtv", 64, 128));
        let i = sch.loops_of_axis(0)[0];
        let k = sch.loops_of_axis(1)[0];
        let (i_dpu, i_in) = sch.split(i, 16).unwrap();
        let (k_dpu, k_in) = sch.split(k, 32).unwrap();
        sch.rfactor(k_dpu).unwrap();
        sch.bind(i_dpu, Binding::DpuX).unwrap();
        sch.bind(k_dpu, Binding::DpuY).unwrap();
        sch.reorder(&[i_dpu, k_dpu, i_in, k_in]).unwrap();
        sch.cache_read(1, Attach::At(i_in)).unwrap();
        sch.cache_write(Attach::At(i_in)).unwrap();
        sch.parallel_host(4);
        let lowered = sch.lower().unwrap();
        assert_eq!(lowered.grid.num_dpus(), 4 * 4);
        assert_eq!(lowered.grid.reduce_dpus(), 4);
        assert!(lowered.partial_output.is_some());
        assert!(lowered.host_reduce.is_some());
        let p = lowered.partial_output.as_ref().unwrap();
        assert_eq!(p.shape, vec![4, 64]);
        // MRAM tiles: A tile is 16x32, B tile is 32, C tile is 16.
        assert_eq!(lowered.mram_inputs[0].tile_shape, vec![16, 32]);
        assert_eq!(lowered.mram_inputs[1].tile_shape, vec![32]);
        assert_eq!(lowered.mram_output.tile_shape, vec![16]);
        assert!(lowered.kernel.wram_bytes > 0);
        assert!(lowered.mram_bytes_per_dpu() > 0);
    }

    #[test]
    fn dpu_loop_after_kernel_loop_rejected() {
        let mut sch = Schedule::new(ComputeDef::mtv("mtv", 64, 128));
        let i = sch.loops_of_axis(0)[0];
        let k = sch.loops_of_axis(1)[0];
        // Put the DPU-bound loop after the serial k loop.
        sch.bind(i, Binding::DpuX).unwrap();
        sch.reorder(&[k, i]).unwrap();
        assert!(sch.lower().is_err());
    }

    #[test]
    fn cache_write_outside_reduce_loops_rejected() {
        let mut sch = Schedule::new(ComputeDef::mtv("mtv", 8, 8));
        let i = sch.loops_of_axis(0)[0];
        let k = sch.loops_of_axis(1)[0];
        // Order: k (reduce) outermost, then i; attaching the cache write at i
        // leaves the reduce loop outside the attach point.
        sch.reorder(&[k, i]).unwrap();
        sch.cache_write(Attach::At(i)).unwrap();
        assert!(sch.lower().is_err());
    }

    #[test]
    fn interleaved_dpu_binding_is_rejected() {
        // Binding the *inner* loop of a split to the DPU grid gives each DPU
        // a strided element set, leaving holes inside its contiguous MRAM
        // window; the lowering rejects this (standard sketches never produce
        // it).
        let def = ComputeDef::va("va", 64);
        let mut sch = Schedule::new(def);
        let i = sch.loop_refs()[0];
        let (outer, inner) = sch.split(i, 16).unwrap();
        sch.bind(inner, Binding::DpuX).unwrap();
        sch.reorder(&[inner, outer]).unwrap();
        let err = sch.lower().unwrap_err();
        assert!(err.to_string().contains("holes"), "{err}");
    }

    #[test]
    fn misaligned_reduce_distribution_is_not_double_counted() {
        // A reduction axis of 90 split across 2 DPUs (45 each) with a further
        // tasklet split of 12 makes the per-DPU span 48 > 45; the ownership
        // guard must prevent elements 45..47 from being accumulated twice.
        let def = ComputeDef::red("red", 90);
        let mut sch = Schedule::new(def.clone());
        let k = sch.loops_of_axis(0)[0];
        let (k_dpu, k_in) = sch.split(k, 45).unwrap();
        sch.rfactor(k_dpu).unwrap();
        sch.bind(k_dpu, Binding::DpuX).unwrap();
        let (k_t, _) = sch.split(k_in, 12).unwrap();
        sch.bind(k_t, Binding::Tasklet).unwrap();
        let lowered = sch.lower().unwrap();
        let inputs = vec![(0..90).map(|x| x as f32).collect::<Vec<_>>()];
        let got = crate::schedule::execute_functional(&lowered, &inputs).unwrap();
        let expect = def.reference(&inputs);
        assert!(
            (got[0] - expect[0]).abs() < 1e-2,
            "{} vs {}",
            got[0],
            expect[0]
        );
    }

    #[test]
    fn h2d_contains_transfers_for_each_input() {
        let mut sch = Schedule::new(ComputeDef::mtv("mtv", 16, 16));
        let i = sch.loops_of_axis(0)[0];
        let (i_dpu, _) = sch.split(i, 4).unwrap();
        sch.bind(i_dpu, Binding::DpuX).unwrap();
        let lowered = sch.lower().unwrap();
        // The constant matrix A is transferred by the setup program, the
        // vector B by the per-launch program.
        assert!(
            count(&lowered.h2d_setup).host_transfers >= 1,
            "A goes to setup"
        );
        assert!(count(&lowered.h2d).host_transfers >= 1, "B per launch");
        let d2h_counts = count(&lowered.d2h);
        assert_eq!(d2h_counts.host_transfers, 1);
    }

    #[test]
    fn element_wise_transfers_when_bulk_disabled() {
        let mut sch = Schedule::new(ComputeDef::va("va", 32));
        let i = sch.loop_refs()[0];
        let (i_dpu, _) = sch.split(i, 8).unwrap();
        sch.bind(i_dpu, Binding::DpuX).unwrap();
        sch.set_bulk_transfer(false);
        let lowered = sch.lower().unwrap();
        // With element-wise transfers there is an extra loop per tensor.
        let bulk_sch = {
            let mut s = Schedule::new(ComputeDef::va("va", 32));
            let i = s.loop_refs()[0];
            let (d, _) = s.split(i, 8).unwrap();
            s.bind(d, Binding::DpuX).unwrap();
            s.lower().unwrap()
        };
        assert!(count(&lowered.h2d).loops > count(&bulk_sch.h2d).loops);
    }
}
