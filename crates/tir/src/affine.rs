//! Affine (linear) expression analysis.
//!
//! The PIM-aware passes of the paper (§5.3) rely on the fact that boundary
//! checks produced by the TIR lowering are *linear inequalities* over loop
//! variables with statically known extents.  This module recovers the linear
//! form `c0 + Σ ci·vi` of an expression so passes can:
//!
//! * solve `linear < bound` for the innermost loop variable
//!   (loop-bound tightening, §5.3.2),
//! * decide whether a condition is invariant with respect to a loop variable
//!   (invariant branch hoisting, §5.3.3),
//! * prove that consecutive loop iterations access contiguous memory
//!   (DMA-aware boundary-check elimination, §5.3.1 and bulk transfers).

use std::collections::HashMap;

use crate::buffer::Var;
use crate::expr::{BinOp, CmpOp, Expr};

/// A linear expression `constant + Σ coeff(var) · var`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinearExpr {
    /// Constant term.
    pub constant: i64,
    /// Per-variable coefficients (vars with coefficient 0 are omitted).
    pub coeffs: HashMap<Var, i64>,
}

impl LinearExpr {
    /// The constant linear expression.
    pub fn constant(c: i64) -> Self {
        LinearExpr {
            constant: c,
            coeffs: HashMap::new(),
        }
    }

    /// A single variable with coefficient 1.
    pub fn var(v: &Var) -> Self {
        let mut coeffs = HashMap::new();
        coeffs.insert(v.clone(), 1);
        LinearExpr {
            constant: 0,
            coeffs,
        }
    }

    /// Coefficient of `v` (0 if absent).
    pub fn coeff(&self, v: &Var) -> i64 {
        self.coeffs.get(v).copied().unwrap_or(0)
    }

    /// Whether the expression mentions `v` with a non-zero coefficient.
    pub fn uses(&self, v: &Var) -> bool {
        self.coeff(v) != 0
    }

    /// Whether the expression is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.coeffs.values().all(|&c| c == 0)
    }

    fn add(mut self, other: &LinearExpr) -> Self {
        self.constant += other.constant;
        for (v, c) in &other.coeffs {
            *self.coeffs.entry(v.clone()).or_insert(0) += c;
        }
        self.prune();
        self
    }

    fn scale(mut self, k: i64) -> Self {
        self.constant *= k;
        for c in self.coeffs.values_mut() {
            *c *= k;
        }
        self.prune();
        self
    }

    fn prune(&mut self) {
        self.coeffs.retain(|_, c| *c != 0);
    }

    /// Rebuilds a TIR expression from the linear form (for round-tripping in
    /// rewrites).  Terms are emitted in an arbitrary but deterministic order
    /// (sorted by variable id).
    pub fn to_expr(&self) -> Expr {
        let mut terms: Vec<(&Var, &i64)> = self.coeffs.iter().collect();
        terms.sort_by_key(|(v, _)| v.id);
        let mut expr: Option<Expr> = if self.constant != 0 || terms.is_empty() {
            Some(Expr::Int(self.constant))
        } else {
            None
        };
        for (v, c) in terms {
            let term = if *c == 1 {
                Expr::var(v)
            } else {
                Expr::var(v).mul(Expr::Int(*c))
            };
            expr = Some(match expr {
                Some(e) => e.add(term),
                None => term,
            });
        }
        expr.unwrap_or(Expr::Int(0))
    }
}

/// Attempts to recover the linear form of an integer expression.
///
/// Returns `None` if the expression contains loads, floats, non-affine
/// operations (division, modulo, min/max), or products of two non-constant
/// sub-expressions.
pub fn as_linear(expr: &Expr) -> Option<LinearExpr> {
    match expr {
        Expr::Int(v) => Some(LinearExpr::constant(*v)),
        Expr::Var(v) => Some(LinearExpr::var(v)),
        Expr::Binary(BinOp::Add, a, b) => Some(as_linear(a)?.add(&as_linear(b)?)),
        Expr::Binary(BinOp::Sub, a, b) => Some(as_linear(a)?.add(&as_linear(b)?.scale(-1))),
        Expr::Binary(BinOp::Mul, a, b) => {
            let la = as_linear(a)?;
            let lb = as_linear(b)?;
            if la.is_constant() {
                Some(lb.scale(la.constant))
            } else if lb.is_constant() {
                Some(la.scale(lb.constant))
            } else {
                None
            }
        }
        Expr::Cast(dt, a) if dt.is_int() => as_linear(a),
        _ => None,
    }
}

/// A boundary condition in the canonical form `linear < bound` (strict less
/// than, with `bound` folded into the linear constant as `linear - bound < 0`
/// being avoided for readability: we keep `lhs < rhs_const`).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundCond {
    /// Left-hand side in linear form.
    pub lhs: LinearExpr,
    /// Right-hand constant bound.
    pub bound: i64,
}

impl BoundCond {
    /// Whether the condition does not involve `v` (is invariant to it).
    pub fn invariant_to(&self, v: &Var) -> bool {
        !self.lhs.uses(v)
    }
}

/// Recognizes conditions of the form `affine < constant` or
/// `affine <= constant` (normalized to strict `<`).
pub fn as_upper_bound(cond: &Expr) -> Option<BoundCond> {
    match cond {
        Expr::Cmp(CmpOp::Lt, a, b) => {
            let lhs = as_linear(a)?;
            let rhs = as_linear(b)?;
            combine(lhs, rhs, 0)
        }
        Expr::Cmp(CmpOp::Le, a, b) => {
            let lhs = as_linear(a)?;
            let rhs = as_linear(b)?;
            combine(lhs, rhs, 1)
        }
        Expr::Cmp(CmpOp::Gt, a, b) => {
            // a > b  <=>  b < a
            let lhs = as_linear(b)?;
            let rhs = as_linear(a)?;
            combine(lhs, rhs, 0)
        }
        Expr::Cmp(CmpOp::Ge, a, b) => {
            let lhs = as_linear(b)?;
            let rhs = as_linear(a)?;
            combine(lhs, rhs, 1)
        }
        _ => None,
    }
}

/// `lhs < rhs + slack` where the *variable parts* of rhs are moved to the lhs.
fn combine(lhs: LinearExpr, rhs: LinearExpr, slack: i64) -> Option<BoundCond> {
    let mut l = lhs.add(&rhs.clone().scale(-1));
    let bound = -l.constant + slack;
    l.constant = 0;
    // Reconstruct: lhs_vars < bound  where bound absorbs all constants.
    Some(BoundCond { lhs: l, bound })
}

/// Splits a conjunction `a && b && c` into its conjuncts.
pub fn split_conjunction(cond: &Expr) -> Vec<Expr> {
    match cond {
        Expr::And(a, b) => {
            let mut out = split_conjunction(a);
            out.extend(split_conjunction(b));
            out
        }
        other => vec![other.clone()],
    }
}

/// Rebuilds a conjunction from conjuncts (empty input becomes `true`).
pub fn rebuild_conjunction(conds: Vec<Expr>) -> Expr {
    let mut it = conds.into_iter();
    match it.next() {
        None => Expr::Int(1),
        Some(first) => it.fold(first, |acc, c| acc.and(c)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_recovery() {
        let i = Var::new("i");
        let j = Var::new("j");
        // 16*i + j + 3
        let e = Expr::var(&i)
            .mul(Expr::int(16))
            .add(Expr::var(&j))
            .add(Expr::int(3));
        let l = as_linear(&e).unwrap();
        assert_eq!(l.constant, 3);
        assert_eq!(l.coeff(&i), 16);
        assert_eq!(l.coeff(&j), 1);
        assert!(!l.is_constant());
    }

    #[test]
    fn non_linear_rejected() {
        let i = Var::new("i");
        let j = Var::new("j");
        let e = Expr::var(&i).mul(Expr::var(&j));
        assert!(as_linear(&e).is_none());
        let e = Expr::var(&i).floordiv(Expr::int(2));
        assert!(as_linear(&e).is_none());
    }

    #[test]
    fn upper_bound_normalization() {
        let k = Var::new("k");
        let j = Var::new("j");
        // j*16 + k < 40
        let cond = Expr::var(&j)
            .mul(Expr::int(16))
            .add(Expr::var(&k))
            .lt(Expr::int(40));
        let b = as_upper_bound(&cond).unwrap();
        assert_eq!(b.bound, 40);
        assert_eq!(b.lhs.coeff(&k), 1);
        assert_eq!(b.lhs.coeff(&j), 16);
        assert!(!b.invariant_to(&k));

        // i <= 7  =>  i < 8
        let i = Var::new("i");
        let cond = Expr::var(&i).le(Expr::int(7));
        let b = as_upper_bound(&cond).unwrap();
        assert_eq!(b.bound, 8);
    }

    #[test]
    fn upper_bound_with_vars_on_rhs() {
        let i = Var::new("i");
        let n = Var::new("n");
        // i < n  =>  i - n < 0
        let cond = Expr::var(&i).lt(Expr::var(&n));
        let b = as_upper_bound(&cond).unwrap();
        assert_eq!(b.bound, 0);
        assert_eq!(b.lhs.coeff(&i), 1);
        assert_eq!(b.lhs.coeff(&n), -1);
    }

    #[test]
    fn conjunction_roundtrip() {
        let i = Var::new("i");
        let j = Var::new("j");
        let c1 = Expr::var(&i).lt(Expr::int(4));
        let c2 = Expr::var(&j).lt(Expr::int(8));
        let conj = c1.clone().and(c2.clone());
        let parts = split_conjunction(&conj);
        assert_eq!(parts, vec![c1, c2]);
        let back = rebuild_conjunction(parts);
        assert_eq!(back, conj);
        assert_eq!(rebuild_conjunction(vec![]), Expr::Int(1));
    }

    #[test]
    fn to_expr_roundtrip() {
        let i = Var::new("i");
        let j = Var::new("j");
        let e = Expr::var(&i)
            .mul(Expr::int(4))
            .add(Expr::var(&j))
            .add(Expr::int(2));
        let l = as_linear(&e).unwrap();
        let back = l.to_expr();
        let l2 = as_linear(&back).unwrap();
        assert_eq!(l, l2);
    }
}
