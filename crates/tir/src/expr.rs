//! TIR expressions.

use std::sync::Arc;

use crate::buffer::{Buffer, Var};
use crate::dtype::DType;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Floor division (Euclidean, toward negative infinity for integers).
    FloorDiv,
    /// Floor modulo.
    FloorMod,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// A TIR expression.
///
/// Buffer loads use flattened row-major indices; the schedule lowering is
/// responsible for computing the flattening.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer immediate.
    Int(i64),
    /// Float immediate.
    Float(f32),
    /// Scalar variable reference.
    Var(Var),
    /// Binary arithmetic.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Comparison producing a boolean.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical and.
    And(Box<Expr>, Box<Expr>),
    /// Logical or.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Ternary select: `cond ? a : b`.
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Buffer load at a flattened index.
    Load {
        /// The buffer being read.
        buf: Arc<Buffer>,
        /// Flattened row-major element offset.
        index: Box<Expr>,
    },
    /// Type cast.
    Cast(DType, Box<Expr>),
}

impl Expr {
    /// Integer constant helper.
    pub fn int(v: i64) -> Expr {
        Expr::Int(v)
    }

    /// Float constant helper.
    pub fn float(v: f32) -> Expr {
        Expr::Float(v)
    }

    /// Variable reference helper.
    pub fn var(v: &Var) -> Expr {
        Expr::Var(v.clone())
    }

    /// Buffer load helper.
    pub fn load(buf: &Arc<Buffer>, index: Expr) -> Expr {
        Expr::Load {
            buf: Arc::clone(buf),
            index: Box::new(index),
        }
    }

    /// `self + rhs`
    #[allow(clippy::should_implement_trait)] // deliberate TVM-style builder API
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// `self / rhs` (floor division)
    pub fn floordiv(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::FloorDiv, Box::new(self), Box::new(rhs))
    }

    /// `self % rhs` (floor modulo)
    pub fn floormod(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::FloorMod, Box::new(self), Box::new(rhs))
    }

    /// `min(self, rhs)`
    pub fn min(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Min, Box::new(self), Box::new(rhs))
    }

    /// `max(self, rhs)`
    pub fn max(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Max, Box::new(self), Box::new(rhs))
    }

    /// `self < rhs`
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(rhs))
    }

    /// `self <= rhs`
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(rhs))
    }

    /// `self > rhs`
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(rhs))
    }

    /// `self >= rhs`
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(rhs))
    }

    /// `self == rhs`
    pub fn eq_expr(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(rhs))
    }

    /// `self && rhs`
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    /// `self || rhs`
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    /// Returns the constant integer value if the expression is an [`Expr::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Expr::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Whether the expression is the boolean/integer constant `true`/`1`.
    pub fn is_const_true(&self) -> bool {
        matches!(self, Expr::Int(v) if *v != 0)
    }

    /// Collects all distinct variables referenced by the expression.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            Expr::Int(_) | Expr::Float(_) => {}
            Expr::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Expr::Binary(_, a, b) | Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Not(a) | Expr::Cast(_, a) => a.collect_vars(out),
            Expr::Select(c, a, b) => {
                c.collect_vars(out);
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Load { index, .. } => index.collect_vars(out),
        }
    }

    /// Whether the expression references the given variable.
    pub fn uses_var(&self, var: &Var) -> bool {
        match self {
            Expr::Int(_) | Expr::Float(_) => false,
            Expr::Var(v) => v == var,
            Expr::Binary(_, a, b) | Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.uses_var(var) || b.uses_var(var)
            }
            Expr::Not(a) | Expr::Cast(_, a) => a.uses_var(var),
            Expr::Select(c, a, b) => c.uses_var(var) || a.uses_var(var) || b.uses_var(var),
            Expr::Load { index, .. } => index.uses_var(var),
        }
    }

    /// Substitutes every occurrence of `var` with `value`.
    pub fn substitute(&self, var: &Var, value: &Expr) -> Expr {
        match self {
            Expr::Int(_) | Expr::Float(_) => self.clone(),
            Expr::Var(v) => {
                if v == var {
                    value.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Binary(op, a, b) => Expr::Binary(
                *op,
                Box::new(a.substitute(var, value)),
                Box::new(b.substitute(var, value)),
            ),
            Expr::Cmp(op, a, b) => Expr::Cmp(
                *op,
                Box::new(a.substitute(var, value)),
                Box::new(b.substitute(var, value)),
            ),
            Expr::And(a, b) => Expr::And(
                Box::new(a.substitute(var, value)),
                Box::new(b.substitute(var, value)),
            ),
            Expr::Or(a, b) => Expr::Or(
                Box::new(a.substitute(var, value)),
                Box::new(b.substitute(var, value)),
            ),
            Expr::Not(a) => Expr::Not(Box::new(a.substitute(var, value))),
            Expr::Select(c, a, b) => Expr::Select(
                Box::new(c.substitute(var, value)),
                Box::new(a.substitute(var, value)),
                Box::new(b.substitute(var, value)),
            ),
            Expr::Load { buf, index } => Expr::Load {
                buf: Arc::clone(buf),
                index: Box::new(index.substitute(var, value)),
            },
            Expr::Cast(dt, a) => Expr::Cast(*dt, Box::new(a.substitute(var, value))),
        }
    }

    /// Counts the number of scalar operations (ALU ops, loads, selects) in the
    /// expression.  Used by the cost model for static instruction estimates.
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => 0,
            Expr::Binary(_, a, b) | Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                1 + a.op_count() + b.op_count()
            }
            Expr::Not(a) | Expr::Cast(_, a) => 1 + a.op_count(),
            Expr::Select(c, a, b) => 1 + c.op_count() + a.op_count() + b.op_count(),
            Expr::Load { index, .. } => 1 + index.op_count(),
        }
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Self {
        Expr::Int(v)
    }
}

impl From<f32> for Expr {
    fn from(v: f32) -> Self {
        Expr::Float(v)
    }
}

impl From<&Var> for Expr {
    fn from(v: &Var) -> Self {
        Expr::Var(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::MemScope;

    #[test]
    fn builders_and_vars() {
        let i = Var::new("i");
        let j = Var::new("j");
        let e = Expr::var(&i).mul(Expr::int(16)).add(Expr::var(&j));
        let vars = e.vars();
        assert_eq!(vars.len(), 2);
        assert!(e.uses_var(&i));
        assert!(e.uses_var(&j));
        assert!(!e.uses_var(&Var::new("k")));
    }

    #[test]
    fn substitution() {
        let i = Var::new("i");
        let e = Expr::var(&i).add(Expr::int(1));
        let s = e.substitute(&i, &Expr::int(41));
        assert_eq!(s, Expr::int(41).add(Expr::int(1)));
    }

    #[test]
    fn substitution_in_load() {
        let i = Var::new("i");
        let a = Buffer::new("A", DType::F32, vec![8], MemScope::Wram);
        let e = Expr::load(&a, Expr::var(&i));
        let s = e.substitute(&i, &Expr::int(3));
        match s {
            Expr::Load { index, .. } => assert_eq!(*index, Expr::int(3)),
            _ => panic!("expected load"),
        }
    }

    #[test]
    fn op_count_counts_loads_and_alu() {
        let i = Var::new("i");
        let a = Buffer::new("A", DType::F32, vec![8], MemScope::Wram);
        // A[i*2] + 1.0 : mul, load, add = 3 ops
        let e = Expr::load(&a, Expr::var(&i).mul(Expr::int(2))).add(Expr::float(1.0));
        assert_eq!(e.op_count(), 3);
    }

    #[test]
    fn const_predicates() {
        assert!(Expr::int(1).is_const_true());
        assert!(!Expr::int(0).is_const_true());
        assert_eq!(Expr::int(7).as_int(), Some(7));
        assert_eq!(Expr::float(1.0).as_int(), None);
    }
}
