//! Scalar data types supported by the tensor IR.

use std::fmt;

/// Scalar element type of a tensor or expression.
///
/// The UPMEM DPU is a 32-bit integer core; floating point is emulated in
/// software, which is why the PrIM suite (and the paper's evaluation) uses
/// 32-bit types throughout.  ATiM-RS follows the same convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DType {
    /// 32-bit IEEE-754 float (the evaluation's default element type).
    #[default]
    F32,
    /// 8-bit signed integer (quantized workloads; DMA-efficient, 1 B/elem).
    I8,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer (used for index arithmetic).
    I64,
    /// Boolean (result of comparisons).
    Bool,
}

impl DType {
    /// Size of one element in bytes.
    ///
    /// ```
    /// use atim_tir::DType;
    /// assert_eq!(DType::F32.bytes(), 4);
    /// assert_eq!(DType::I64.bytes(), 8);
    /// ```
    pub fn bytes(self) -> usize {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::I64 => 8,
            DType::I8 | DType::Bool => 1,
        }
    }

    /// Whether the type is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, DType::F32)
    }

    /// Whether the type is an integer (or boolean) type.
    pub fn is_int(self) -> bool {
        !self.is_float()
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F32 => "f32",
            DType::I8 => "i8",
            DType::I32 => "i32",
            DType::I64 => "i64",
            DType::Bool => "bool",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::F32.bytes(), 4);
        assert_eq!(DType::I8.bytes(), 1);
        assert_eq!(DType::I32.bytes(), 4);
        assert_eq!(DType::I64.bytes(), 8);
        assert_eq!(DType::Bool.bytes(), 1);
    }

    #[test]
    fn float_predicate() {
        assert!(DType::F32.is_float());
        assert!(!DType::I32.is_float());
        assert!(DType::I64.is_int());
        assert!(DType::Bool.is_int());
    }

    #[test]
    fn display() {
        assert_eq!(DType::F32.to_string(), "f32");
        assert_eq!(DType::Bool.to_string(), "bool");
    }
}
