//! Buffers, memory scopes, and loop/index variables.

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crate::dtype::DType;

/// Monotonically increasing id generator shared by variables and buffers.
static NEXT_ID: AtomicU32 = AtomicU32::new(0);

fn next_id() -> u32 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Memory scope of a buffer on the UPMEM system.
///
/// The paper's Fig. 1: each DPU owns a 64 MB MRAM bank and a 64 KB WRAM
/// scratchpad; tensors initially live in the host's main DRAM and must be
/// explicitly transferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemScope {
    /// Host main memory (global tensors).
    Global,
    /// Per-DPU main RAM (the DRAM bank the DPU sits next to).
    Mram,
    /// Per-DPU working RAM (64 KB scratchpad, explicit caching target).
    Wram,
    /// Host-side scratch memory used by the final-reduction loop.
    HostLocal,
}

impl fmt::Display for MemScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemScope::Global => "global",
            MemScope::Mram => "mram",
            MemScope::Wram => "wram",
            MemScope::HostLocal => "host_local",
        };
        f.write_str(s)
    }
}

/// Unique identifier of a [`Buffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub u32);

/// A multi-dimensional buffer.
///
/// Indices in [`Expr::Load`](crate::Expr::Load) and
/// [`Stmt::Store`](crate::Stmt::Store) are *flattened* row-major offsets; the
/// shape is retained for allocation sizing, printing and bounds checks.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Buffer {
    /// Unique id (used for identity comparisons during rewrites).
    pub id: BufferId,
    /// Human-readable name (used by the printer).
    pub name: String,
    /// Element type.
    pub dtype: DType,
    /// Row-major shape.
    pub shape: Vec<i64>,
    /// Memory scope.
    pub scope: MemScope,
}

impl Buffer {
    /// Creates a new buffer with a fresh id.
    pub fn new(
        name: impl Into<String>,
        dtype: DType,
        shape: Vec<i64>,
        scope: MemScope,
    ) -> Arc<Self> {
        Arc::new(Buffer {
            id: BufferId(next_id()),
            name: name.into(),
            dtype,
            shape,
            scope,
        })
    }

    /// Total number of elements.
    ///
    /// ```
    /// use atim_tir::{Buffer, DType, MemScope};
    /// let b = Buffer::new("A", DType::F32, vec![4, 8], MemScope::Global);
    /// assert_eq!(b.len(), 32);
    /// ```
    pub fn len(&self) -> usize {
        self.shape.iter().product::<i64>().max(0) as usize
    }

    /// Whether the buffer holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total size in bytes.
    pub fn bytes(&self) -> usize {
        self.len() * self.dtype.bytes()
    }

    /// Row-major strides for this buffer's shape.
    pub fn strides(&self) -> Vec<i64> {
        row_major_strides(&self.shape)
    }
}

/// Computes row-major strides for a shape.
pub fn row_major_strides(shape: &[i64]) -> Vec<i64> {
    let mut strides = vec![1i64; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

/// A scalar variable (loop index, DPU coordinate, tasklet id, ...).
///
/// Variables compare equal when their ids are equal; the name is only for
/// printing.
#[derive(Debug, Clone)]
pub struct Var {
    /// Unique id.
    pub id: u32,
    /// Human-readable name.
    pub name: Arc<str>,
}

impl Var {
    /// Creates a new variable with a fresh id.
    pub fn new(name: impl AsRef<str>) -> Self {
        Var {
            id: next_id(),
            name: Arc::from(name.as_ref()),
        }
    }
}

impl PartialEq for Var {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Var {}

impl std::hash::Hash for Var {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_len_and_bytes() {
        let b = Buffer::new("A", DType::F32, vec![16, 32], MemScope::Mram);
        assert_eq!(b.len(), 512);
        assert_eq!(b.bytes(), 2048);
        assert!(!b.is_empty());
    }

    #[test]
    fn empty_buffer() {
        let b = Buffer::new("Z", DType::I32, vec![0, 8], MemScope::Global);
        assert!(b.is_empty());
        assert_eq!(b.bytes(), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(row_major_strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(row_major_strides(&[7]), vec![1]);
        assert_eq!(row_major_strides(&[]), Vec::<i64>::new());
    }

    #[test]
    fn var_identity() {
        let a = Var::new("i");
        let b = Var::new("i");
        assert_ne!(a, b, "fresh vars with the same name must differ");
        let c = a.clone();
        assert_eq!(a, c);
    }

    #[test]
    fn fresh_buffer_ids() {
        let a = Buffer::new("A", DType::F32, vec![1], MemScope::Global);
        let b = Buffer::new("A", DType::F32, vec![1], MemScope::Global);
        assert_ne!(a.id, b.id);
    }
}
