//! # atim-tir — Tensor IR for ATiM-RS
//!
//! This crate provides the tensor-level intermediate representation used by
//! the ATiM-RS reproduction of *"ATiM: Autotuning Tensor Programs for
//! Processing-in-DRAM"* (ISCA 2025).
//!
//! It mirrors the role TVM's TensorIR plays in the paper:
//!
//! * [`expr`] / [`stmt`] — loop-based TIR: expressions, statements, buffers
//!   with explicit memory scopes (host DRAM, per-DPU MRAM, per-DPU WRAM).
//! * [`compute`] — high-level computation definitions (the "TIR template" of
//!   Fig. 6): tensor shapes, spatial/reduction axes and the per-element
//!   expression.
//! * [`schedule`] — schedule primitives (`split`, `reorder`, `bind`,
//!   `cache_read`, `cache_write`, `compute_at`, `rfactor`, `parallel`,
//!   `unroll`) repurposed for joint host/kernel optimization, plus the
//!   lowering pass that produces per-DPU kernels, host transfer programs and
//!   host reduction loops.
//! * [`eval`] — a reference interpreter for loop-based TIR, plus a
//!   pre-lowered fast path ([`eval::CompiledProgram`]) that flattens a
//!   statement tree into an instruction buffer once and reuses it across
//!   every simulated DPU.  Both are parameterized by a [`eval::Tracer`] so
//!   the UPMEM simulator (`atim-sim`) can attach its cycle/instruction
//!   accounting to the exact same execution that produces functional
//!   results.
//! * [`affine`] — linear-expression analysis used by the PIM-aware passes
//!   (boundary-check elimination, loop-bound tightening, branch hoisting).
//!
//! # Example
//!
//! ```
//! use atim_tir::compute::ComputeDef;
//! use atim_tir::schedule::{Binding, Schedule};
//!
//! // C[i] = sum_k A[i,k] * B[k]  (matrix-times-vector)
//! let def = ComputeDef::mtv("mtv", 64, 64);
//! let mut sch = Schedule::new(def);
//! let loops = sch.loop_refs();
//! let (i_dpu, _i_in) = sch.split(loops[0], 8).unwrap();
//! sch.bind(i_dpu, Binding::DpuX).unwrap();
//! let lowered = sch.lower().unwrap();
//! assert_eq!(lowered.grid.num_dpus(), 8);
//! ```

pub mod affine;
pub mod buffer;
pub mod compute;
pub mod dtype;
pub mod error;
pub mod eval;
pub mod expr;
pub mod printer;
pub mod schedule;
pub mod simplify;
pub mod stmt;
pub mod visit;

pub use buffer::{Buffer, BufferId, MemScope, Var};
pub use compute::{AccessExpr, AxisDef, AxisKind, ComputeDef, TensorDecl};
pub use dtype::DType;
pub use error::{Result, TirError};
pub use expr::{BinOp, CmpOp, Expr};
pub use stmt::{ForKind, Stmt, TransferDir};
