//! TIR statements (loop-based TIR).

use std::sync::Arc;

use crate::buffer::{Buffer, Var};
use crate::expr::Expr;

/// The kind of a `for` loop, including thread/DPU bindings.
///
/// Bindings follow the paper's repurposed schedule primitives: loops bound to
/// `blockIdx.*` select the DPU grid (inter-DPU parallelism), loops bound to
/// `threadIdx.x` select tasklets (intra-DPU parallelism), and host
/// post-processing loops may be bound to host CPU threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ForKind {
    /// Plain sequential loop.
    Serial,
    /// Loop annotated for full unrolling.
    Unrolled,
    /// Loop bound to the DPU grid X dimension (`blockIdx.x`).
    DpuX,
    /// Loop bound to the DPU grid Y dimension (`blockIdx.y`).
    DpuY,
    /// Loop bound to tasklets within a DPU (`threadIdx.x`).
    Tasklet,
    /// Host-side loop executed by parallel CPU threads.
    HostParallel,
}

impl ForKind {
    /// Whether this loop selects a DPU grid dimension.
    pub fn is_dpu(self) -> bool {
        matches!(self, ForKind::DpuX | ForKind::DpuY)
    }
}

/// Direction of a host<->DPU data transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferDir {
    /// Host to DPU (MRAM write from the host's point of view).
    H2D,
    /// DPU to host (MRAM read from the host's point of view).
    D2H,
}

/// A TIR statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `for var in 0..extent { body }`
    For {
        /// Loop variable.
        var: Var,
        /// Loop extent (exclusive upper bound); evaluated once at entry.
        extent: Expr,
        /// Loop kind / binding.
        kind: ForKind,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `if cond { then_branch } else { else_branch }`
    If {
        /// Branch condition.
        cond: Expr,
        /// Taken branch.
        then_branch: Box<Stmt>,
        /// Optional fallthrough branch.
        else_branch: Option<Box<Stmt>>,
    },
    /// `buf[index] = value`
    Store {
        /// Destination buffer.
        buf: Arc<Buffer>,
        /// Flattened row-major element offset.
        index: Expr,
        /// Value to store.
        value: Expr,
    },
    /// Statement sequence.
    Seq(Vec<Stmt>),
    /// Scoped allocation of a buffer (WRAM tiles, host scratch).
    Alloc {
        /// Buffer being allocated.
        buf: Arc<Buffer>,
        /// Scope in which the buffer is live.
        body: Box<Stmt>,
    },
    /// DMA transfer between MRAM and WRAM executed by the DPU's DMA engine
    /// (`mram_read` / `mram_write` in the UPMEM SDK).
    Dma {
        /// Destination buffer.
        dst: Arc<Buffer>,
        /// Destination element offset.
        dst_off: Expr,
        /// Source buffer.
        src: Arc<Buffer>,
        /// Source element offset.
        src_off: Expr,
        /// Number of elements transferred.
        elems: Expr,
    },
    /// Host<->DPU transfer intrinsic (the paper's `h2d_intrinsic` /
    /// `d2h_intrinsic`, Fig. 7).
    HostTransfer {
        /// Transfer direction.
        dir: TransferDir,
        /// DPU index expression (linearized bank index).
        dpu: Expr,
        /// Global (host) buffer.
        global: Arc<Buffer>,
        /// Element offset in the global buffer.
        global_off: Expr,
        /// Per-DPU MRAM buffer.
        mram: Arc<Buffer>,
        /// Element offset within the DPU's MRAM buffer.
        mram_off: Expr,
        /// Number of elements transferred.
        elems: Expr,
        /// Whether this transfer participates in a rank-parallel push
        /// (`dpu_push_xfer`), i.e. transfers for all DPUs proceed in parallel.
        parallel: bool,
    },
    /// Tasklet barrier within a DPU kernel.
    Barrier,
    /// Evaluate an expression for its side effects (rare; kept for
    /// completeness).
    Evaluate(Expr),
    /// No-op.
    Nop,
}

impl Stmt {
    /// Wraps a list of statements, flattening nested sequences and dropping
    /// no-ops.
    pub fn seq(stmts: Vec<Stmt>) -> Stmt {
        let mut flat = Vec::new();
        for s in stmts {
            match s {
                Stmt::Nop => {}
                Stmt::Seq(inner) => {
                    flat.extend(inner.into_iter().filter(|s| !matches!(s, Stmt::Nop)))
                }
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Stmt::Nop,
            1 => flat.pop().expect("len checked"),
            _ => Stmt::Seq(flat),
        }
    }

    /// Serial `for` helper.
    pub fn for_serial(var: Var, extent: impl Into<Expr>, body: Stmt) -> Stmt {
        Stmt::For {
            var,
            extent: extent.into(),
            kind: ForKind::Serial,
            body: Box::new(body),
        }
    }

    /// `for` helper with an explicit kind.
    pub fn for_kind(var: Var, extent: impl Into<Expr>, kind: ForKind, body: Stmt) -> Stmt {
        Stmt::For {
            var,
            extent: extent.into(),
            kind,
            body: Box::new(body),
        }
    }

    /// `if` helper without an else branch.
    pub fn if_then(cond: Expr, then_branch: Stmt) -> Stmt {
        Stmt::If {
            cond,
            then_branch: Box::new(then_branch),
            else_branch: None,
        }
    }

    /// Store helper.
    pub fn store(buf: &Arc<Buffer>, index: Expr, value: Expr) -> Stmt {
        Stmt::Store {
            buf: Arc::clone(buf),
            index,
            value,
        }
    }

    /// Counts statements of each structural kind; useful in tests and for
    /// static cost estimation.
    pub fn count_nodes(&self) -> StmtCounts {
        let mut counts = StmtCounts::default();
        self.count_into(&mut counts);
        counts
    }

    fn count_into(&self, counts: &mut StmtCounts) {
        match self {
            Stmt::For { body, .. } => {
                counts.loops += 1;
                body.count_into(counts);
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                counts.branches += 1;
                then_branch.count_into(counts);
                if let Some(e) = else_branch {
                    e.count_into(counts);
                }
            }
            Stmt::Store { .. } => counts.stores += 1,
            Stmt::Seq(stmts) => {
                for s in stmts {
                    s.count_into(counts);
                }
            }
            Stmt::Alloc { body, .. } => {
                counts.allocs += 1;
                body.count_into(counts);
            }
            Stmt::Dma { .. } => counts.dmas += 1,
            Stmt::HostTransfer { .. } => counts.host_transfers += 1,
            Stmt::Barrier => counts.barriers += 1,
            Stmt::Evaluate(_) | Stmt::Nop => {}
        }
    }

    /// Substitutes a variable throughout the statement tree.
    pub fn substitute(&self, var: &Var, value: &Expr) -> Stmt {
        match self {
            Stmt::For {
                var: lv,
                extent,
                kind,
                body,
            } => Stmt::For {
                var: lv.clone(),
                extent: extent.substitute(var, value),
                kind: *kind,
                body: Box::new(body.substitute(var, value)),
            },
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => Stmt::If {
                cond: cond.substitute(var, value),
                then_branch: Box::new(then_branch.substitute(var, value)),
                else_branch: else_branch
                    .as_ref()
                    .map(|e| Box::new(e.substitute(var, value))),
            },
            Stmt::Store {
                buf,
                index,
                value: v,
            } => Stmt::Store {
                buf: Arc::clone(buf),
                index: index.substitute(var, value),
                value: v.substitute(var, value),
            },
            Stmt::Seq(stmts) => Stmt::Seq(stmts.iter().map(|s| s.substitute(var, value)).collect()),
            Stmt::Alloc { buf, body } => Stmt::Alloc {
                buf: Arc::clone(buf),
                body: Box::new(body.substitute(var, value)),
            },
            Stmt::Dma {
                dst,
                dst_off,
                src,
                src_off,
                elems,
            } => Stmt::Dma {
                dst: Arc::clone(dst),
                dst_off: dst_off.substitute(var, value),
                src: Arc::clone(src),
                src_off: src_off.substitute(var, value),
                elems: elems.substitute(var, value),
            },
            Stmt::HostTransfer {
                dir,
                dpu,
                global,
                global_off,
                mram,
                mram_off,
                elems,
                parallel,
            } => Stmt::HostTransfer {
                dir: *dir,
                dpu: dpu.substitute(var, value),
                global: Arc::clone(global),
                global_off: global_off.substitute(var, value),
                mram: Arc::clone(mram),
                mram_off: mram_off.substitute(var, value),
                elems: elems.substitute(var, value),
                parallel: *parallel,
            },
            Stmt::Barrier => Stmt::Barrier,
            Stmt::Evaluate(e) => Stmt::Evaluate(e.substitute(var, value)),
            Stmt::Nop => Stmt::Nop,
        }
    }

    /// Whether any sub-expression of this statement references `var`.
    pub fn uses_var(&self, var: &Var) -> bool {
        match self {
            Stmt::For { extent, body, .. } => extent.uses_var(var) || body.uses_var(var),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                cond.uses_var(var)
                    || then_branch.uses_var(var)
                    || else_branch.as_ref().is_some_and(|e| e.uses_var(var))
            }
            Stmt::Store { index, value, .. } => index.uses_var(var) || value.uses_var(var),
            Stmt::Seq(stmts) => stmts.iter().any(|s| s.uses_var(var)),
            Stmt::Alloc { body, .. } => body.uses_var(var),
            Stmt::Dma {
                dst_off,
                src_off,
                elems,
                ..
            } => dst_off.uses_var(var) || src_off.uses_var(var) || elems.uses_var(var),
            Stmt::HostTransfer {
                dpu,
                global_off,
                mram_off,
                elems,
                ..
            } => {
                dpu.uses_var(var)
                    || global_off.uses_var(var)
                    || mram_off.uses_var(var)
                    || elems.uses_var(var)
            }
            Stmt::Barrier | Stmt::Nop => false,
            Stmt::Evaluate(e) => e.uses_var(var),
        }
    }
}

/// Structural statement counts returned by [`Stmt::count_nodes`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StmtCounts {
    /// Number of `for` loops.
    pub loops: usize,
    /// Number of `if` statements.
    pub branches: usize,
    /// Number of stores.
    pub stores: usize,
    /// Number of allocations.
    pub allocs: usize,
    /// Number of MRAM<->WRAM DMA statements.
    pub dmas: usize,
    /// Number of host<->DPU transfer intrinsics.
    pub host_transfers: usize,
    /// Number of barriers.
    pub barriers: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::MemScope;
    use crate::dtype::DType;

    fn simple_loop() -> (Var, Stmt) {
        let i = Var::new("i");
        let a = Buffer::new("A", DType::F32, vec![16], MemScope::Wram);
        let body = Stmt::store(&a, Expr::var(&i), Expr::float(1.0));
        (i.clone(), Stmt::for_serial(i, 16i64, body))
    }

    #[test]
    fn seq_flattens_and_drops_nops() {
        let (_, l) = simple_loop();
        let s = Stmt::seq(vec![
            Stmt::Nop,
            Stmt::Seq(vec![l.clone(), Stmt::Nop]),
            l.clone(),
        ]);
        match s {
            Stmt::Seq(v) => assert_eq!(v.len(), 2),
            _ => panic!("expected seq"),
        }
        assert_eq!(Stmt::seq(vec![]), Stmt::Nop);
        assert_eq!(Stmt::seq(vec![Stmt::Nop]), Stmt::Nop);
    }

    #[test]
    fn count_nodes() {
        let (_, l) = simple_loop();
        let guarded = Stmt::if_then(Expr::int(1), l);
        let counts = guarded.count_nodes();
        assert_eq!(counts.loops, 1);
        assert_eq!(counts.branches, 1);
        assert_eq!(counts.stores, 1);
    }

    #[test]
    fn substitute_and_uses_var() {
        let (i, l) = simple_loop();
        // The loop variable is rebound inside, but substitution is purely
        // syntactic here; callers only substitute free variables.
        assert!(l.uses_var(&i));
        let j = Var::new("j");
        assert!(!l.uses_var(&j));
        let l2 = l.substitute(&i, &Expr::int(0));
        assert!(!l2.uses_var(&i));
    }
}
