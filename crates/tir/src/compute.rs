//! High-level computation definitions ("TIR templates").
//!
//! A [`ComputeDef`] describes *what* to compute — tensor shapes, iteration
//! axes, and the per-point expression — without fixing *how* (loop order,
//! tiling, DPU distribution).  Schedules ([`crate::schedule::Schedule`])
//! supply the "how"; the autotuner explores that space.
//!
//! Constructors are provided for the seven tensor-algebra operations the
//! paper evaluates (§6): VA, RED, MTV, TTV, MMTV, GEVA and GEMV.

use crate::dtype::DType;

/// Kind of an iteration axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AxisKind {
    /// Spatial (parallelizable, indexes the output).
    Spatial,
    /// Reduction (accumulated into the output).
    Reduce,
}

/// One iteration axis of a computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxisDef {
    /// Axis name (used for loop variable names).
    pub name: String,
    /// Static extent.
    pub extent: i64,
    /// Spatial or reduction.
    pub kind: AxisKind,
}

impl AxisDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, extent: i64, kind: AxisKind) -> Self {
        AxisDef {
            name: name.into(),
            extent,
            kind,
        }
    }
}

/// Declaration of an input or output tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorDecl {
    /// Tensor name.
    pub name: String,
    /// Axes (by index into [`ComputeDef::axes`]) that index this tensor, in
    /// storage order (row-major).
    pub axes: Vec<usize>,
    /// Element type.
    pub dtype: DType,
    /// Whether the tensor is constant across invocations (e.g. a weight
    /// matrix).  Constant tensors are transferred to the DPUs once at setup
    /// time rather than on every launch, as §5.4 of the paper describes.
    pub constant: bool,
}

impl TensorDecl {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, axes: Vec<usize>) -> Self {
        TensorDecl {
            name: name.into(),
            axes,
            dtype: DType::F32,
            constant: false,
        }
    }

    /// Marks the tensor as constant (resident in PIM memory).
    pub fn constant(mut self) -> Self {
        self.constant = true;
        self
    }
}

/// The per-point value expression of a computation, in terms of input tensors
/// indexed by the iteration axes.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessExpr {
    /// Load `inputs[input]` at its declared axes.
    Input {
        /// Index into [`ComputeDef::inputs`].
        input: usize,
    },
    /// A scalar constant.
    Const(f32),
    /// Sum of two sub-expressions.
    Add(Box<AccessExpr>, Box<AccessExpr>),
    /// Product of two sub-expressions.
    Mul(Box<AccessExpr>, Box<AccessExpr>),
}

impl AccessExpr {
    /// `inputs[i]`
    pub fn input(i: usize) -> Self {
        AccessExpr::Input { input: i }
    }

    /// Scalar constant.
    pub fn constant(v: f32) -> Self {
        AccessExpr::Const(v)
    }

    /// `self + rhs`
    #[allow(clippy::should_implement_trait)] // deliberate TVM-style builder API
    pub fn add(self, rhs: AccessExpr) -> Self {
        AccessExpr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: AccessExpr) -> Self {
        AccessExpr::Mul(Box::new(self), Box::new(rhs))
    }

    /// Evaluates the expression numerically given a resolver for input loads.
    pub fn eval(&self, load: &impl Fn(usize) -> f32) -> f32 {
        match self {
            AccessExpr::Input { input } => load(*input),
            AccessExpr::Const(v) => *v,
            AccessExpr::Add(a, b) => a.eval(load) + b.eval(load),
            AccessExpr::Mul(a, b) => a.eval(load) * b.eval(load),
        }
    }

    /// Builds a TIR expression given a resolver that produces the load
    /// expression for each referenced input.
    pub fn to_expr(&self, load: &impl Fn(usize) -> crate::Expr) -> crate::Expr {
        match self {
            AccessExpr::Input { input } => load(*input),
            AccessExpr::Const(v) => crate::Expr::Float(*v),
            AccessExpr::Add(a, b) => a.to_expr(load).add(b.to_expr(load)),
            AccessExpr::Mul(a, b) => a.to_expr(load).mul(b.to_expr(load)),
        }
    }

    /// Number of scalar arithmetic operations per evaluation (for FLOP
    /// accounting).
    pub fn flops(&self) -> usize {
        match self {
            AccessExpr::Input { .. } | AccessExpr::Const(_) => 0,
            AccessExpr::Add(a, b) | AccessExpr::Mul(a, b) => 1 + a.flops() + b.flops(),
        }
    }
}

/// A complete high-level tensor computation.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeDef {
    /// Operation name (used for buffer naming and reports).
    pub name: String,
    /// Iteration axes.
    pub axes: Vec<AxisDef>,
    /// Input tensor declarations.
    pub inputs: Vec<TensorDecl>,
    /// Output tensor declaration (its `axes` must all be spatial).
    pub output: TensorDecl,
    /// The per-point term.  For reductions the term is accumulated with `+`
    /// over the reduce axes; otherwise it is assigned.
    pub term: AccessExpr,
}

impl ComputeDef {
    /// Whether the computation has a reduction axis.
    pub fn has_reduce(&self) -> bool {
        self.axes.iter().any(|a| a.kind == AxisKind::Reduce)
    }

    /// Indices of the reduction axes.
    pub fn reduce_axes(&self) -> Vec<usize> {
        self.axes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind == AxisKind::Reduce)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of the spatial axes.
    pub fn spatial_axes(&self) -> Vec<usize> {
        self.axes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind == AxisKind::Spatial)
            .map(|(i, _)| i)
            .collect()
    }

    /// Shape of a tensor declaration (extents of its axes).
    pub fn tensor_shape(&self, decl: &TensorDecl) -> Vec<i64> {
        decl.axes.iter().map(|&a| self.axes[a].extent).collect()
    }

    /// Number of output elements.
    pub fn output_len(&self) -> usize {
        self.tensor_shape(&self.output)
            .iter()
            .product::<i64>()
            .max(1) as usize
    }

    /// Number of elements of input `i`.
    pub fn input_len(&self, i: usize) -> usize {
        self.tensor_shape(&self.inputs[i])
            .iter()
            .product::<i64>()
            .max(1) as usize
    }

    /// Total floating point operations of the whole computation.
    pub fn total_flops(&self) -> usize {
        let points: usize = self.axes.iter().map(|a| a.extent.max(1) as usize).product();
        let per_point = self.term.flops() + usize::from(self.has_reduce());
        points * per_point
    }

    /// Total bytes of all inputs plus the output (for memory-boundedness
    /// estimates).
    pub fn total_bytes(&self) -> usize {
        let mut b = self.output_len() * self.output.dtype.bytes();
        for (i, t) in self.inputs.iter().enumerate() {
            b += self.input_len(i) * t.dtype.bytes();
        }
        b
    }

    /// Straightforward reference implementation, used as the correctness
    /// oracle in tests and examples.
    ///
    /// # Panics
    /// Panics if `inputs` does not match the declared input count or lengths.
    pub fn reference(&self, inputs: &[Vec<f32>]) -> Vec<f32> {
        assert_eq!(inputs.len(), self.inputs.len(), "input count mismatch");
        for (i, t) in self.inputs.iter().enumerate() {
            assert_eq!(
                inputs[i].len(),
                self.input_len(i),
                "input {} length",
                t.name
            );
        }
        let mut out = vec![0.0f32; self.output_len()];
        let extents: Vec<i64> = self.axes.iter().map(|a| a.extent).collect();
        let mut idx = vec![0i64; extents.len()];
        let out_strides = strides_for(&self.tensor_shape(&self.output));
        let in_strides: Vec<Vec<i64>> = self
            .inputs
            .iter()
            .map(|t| strides_for(&self.tensor_shape(t)))
            .collect();
        loop {
            let load = |input: usize| -> f32 {
                let decl = &self.inputs[input];
                let mut off = 0i64;
                for (d, &a) in decl.axes.iter().enumerate() {
                    off += idx[a] * in_strides[input][d];
                }
                inputs[input][off as usize]
            };
            let v = self.term.eval(&load);
            let mut out_off = 0i64;
            for (d, &a) in self.output.axes.iter().enumerate() {
                out_off += idx[a] * out_strides[d];
            }
            if self.has_reduce() {
                out[out_off as usize] += v;
            } else {
                out[out_off as usize] = v;
            }
            // Advance the multi-index.
            let mut dim = extents.len();
            loop {
                if dim == 0 {
                    return out;
                }
                dim -= 1;
                idx[dim] += 1;
                if idx[dim] < extents[dim] {
                    break;
                }
                idx[dim] = 0;
            }
        }
    }

    // --- Constructors for the paper's benchmark operations -----------------

    /// Vector addition: `C(i) = A(i) + B(i)`.
    pub fn va(name: &str, n: i64) -> Self {
        ComputeDef {
            name: name.into(),
            axes: vec![AxisDef::new("i", n, AxisKind::Spatial)],
            inputs: vec![TensorDecl::new("A", vec![0]), TensorDecl::new("B", vec![0])],
            output: TensorDecl::new("C", vec![0]),
            term: AccessExpr::input(0).add(AccessExpr::input(1)),
        }
    }

    /// General vector addition: `C(i) = c·A(i) + d·B(i)`.
    pub fn geva(name: &str, n: i64, c: f32, d: f32) -> Self {
        ComputeDef {
            name: name.into(),
            axes: vec![AxisDef::new("i", n, AxisKind::Spatial)],
            inputs: vec![TensorDecl::new("A", vec![0]), TensorDecl::new("B", vec![0])],
            output: TensorDecl::new("C", vec![0]),
            term: AccessExpr::constant(c)
                .mul(AccessExpr::input(0))
                .add(AccessExpr::constant(d).mul(AccessExpr::input(1))),
        }
    }

    /// Reduction: `b = Σ_i A(i)` (output is a length-1 tensor).
    pub fn red(name: &str, n: i64) -> Self {
        ComputeDef {
            name: name.into(),
            axes: vec![AxisDef::new("i", n, AxisKind::Reduce)],
            inputs: vec![TensorDecl::new("A", vec![0])],
            output: TensorDecl::new("b", vec![]),
            term: AccessExpr::input(0),
        }
    }

    /// Matrix-times-vector: `C(i) = Σ_k A(i,k)·B(k)`.
    pub fn mtv(name: &str, m: i64, k: i64) -> Self {
        ComputeDef {
            name: name.into(),
            axes: vec![
                AxisDef::new("i", m, AxisKind::Spatial),
                AxisDef::new("k", k, AxisKind::Reduce),
            ],
            inputs: vec![
                TensorDecl::new("A", vec![0, 1]).constant(),
                TensorDecl::new("B", vec![1]),
            ],
            output: TensorDecl::new("C", vec![0]),
            term: AccessExpr::input(0).mul(AccessExpr::input(1)),
        }
    }

    /// General matrix-vector multiplication: `C(i) = c·Σ_k A(i,k)·B(k)`.
    ///
    /// The constant factor is folded into the reduction term (equivalent
    /// algebraically and matching how the paper extends PrIM's MTV).
    pub fn gemv(name: &str, m: i64, k: i64, c: f32) -> Self {
        let mut def = Self::mtv(name, m, k);
        def.term = AccessExpr::constant(c).mul(def.term);
        def
    }

    /// Tensor-times-vector: `C(i,j) = Σ_k A(i,j,k)·B(k)`.
    pub fn ttv(name: &str, m: i64, n: i64, k: i64) -> Self {
        ComputeDef {
            name: name.into(),
            axes: vec![
                AxisDef::new("i", m, AxisKind::Spatial),
                AxisDef::new("j", n, AxisKind::Spatial),
                AxisDef::new("k", k, AxisKind::Reduce),
            ],
            inputs: vec![
                TensorDecl::new("A", vec![0, 1, 2]).constant(),
                TensorDecl::new("B", vec![2]),
            ],
            output: TensorDecl::new("C", vec![0, 1]),
            term: AccessExpr::input(0).mul(AccessExpr::input(1)),
        }
    }

    /// Multiple matrix-times-vector (batched): `C(i,j) = Σ_k A(i,j,k)·B(i,k)`.
    pub fn mmtv(name: &str, m: i64, n: i64, k: i64) -> Self {
        ComputeDef {
            name: name.into(),
            axes: vec![
                AxisDef::new("i", m, AxisKind::Spatial),
                AxisDef::new("j", n, AxisKind::Spatial),
                AxisDef::new("k", k, AxisKind::Reduce),
            ],
            inputs: vec![
                TensorDecl::new("A", vec![0, 1, 2]).constant(),
                TensorDecl::new("B", vec![0, 2]),
            ],
            output: TensorDecl::new("C", vec![0, 1]),
            term: AccessExpr::input(0).mul(AccessExpr::input(1)),
        }
    }

    /// Batched matrix-matrix product: `C(b,i,j) = Σ_k A(b,i,k)·B(b,k,j)`.
    ///
    /// The workload the transformer MLP blocks batch over attention heads;
    /// unlike MMTV both operands are full matrices per batch element.
    pub fn bgemm(name: &str, b: i64, m: i64, n: i64, k: i64) -> Self {
        ComputeDef {
            name: name.into(),
            axes: vec![
                AxisDef::new("b", b, AxisKind::Spatial),
                AxisDef::new("i", m, AxisKind::Spatial),
                AxisDef::new("j", n, AxisKind::Spatial),
                AxisDef::new("k", k, AxisKind::Reduce),
            ],
            inputs: vec![
                TensorDecl::new("A", vec![0, 1, 3]).constant(),
                TensorDecl::new("B", vec![0, 3, 2]),
            ],
            output: TensorDecl::new("C", vec![0, 1, 2]),
            term: AccessExpr::input(0).mul(AccessExpr::input(1)),
        }
    }

    /// Fused single-query attention block: `O(b,d) = Σ_j Σ_e Q(b,e)·K(b,j,e)·V(b,j,d)`.
    ///
    /// The full score + weighted-sum decode step (without softmax, which is
    /// host post-processing), going beyond the GPT-J MMTV slice: two
    /// reduction axes (`j` over the sequence, `e` over the head dimension)
    /// and three inputs with distinct access patterns.
    pub fn attn(name: &str, b: i64, seq: i64, dim: i64) -> Self {
        ComputeDef {
            name: name.into(),
            axes: vec![
                AxisDef::new("b", b, AxisKind::Spatial),
                AxisDef::new("d", dim, AxisKind::Spatial),
                AxisDef::new("j", seq, AxisKind::Reduce),
                AxisDef::new("e", dim, AxisKind::Reduce),
            ],
            inputs: vec![
                TensorDecl::new("Q", vec![0, 3]),
                TensorDecl::new("K", vec![0, 2, 3]).constant(),
                TensorDecl::new("V", vec![0, 2, 1]).constant(),
            ],
            output: TensorDecl::new("O", vec![0, 1]),
            term: AccessExpr::input(0)
                .mul(AccessExpr::input(1))
                .mul(AccessExpr::input(2)),
        }
    }

    /// Quantized int8 matrix-times-vector: MTV with 1-byte operands and a
    /// 32-bit accumulator, the memory-bound shape quantized inference
    /// serves.  The evaluator loads integer-typed buffers in the integer
    /// domain (fractional storage truncates), so feed whole-number data —
    /// `atim_workloads::data::generate_inputs` does this automatically.
    /// Saturation is not emulated; beyond numerics, the dtype drives the
    /// byte accounting — MRAM tiles, WRAM footprints and DMA alignment all
    /// see 1-byte elements.
    pub fn qgemv(name: &str, m: i64, k: i64) -> Self {
        let mut def = Self::mtv(name, m, k);
        for input in &mut def.inputs {
            input.dtype = DType::I8;
        }
        def.output.dtype = DType::I32;
        def
    }
}

fn strides_for(shape: &[i64]) -> Vec<i64> {
    crate::buffer::row_major_strides(shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(n: usize) -> Vec<f32> {
        (0..n).map(|x| (x % 13) as f32 - 5.0).collect()
    }

    #[test]
    fn va_reference() {
        let def = ComputeDef::va("va", 16);
        let a = iota(16);
        let b: Vec<f32> = (0..16).map(|x| x as f32).collect();
        let out = def.reference(&[a.clone(), b.clone()]);
        for i in 0..16 {
            assert_eq!(out[i], a[i] + b[i]);
        }
        assert!(!def.has_reduce());
        assert_eq!(def.output_len(), 16);
    }

    #[test]
    fn red_reference() {
        let def = ComputeDef::red("red", 100);
        let a = iota(100);
        let out = def.reference(std::slice::from_ref(&a));
        assert_eq!(out.len(), 1);
        let expect: f32 = a.iter().sum();
        assert!((out[0] - expect).abs() < 1e-3);
        assert_eq!(def.reduce_axes(), vec![0]);
        assert!(def.spatial_axes().is_empty());
    }

    #[test]
    fn mtv_reference() {
        let (m, k) = (5, 7);
        let def = ComputeDef::mtv("mtv", m, k);
        let a = iota((m * k) as usize);
        let b = iota(k as usize);
        let out = def.reference(&[a.clone(), b.clone()]);
        for i in 0..m as usize {
            let mut acc = 0.0;
            for kk in 0..k as usize {
                acc += a[i * k as usize + kk] * b[kk];
            }
            assert!((out[i] - acc).abs() < 1e-4);
        }
    }

    #[test]
    fn gemv_scales_term() {
        let def = ComputeDef::gemv("gemv", 3, 4, 2.0);
        let a = vec![1.0; 12];
        let b = vec![1.0; 4];
        let out = def.reference(&[a, b]);
        assert_eq!(out, vec![8.0, 8.0, 8.0]);
    }

    #[test]
    fn geva_constants() {
        let def = ComputeDef::geva("geva", 4, 2.0, 3.0);
        let out = def.reference(&[vec![1.0; 4], vec![1.0; 4]]);
        assert_eq!(out, vec![5.0; 4]);
        assert_eq!(def.term.flops(), 3);
    }

    #[test]
    fn mmtv_reference() {
        let (m, n, k) = (2, 3, 4);
        let def = ComputeDef::mmtv("mmtv", m, n, k);
        let a = iota((m * n * k) as usize);
        let b = iota((m * k) as usize);
        let out = def.reference(&[a.clone(), b.clone()]);
        for i in 0..m as usize {
            for j in 0..n as usize {
                let mut acc = 0.0;
                for kk in 0..k as usize {
                    acc += a[(i * n as usize + j) * k as usize + kk] * b[i * k as usize + kk];
                }
                let got = out[i * n as usize + j];
                assert!((got - acc).abs() < 1e-4, "({i},{j}): {got} vs {acc}");
            }
        }
    }

    #[test]
    fn ttv_shapes_and_flops() {
        let def = ComputeDef::ttv("ttv", 2, 3, 8);
        assert_eq!(def.tensor_shape(&def.inputs[0]), vec![2, 3, 8]);
        assert_eq!(def.tensor_shape(&def.inputs[1]), vec![8]);
        assert_eq!(def.output_len(), 6);
        assert_eq!(def.total_flops(), 2 * 3 * 8 * 2);
        assert!(def.total_bytes() > 0);
    }

    #[test]
    fn bgemm_reference() {
        let (b, m, n, k) = (2usize, 3usize, 4usize, 5usize);
        let def = ComputeDef::bgemm("bgemm", b as i64, m as i64, n as i64, k as i64);
        let a = iota(b * m * k);
        let bb = iota(b * k * n);
        let out = def.reference(&[a.clone(), bb.clone()]);
        for bi in 0..b {
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0;
                    for kk in 0..k {
                        acc += a[(bi * m + i) * k + kk] * bb[(bi * k + kk) * n + j];
                    }
                    let got = out[(bi * m + i) * n + j];
                    assert!((got - acc).abs() < 1e-3, "({bi},{i},{j}): {got} vs {acc}");
                }
            }
        }
    }

    #[test]
    fn attn_reference() {
        let (b, seq, dim) = (2usize, 3usize, 4usize);
        let def = ComputeDef::attn("attn", b as i64, seq as i64, dim as i64);
        let q = iota(b * dim);
        let k = iota(b * seq * dim);
        let v = iota(b * seq * dim);
        let out = def.reference(&[q.clone(), k.clone(), v.clone()]);
        assert_eq!(out.len(), b * dim);
        for bi in 0..b {
            for d in 0..dim {
                let mut acc = 0.0;
                for j in 0..seq {
                    for e in 0..dim {
                        acc += q[bi * dim + e]
                            * k[(bi * seq + j) * dim + e]
                            * v[(bi * seq + j) * dim + d];
                    }
                }
                let got = out[bi * dim + d];
                assert!((got - acc).abs() < 1e-2, "({bi},{d}): {got} vs {acc}");
            }
        }
        assert_eq!(def.reduce_axes(), vec![2, 3]);
    }

    #[test]
    fn qgemv_dtypes_and_reference() {
        let def = ComputeDef::qgemv("qgemv", 4, 6);
        assert!(def.inputs.iter().all(|t| t.dtype == DType::I8));
        assert_eq!(def.output.dtype, DType::I32);
        // One byte per input element, four per output element.
        assert_eq!(def.total_bytes(), 4 * 6 + 6 + 4 * 4);
        // Numerics follow the f32 oracle of plain MTV.
        let a = iota(24);
        let b = iota(6);
        let plain = ComputeDef::mtv("mtv", 4, 6).reference(&[a.clone(), b.clone()]);
        assert_eq!(def.reference(&[a, b]), plain);
    }
}
