//! Error types for the tensor IR.

use std::fmt;

/// Result alias used throughout `atim-tir`.
pub type Result<T> = std::result::Result<T, TirError>;

/// Errors produced while building, scheduling, lowering or interpreting TIR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TirError {
    /// A schedule primitive was applied to a loop that does not exist.
    UnknownLoop(String),
    /// A schedule primitive received an invalid argument (e.g. a non-positive
    /// split factor).
    InvalidSchedule(String),
    /// Lowering failed because the schedule violates a structural assumption
    /// (for example a tasklet binding outside the kernel scope).
    LoweringError(String),
    /// The interpreter encountered an out-of-bounds buffer access.
    OutOfBounds {
        /// Buffer name.
        buffer: String,
        /// Offending flattened index.
        index: i64,
        /// Number of elements in the buffer.
        len: usize,
    },
    /// The interpreter encountered an unbound variable.
    UnboundVar(String),
    /// The interpreter encountered a buffer that was never allocated.
    UnknownBuffer(String),
    /// A type mismatch at evaluation time (e.g. float where an index was
    /// expected).
    TypeError(String),
    /// Generic invariant violation.
    Internal(String),
}

impl fmt::Display for TirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TirError::UnknownLoop(name) => write!(f, "unknown loop: {name}"),
            TirError::InvalidSchedule(msg) => write!(f, "invalid schedule: {msg}"),
            TirError::LoweringError(msg) => write!(f, "lowering error: {msg}"),
            TirError::OutOfBounds { buffer, index, len } => {
                write!(f, "out-of-bounds access to {buffer}[{index}] (len {len})")
            }
            TirError::UnboundVar(name) => write!(f, "unbound variable: {name}"),
            TirError::UnknownBuffer(name) => write!(f, "unknown buffer: {name}"),
            TirError::TypeError(msg) => write!(f, "type error: {msg}"),
            TirError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for TirError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TirError::OutOfBounds {
            buffer: "A".into(),
            index: 12,
            len: 8,
        };
        assert!(e.to_string().contains("A[12]"));
        assert!(TirError::UnboundVar("i".into()).to_string().contains('i'));
    }
}
