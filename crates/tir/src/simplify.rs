//! Constant folding and algebraic simplification for TIR expressions and
//! statements.
//!
//! The simplifier is deliberately conservative: it only performs rewrites
//! that are valid for all integer/float inputs.  It is run after lowering and
//! after every PIM-aware pass so later passes see canonical forms
//! (e.g. `if 1 { s }` is replaced by `s`, `x * 1` by `x`).

use crate::expr::{BinOp, CmpOp, Expr};
use crate::stmt::Stmt;
use crate::visit::{mutate_children, StmtMutator};

/// Simplifies an expression: constant folding plus basic identities.
pub fn simplify_expr(expr: &Expr) -> Expr {
    match expr {
        Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => expr.clone(),
        Expr::Binary(op, a, b) => {
            let a = simplify_expr(a);
            let b = simplify_expr(b);
            fold_binary(*op, a, b)
        }
        Expr::Cmp(op, a, b) => {
            let a = simplify_expr(a);
            let b = simplify_expr(b);
            if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
                let v = match op {
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                };
                return Expr::Int(v as i64);
            }
            Expr::Cmp(*op, Box::new(a), Box::new(b))
        }
        Expr::And(a, b) => {
            let a = simplify_expr(a);
            let b = simplify_expr(b);
            match (a.as_int(), b.as_int()) {
                (Some(0), _) | (_, Some(0)) => Expr::Int(0),
                (Some(x), Some(y)) => Expr::Int(((x != 0) && (y != 0)) as i64),
                (Some(x), None) if x != 0 => b,
                (None, Some(y)) if y != 0 => a,
                _ => Expr::And(Box::new(a), Box::new(b)),
            }
        }
        Expr::Or(a, b) => {
            let a = simplify_expr(a);
            let b = simplify_expr(b);
            match (a.as_int(), b.as_int()) {
                (Some(x), _) if x != 0 => Expr::Int(1),
                (_, Some(y)) if y != 0 => Expr::Int(1),
                (Some(0), Some(0)) => Expr::Int(0),
                (Some(0), None) => b,
                (None, Some(0)) => a,
                _ => Expr::Or(Box::new(a), Box::new(b)),
            }
        }
        Expr::Not(a) => {
            let a = simplify_expr(a);
            match a.as_int() {
                Some(x) => Expr::Int((x == 0) as i64),
                None => Expr::Not(Box::new(a)),
            }
        }
        Expr::Select(c, a, b) => {
            let c = simplify_expr(c);
            let a = simplify_expr(a);
            let b = simplify_expr(b);
            match c.as_int() {
                Some(x) if x != 0 => a,
                Some(_) => b,
                None => Expr::Select(Box::new(c), Box::new(a), Box::new(b)),
            }
        }
        Expr::Load { buf, index } => Expr::Load {
            buf: buf.clone(),
            index: Box::new(simplify_expr(index)),
        },
        Expr::Cast(dt, a) => {
            let a = simplify_expr(a);
            match (&a, dt) {
                (Expr::Int(v), d) if d.is_float() => Expr::Float(*v as f32),
                (Expr::Int(v), _) => Expr::Int(*v),
                (Expr::Float(v), d) if d.is_int() => Expr::Int(*v as i64),
                _ => Expr::Cast(*dt, Box::new(a)),
            }
        }
    }
}

fn fold_binary(op: BinOp, a: Expr, b: Expr) -> Expr {
    // Integer constant folding.
    if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
        let v = match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::FloorDiv => {
                if y == 0 {
                    return Expr::Binary(op, Box::new(a), Box::new(b));
                }
                x.div_euclid(y)
            }
            BinOp::FloorMod => {
                if y == 0 {
                    return Expr::Binary(op, Box::new(a), Box::new(b));
                }
                x.rem_euclid(y)
            }
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
        };
        return Expr::Int(v);
    }
    // Float constant folding.
    if let (Expr::Float(x), Expr::Float(y)) = (&a, &b) {
        let v = match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::FloorDiv => (x / y).floor(),
            BinOp::FloorMod => x - (x / y).floor() * y,
            BinOp::Min => x.min(*y),
            BinOp::Max => x.max(*y),
        };
        return Expr::Float(v);
    }
    // Identities.
    match op {
        BinOp::Add => {
            if a.as_int() == Some(0) {
                return b;
            }
            if b.as_int() == Some(0) {
                return a;
            }
        }
        BinOp::Sub => {
            if b.as_int() == Some(0) {
                return a;
            }
        }
        BinOp::Mul => {
            if a.as_int() == Some(1) {
                return b;
            }
            if b.as_int() == Some(1) {
                return a;
            }
            if a.as_int() == Some(0) || b.as_int() == Some(0) {
                return Expr::Int(0);
            }
        }
        BinOp::FloorDiv => {
            if b.as_int() == Some(1) {
                return a;
            }
        }
        BinOp::FloorMod => {
            if b.as_int() == Some(1) {
                return Expr::Int(0);
            }
        }
        BinOp::Min | BinOp::Max => {
            if a == b {
                return a;
            }
        }
    }
    Expr::Binary(op, Box::new(a), Box::new(b))
}

struct Simplifier;

impl StmtMutator for Simplifier {
    fn mutate_stmt(&mut self, stmt: Stmt) -> Stmt {
        let stmt = mutate_children(self, stmt);
        match stmt {
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => match cond.as_int() {
                Some(c) if c != 0 => *then_branch,
                Some(_) => else_branch.map(|e| *e).unwrap_or(Stmt::Nop),
                None => Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                },
            },
            Stmt::For {
                var,
                extent,
                kind,
                body,
            } => {
                if extent.as_int() == Some(0) {
                    Stmt::Nop
                } else if extent.as_int() == Some(1) && kind == crate::stmt::ForKind::Serial {
                    // A single-iteration serial loop is the loop body with the
                    // variable pinned to zero.
                    body.substitute(&var, &Expr::Int(0))
                } else {
                    Stmt::For {
                        var,
                        extent,
                        kind,
                        body,
                    }
                }
            }
            Stmt::Seq(stmts) => Stmt::seq(stmts),
            other => other,
        }
    }

    fn mutate_expr(&mut self, expr: Expr) -> Expr {
        simplify_expr(&expr)
    }
}

/// Simplifies a statement tree (expressions and trivially-dead control flow).
pub fn simplify_stmt(stmt: Stmt) -> Stmt {
    Simplifier.mutate_stmt(stmt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{Buffer, MemScope, Var};
    use crate::dtype::DType;

    #[test]
    fn folds_constants() {
        let e = Expr::int(3).add(Expr::int(4)).mul(Expr::int(2));
        assert_eq!(simplify_expr(&e), Expr::Int(14));
        let e = Expr::int(7).floordiv(Expr::int(2));
        assert_eq!(simplify_expr(&e), Expr::Int(3));
        let e = Expr::int(-7).floormod(Expr::int(4));
        assert_eq!(simplify_expr(&e), Expr::Int(1));
    }

    #[test]
    fn identities() {
        let i = Var::new("i");
        let e = Expr::var(&i).mul(Expr::int(1)).add(Expr::int(0));
        assert_eq!(simplify_expr(&e), Expr::var(&i));
        let e = Expr::var(&i).mul(Expr::int(0));
        assert_eq!(simplify_expr(&e), Expr::Int(0));
    }

    #[test]
    fn comparisons_and_logic() {
        let e = Expr::int(3).lt(Expr::int(5)).and(Expr::int(1));
        assert_eq!(simplify_expr(&e), Expr::Int(1));
        let i = Var::new("i");
        let cond = Expr::var(&i).lt(Expr::int(8));
        let e = cond.clone().and(Expr::int(1));
        assert_eq!(simplify_expr(&e), cond);
    }

    #[test]
    fn dead_branch_elimination() {
        let a = Buffer::new("A", DType::F32, vec![4], MemScope::Wram);
        let st = Stmt::store(&a, Expr::int(0), Expr::float(1.0));
        let s = Stmt::if_then(Expr::int(0).lt(Expr::int(1)), st.clone());
        assert_eq!(simplify_stmt(s), st);
        let s = Stmt::if_then(Expr::int(5).lt(Expr::int(1)), st);
        assert_eq!(simplify_stmt(s), Stmt::Nop);
    }

    #[test]
    fn unit_loop_is_inlined() {
        let i = Var::new("i");
        let a = Buffer::new("A", DType::F32, vec![4], MemScope::Wram);
        let s = Stmt::for_serial(
            i.clone(),
            1i64,
            Stmt::store(&a, Expr::var(&i), Expr::float(2.0)),
        );
        match simplify_stmt(s) {
            Stmt::Store { index, .. } => assert_eq!(index, Expr::Int(0)),
            other => panic!("expected inlined store, got {other:?}"),
        }
    }

    #[test]
    fn zero_extent_loop_removed() {
        let i = Var::new("i");
        let a = Buffer::new("A", DType::F32, vec![4], MemScope::Wram);
        let s = Stmt::for_serial(
            i.clone(),
            0i64,
            Stmt::store(&a, Expr::var(&i), Expr::float(2.0)),
        );
        assert_eq!(simplify_stmt(s), Stmt::Nop);
    }

    #[test]
    fn select_folding() {
        let e = Expr::Select(
            Box::new(Expr::int(1)),
            Box::new(Expr::float(2.0)),
            Box::new(Expr::float(3.0)),
        );
        assert_eq!(simplify_expr(&e), Expr::Float(2.0));
    }
}
